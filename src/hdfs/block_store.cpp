#include "mh/hdfs/block_store.h"

#include <algorithm>
#include <fstream>

#include "mh/common/crc32.h"
#include "mh/common/error.h"

namespace mh::hdfs {

namespace fs = std::filesystem;

std::vector<uint32_t> chunkChecksums(std::string_view data) {
  std::vector<uint32_t> crcs;
  crcs.reserve(data.size() / kChecksumChunk + 1);
  for (size_t off = 0; off < data.size(); off += kChecksumChunk) {
    crcs.push_back(crc32c(data.substr(off, kChecksumChunk)));
  }
  if (data.empty()) crcs.push_back(crc32c(""));
  return crcs;
}

void verifyChunks(BlockId block_id, std::string_view data,
                  const std::vector<uint32_t>& crcs) {
  const auto expected = chunkChecksums(data);
  if (expected.size() != crcs.size()) {
    throw ChecksumError("block " + std::to_string(block_id) +
                        " chunk count mismatch");
  }
  for (size_t i = 0; i < crcs.size(); ++i) {
    if (expected[i] != crcs[i]) {
      throw ChecksumError("block " + std::to_string(block_id) + " chunk " +
                          std::to_string(i));
    }
  }
}

// ------------------------------------------------------------------ base

void BlockStore::configureCodec(CodecKind codec, MetricsRegistry* metrics,
                                TraceCollector* trace, std::string component) {
  codec_ = codec;
  codec_metrics_ = metrics;
  codec_trace_ = trace;
  codec_component_ = std::move(component);
}

void BlockStore::checkReplicaCodec(BlockId id, CodecKind replica_codec) const {
  if (replica_codec == CodecKind::kNone || replica_codec == codec_) return;
  throw IoError("block " + std::to_string(id) + " is " +
                std::string(codecName(replica_codec)) +
                " encoded but store codec is " +
                std::string(codecName(codec_)));
}

void BlockStore::writeBlock(BlockId id, std::string_view data) {
  if (codec_ == CodecKind::kNone) {
    putStored(id, data, data.size(), CodecKind::kNone);
    return;
  }
  const Bytes encoded = codecEncode(codec_, data, codec_metrics_, codec_trace_,
                                    codec_component_);
  putStored(id, encoded, data.size(), codec_);
}

void BlockStore::adoptStored(BlockId id, std::string_view stored) {
  if (isEncodedStream(stored)) {
    // Header walk only: the raw size is recovered without decompressing,
    // and a torn stream is rejected before it lands in the store.
    const EncodedStreamInfo info = encodedStreamInfo(stored);
    putStored(id, stored, info.raw_size, info.codec);
  } else {
    putStored(id, stored, stored.size(), CodecKind::kNone);
  }
}

BufferView BlockStore::readBlock(BlockId id) const {
  StoredReplica replica = readStored(id);
  checkReplicaCodec(id, replica.codec);
  if (replica.codec == CodecKind::kNone) return std::move(replica.stored);
  return BufferView(codecDecode(replica.stored.view(), codec_metrics_,
                                codec_trace_, codec_component_));
}

BufferView BlockStore::readBlockRange(BlockId id, uint64_t offset,
                                      uint64_t len) const {
  StoredReplica replica = readStored(id);
  checkReplicaCodec(id, replica.codec);
  if (replica.codec == CodecKind::kNone) {
    if (offset > replica.stored.size()) {
      throw InvalidArgumentError("range start past end of block " +
                                 std::to_string(id));
    }
    return replica.stored.slice(offset, len);
  }
  try {
    // Only the frames covering [offset, offset+len) are decompressed.
    return codecDecodeRange(replica.stored.view(), offset, len, codec_metrics_,
                            codec_trace_, codec_component_);
  } catch (const InvalidArgumentError&) {
    throw InvalidArgumentError("range start past end of block " +
                               std::to_string(id));
  }
}

// ---------------------------------------------------------------- memory

void MemBlockStore::putStored(BlockId id, std::string_view stored,
                              uint64_t raw_size, CodecKind codec) {
  Replica replica{Buffer::copyOf(stored), chunkChecksums(stored), raw_size,
                  codec};
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = replicas_[id];
  used_bytes_ -= slot.data.size();  // overwrite: release the old payload
  used_bytes_ += replica.data.size();
  slot = std::move(replica);
}

StoredReplica MemBlockStore::readStored(BlockId id) const {
  // Refcount the resident buffer under the lock, verify outside it: the
  // replica map is immutable-value, so a concurrent overwrite/corrupt swaps
  // the slot's buffer without touching the one we hold.
  Replica replica;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = replicas_.find(id);
    if (it == replicas_.end()) {
      throw NotFoundError("block " + std::to_string(id));
    }
    replica = it->second;
  }
  if (!replica.verified) {
    verifyChunks(id, replica.data.view(), replica.crcs);
    // Mark the slot verified-once — but only if it still holds the buffer
    // we hashed; an overwrite/corruption that raced the verify swapped in a
    // fresh (unverified) buffer and must not inherit our verdict.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = replicas_.find(id);
    if (it != replicas_.end() &&
        it->second.data.shared().get() == replica.data.shared().get()) {
      it->second.verified = true;
    }
  }
  return {BufferView(std::move(replica.data)), replica.raw_size,
          replica.codec};
}

bool MemBlockStore::hasBlock(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return replicas_.contains(id);
}

void MemBlockStore::deleteBlock(BlockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = replicas_.find(id);
  if (it == replicas_.end()) return;
  used_bytes_ -= it->second.data.size();
  replicas_.erase(it);
}

uint64_t MemBlockStore::blockSize(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    throw NotFoundError("block " + std::to_string(id));
  }
  return it->second.raw_size;
}

uint64_t MemBlockStore::storedSize(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    throw NotFoundError("block " + std::to_string(id));
  }
  return it->second.data.size();
}

std::vector<BlockId> MemBlockStore::listBlocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BlockId> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, replica] : replicas_) ids.push_back(id);
  return ids;
}

uint64_t MemBlockStore::usedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_bytes_;
}

std::vector<BlockId> MemBlockStore::scanAll() const {
  std::map<BlockId, Replica> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = replicas_;  // refcounted buffers: no payload copy
  }
  std::vector<BlockId> bad;
  for (const auto& [id, replica] : snapshot) {
    try {
      verifyChunks(id, replica.data.view(), replica.crcs);
    } catch (const ChecksumError&) {
      bad.push_back(id);
    }
  }
  return bad;
}

void MemBlockStore::corruptBlock(BlockId id, size_t byte_offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = replicas_.find(id);
  if (it == replicas_.end()) {
    throw NotFoundError("block " + std::to_string(id));
  }
  // Copy-on-write: buffers are shared with outstanding read views, so the
  // corruption lands in a fresh buffer and the slot is swapped. Readers
  // holding the old view keep their clean bytes (as with a page cache).
  if (it->second.data.empty()) {
    throw InvalidArgumentError("cannot corrupt empty block");
  }
  Bytes data(it->second.data.view());
  const size_t pos = byte_offset % data.size();
  data[pos] = static_cast<char>(data[pos] ^ 0x5A);
  it->second.data = Buffer::fromString(std::move(data));
  it->second.verified = false;  // the next read must re-hash and throw
}

// ------------------------------------------------------------------ file

FileBlockStore::FileBlockStore(fs::path root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) throw IoError("create_directories " + root_.string() + ": " + ec.message());
}

fs::path FileBlockStore::dataPath(BlockId id) const {
  return root_ / ("blk_" + std::to_string(id));
}

fs::path FileBlockStore::metaPath(BlockId id) const {
  return root_ / ("blk_" + std::to_string(id) + ".meta");
}

void FileBlockStore::putStored(BlockId id, std::string_view stored,
                               uint64_t raw_size, CodecKind codec) {
  const auto crcs = chunkChecksums(stored);
  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::ofstream out(dataPath(id), std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("open for write: " + dataPath(id).string());
    out.write(stored.data(), static_cast<std::streamsize>(stored.size()));
    if (!out) throw IoError("write: " + dataPath(id).string());
  }
  {
    Bytes meta;
    ByteWriter w(meta);
    w.writeVarU64(crcs.size());
    for (const uint32_t crc : crcs) w.writeU32(crc);
    // v2 extension: codec id + raw size. Metas written before compression
    // existed end after the CRCs and imply codec none / raw == file size.
    w.writeU8(static_cast<uint8_t>(codec));
    w.writeVarU64(raw_size);
    std::ofstream out(metaPath(id), std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("open for write: " + metaPath(id).string());
    out.write(meta.data(), static_cast<std::streamsize>(meta.size()));
    if (!out) throw IoError("write: " + metaPath(id).string());
  }
}

FileBlockStore::Meta FileBlockStore::readMeta(BlockId id) const {
  std::ifstream in(metaPath(id), std::ios::binary);
  if (!in) throw IoError("missing meta for block " + std::to_string(id));
  Bytes raw((std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
  ByteReader r(raw);
  Meta meta;
  const uint64_t n = r.readVarU64();
  meta.crcs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) meta.crcs.push_back(r.readU32());
  if (!r.atEnd()) {
    const uint8_t codec_id = r.readU8();
    meta.codec = codec_id == 0 ? CodecKind::kNone : codecFromId(codec_id);
    meta.raw_size = r.readVarU64();
    meta.has_raw_size = true;
  }
  return meta;
}

StoredReplica FileBlockStore::readStored(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(dataPath(id), std::ios::binary);
  if (!in) throw NotFoundError("block " + std::to_string(id));
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  const Meta meta = readMeta(id);
  verifyChunks(id, data, meta.crcs);
  const uint64_t raw_size = meta.has_raw_size ? meta.raw_size : data.size();
  // One buffer per read: the file bytes are loaded once and every
  // downstream consumer (RPC reply, range slice, decode) shares that load.
  return {BufferView(Buffer::fromString(std::move(data))), raw_size,
          meta.codec};
}

bool FileBlockStore::hasBlock(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fs::exists(dataPath(id));
}

void FileBlockStore::deleteBlock(BlockId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::remove(dataPath(id), ec);
  fs::remove(metaPath(id), ec);
}

uint64_t FileBlockStore::blockSize(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  const auto size = fs::file_size(dataPath(id), ec);
  if (ec) throw NotFoundError("block " + std::to_string(id));
  try {
    const Meta meta = readMeta(id);
    if (meta.has_raw_size) return meta.raw_size;
  } catch (const IoError&) {
    // adopted bare data file (no meta); its stored size is its raw size
  }
  return size;
}

uint64_t FileBlockStore::storedSize(BlockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  const auto size = fs::file_size(dataPath(id), ec);
  if (ec) throw NotFoundError("block " + std::to_string(id));
  return size;
}

std::vector<BlockId> FileBlockStore::listBlocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BlockId> ids;
  for (const auto& entry : fs::directory_iterator(root_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("blk_", 0) == 0 && name.find(".meta") == std::string::npos) {
      ids.push_back(std::stoull(name.substr(4)));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t FileBlockStore::usedBytes() const {
  uint64_t total = 0;
  for (const BlockId id : listBlocks()) {
    try {
      total += storedSize(id);
    } catch (const NotFoundError&) {
      // raced with a delete; skip
    }
  }
  return total;
}

std::vector<BlockId> FileBlockStore::scanAll() const {
  std::vector<BlockId> bad;
  for (const BlockId id : listBlocks()) {
    try {
      readStored(id);
    } catch (const ChecksumError&) {
      bad.push_back(id);
    } catch (const IoError&) {
      bad.push_back(id);
    }
  }
  return bad;
}

void FileBlockStore::corruptBlock(BlockId id, size_t byte_offset) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fstream file(dataPath(id),
                    std::ios::binary | std::ios::in | std::ios::out);
  if (!file) throw NotFoundError("block " + std::to_string(id));
  file.seekg(0, std::ios::end);
  const auto size = static_cast<size_t>(file.tellg());
  if (size == 0) throw InvalidArgumentError("cannot corrupt empty block");
  const size_t pos = byte_offset % size;
  file.seekg(static_cast<std::streamoff>(pos));
  char c = 0;
  file.read(&c, 1);
  c = static_cast<char>(c ^ 0x5A);
  file.seekp(static_cast<std::streamoff>(pos));
  file.write(&c, 1);
}

}  // namespace mh::hdfs
