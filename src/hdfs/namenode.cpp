#include "mh/hdfs/namenode.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>

#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/stopwatch.h"
#include "mh/common/trace.h"
#include "mh/hdfs/wire.h"

namespace mh::hdfs {

namespace {
constexpr const char* kLog = "namenode";
}  // namespace

NameNode::NameNode(Config conf, std::shared_ptr<net::Network> network,
                   std::string host)
    : conf_(std::move(conf)),
      network_(std::move(network)),
      host_(std::move(host)),
      rng_(static_cast<uint64_t>(conf_.getInt("dfs.namenode.seed", 1234))) {
  network_->addHost(host_);
  metrics_ = &network_->metrics().child("namenode");
  tracer_ = &network_->tracer();
  // Gauges sample under lock_ at export time; registering them here (no
  // lock held) keeps the registry -> daemon lock order one-way.
  metrics_->setGauge("blocks.total", [this] {
    return static_cast<double>(totalBlocks());
  });
  metrics_->setGauge("datanodes.live", [this] {
    return static_cast<double>(liveDataNodes());
  });
  metrics_->setGauge("safemode", [this] { return inSafeMode() ? 1.0 : 0.0; });
  metrics_->setGauge("heartbeat.max_staleness_ms", [this] {
    return static_cast<double>(maxHeartbeatStalenessMillis());
  });
  if (!conf_.get("dfs.namenode.name.dir").empty()) {
    recoverOrFormatStorage();
  }
  last_checkpoint_steady_ms_ = steadyMillis();
}

NameNode::NameNode(Config conf, std::shared_ptr<net::Network> network,
                   std::string host, std::string_view fsimage)
    : NameNode(std::move(conf), std::move(network), std::move(host)) {
  if (edits_ != nullptr) {
    throw IllegalStateError(
        "restart from an in-memory fsimage conflicts with "
        "dfs.namenode.name.dir journaling; restart from the name dir");
  }
  namespace_ = Namespace::loadImage(fsimage);
  // Re-register every block the image knows about; locations are unknown
  // until block reports arrive, so enter safe mode.
  for (const auto& path : namespace_.listFilesRecursive("/")) {
    const auto status = namespace_.getFileStatus(path);
    for (const Block& block : namespace_.fileBlocks(path)) {
      blocks_.registerBlock(block, status.replication);
    }
  }
  if (blocks_.blockCount() > 0) {
    safe_mode_ = true;
    logInfo(kLog) << "restarted with " << blocks_.blockCount()
                  << " blocks; entering safe mode until "
                  << conf_.getDouble("dfs.safemode.threshold", 0.999)
                  << " of blocks are reported";
  }
}

NameNode::~NameNode() {
  stop();
  // The registry (and any MetricsSnapshotter sampling it) outlives this
  // daemon; replace `this`-capturing gauges with their final values.
  for (const char* name : {"blocks.total", "datanodes.live", "safemode",
                           "heartbeat.max_staleness_ms"}) {
    metrics_->setGauge(name, [v = metrics_->gaugeValue(name)] { return v; });
  }
}

void NameNode::recoverOrFormatStorage() {
  const std::filesystem::path dir(conf_.get("dfs.namenode.name.dir"));
  EditLog::Options opts;
  opts.dir = dir;
  opts.sync = conf_.get("dfs.namenode.edits.sync", "always");
  opts.batch_txns = static_cast<uint64_t>(
      conf_.getInt("dfs.namenode.edits.sync.batch.txns", 64));
  opts.metrics = metrics_;
  opts.tracer = tracer_;
  if (!EditLog::hasState(dir)) {
    edits_ = std::make_unique<EditLog>(std::move(opts));
    logInfo(kLog) << "formatted edit log storage in " << dir.string();
    return;
  }
  const LoadedStorage loaded = EditLog::load(dir);
  if (!loaded.image.empty()) {
    namespace_ = Namespace::loadImage(loaded.image);
  }
  const ReplayResult replayed =
      replayEdits(namespace_, loaded.edits, loaded.image_txn);
  edits_ = std::make_unique<EditLog>(std::move(opts), loaded.last_txn,
                                     loaded.image_txn);
  // Rebuild the block map from the recovered tree. Replica locations are
  // unknown until block reports arrive, so enter safe mode (same contract
  // as an fsimage restart).
  for (const auto& path : namespace_.listFilesRecursive("/")) {
    const auto status = namespace_.getFileStatus(path);
    for (const Block& block : namespace_.fileBlocks(path)) {
      blocks_.registerBlock(block, status.replication);
    }
  }
  blocks_.reserveBlockIds(replayed.max_block_id);
  if (blocks_.blockCount() > 0) safe_mode_ = true;
  logInfo(kLog) << "recovered namespace from " << dir.string() << ": image txn "
                << loaded.image_txn << " + " << replayed.applied
                << " replayed edits, last txn " << loaded.last_txn << ", "
                << blocks_.blockCount() << " blocks"
                << (safe_mode_ ? "; entering safe mode" : "");
}

int64_t NameNode::steadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NameNode::start() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (started_) return;
  }
  // Bind before flipping started_: if the port is held by a ghost daemon
  // this throws, and a later stop() must NOT unbind the ghost's endpoint.
  installRpc();
  {
    std::lock_guard<std::mutex> guard(lock_);
    started_ = true;
  }
  const auto interval = std::chrono::milliseconds(
      conf_.getInt("dfs.namenode.monitor.interval.ms", 50));
  monitor_ = std::jthread([this, interval](std::stop_token token) {
    while (!token.stop_requested()) {
      interruptibleSleep(token, interval);
      if (token.stop_requested()) return;
      runMonitorOnce();
    }
  });
  logInfo(kLog) << "started on " << host_ << ":" << kNameNodePort;
}

void NameNode::stop() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (!started_) return;
    started_ = false;
  }
  if (monitor_.joinable()) {
    monitor_.request_stop();
    monitor_.join();
  }
  network_->unbind(host_, kNameNodePort);
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (edits_ != nullptr) {
      try {
        edits_->sync();
      } catch (const Error& e) {
        // stop() runs on destructor paths; surface the failure, don't throw.
        logWarn(kLog) << "edit log sync on stop failed: " << e.what();
      }
    }
  }
  logInfo(kLog) << "stopped";
}

void NameNode::crash() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (!started_) return;
    started_ = false;
  }
  // Down first: replies to in-flight callers are lost from here on, so a
  // mutation can be applied-but-unacked (the standard crash ambiguity) but
  // never acked-and-lost.
  network_->setHostUp(host_, false);
  if (monitor_.joinable()) {
    monitor_.request_stop();
    monitor_.join();
  }
  // Unbind is a drain barrier: after it returns no handler is mid-mutation,
  // so dropping the unsynced tail below races with nothing.
  network_->unbind(host_, kNameNodePort);
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (edits_ != nullptr) edits_->discardPending();
  }
  logWarn(kLog) << "crashed (simulated kill -9)";
}

// ----------------------------------------------------------------- client

void NameNode::checkNotInSafeModeLocked(const char* op) const {
  if (safe_mode_) {
    throw IllegalStateError(std::string("cannot ") + op +
                            ": Name node is in safe mode");
  }
}

// Write-ahead contract: the mutation is applied in memory, journaled, and
// synced (per policy) before the RPC returns — so anything a client was
// told succeeded is on disk before the ack leaves the building.
void NameNode::journalLocked(EditRecord rec) {
  if (edits_ != nullptr) edits_->logEdit(std::move(rec));
}

void NameNode::mkdirs(const std::string& path) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("mkdirs");
  namespace_.mkdirs(path);
  EditRecord rec;
  rec.op = EditOp::kMkdirs;
  rec.path = path;
  journalLocked(std::move(rec));
}

bool NameNode::exists(const std::string& path) const {
  std::lock_guard<std::mutex> guard(lock_);
  return namespace_.exists(path);
}

FileStatus NameNode::getFileStatus(const std::string& path) const {
  std::lock_guard<std::mutex> guard(lock_);
  return namespace_.getFileStatus(path);
}

std::vector<FileStatus> NameNode::listStatus(const std::string& path) const {
  std::lock_guard<std::mutex> guard(lock_);
  return namespace_.listStatus(path);
}

std::vector<std::string> NameNode::listFilesRecursive(
    const std::string& path) const {
  std::lock_guard<std::mutex> guard(lock_);
  return namespace_.listFilesRecursive(path);
}

void NameNode::queueInvalidateLocked(const std::vector<Block>& freed) {
  for (const Block& block : freed) {
    for (const std::string& replica_host : blocks_.liveReplicas(block.id)) {
      auto it = datanodes_.find(replica_host);
      if (it != datanodes_.end()) {
        it->second.pending_commands.push_back(
            {DataNodeCommand::Kind::kDelete, block.id, {}});
      }
    }
    for (const std::string& replica_host : blocks_.corruptReplicas(block.id)) {
      auto it = datanodes_.find(replica_host);
      if (it != datanodes_.end()) {
        it->second.pending_commands.push_back(
            {DataNodeCommand::Kind::kDelete, block.id, {}});
      }
    }
    blocks_.removeBlock(block.id);
    pending_replications_.erase(block.id);
  }
}

bool NameNode::remove(const std::string& path, bool recursive) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("delete");
  if (!namespace_.exists(path)) return false;
  const auto freed = namespace_.remove(path, recursive);
  queueInvalidateLocked(freed);
  EditRecord rec;
  rec.op = EditOp::kDelete;
  rec.path = path;
  rec.recursive = recursive;
  journalLocked(std::move(rec));
  return true;
}

void NameNode::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("rename");
  namespace_.rename(from, to);
  EditRecord rec;
  rec.op = EditOp::kRename;
  rec.path = from;
  rec.path2 = to;
  journalLocked(std::move(rec));
}

void NameNode::create(const std::string& path, uint16_t replication,
                      uint64_t block_size) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("create");
  const auto repl = replication != 0
                        ? replication
                        : static_cast<uint16_t>(
                              conf_.getInt("dfs.replication", 3));
  const auto bs =
      block_size != 0
          ? block_size
          : static_cast<uint64_t>(conf_.getInt("dfs.blocksize", 65536));
  namespace_.createFile(path, repl, bs);
  EditRecord rec;
  rec.op = EditOp::kCreate;
  rec.path = path;
  rec.replication = repl;  // journal the *resolved* defaults
  rec.block_size = bs;
  journalLocked(std::move(rec));
}

std::vector<PlacementCandidate> NameNode::aliveCandidatesLocked() const {
  std::vector<PlacementCandidate> candidates;
  for (const auto& [dn_host, descriptor] : datanodes_) {
    if (!descriptor.alive) continue;
    const uint64_t free = descriptor.capacity > descriptor.used
                              ? descriptor.capacity - descriptor.used
                              : 0;
    candidates.push_back({dn_host, free, descriptor.rack});
  }
  return candidates;
}

LocatedBlock NameNode::addBlock(const std::string& path,
                                const std::string& client_host) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("addBlock");
  const auto status = namespace_.getFileStatus(path);
  if (status.is_dir) throw InvalidArgumentError("is a directory: " + path);

  const auto candidates = aliveCandidatesLocked();
  if (candidates.empty()) {
    throw IoError("could not place block for " + path +
                  ": no live datanodes");
  }
  const Block block = blocks_.allocateBlock(status.replication);
  namespace_.addBlock(path, block);
  EditRecord rec;
  rec.op = EditOp::kAddBlock;
  rec.path = path;
  rec.block = block;
  journalLocked(std::move(rec));

  LocatedBlock located;
  located.block = block;
  located.offset = status.length;
  located.hosts =
      choosePlacement(candidates, status.replication, client_host, {}, rng_);
  if (tracer_->enabled()) {
    tracer_->instant("namenode", "ALLOC_BLOCK blk_" + std::to_string(block.id),
                     {{"path", path}, {"client", client_host}});
  }
  return located;
}

void NameNode::completeFile(const std::string& path) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("complete");
  std::vector<Block> finalized = namespace_.fileBlocks(path);
  for (Block& block : finalized) block.size = blocks_.blockSize(block.id);
  namespace_.setFileBlocks(path, finalized);
  namespace_.completeFile(path);
  EditRecord rec;
  rec.op = EditOp::kComplete;
  rec.path = path;
  rec.blocks = std::move(finalized);  // finalized sizes survive restart
  journalLocked(std::move(rec));
}

std::vector<LocatedBlock> NameNode::getBlockLocations(
    const std::string& path) const {
  std::lock_guard<std::mutex> guard(lock_);
  std::vector<LocatedBlock> located;
  uint64_t offset = 0;
  for (const Block& block : namespace_.fileBlocks(path)) {
    LocatedBlock lb;
    lb.block = block;
    lb.block.size = blocks_.blockSize(block.id);
    lb.offset = offset;
    lb.hosts = blocks_.liveReplicas(block.id);
    offset += lb.block.size;
    located.push_back(std::move(lb));
  }
  return located;
}

void NameNode::setReplication(const std::string& path,
                              uint16_t replication) {
  std::lock_guard<std::mutex> guard(lock_);
  checkNotInSafeModeLocked("setReplication");
  namespace_.setReplication(path, replication);
  for (const Block& block : namespace_.fileBlocks(path)) {
    blocks_.setExpectedReplication(block.id, replication);
  }
  EditRecord rec;
  rec.op = EditOp::kSetReplication;
  rec.path = path;
  rec.replication = replication;
  journalLocked(std::move(rec));
}

void NameNode::reportBadBlock(BlockId block, const std::string& host) {
  std::lock_guard<std::mutex> guard(lock_);
  logWarn(kLog) << "bad block " << block << " reported on " << host;
  blocks_.markCorrupt(block, host);
}

// --------------------------------------------------------------- datanode

void NameNode::registerDataNode(const std::string& host,
                                uint64_t capacity_bytes,
                                const std::string& rack) {
  std::lock_guard<std::mutex> guard(lock_);
  network_->addHost(host);
  DataNodeDescriptor& descriptor = datanodes_[host];
  descriptor.rack = rack;
  descriptor.capacity = capacity_bytes;
  descriptor.alive = true;
  descriptor.reported = false;
  descriptor.last_heartbeat_ms = steadyMillis();
  descriptor.pending_commands.clear();
  logInfo(kLog) << "registered datanode " << host;
}

HeartbeatReply NameNode::heartbeat(const std::string& host,
                                   uint64_t capacity_bytes,
                                   uint64_t used_bytes, uint64_t num_blocks) {
  std::lock_guard<std::mutex> guard(lock_);
  HeartbeatReply reply;
  const auto it = datanodes_.find(host);
  if (it == datanodes_.end()) {
    reply.reregister = true;
    return reply;
  }
  DataNodeDescriptor& descriptor = it->second;
  descriptor.capacity = capacity_bytes;
  descriptor.used = used_bytes;
  descriptor.num_blocks = num_blocks;
  descriptor.last_heartbeat_ms = steadyMillis();
  if (!descriptor.alive) {
    logInfo(kLog) << "datanode " << host << " is back";
    descriptor.alive = true;
    descriptor.reported = false;  // its replicas were dropped; re-report
  }
  reply.request_block_report = !descriptor.reported;
  reply.commands = std::move(descriptor.pending_commands);
  descriptor.pending_commands.clear();
  return reply;
}

std::vector<BlockId> NameNode::blockReport(const std::string& host,
                                           const std::vector<Block>& report) {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = datanodes_.find(host);
  if (it == datanodes_.end()) {
    throw IllegalStateError("block report from unregistered datanode " + host);
  }
  it->second.alive = true;
  it->second.reported = true;
  it->second.last_heartbeat_ms = steadyMillis();

  // Remember which replicas on this host were known corrupt: a block report
  // must not launder a bad replica back to "live".
  std::set<BlockId> previously_corrupt;
  for (const BlockId id : blocks_.withCorruptReplicas()) {
    if (blocks_.isCorrupt(id, host)) previously_corrupt.insert(id);
  }
  // Reset this host's replica state, then rebuild it from the report. A
  // replica the NameNode believed in but that was not reported stays gone.
  blocks_.removeAllReplicasOn(host);

  std::vector<BlockId> invalid;
  for (const Block& block : report) {
    if (!blocks_.contains(block.id)) {
      invalid.push_back(block.id);
      continue;
    }
    if (previously_corrupt.contains(block.id)) {
      blocks_.markCorrupt(block.id, host);
      continue;
    }
    blocks_.addReplica(block.id, host);
    if (blocks_.blockSize(block.id) == 0 && block.size > 0) {
      blocks_.commitBlock(block.id, block.size);
    }
    pending_replications_.erase(block.id);
  }
  maybeLeaveSafeModeLocked();
  return invalid;
}

void NameNode::blockReceived(const std::string& host, Block block) {
  std::lock_guard<std::mutex> guard(lock_);
  blocks_.addReplica(block.id, host);
  if (block.size > 0) blocks_.commitBlock(block.id, block.size);
  pending_replications_.erase(block.id);
  maybeLeaveSafeModeLocked();
}

void NameNode::maybeLeaveSafeModeLocked() {
  if (!safe_mode_) return;
  const double threshold = conf_.getDouble("dfs.safemode.threshold", 0.999);
  const uint64_t total = blocks_.blockCount();
  const uint64_t reported = blocks_.reportedBlocks();
  if (static_cast<double>(reported) >=
      threshold * static_cast<double>(total)) {
    safe_mode_ = false;
    logInfo(kLog) << "leaving safe mode: " << reported << "/" << total
                  << " blocks reported";
    tracer_->instant("namenode", "SAFEMODE_LEAVE",
                     {{"reported", std::to_string(reported)},
                      {"total", std::to_string(total)}});
  }
}

// ------------------------------------------------------------------ admin

FsckReport NameNode::fsck() const {
  std::lock_guard<std::mutex> guard(lock_);
  FsckReport report;
  report.total_dirs = namespace_.directoryCount();
  for (const auto& path : namespace_.listFilesRecursive("/")) {
    ++report.total_files;
    const auto status = namespace_.getFileStatus(path);
    for (const Block& block : namespace_.fileBlocks(path)) {
      ++report.total_blocks;
      report.total_bytes += blocks_.blockSize(block.id);
      const auto live = blocks_.liveReplicas(block.id).size();
      if (!blocks_.corruptReplicas(block.id).empty()) {
        ++report.corrupt_blocks;
      }
      if (live == 0) {
        ++report.missing_blocks;
      } else if (live < status.replication) {
        ++report.under_replicated;
      } else if (live > status.replication) {
        ++report.over_replicated;
        ++report.min_replication_blocks;
      } else {
        ++report.min_replication_blocks;
      }
    }
  }
  report.healthy = report.missing_blocks == 0 && report.corrupt_blocks == 0;
  return report;
}

std::vector<DataNodeInfo> NameNode::datanodeReport() const {
  std::lock_guard<std::mutex> guard(lock_);
  const int64_t now = steadyMillis();
  std::vector<DataNodeInfo> out;
  for (const auto& [dn_host, descriptor] : datanodes_) {
    DataNodeInfo info;
    info.host = dn_host;
    info.rack = descriptor.rack;
    info.capacity_bytes = descriptor.capacity;
    info.used_bytes = descriptor.used;
    info.num_blocks = descriptor.num_blocks;
    info.millis_since_heartbeat = now - descriptor.last_heartbeat_ms;
    info.alive = descriptor.alive;
    out.push_back(std::move(info));
  }
  return out;
}

bool NameNode::inSafeMode() const {
  std::lock_guard<std::mutex> guard(lock_);
  return safe_mode_;
}

void NameNode::setSafeMode(bool on) {
  std::lock_guard<std::mutex> guard(lock_);
  safe_mode_ = on;
}

Bytes NameNode::saveImage() const {
  std::lock_guard<std::mutex> guard(lock_);
  return namespace_.saveImage();
}

uint64_t NameNode::saveNamespace() {
  std::lock_guard<std::mutex> guard(lock_);
  return checkpointLocked();
}

uint64_t NameNode::rollEdits() {
  std::lock_guard<std::mutex> guard(lock_);
  if (edits_ == nullptr) {
    throw IllegalStateError(
        "edit log journaling is not enabled (dfs.namenode.name.dir unset)");
  }
  return edits_->roll();
}

uint64_t NameNode::checkpointLocked() {
  if (edits_ == nullptr) {
    throw IllegalStateError(
        "edit log journaling is not enabled (dfs.namenode.name.dir unset)");
  }
  Stopwatch sw;
  std::optional<TraceSpan> span;
  if (tracer_->enabled()) {
    span.emplace(tracer_, "namenode", "CHECKPOINT");
  }
  edits_->checkpoint(namespace_.saveImage());
  const int64_t millis = sw.elapsedMillis();
  metrics_->histogram("checkpoint.millis").record(millis);
  if (span) span->arg("txn", std::to_string(edits_->lastCheckpointTxn()));
  last_checkpoint_steady_ms_ = steadyMillis();
  logInfo(kLog) << "checkpointed namespace at txn "
                << edits_->lastCheckpointTxn() << " in " << millis << " ms";
  return edits_->lastCheckpointTxn();
}

void NameNode::maybeCheckpointLocked() {
  if (edits_ == nullptr || edits_->txnsSinceCheckpoint() == 0) return;
  const int64_t txns = conf_.getInt("dfs.namenode.checkpoint.txns", 100000);
  const int64_t period = conf_.getInt("dfs.namenode.checkpoint.period.ms", 0);
  const bool txns_due =
      txns > 0 &&
      edits_->txnsSinceCheckpoint() >= static_cast<uint64_t>(txns);
  const bool period_due =
      period > 0 && steadyMillis() - last_checkpoint_steady_ms_ >= period;
  if (txns_due || period_due) checkpointLocked();
}

uint64_t NameNode::totalBlocks() const {
  std::lock_guard<std::mutex> guard(lock_);
  return blocks_.blockCount();
}

uint64_t NameNode::liveDataNodes() const {
  std::lock_guard<std::mutex> guard(lock_);
  uint64_t n = 0;
  for (const auto& [dn_host, descriptor] : datanodes_) {
    if (descriptor.alive) ++n;
  }
  return n;
}

int64_t NameNode::maxHeartbeatStalenessMillis() const {
  const int64_t now = steadyMillis();
  std::lock_guard<std::mutex> guard(lock_);
  int64_t worst = 0;
  for (const auto& [dn_host, descriptor] : datanodes_) {
    if (!descriptor.alive) continue;
    worst = std::max(worst, now - descriptor.last_heartbeat_ms);
  }
  return worst;
}

// ---------------------------------------------------------------- monitor

void NameNode::runMonitorOnce() {
  std::lock_guard<std::mutex> guard(lock_);
  monitorPassLocked();
}

void NameNode::monitorPassLocked() {
  expireHeartbeatsLocked();
  handleCorruptReplicasLocked();
  handleOverReplicationLocked();
  scheduleReplicationLocked();
  maybeCheckpointLocked();
}

void NameNode::expireHeartbeatsLocked() {
  const int64_t expiry =
      conf_.getInt("dfs.namenode.heartbeat.expiry.ms", 1000);
  const int64_t now = steadyMillis();
  for (auto& [dn_host, descriptor] : datanodes_) {
    if (descriptor.alive && now - descriptor.last_heartbeat_ms > expiry) {
      descriptor.alive = false;
      const auto affected = blocks_.removeAllReplicasOn(dn_host);
      logWarn(kLog) << "datanode " << dn_host << " is dead; "
                    << affected.size() << " blocks lost a replica";
    }
  }
}

void NameNode::handleCorruptReplicasLocked() {
  for (const BlockId id : blocks_.withCorruptReplicas()) {
    const auto live = blocks_.liveReplicas(id);
    if (live.size() < blocks_.expectedReplication(id)) continue;  // repair first
    for (const std::string& bad_host : blocks_.corruptReplicas(id)) {
      auto it = datanodes_.find(bad_host);
      if (it != datanodes_.end()) {
        it->second.pending_commands.push_back(
            {DataNodeCommand::Kind::kDelete, id, {}});
      }
      blocks_.removeReplica(id, bad_host);
    }
  }
}

void NameNode::handleOverReplicationLocked() {
  for (const BlockId id : blocks_.overReplicated()) {
    auto live = blocks_.liveReplicas(id);
    const size_t excess = live.size() - blocks_.expectedReplication(id);
    // Drop replicas from the most-used nodes first.
    std::sort(live.begin(), live.end(),
              [this](const std::string& a, const std::string& b) {
                const auto ita = datanodes_.find(a);
                const auto itb = datanodes_.find(b);
                const uint64_t ua = ita != datanodes_.end() ? ita->second.used : 0;
                const uint64_t ub = itb != datanodes_.end() ? itb->second.used : 0;
                return ua > ub;
              });
    for (size_t i = 0; i < excess; ++i) {
      const std::string& victim = live[i];
      auto it = datanodes_.find(victim);
      if (it != datanodes_.end()) {
        it->second.pending_commands.push_back(
            {DataNodeCommand::Kind::kDelete, id, {}});
      }
      blocks_.removeReplica(id, victim);
    }
  }
}

void NameNode::scheduleReplicationLocked() {
  const int64_t now = steadyMillis();
  const int64_t pending_timeout =
      conf_.getInt("dfs.namenode.pending.replication.timeout.ms", 2000);
  const int64_t max_streams =
      conf_.getInt("dfs.namenode.replication.max.streams", 64);
  int64_t scheduled = 0;

  for (const BlockId id : blocks_.underReplicated()) {
    if (scheduled >= max_streams) break;
    const auto pending_it = pending_replications_.find(id);
    if (pending_it != pending_replications_.end() &&
        now - pending_it->second < pending_timeout) {
      continue;
    }
    const auto live = blocks_.liveReplicas(id);
    std::string source;
    for (const auto& candidate : live) {
      const auto it = datanodes_.find(candidate);
      if (it != datanodes_.end() && it->second.alive) {
        source = candidate;
        break;
      }
    }
    if (source.empty()) continue;

    std::set<std::string> exclude(live.begin(), live.end());
    for (const auto& bad : blocks_.corruptReplicas(id)) exclude.insert(bad);
    const size_t needed = blocks_.expectedReplication(id) - live.size();
    const auto targets = choosePlacement(aliveCandidatesLocked(), needed, "",
                                         exclude, rng_);
    if (targets.empty()) continue;

    datanodes_[source].pending_commands.push_back(
        {DataNodeCommand::Kind::kReplicate, id, targets});
    pending_replications_[id] = now;
    ++scheduled;
  }
}

// ------------------------------------------------------------------- rpc

void NameNode::installRpc() {
  network_->bind(host_, kNameNodePort, [this](const net::RpcRequest& req) -> Bytes {
    const std::string& m = req.method;
    // Counted before dispatch, while no daemon lock is held.
    metrics_->counter("ops." + m).add();
    // Namespace operations land in the caller's trace (handlers run on the
    // caller's thread, so the ambient context is already installed). The
    // periodic DataNode control-plane chatter is deliberately excluded —
    // it belongs to no job and would drown the ring.
    if (tracer_->enabled() && m != "heartbeat" && m != "blockReport" &&
        m != "blockReceived" && m != "registerDataNode") {
      tracer_->instant("namenode", "NN_OP " + m);
    }
    if (m == "mkdirs") {
      const auto [path] = unpack<std::string>(req.body);
      mkdirs(path);
      return {};
    }
    if (m == "exists") {
      const auto [path] = unpack<std::string>(req.body);
      return pack(exists(path));
    }
    if (m == "getFileStatus") {
      const auto [path] = unpack<std::string>(req.body);
      return pack(getFileStatus(path));
    }
    if (m == "listStatus") {
      const auto [path] = unpack<std::string>(req.body);
      return pack(listStatus(path));
    }
    if (m == "listFilesRecursive") {
      const auto [path] = unpack<std::string>(req.body);
      return pack(listFilesRecursive(path));
    }
    if (m == "delete") {
      const auto [path, recursive] = unpack<std::string, bool>(req.body);
      return pack(remove(path, recursive));
    }
    if (m == "rename") {
      const auto [from, to] = unpack<std::string, std::string>(req.body);
      rename(from, to);
      return {};
    }
    if (m == "create") {
      const auto [path, repl, bs] =
          unpack<std::string, uint64_t, uint64_t>(req.body);
      create(path, static_cast<uint16_t>(repl), bs);
      return {};
    }
    if (m == "addBlock") {
      const auto [path, client] = unpack<std::string, std::string>(req.body);
      return pack(addBlock(path, client));
    }
    if (m == "complete") {
      const auto [path] = unpack<std::string>(req.body);
      completeFile(path);
      return {};
    }
    if (m == "getBlockLocations") {
      const auto [path] = unpack<std::string>(req.body);
      return pack(getBlockLocations(path));
    }
    if (m == "setReplication") {
      const auto [path, repl] = unpack<std::string, uint16_t>(req.body);
      setReplication(path, repl);
      return {};
    }
    if (m == "reportBadBlock") {
      const auto [block, bad_host] = unpack<uint64_t, std::string>(req.body);
      reportBadBlock(block, bad_host);
      return {};
    }
    if (m == "registerDataNode") {
      const auto [dn_host, capacity, rack] =
          unpack<std::string, uint64_t, std::string>(req.body);
      registerDataNode(dn_host, capacity, rack);
      return {};
    }
    if (m == "heartbeat") {
      const auto [dn_host, capacity, used, nblocks] =
          unpack<std::string, uint64_t, uint64_t, uint64_t>(req.body);
      return pack(heartbeat(dn_host, capacity, used, nblocks));
    }
    if (m == "blockReport") {
      const auto [dn_host, report] =
          unpack<std::string, std::vector<Block>>(req.body);
      return pack(blockReport(dn_host, report));
    }
    if (m == "blockReceived") {
      const auto [dn_host, block] = unpack<std::string, Block>(req.body);
      blockReceived(dn_host, block);
      return {};
    }
    if (m == "fsck") {
      return pack(fsck());
    }
    if (m == "datanodeReport") {
      return pack(datanodeReport());
    }
    if (m == "safemode.get") {
      return pack(inSafeMode());
    }
    if (m == "safemode.set") {
      const auto [on] = unpack<bool>(req.body);
      setSafeMode(on);
      return {};
    }
    if (m == "saveImage") {
      return pack(saveImage());
    }
    if (m == "saveNamespace") {
      return pack(saveNamespace());
    }
    if (m == "rollEdits") {
      return pack(rollEdits());
    }
    throw InvalidArgumentError("namenode: unknown RPC method " + m);
  });
}

}  // namespace mh::hdfs
