#include "mh/hdfs/fs_shell.h"

#include <fstream>
#include <sstream>

#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh::hdfs {

namespace {

std::string formatStatus(const FileStatus& status) {
  std::ostringstream out;
  out << (status.is_dir ? 'd' : '-') << "rw-r--r--  ";
  if (status.is_dir) {
    out << "-";
  } else {
    out << status.replication;
  }
  out << "\t" << status.length << "\t" << status.path;
  return out.str();
}

}  // namespace

FsShell::Result FsShell::run(const std::vector<std::string>& args) {
  try {
    if (args.empty()) return {1, "usage: fs -<command> [args]\n"};
    const std::string& cmd = args[0];
    const auto need = [&](size_t n) {
      if (args.size() != n + 1) {
        throw InvalidArgumentError(cmd + " expects " + std::to_string(n) +
                                   " argument(s)");
      }
    };
    if (cmd == "-ls") {
      need(1);
      return ls(args[1], false);
    }
    if (cmd == "-lsr") {
      need(1);
      return ls(args[1], true);
    }
    if (cmd == "-mkdir") {
      need(1);
      client_.mkdirs(args[1]);
      return {0, ""};
    }
    if (cmd == "-put") {
      need(2);
      return put(args[1], args[2]);
    }
    if (cmd == "-get" || cmd == "-copyToLocal") {
      need(2);
      return get(args[1], args[2]);
    }
    if (cmd == "-cat") {
      need(1);
      return cat(args[1]);
    }
    if (cmd == "-rm") {
      need(1);
      return rm(args[1], false);
    }
    if (cmd == "-rmr") {
      need(1);
      return rm(args[1], true);
    }
    if (cmd == "-mv") {
      need(2);
      client_.rename(args[1], args[2]);
      return {0, ""};
    }
    if (cmd == "-du") {
      need(1);
      return du(args[1]);
    }
    if (cmd == "-touchz") {
      need(1);
      client_.writeFile(args[1], "");
      return {0, ""};
    }
    if (cmd == "-setrep") {
      need(2);
      if (!isDigits(args[1])) {
        throw InvalidArgumentError("-setrep <n> <path>");
      }
      client_.setReplication(args[2],
                             static_cast<uint16_t>(std::stoul(args[1])));
      return {0, "Replication " + args[1] + " set: " + args[2] + "\n"};
    }
    if (cmd == "-stat") {
      need(1);
      const auto status = client_.getFileStatus(args[1]);
      std::ostringstream out;
      if (status.is_dir) {
        out << "directory\t" << status.path << "\n";
      } else {
        out << status.length << "\t" << status.replication << "\t"
            << status.block_size << "\t" << status.path << "\n";
      }
      return {0, out.str()};
    }
    if (cmd == "-tail") {
      need(1);
      const Bytes body = client_.readFile(args[1]);
      constexpr size_t kTail = 1024;
      return {0, body.size() <= kTail
                     ? body
                     : body.substr(body.size() - kTail)};
    }
    if (cmd == "-count") {
      need(1);
      uint64_t files = 0;
      uint64_t bytes = 0;
      for (const auto& file : client_.listFilesRecursive(args[1])) {
        ++files;
        bytes += client_.getFileStatus(file).length;
      }
      std::ostringstream out;
      out << files << "\t" << bytes << "\t" << args[1] << "\n";
      return {0, out.str()};
    }
    if (cmd == "-report") {
      need(0);
      return report();
    }
    if (cmd == "-fsck") {
      if (args.size() > 2) throw InvalidArgumentError("-fsck [path]");
      return {0, client_.fsck().render()};
    }
    if (cmd == "-safemode") {
      need(1);
      if (args[1] == "get") {
        return {0, client_.inSafeMode() ? "Safe mode is ON\n"
                                        : "Safe mode is OFF\n"};
      }
      if (args[1] == "enter") {
        client_.namenode().setSafeMode(true);
        return {0, "Safe mode is ON\n"};
      }
      if (args[1] == "leave") {
        client_.namenode().setSafeMode(false);
        return {0, "Safe mode is OFF\n"};
      }
      throw InvalidArgumentError("-safemode <get|enter|leave>");
    }
    if (cmd == "-saveNamespace") {
      need(0);
      const uint64_t txn = client_.namenode().saveNamespace();
      return {0, "Save namespace successful: checkpoint covers txn " +
                     std::to_string(txn) + "\n"};
    }
    if (cmd == "-rollEdits") {
      need(0);
      const uint64_t txn = client_.namenode().rollEdits();
      return {0, "Successfully rolled edit logs; new segment starts at txn " +
                     std::to_string(txn) + "\n"};
    }
    return {1, "unknown command: " + cmd + "\n"};
  } catch (const Error& e) {
    return {1, std::string(e.what()) + "\n"};
  }
}

FsShell::Result FsShell::ls(const std::string& path, bool recursive) {
  std::ostringstream out;
  if (recursive) {
    for (const auto& file : client_.listFilesRecursive(path)) {
      out << formatStatus(client_.getFileStatus(file)) << "\n";
    }
  } else {
    const auto entries = client_.listStatus(path);
    out << "Found " << entries.size() << " items\n";
    for (const auto& status : entries) {
      out << formatStatus(status) << "\n";
    }
  }
  return {0, out.str()};
}

FsShell::Result FsShell::put(const std::string& local,
                             const std::string& dfs) {
  std::ifstream in(local, std::ios::binary);
  if (!in) return {1, "put: local file not found: " + local + "\n"};
  const Bytes data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  client_.writeFile(dfs, data);
  return {0, ""};
}

FsShell::Result FsShell::get(const std::string& dfs,
                             const std::string& local) {
  const Bytes data = client_.readFile(dfs);
  std::ofstream out(local, std::ios::binary | std::ios::trunc);
  if (!out) return {1, "get: cannot write local file: " + local + "\n"};
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return {0, ""};
}

FsShell::Result FsShell::cat(const std::string& path) {
  return {0, client_.readFile(path)};
}

FsShell::Result FsShell::rm(const std::string& path, bool recursive) {
  if (!client_.remove(path, recursive)) {
    return {1, "rm: no such path: " + path + "\n"};
  }
  return {0, "Deleted " + path + "\n"};
}

FsShell::Result FsShell::du(const std::string& path) {
  std::ostringstream out;
  for (const auto& file : client_.listFilesRecursive(path)) {
    out << client_.getFileStatus(file).length << "\t" << file << "\n";
  }
  return {0, out.str()};
}

FsShell::Result FsShell::report() {
  std::ostringstream out;
  const auto datanodes = client_.datanodeReport();
  uint64_t capacity = 0;
  uint64_t used = 0;
  int live = 0;
  for (const auto& dn : datanodes) {
    capacity += dn.capacity_bytes;
    used += dn.used_bytes;
    if (dn.alive) ++live;
  }
  out << "Configured Capacity: " << capacity << " ("
      << formatBytes(capacity) << ")\n"
      << "DFS Used: " << used << " (" << formatBytes(used) << ")\n"
      << "Datanodes available: " << live << " (" << datanodes.size()
      << " total)\n\n";
  for (const auto& dn : datanodes) {
    out << "Name: " << dn.host << "\n"
        << "Rack: " << dn.rack << "\n"
        << "Decommission Status : Normal\n"
        << "Configured Capacity: " << dn.capacity_bytes << "\n"
        << "DFS Used: " << dn.used_bytes << "\n"
        << "Blocks: " << dn.num_blocks << "\n"
        << "Last contact: " << dn.millis_since_heartbeat << " ms ago ("
        << (dn.alive ? "live" : "dead") << ")\n\n";
  }
  return {0, out.str()};
}

}  // namespace mh::hdfs
