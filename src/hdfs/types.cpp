#include "mh/hdfs/types.h"

#include <sstream>

namespace mh::hdfs {

std::string FsckReport::render() const {
  std::ostringstream out;
  out << "FSCK report:\n"
      << " Total dirs:\t" << total_dirs << "\n"
      << " Total files:\t" << total_files << "\n"
      << " Total bytes:\t" << total_bytes << "\n"
      << " Total blocks:\t" << total_blocks << "\n"
      << " Minimally replicated blocks:\t" << min_replication_blocks << "\n"
      << " Under-replicated blocks:\t" << under_replicated << "\n"
      << " Over-replicated blocks:\t" << over_replicated << "\n"
      << " Corrupt blocks:\t" << corrupt_blocks << "\n"
      << " Missing blocks:\t" << missing_blocks << "\n"
      << "The filesystem is " << (healthy ? "HEALTHY" : "CORRUPT") << "\n";
  return out.str();
}

}  // namespace mh::hdfs
