#include "mh/hdfs/datanode.h"

#include <chrono>

#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/stopwatch.h"
#include "mh/hdfs/short_circuit.h"

namespace mh::hdfs {

namespace {
constexpr const char* kLog = "datanode";
}  // namespace

DataNode::DataNode(Config conf, std::shared_ptr<net::Network> network,
                   std::string host, std::shared_ptr<BlockStore> store,
                   std::string namenode_host)
    : conf_(std::move(conf)),
      network_(network),
      host_(std::move(host)),
      store_(std::move(store)),
      namenode_(std::move(network), host_, std::move(namenode_host)) {
  metrics_ = &network_->metrics().child("datanode." + host_);
  tracer_ = &network_->tracer();
  blocks_read_ = &metrics_->counter("blocks.read");
  blocks_written_ = &metrics_->counter("blocks.written");
  bytes_read_ = &metrics_->counter("bytes.read");
  bytes_written_ = &metrics_->counter("bytes.written");
  replications_ = &metrics_->counter("replications");
  deletes_ = &metrics_->counter("deletes");
  block_raw_bytes_ = &metrics_->counter("block.raw.bytes");
  block_compressed_bytes_ = &metrics_->counter("block.compressed.bytes");
  // At-rest compression: the store encodes on write and decodes on read;
  // everything resident (checksums, scans, replication) is the stored form.
  store_->configureCodec(
      codecFromName(conf_.get("dfs.block.compression.codec", "none")),
      metrics_, tracer_, "datanode." + host_);
  metrics_->setGauge("store.used_bytes", [store = store_] {
    return static_cast<double>(store->usedBytes());
  });
  // Payload bytes resident in the store. With refcounted replicas this is
  // charged once per block no matter how many read views are outstanding.
  metrics_->setGauge("blockstore.resident.bytes", [store = store_] {
    return static_cast<double>(store->usedBytes());
  });
  metrics_->setGauge("store.blocks", [store = store_] {
    return static_cast<double>(store->listBlocks().size());
  });
}

DataNode::~DataNode() { stop(); }

bool DataNode::running() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return running_;
}

void DataNode::start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (running_) return;
    if (!port_bound_) {
      installRpc();  // throws AlreadyExistsError on a ghost daemon's port
      port_bound_ = true;
    }
    running_ = true;
  }
  network_->setHostUp(host_, true);
  // Offer co-located clients the short-circuit read path (HDFS-347).
  ShortCircuitRegistry::instance().publish(network_.get(), host_, store_);
  const uint64_t capacity = static_cast<uint64_t>(
      conf_.getInt("dfs.datanode.capacity", 1'073'741'824));
  namenode_.registerDataNode(capacity,
                             conf_.get("dfs.datanode.rack", "/default-rack"));
  blockReportNow();

  const auto interval = std::chrono::milliseconds(
      conf_.getInt("dfs.heartbeat.interval.ms", 100));
  heartbeat_thread_ = std::jthread([this, interval](std::stop_token token) {
    while (!token.stop_requested()) {
      interruptibleSleep(token, interval);
      if (token.stop_requested()) return;
      try {
        heartbeatNow();
      } catch (const NetworkError&) {
        // NameNode unreachable; keep beating until it returns.
      } catch (const std::exception& e) {
        logWarn(kLog) << host_ << " heartbeat error: " << e.what();
      }
    }
  });
  logInfo(kLog) << host_ << " started, "
                << store_->listBlocks().size() << " replicas";
}

void DataNode::stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (!running_ && !port_bound_) return;
    running_ = false;
  }
  ShortCircuitRegistry::instance().withdraw(network_.get(), host_);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (port_bound_) {
      network_->unbind(host_, kDataNodePort);
      port_bound_ = false;
    }
  }
  logInfo(kLog) << host_ << " stopped";
}

void DataNode::abandon() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    running_ = false;
  }
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  // The port stays bound: the ghost daemon from the paper.
  logWarn(kLog) << host_ << " abandoned (port still bound)";
}

void DataNode::crash() {
  // A dead process serves no fds: local readers lose short-circuit too.
  ShortCircuitRegistry::instance().withdraw(network_.get(), host_);
  network_->setHostUp(host_, false);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    running_ = false;
  }
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  logWarn(kLog) << host_ << " crashed";
}

void DataNode::heartbeatNow() {
  const uint64_t capacity = static_cast<uint64_t>(
      conf_.getInt("dfs.datanode.capacity", 1'073'741'824));
  const HeartbeatReply reply = namenode_.heartbeat(
      capacity, store_->usedBytes(), store_->listBlocks().size());
  if (reply.reregister) {
    namenode_.registerDataNode(capacity,
                               conf_.get("dfs.datanode.rack", "/default-rack"));
    blockReportNow();
    return;
  }
  if (reply.request_block_report) blockReportNow();
  for (const DataNodeCommand& command : reply.commands) {
    executeCommand(command);
  }
}

void DataNode::blockReportNow() {
  std::vector<Block> report;
  for (const BlockId id : store_->listBlocks()) {
    report.push_back({id, store_->blockSize(id)});
  }
  for (const BlockId id : namenode_.blockReport(report)) {
    store_->deleteBlock(id);
  }
}

std::vector<BlockId> DataNode::runBlockScanner() {
  const auto bad = store_->scanAll();
  for (const BlockId id : bad) {
    logWarn(kLog) << host_ << " scanner found corrupt replica of block " << id;
    namenode_.reportBadBlock(id, host_);
  }
  return bad;
}

void DataNode::executeCommand(const DataNodeCommand& command) {
  switch (command.kind) {
    case DataNodeCommand::Kind::kDelete:
      store_->deleteBlock(command.block);
      deletes_->add();
      break;
    case DataNodeCommand::Kind::kReplicate:
      replicateTo(command.block, command.targets);
      break;
  }
}

void DataNode::replicateTo(BlockId block,
                           const std::vector<std::string>& targets) {
  TraceSpan span(tracer_, "datanode." + host_, "REPLICATE");
  span.arg("block", std::to_string(block));
  // Ship the replica in its STORED form: compressed frames replicate
  // without a decode/re-encode round trip, and the per-frame CRCs travel
  // with the bytes.
  StoredReplica replica;
  try {
    replica = store_->readStored(block);
  } catch (const ChecksumError&) {
    namenode_.reportBadBlock(block, host_);
    return;
  } catch (const NotFoundError&) {
    return;  // replica vanished; NameNode will reschedule elsewhere
  }
  const bool stored = replica.codec != CodecKind::kNone;
  for (const std::string& target : targets) {
    try {
      network_->call(host_, target, kDataNodePort, "writeBlock",
                     pack(Block{block, replica.raw_size},
                          replica.stored.view(), std::vector<std::string>{},
                          stored),
                     "replication");
      replications_->add();
    } catch (const NetworkError& e) {
      logWarn(kLog) << host_ << " replication of block " << block << " to "
                    << target << " failed: " << e.what();
    }
  }
}

void DataNode::installRpc() {
  // Buffer endpoint: readBlock replies are views of the store's replica
  // buffers — a zero-copy caller (DfsClient) receives them uncopied, and a
  // legacy call() materializes them once at the fabric boundary.
  network_->bindBuf(host_, kDataNodePort, [this](const net::BufRpcRequest& req)
                                              -> BufferView {
    if (req.method == "writeBlock") {
      // string_view unpack: the payload stays inside the request buffer
      // until the store copies it into a fresh replica. `stored` marks a
      // payload already in its resident (framed) form — the replication /
      // pipeline path — which is adopted byte-for-byte, never re-encoded.
      auto [block, data, downstream, stored] =
          unpack<Block, std::string_view, std::vector<std::string>, bool>(
              req.body.view());
      if (stored) {
        store_->adoptStored(block.id, data);
      } else {
        store_->writeBlock(block.id, data);
      }
      blocks_written_->add();
      bytes_written_->add(static_cast<int64_t>(data.size()));
      // Raw counts the logical payload; compressed counts resident bytes
      // only for encoded replicas, so the pair reads as a codec ratio and
      // stays silent when the seam is off.
      block_raw_bytes_->add(static_cast<int64_t>(block.size));
      const uint64_t resident = store_->storedSize(block.id);
      if (resident != block.size || store_->codec() != CodecKind::kNone) {
        block_compressed_bytes_->add(static_cast<int64_t>(resident));
      }
      if (tracer_->enabled()) {
        tracer_->instant("datanode." + host_,
                         "WRITE_BLOCK blk_" + std::to_string(block.id),
                         {{"bytes", std::to_string(data.size())}});
      }
      namenode_.blockReceived(Block{block.id, block.size});
      if (!downstream.empty()) {
        const std::string next = downstream.front();
        downstream.erase(downstream.begin());
        try {
          network_->call(host_, next, kDataNodePort, "writeBlock",
                         pack(block, data, downstream, stored), "pipeline");
        } catch (const NetworkError& e) {
          // Pipeline recovery: the block lands under-replicated and the
          // NameNode's monitor repairs it later.
          logWarn(kLog) << host_ << " pipeline to " << next
                        << " failed: " << e.what();
        }
      }
      return {};
    }
    if (req.method == "readBlock") {
      const auto [id, offset, len] =
          unpack<uint64_t, uint64_t, uint64_t>(req.body.view());
      try {
        BufferView data = store_->readBlockRange(id, offset, len);
        blocks_read_->add();
        bytes_read_->add(static_cast<int64_t>(data.size()));
        if (tracer_->enabled()) {
          tracer_->instant("datanode." + host_,
                           "READ_BLOCK blk_" + std::to_string(id),
                           {{"bytes", std::to_string(data.size())}});
        }
        return data;
      } catch (const ChecksumError&) {
        namenode_.reportBadBlock(id, host_);
        throw;
      }
    }
    if (req.method == "scan") {
      return BufferView(Buffer::fromString(pack(runBlockScanner())));
    }
    throw InvalidArgumentError("datanode: unknown RPC method " + req.method);
  });
}

}  // namespace mh::hdfs
