#include "mh/hdfs/dfs_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/trace.h"
#include "mh/hdfs/short_circuit.h"
#include "mh/net/fault_plan.h"

namespace mh::hdfs {

namespace {
constexpr const char* kLog = "dfsclient";
}  // namespace

DfsClient::DfsClient(Config conf, std::shared_ptr<net::Network> network,
                     std::string client_host, std::string namenode_host)
    : conf_(std::move(conf)),
      network_(network),
      namenode_(std::move(network), std::move(client_host),
                std::move(namenode_host)) {
  short_circuit_ = conf_.getBool("dfs.client.read.shortcircuit", false);
  short_circuit_reads_ =
      &network_->metrics().child("dfsclient").counter("short.circuit.reads");
}

void DfsClient::writeFile(const std::string& path, std::string_view data,
                          uint16_t replication, uint64_t block_size) {
  // One span per file write; the per-block writeBlock RPC spans (and any
  // replication pipeline work on the DataNodes) nest under it.
  TraceCollector& tracer = network_->tracer();
  const bool traced = tracer.enabled();
  TraceSpan write_span(&tracer,
                       traced ? "dfsclient." + namenode_.localHost() : "",
                       traced ? "DFS_WRITE " + path : "");
  if (traced) {
    write_span.arg("bytes", std::to_string(data.size()));
    write_span.arg("replication", std::to_string(replication));
  }
  namenode_.create(path, replication, block_size);
  const uint64_t bs = namenode_.getFileStatus(path).block_size;

  uint64_t offset = 0;
  do {  // empty files still produce zero blocks; loop handles data.size()==0
    const uint64_t chunk = std::min<uint64_t>(bs, data.size() - offset);
    if (data.size() > 0) {
      const std::string_view payload = data.substr(offset, chunk);
      const LocatedBlock located = namenode_.addBlock(path);
      if (located.hosts.empty()) {
        throw IoError("no targets for block of " + path);
      }
      // Head of the pipeline gets the data plus the downstream target list.
      std::vector<std::string> downstream(located.hosts.begin() + 1,
                                          located.hosts.end());
      bool written = false;
      for (size_t head = 0; head < located.hosts.size() && !written; ++head) {
        try {
          network_->call(namenode_.localHost(), located.hosts[head],
                         kDataNodePort, "writeBlock",
                         pack(Block{located.block.id, payload.size()},
                              payload, downstream, /*stored=*/false),
                         "pipeline");
          written = true;
        } catch (const NetworkError& e) {
          logWarn(kLog) << "pipeline head " << located.hosts[head]
                        << " failed: " << e.what();
          if (!downstream.empty()) downstream.erase(downstream.begin());
        }
      }
      if (!written) {
        throw IoError("all pipeline targets failed for block " +
                      std::to_string(located.block.id) + " of " + path);
      }
    }
    offset += chunk;
  } while (offset < data.size());

  namenode_.completeFile(path);
}

std::vector<LocatedBlock> DfsClient::getBlockLocations(
    const std::string& path) {
  return namenode_.getBlockLocations(path);
}

std::vector<std::string> DfsClient::orderByLocality(
    std::vector<std::string> hosts) const {
  const auto it =
      std::find(hosts.begin(), hosts.end(), namenode_.localHost());
  if (it != hosts.end()) {
    std::iter_swap(hosts.begin(), it);
  }
  return hosts;
}

std::optional<BufferView> DfsClient::tryShortCircuitRead(
    const LocatedBlock& located, uint64_t offset, uint64_t len) {
  if (!short_circuit_) return std::nullopt;
  const std::string& local = namenode_.localHost();
  if (std::find(located.hosts.begin(), located.hosts.end(), local) ==
      located.hosts.end()) {
    return std::nullopt;
  }
  // A crashed DataNode serves no file descriptors, and a host fenced into
  // its own partition keeps its replicas to itself — mirror the RPC path's
  // reachability rules before touching the store.
  if (!network_->hostUp(local)) return std::nullopt;
  if (const auto plan = network_->faultPlan();
      plan != nullptr && plan->partitioned(local, local)) {
    return std::nullopt;
  }
  const std::shared_ptr<BlockStore> store =
      ShortCircuitRegistry::instance().lookup(network_.get(), local);
  if (store == nullptr) return std::nullopt;
  try {
    BufferView data = store->readBlockRange(located.block.id, offset, len);
    short_circuit_reads_->add();
    TraceCollector& tracer = network_->tracer();
    if (tracer.enabled()) {
      tracer.instant(
          "dfsclient." + local,
          "SHORT_CIRCUIT_READ blk_" + std::to_string(located.block.id),
          {{"bytes", std::to_string(data.size())}});
    }
    return data;
  } catch (const ChecksumError&) {
    // Same report a failed RPC read would have produced; the replica sweep
    // below falls over to the remote copies.
    namenode_.reportBadBlock(located.block.id, local);
    return std::nullopt;
  } catch (const NotFoundError&) {
    return std::nullopt;  // replica vanished between locate and read
  }
}

BufferView DfsClient::readBlockRange(const LocatedBlock& located,
                                     uint64_t offset, uint64_t len) {
  // One span per block read; SHORT_CIRCUIT_READ instants and readBlock
  // RPC spans (handled on the caller's thread) nest under it.
  TraceCollector& tracer = network_->tracer();
  const bool traced = tracer.enabled();
  TraceSpan read_span(
      &tracer, traced ? "dfsclient." + namenode_.localHost() : "",
      traced ? "DFS_READ blk_" + std::to_string(located.block.id) : "");
  if (traced) read_span.arg("len", std::to_string(len));
  if (std::optional<BufferView> local =
          tryShortCircuitRead(located, offset, len)) {
    return *std::move(local);
  }
  const auto hosts = orderByLocality(located.hosts);
  if (hosts.empty()) {
    throw IoError("block " + std::to_string(located.block.id) +
                  " has no live replicas");
  }
  // Reads are idempotent, so a transient fault (dropped RPC, rebooting
  // DataNode) is worth a few bounded-backoff sweeps over the replica set
  // before giving up. Mutating namenode RPCs are deliberately NOT retried
  // here — they are not idempotent.
  const auto sweeps =
      std::max<int64_t>(1, conf_.getInt("dfs.client.retries", 3));
  const int64_t backoff_ms = conf_.getInt("dfs.client.retry.backoff.ms", 5);
  const int64_t backoff_max_ms =
      conf_.getInt("dfs.client.retry.backoff.max.ms", 200);
  std::string last_error;
  for (int64_t sweep = 0; sweep < sweeps; ++sweep) {
    if (sweep > 0) {
      const int64_t delay =
          std::min(backoff_max_ms, backoff_ms << std::min<int64_t>(sweep, 20));
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }
    for (const std::string& host : hosts) {
      try {
        return network_->callBuf(
            namenode_.localHost(), host, kDataNodePort, "readBlock",
            BufferView(Buffer::fromString(
                pack(static_cast<uint64_t>(located.block.id), offset, len))),
            "read");
      } catch (const ChecksumError& e) {
        // The DataNode already reported itself; also report from our side
        // and fall over to the next replica.
        namenode_.reportBadBlock(located.block.id, host);
        last_error = e.what();
      } catch (const NetworkError& e) {
        last_error = e.what();
      }
    }
  }
  throw IoError("could not read block " + std::to_string(located.block.id) +
                " from any replica: " + last_error);
}

std::vector<BufferView> DfsClient::readFileViews(const std::string& path) {
  const auto status = namenode_.getFileStatus(path);
  if (status.is_dir) throw InvalidArgumentError("is a directory: " + path);
  const std::vector<LocatedBlock> blocks = namenode_.getBlockLocations(path);
  const size_t n = blocks.size();
  std::vector<BufferView> parts(n);

  // Fetch block ranges in parallel (each block still walks its replicas
  // best-first with checksum fallover inside readBlockRange), then
  // assemble in block order.
  const auto copies = static_cast<size_t>(
      std::max<int64_t>(1, conf_.getInt("dfs.client.parallel.reads", 4)));
  const size_t workers = std::min(n, copies);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      parts[i] = readBlockRange(blocks[i], 0, blocks[i].block.size);
    }
  } else {
    // Distinct slots are written by distinct fetches; no lock needed. The
    // lowest-index failure is reported, matching the serial path.
    std::vector<std::unique_ptr<std::string>> errors(n);
    std::atomic<size_t> next{0};
    // Reader threads inherit the caller's causal context so their
    // DFS_READ spans stay children of the enclosing task/job span.
    const TraceContext read_ctx = currentTraceContext();
    const auto read_loop = [&] {
      const TraceContextScope trace_scope(read_ctx);
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          parts[i] = readBlockRange(blocks[i], 0, blocks[i].block.size);
        } catch (const std::exception& e) {
          errors[i] = std::make_unique<std::string>(e.what());
        }
      }
    };
    {
      std::vector<std::jthread> readers;
      readers.reserve(workers);
      for (size_t t = 0; t < workers; ++t) readers.emplace_back(read_loop);
    }
    for (size_t i = 0; i < n; ++i) {
      if (errors[i] != nullptr) throw IoError(*errors[i]);
    }
  }
  return parts;
}

Bytes DfsClient::readFile(const std::string& path) {
  const std::vector<BufferView> parts = readFileViews(path);
  size_t total = 0;
  for (const BufferView& part : parts) total += part.size();
  Bytes out;
  out.reserve(total);
  for (const BufferView& part : parts) out.append(part.view());
  return out;
}

}  // namespace mh::hdfs
