#include "mh/hdfs/short_circuit.h"

namespace mh::hdfs {

ShortCircuitRegistry& ShortCircuitRegistry::instance() {
  static ShortCircuitRegistry registry;
  return registry;
}

void ShortCircuitRegistry::publish(const net::Network* fabric,
                                   const std::string& host,
                                   std::weak_ptr<BlockStore> store) {
  std::lock_guard<std::mutex> lock(mutex_);
  stores_[{fabric, host}] = std::move(store);
}

void ShortCircuitRegistry::withdraw(const net::Network* fabric,
                                    const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  stores_.erase({fabric, host});
}

std::shared_ptr<BlockStore> ShortCircuitRegistry::lookup(
    const net::Network* fabric, const std::string& host) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stores_.find({fabric, host});
  return it == stores_.end() ? nullptr : it->second.lock();
}

}  // namespace mh::hdfs
