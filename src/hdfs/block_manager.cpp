#include "mh/hdfs/block_manager.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "mh/common/error.h"

namespace mh::hdfs {

namespace {

/// Weighted-random draw from `pool` restricted by `admit`; removes and
/// returns the pick, or nullopt when nothing qualifies.
std::optional<PlacementCandidate> drawWhere(
    std::vector<PlacementCandidate>& pool, Rng& rng,
    const std::function<bool(const PlacementCandidate&)>& admit) {
  uint64_t total_weight = 0;
  for (const auto& c : pool) {
    if (admit(c)) total_weight += c.free_bytes + 1;
  }
  if (total_weight == 0) return std::nullopt;
  uint64_t pick = rng.uniform(total_weight);
  for (size_t idx = 0; idx < pool.size(); ++idx) {
    if (!admit(pool[idx])) continue;
    const uint64_t w = pool[idx].free_bytes + 1;
    if (pick < w) {
      PlacementCandidate chosen = pool[idx];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(idx));
      return chosen;
    }
    pick -= w;
  }
  return std::nullopt;  // unreachable
}

}  // namespace

std::vector<std::string> choosePlacement(
    const std::vector<PlacementCandidate>& candidates, size_t count,
    const std::string& preferred, const std::set<std::string>& exclude,
    Rng& rng) {
  std::vector<std::string> chosen;
  std::vector<PlacementCandidate> pool;
  std::string first_rack;
  std::string second_rack;

  for (const auto& c : candidates) {
    if (exclude.contains(c.host)) continue;
    if (chosen.empty() && !preferred.empty() && c.host == preferred) {
      chosen.push_back(c.host);
      first_rack = c.rack;
      continue;
    }
    pool.push_back(c);
  }
  const auto any = [](const PlacementCandidate&) { return true; };

  while (chosen.size() < count && !pool.empty()) {
    std::optional<PlacementCandidate> pick;
    if (chosen.empty()) {
      // No writer-local replica: first target is unconstrained.
      pick = drawWhere(pool, rng, any);
      if (pick) first_rack = pick->rack;
    } else if (chosen.size() == 1 && !first_rack.empty()) {
      // Second replica: a different rack than the first, if the topology
      // has one.
      pick = drawWhere(pool, rng, [&](const PlacementCandidate& c) {
        return c.rack != first_rack;
      });
      if (!pick) pick = drawWhere(pool, rng, any);
      if (pick) second_rack = pick->rack;
    } else if (chosen.size() == 2 && !second_rack.empty()) {
      // Third replica: same rack as the second (bounds inter-rack copies).
      pick = drawWhere(pool, rng, [&](const PlacementCandidate& c) {
        return c.rack == second_rack;
      });
      if (!pick) pick = drawWhere(pool, rng, any);
    } else {
      pick = drawWhere(pool, rng, any);
    }
    if (!pick) break;
    chosen.push_back(pick->host);
  }
  return chosen;
}

Block BlockManager::allocateBlock(uint16_t replication) {
  if (replication == 0) throw InvalidArgumentError("replication must be >= 1");
  Block block;
  block.id = next_id_++;
  block.size = 0;
  BlockInfo info;
  info.replication = replication;
  blocks_.emplace(block.id, std::move(info));
  return block;
}

void BlockManager::registerBlock(Block block, uint16_t replication) {
  BlockInfo info;
  info.size = block.size;
  info.replication = replication;
  blocks_[block.id] = std::move(info);
  next_id_ = std::max(next_id_, block.id + 1);
}

void BlockManager::reserveBlockIds(BlockId max_seen) {
  next_id_ = std::max(next_id_, max_seen + 1);
}

void BlockManager::commitBlock(BlockId id, uint64_t size) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    throw NotFoundError("block " + std::to_string(id));
  }
  it->second.size = size;
}

void BlockManager::removeBlock(BlockId id) { blocks_.erase(id); }

bool BlockManager::contains(BlockId id) const { return blocks_.contains(id); }

const BlockManager::BlockInfo& BlockManager::info(BlockId id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    throw NotFoundError("block " + std::to_string(id));
  }
  return it->second;
}

void BlockManager::addReplica(BlockId id, const std::string& host) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return;  // stale report for a deleted block
  it->second.live.insert(host);
  it->second.corrupt.erase(host);  // a fresh replica supersedes corruption
}

void BlockManager::removeReplica(BlockId id, const std::string& host) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  it->second.live.erase(host);
  it->second.corrupt.erase(host);
}

std::vector<BlockId> BlockManager::removeAllReplicasOn(
    const std::string& host) {
  std::vector<BlockId> affected;
  for (auto& [id, info] : blocks_) {
    if (info.live.erase(host) > 0) affected.push_back(id);
    info.corrupt.erase(host);
  }
  std::sort(affected.begin(), affected.end());
  return affected;
}

void BlockManager::markCorrupt(BlockId id, const std::string& host) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return;
  if (it->second.live.erase(host) > 0 || !it->second.corrupt.contains(host)) {
    it->second.corrupt.insert(host);
  }
}

bool BlockManager::isCorrupt(BlockId id, const std::string& host) const {
  const auto it = blocks_.find(id);
  return it != blocks_.end() && it->second.corrupt.contains(host);
}

std::vector<std::string> BlockManager::liveReplicas(BlockId id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return {};
  return {it->second.live.begin(), it->second.live.end()};
}

std::vector<std::string> BlockManager::corruptReplicas(BlockId id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return {};
  return {it->second.corrupt.begin(), it->second.corrupt.end()};
}

uint16_t BlockManager::expectedReplication(BlockId id) const {
  return info(id).replication;
}

void BlockManager::setExpectedReplication(BlockId id, uint16_t replication) {
  if (replication == 0) throw InvalidArgumentError("replication must be >= 1");
  const auto it = blocks_.find(id);
  if (it != blocks_.end()) it->second.replication = replication;
}

uint64_t BlockManager::blockSize(BlockId id) const { return info(id).size; }

std::vector<BlockId> BlockManager::underReplicated() const {
  std::vector<BlockId> out;
  for (const auto& [id, info] : blocks_) {
    if (!info.live.empty() && info.live.size() < info.replication) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> BlockManager::overReplicated() const {
  std::vector<BlockId> out;
  for (const auto& [id, info] : blocks_) {
    if (info.live.size() > info.replication) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> BlockManager::missing() const {
  std::vector<BlockId> out;
  for (const auto& [id, info] : blocks_) {
    if (info.live.empty()) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<BlockId> BlockManager::withCorruptReplicas() const {
  std::vector<BlockId> out;
  for (const auto& [id, info] : blocks_) {
    if (!info.corrupt.empty()) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t BlockManager::reportedBlocks() const {
  uint64_t n = 0;
  for (const auto& [id, info] : blocks_) {
    if (!info.live.empty()) ++n;
  }
  return n;
}

}  // namespace mh::hdfs
