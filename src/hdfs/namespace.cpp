#include "mh/hdfs/namespace.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh::hdfs {

namespace {

int64_t nowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<std::string> parsePath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    throw InvalidArgumentError("path must be absolute: '" + std::string(path) +
                               "'");
  }
  std::vector<std::string> parts;
  for (const auto& part : splitString(path.substr(1), '/')) {
    if (part.empty()) continue;  // collapse duplicate slashes
    if (part == "." || part == "..") {
      throw InvalidArgumentError("path may not contain '.' or '..': " +
                                 std::string(path));
    }
    parts.push_back(part);
  }
  return parts;
}

std::string normalizePath(std::string_view path) {
  const auto parts = parsePath(path);
  if (parts.empty()) return "/";
  std::string out;
  for (const auto& part : parts) {
    out.push_back('/');
    out.append(part);
  }
  return out;
}

Namespace::Namespace() : root_(std::make_unique<INode>()) {
  root_->name = "/";
  root_->is_dir = true;
  root_->mtime_ms = nowMillis();
}

const Namespace::INode* Namespace::find(std::string_view path) const {
  const INode* node = root_.get();
  for (const auto& part : parsePath(path)) {
    if (!node->is_dir) return nullptr;
    const auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

Namespace::INode* Namespace::find(std::string_view path) {
  return const_cast<INode*>(std::as_const(*this).find(path));
}

Namespace::INode* Namespace::findFile(std::string_view path) {
  INode* node = find(path);
  if (node == nullptr) {
    throw NotFoundError("no such file: " + std::string(path));
  }
  if (node->is_dir) {
    throw InvalidArgumentError("is a directory: " + std::string(path));
  }
  return node;
}

const Namespace::INode* Namespace::findFile(std::string_view path) const {
  return const_cast<Namespace*>(this)->findFile(path);
}

Namespace::INode* Namespace::ensureDirs(const std::vector<std::string>& parts,
                                        size_t count) {
  INode* node = root_.get();
  for (size_t i = 0; i < count; ++i) {
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) {
      auto child = std::make_unique<INode>();
      child->name = parts[i];
      child->is_dir = true;
      child->mtime_ms = nowMillis();
      const std::string_view key = child->name;  // interned: view into inode
      it = node->children.emplace(key, std::move(child)).first;
      ++dir_count_;
    } else if (!it->second->is_dir) {
      throw AlreadyExistsError("not a directory: " + parts[i]);
    }
    node = it->second.get();
  }
  return node;
}

void Namespace::mkdirs(std::string_view path) {
  const auto parts = parsePath(path);
  ensureDirs(parts, parts.size());
}

void Namespace::createFile(std::string_view path, uint16_t replication,
                           uint64_t block_size) {
  if (replication == 0) throw InvalidArgumentError("replication must be >= 1");
  if (block_size == 0) throw InvalidArgumentError("block size must be >= 1");
  const auto parts = parsePath(path);
  if (parts.empty()) throw InvalidArgumentError("cannot create file at /");
  INode* parent = ensureDirs(parts, parts.size() - 1);
  if (parent->children.contains(parts.back())) {
    throw AlreadyExistsError("path exists: " + std::string(path));
  }
  auto file = std::make_unique<INode>();
  file->name = parts.back();
  file->is_dir = false;
  file->replication = replication;
  file->block_size = block_size;
  file->mtime_ms = nowMillis();
  const std::string_view key = file->name;
  parent->children.emplace(key, std::move(file));
  ++file_count_;
}

void Namespace::addBlock(std::string_view path, Block block) {
  INode* file = findFile(path);
  if (file->complete) {
    throw IllegalStateError("file is complete: " + std::string(path));
  }
  file->blocks.push_back(block);
  file->mtime_ms = nowMillis();
}

void Namespace::completeFile(std::string_view path) {
  INode* file = findFile(path);
  file->complete = true;
  file->mtime_ms = nowMillis();
}

bool Namespace::isComplete(std::string_view path) const {
  return findFile(path)->complete;
}

bool Namespace::exists(std::string_view path) const {
  return find(path) != nullptr;
}

bool Namespace::isDirectory(std::string_view path) const {
  const INode* node = find(path);
  return node != nullptr && node->is_dir;
}

uint64_t Namespace::fileLength(const INode& node) {
  uint64_t total = 0;
  for (const Block& block : node.blocks) total += block.size;
  return total;
}

FileStatus Namespace::statusOf(const INode& node, std::string path) {
  FileStatus status;
  status.path = std::move(path);
  status.is_dir = node.is_dir;
  status.mtime_ms = node.mtime_ms;
  if (!node.is_dir) {
    status.length = fileLength(node);
    status.replication = node.replication;
    status.block_size = node.block_size;
  }
  return status;
}

FileStatus Namespace::getFileStatus(std::string_view path) const {
  const INode* node = find(path);
  if (node == nullptr) {
    throw NotFoundError("no such path: " + std::string(path));
  }
  return statusOf(*node, normalizePath(path));
}

std::vector<FileStatus> Namespace::listStatus(std::string_view path) const {
  const INode* node = find(path);
  if (node == nullptr) {
    throw NotFoundError("no such path: " + std::string(path));
  }
  const std::string base = normalizePath(path);
  std::vector<FileStatus> out;
  if (!node->is_dir) {
    out.push_back(statusOf(*node, base));
    return out;
  }
  for (const auto& [name, child] : node->children) {
    out.push_back(statusOf(
        *child, base == "/" ? "/" + child->name : base + "/" + child->name));
  }
  return out;
}

const std::vector<Block>& Namespace::fileBlocks(std::string_view path) const {
  return findFile(path)->blocks;
}

void Namespace::setFileBlocks(std::string_view path,
                              std::vector<Block> blocks) {
  findFile(path)->blocks = std::move(blocks);
}

void Namespace::setReplication(std::string_view path, uint16_t replication) {
  if (replication == 0) throw InvalidArgumentError("replication must be >= 1");
  findFile(path)->replication = replication;
}

std::vector<Block> Namespace::remove(std::string_view path, bool recursive) {
  const auto parts = parsePath(path);
  if (parts.empty()) throw InvalidArgumentError("cannot remove /");
  INode* parent = root_.get();
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    const auto it = parent->children.find(parts[i]);
    if (it == parent->children.end() || !it->second->is_dir) {
      throw NotFoundError("no such path: " + std::string(path));
    }
    parent = it->second.get();
  }
  const auto it = parent->children.find(parts.back());
  if (it == parent->children.end()) {
    throw NotFoundError("no such path: " + std::string(path));
  }
  INode* victim = it->second.get();
  if (victim->is_dir && !victim->children.empty() && !recursive) {
    throw IllegalStateError("directory not empty: " + std::string(path));
  }
  std::vector<Block> freed;
  // Collect freed blocks and fix counters over the whole subtree.
  std::vector<const INode*> stack{victim};
  while (!stack.empty()) {
    const INode* node = stack.back();
    stack.pop_back();
    if (node->is_dir) {
      --dir_count_;
      for (const auto& [name, child] : node->children) {
        stack.push_back(child.get());
      }
    } else {
      --file_count_;
      freed.insert(freed.end(), node->blocks.begin(), node->blocks.end());
    }
  }
  parent->children.erase(it);
  parent->mtime_ms = nowMillis();
  return freed;
}

void Namespace::rename(std::string_view from, std::string_view to) {
  const auto from_parts = parsePath(from);
  const auto to_parts = parsePath(to);
  if (from_parts.empty()) throw InvalidArgumentError("cannot rename /");
  if (to_parts.empty()) throw InvalidArgumentError("cannot rename onto /");
  if (exists(to)) throw AlreadyExistsError("destination exists: " + std::string(to));

  INode* from_parent = root_.get();
  for (size_t i = 0; i + 1 < from_parts.size(); ++i) {
    const auto it = from_parent->children.find(from_parts[i]);
    if (it == from_parent->children.end() || !it->second->is_dir) {
      throw NotFoundError("no such path: " + std::string(from));
    }
    from_parent = it->second.get();
  }
  const auto from_it = from_parent->children.find(from_parts.back());
  if (from_it == from_parent->children.end()) {
    throw NotFoundError("no such path: " + std::string(from));
  }

  std::string to_parent_path = "/";
  for (size_t i = 0; i + 1 < to_parts.size(); ++i) {
    to_parent_path += to_parts[i];
    if (i + 2 < to_parts.size()) to_parent_path += "/";
  }
  INode* to_parent = find(to_parent_path);
  if (to_parent == nullptr || !to_parent->is_dir) {
    throw NotFoundError("destination parent missing: " + to_parent_path);
  }

  auto node = std::move(from_it->second);
  from_parent->children.erase(from_it);
  node->name = to_parts.back();
  node->mtime_ms = nowMillis();
  const std::string_view key = node->name;
  to_parent->children.emplace(key, std::move(node));
}

void Namespace::collectFiles(const INode& node, const std::string& prefix,
                             std::vector<std::string>& out) const {
  if (!node.is_dir) {
    out.push_back(prefix);
    return;
  }
  for (const auto& [name, child] : node.children) {
    collectFiles(
        *child, prefix == "/" ? "/" + child->name : prefix + "/" + child->name,
        out);
  }
}

std::vector<std::string> Namespace::listFilesRecursive(
    std::string_view path) const {
  const INode* node = find(path);
  if (node == nullptr) {
    throw NotFoundError("no such path: " + std::string(path));
  }
  std::vector<std::string> out;
  collectFiles(*node, normalizePath(path), out);
  std::sort(out.begin(), out.end());
  return out;
}

void Namespace::saveNode(const INode& node, ByteWriter& w) {
  w.writeBytes(node.name);
  w.writeBool(node.is_dir);
  w.writeVarI64(node.mtime_ms);
  if (node.is_dir) {
    w.writeVarU64(node.children.size());
    for (const auto& [name, child] : node.children) saveNode(*child, w);
  } else {
    w.writeVarU64(node.replication);
    w.writeVarU64(node.block_size);
    w.writeBool(node.complete);
    w.writeVarU64(node.blocks.size());
    for (const Block& block : node.blocks) {
      w.writeVarU64(block.id);
      w.writeVarU64(block.size);
    }
  }
}

std::unique_ptr<Namespace::INode> Namespace::loadNode(ByteReader& r,
                                                      uint64_t& files,
                                                      uint64_t& dirs) {
  auto node = std::make_unique<INode>();
  node->name = r.readString();
  node->is_dir = r.readBool();
  node->mtime_ms = r.readVarI64();
  if (node->is_dir) {
    ++dirs;
    const uint64_t n = r.readVarU64();
    for (uint64_t i = 0; i < n; ++i) {
      auto child = loadNode(r, files, dirs);
      const std::string_view key = child->name;
      node->children.emplace(key, std::move(child));
    }
  } else {
    ++files;
    node->replication = static_cast<uint16_t>(r.readVarU64());
    node->block_size = r.readVarU64();
    node->complete = r.readBool();
    const uint64_t n = r.readVarU64();
    node->blocks.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      Block block;
      block.id = r.readVarU64();
      block.size = r.readVarU64();
      node->blocks.push_back(block);
    }
  }
  return node;
}

Bytes Namespace::saveImage() const {
  Bytes out;
  ByteWriter w(out);
  saveNode(*root_, w);
  return out;
}

Namespace Namespace::loadImage(std::string_view image) {
  ByteReader r(image);
  Namespace ns;
  uint64_t files = 0;
  uint64_t dirs = 0;
  ns.root_ = loadNode(r, files, dirs);
  if (!r.atEnd()) {
    throw InvalidArgumentError(
        "trailing bytes in fsimage: tree ended at byte " +
        std::to_string(r.position()) + " of " + std::to_string(image.size()));
  }
  ns.file_count_ = files;
  ns.dir_count_ = dirs;
  return ns;
}

}  // namespace mh::hdfs
