#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/hdfs/types.h"

/// \file namespace.h
/// The NameNode's in-memory file system tree ("block metadata lives in
/// memory" — paper Figure 2). Pure data structure: no locking (the NameNode
/// serializes access under its namesystem lock) and no block-location
/// knowledge (that's the BlockManager's job).
///
/// Paths are absolute, '/'-separated, with no trailing slash except the
/// root "/" itself.

namespace mh::hdfs {

/// Splits and validates an absolute path into components.
/// Throws InvalidArgumentError for relative/empty/".."-containing paths.
std::vector<std::string> parsePath(std::string_view path);

/// Normalizes an absolute path (collapses duplicate slashes).
std::string normalizePath(std::string_view path);

class Namespace {
 public:
  Namespace();

  /// Creates a directory and any missing ancestors (mkdir -p).
  /// Throws AlreadyExistsError if the path names an existing *file*.
  void mkdirs(std::string_view path);

  /// Creates an empty, under-construction file. Parent directories are
  /// created as needed (Hadoop semantics for create()).
  /// Throws AlreadyExistsError if the path already exists.
  void createFile(std::string_view path, uint16_t replication,
                  uint64_t block_size);

  /// Appends a block to an under-construction file.
  void addBlock(std::string_view path, Block block);

  /// Marks a file complete; subsequent addBlock calls throw.
  void completeFile(std::string_view path);

  bool isComplete(std::string_view path) const;

  bool exists(std::string_view path) const;
  bool isDirectory(std::string_view path) const;

  FileStatus getFileStatus(std::string_view path) const;

  /// Children of a directory (or the file itself), sorted by name.
  std::vector<FileStatus> listStatus(std::string_view path) const;

  /// The file's blocks in order. Throws for directories.
  const std::vector<Block>& fileBlocks(std::string_view path) const;

  /// Replaces the file's block list (used at completeFile time to record
  /// finalized block sizes).
  void setFileBlocks(std::string_view path, std::vector<Block> blocks);

  /// Changes a file's target replication factor (hadoop fs -setrep).
  void setReplication(std::string_view path, uint16_t replication);

  /// Removes a file or directory. Non-empty directories require
  /// `recursive`. Returns every block freed by the removal.
  std::vector<Block> remove(std::string_view path, bool recursive);

  /// Moves a file or directory. Destination must not exist; destination
  /// parent must be an existing directory.
  void rename(std::string_view from, std::string_view to);

  /// Paths of all *files* under (and including) `path`, depth-first sorted.
  std::vector<std::string> listFilesRecursive(std::string_view path) const;

  uint64_t fileCount() const { return file_count_; }
  uint64_t directoryCount() const { return dir_count_; }

  /// Serializes the whole tree — the FsImage used to restart a NameNode.
  Bytes saveImage() const;

  /// Rebuilds a namespace from saveImage() output.
  static Namespace loadImage(std::string_view image);

 private:
  struct INode {
    std::string name;
    bool is_dir = false;
    int64_t mtime_ms = 0;
    // Directory state. Keys are views into each child's own `name` — the
    // string is stored once per inode (interning that matters at the
    // million-entry scale). Safe because inodes are heap-allocated behind
    // unique_ptr and a name only changes on rename, which erases and
    // re-inserts the entry.
    std::map<std::string_view, std::unique_ptr<INode>> children;
    // File state:
    std::vector<Block> blocks;
    uint16_t replication = 0;
    uint64_t block_size = 0;
    bool complete = false;
  };

  const INode* find(std::string_view path) const;
  INode* find(std::string_view path);
  INode* findFile(std::string_view path);
  const INode* findFile(std::string_view path) const;
  INode* ensureDirs(const std::vector<std::string>& parts, size_t count);
  static uint64_t fileLength(const INode& node);
  static FileStatus statusOf(const INode& node, std::string path);
  void collectFiles(const INode& node, const std::string& prefix,
                    std::vector<std::string>& out) const;
  static void saveNode(const INode& node, ByteWriter& w);
  static std::unique_ptr<INode> loadNode(ByteReader& r, uint64_t& files,
                                         uint64_t& dirs);

  std::unique_ptr<INode> root_;
  uint64_t file_count_ = 0;
  uint64_t dir_count_ = 1;  // root
};

}  // namespace mh::hdfs
