#pragma once

#include "mh/common/serde.h"
#include "mh/hdfs/types.h"

/// \file wire.h
/// Serde specializations for the HDFS control-plane types, so RPC bodies
/// can be marshalled with pack()/unpack(). Field order is the wire contract;
/// append-only evolution.

namespace mh {

template <>
struct Serde<hdfs::Block> {
  static void encode(ByteWriter& w, const hdfs::Block& v) {
    w.writeVarU64(v.id);
    w.writeVarU64(v.size);
  }
  static hdfs::Block decode(ByteReader& r) {
    hdfs::Block v;
    v.id = r.readVarU64();
    v.size = r.readVarU64();
    return v;
  }
};

template <>
struct Serde<hdfs::LocatedBlock> {
  static void encode(ByteWriter& w, const hdfs::LocatedBlock& v) {
    Serde<hdfs::Block>::encode(w, v.block);
    w.writeVarU64(v.offset);
    Serde<std::vector<std::string>>::encode(w, v.hosts);
  }
  static hdfs::LocatedBlock decode(ByteReader& r) {
    hdfs::LocatedBlock v;
    v.block = Serde<hdfs::Block>::decode(r);
    v.offset = r.readVarU64();
    v.hosts = Serde<std::vector<std::string>>::decode(r);
    return v;
  }
};

template <>
struct Serde<hdfs::FileStatus> {
  static void encode(ByteWriter& w, const hdfs::FileStatus& v) {
    w.writeBytes(v.path);
    w.writeBool(v.is_dir);
    w.writeVarU64(v.length);
    w.writeVarU64(v.replication);
    w.writeVarU64(v.block_size);
    w.writeVarI64(v.mtime_ms);
  }
  static hdfs::FileStatus decode(ByteReader& r) {
    hdfs::FileStatus v;
    v.path = r.readString();
    v.is_dir = r.readBool();
    v.length = r.readVarU64();
    v.replication = static_cast<uint16_t>(r.readVarU64());
    v.block_size = r.readVarU64();
    v.mtime_ms = r.readVarI64();
    return v;
  }
};

template <>
struct Serde<hdfs::DataNodeInfo> {
  static void encode(ByteWriter& w, const hdfs::DataNodeInfo& v) {
    w.writeBytes(v.host);
    w.writeBytes(v.rack);
    w.writeVarU64(v.capacity_bytes);
    w.writeVarU64(v.used_bytes);
    w.writeVarU64(v.num_blocks);
    w.writeVarI64(v.millis_since_heartbeat);
    w.writeBool(v.alive);
  }
  static hdfs::DataNodeInfo decode(ByteReader& r) {
    hdfs::DataNodeInfo v;
    v.host = r.readString();
    v.rack = r.readString();
    v.capacity_bytes = r.readVarU64();
    v.used_bytes = r.readVarU64();
    v.num_blocks = r.readVarU64();
    v.millis_since_heartbeat = r.readVarI64();
    v.alive = r.readBool();
    return v;
  }
};

template <>
struct Serde<hdfs::DataNodeCommand> {
  static void encode(ByteWriter& w, const hdfs::DataNodeCommand& v) {
    w.writeU8(static_cast<uint8_t>(v.kind));
    w.writeVarU64(v.block);
    Serde<std::vector<std::string>>::encode(w, v.targets);
  }
  static hdfs::DataNodeCommand decode(ByteReader& r) {
    hdfs::DataNodeCommand v;
    v.kind = static_cast<hdfs::DataNodeCommand::Kind>(r.readU8());
    v.block = r.readVarU64();
    v.targets = Serde<std::vector<std::string>>::decode(r);
    return v;
  }
};

template <>
struct Serde<hdfs::HeartbeatReply> {
  static void encode(ByteWriter& w, const hdfs::HeartbeatReply& v) {
    w.writeBool(v.reregister);
    w.writeBool(v.request_block_report);
    Serde<std::vector<hdfs::DataNodeCommand>>::encode(w, v.commands);
  }
  static hdfs::HeartbeatReply decode(ByteReader& r) {
    hdfs::HeartbeatReply v;
    v.reregister = r.readBool();
    v.request_block_report = r.readBool();
    v.commands = Serde<std::vector<hdfs::DataNodeCommand>>::decode(r);
    return v;
  }
};

template <>
struct Serde<hdfs::FsckReport> {
  static void encode(ByteWriter& w, const hdfs::FsckReport& v) {
    w.writeVarU64(v.total_files);
    w.writeVarU64(v.total_dirs);
    w.writeVarU64(v.total_bytes);
    w.writeVarU64(v.total_blocks);
    w.writeVarU64(v.min_replication_blocks);
    w.writeVarU64(v.under_replicated);
    w.writeVarU64(v.over_replicated);
    w.writeVarU64(v.corrupt_blocks);
    w.writeVarU64(v.missing_blocks);
    w.writeBool(v.healthy);
  }
  static hdfs::FsckReport decode(ByteReader& r) {
    hdfs::FsckReport v;
    v.total_files = r.readVarU64();
    v.total_dirs = r.readVarU64();
    v.total_bytes = r.readVarU64();
    v.total_blocks = r.readVarU64();
    v.min_replication_blocks = r.readVarU64();
    v.under_replicated = r.readVarU64();
    v.over_replicated = r.readVarU64();
    v.corrupt_blocks = r.readVarU64();
    v.missing_blocks = r.readVarU64();
    v.healthy = r.readBool();
    return v;
  }
};

}  // namespace mh
