#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/hdfs/types.h"

/// \file block_store.h
/// A DataNode's local replica storage. Replicas carry CRC-32C checksums per
/// 512-byte chunk (like HDFS's .meta sidecars); every read re-verifies and
/// throws ChecksumError on a mismatch, which is what drives the
/// corrupt-replica / re-replication machinery upstream.
///
/// Reads return refcounted BufferViews (buffer.h): MemBlockStore serves a
/// view of the resident replica itself — zero payload bytes move — while
/// FileBlockStore wraps the freshly read file. Replicas are immutable once
/// written; corruptBlock is copy-on-write so outstanding views never see a
/// mutation.
///
/// Two implementations: MemBlockStore (fast, used by most tests and the
/// mini-cluster) and FileBlockStore (blk_<id> + blk_<id>.meta files under a
/// root directory — the "physical view at the Linux FS" from the paper's
/// Figure 2).

namespace mh::hdfs {

/// Checksum chunk width, bytes.
inline constexpr size_t kChecksumChunk = 512;

/// Computes the per-chunk CRC vector for a replica payload.
std::vector<uint32_t> chunkChecksums(std::string_view data);

/// Verifies data against stored chunk CRCs; throws ChecksumError naming
/// `block_id` on the first mismatching chunk.
void verifyChunks(BlockId block_id, std::string_view data,
                  const std::vector<uint32_t>& crcs);

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Stores a replica; overwrites any previous replica of the same block.
  virtual void writeBlock(BlockId id, std::string_view data) = 0;

  /// Reads and checksum-verifies the whole replica, returned as a view of
  /// the store's (or a freshly loaded) buffer — no payload copy.
  /// Throws NotFoundError / ChecksumError.
  virtual BufferView readBlock(BlockId id) const = 0;

  /// Reads [offset, offset+len) after verifying the whole replica. A view
  /// of the same backing buffer (len clamps to the block end; an offset
  /// past the end throws InvalidArgumentError).
  BufferView readBlockRange(BlockId id, uint64_t offset, uint64_t len) const;

  virtual bool hasBlock(BlockId id) const = 0;
  virtual void deleteBlock(BlockId id) = 0;

  /// Replica size in bytes; throws NotFoundError.
  virtual uint64_t blockSize(BlockId id) const = 0;

  /// All stored block ids (sorted), as sent in block reports.
  virtual std::vector<BlockId> listBlocks() const = 0;

  /// Sum of replica payload bytes currently resident in the store. Shared
  /// buffers are charged once — outstanding read views never inflate this.
  virtual uint64_t usedBytes() const = 0;

  /// Verifies every replica's checksums; returns ids that fail. This is the
  /// periodic DataNode block scanner and the post-restart integrity check
  /// the paper reports taking 15 minutes on the real cluster.
  virtual std::vector<BlockId> scanAll() const = 0;

  /// Test/failure-injection hook: flips one byte of the stored payload
  /// without updating checksums. Throws NotFoundError. Copy-on-write:
  /// views handed out before the corruption keep seeing the clean bytes.
  virtual void corruptBlock(BlockId id, size_t byte_offset) = 0;
};

/// Replicas held in memory.
class MemBlockStore final : public BlockStore {
 public:
  void writeBlock(BlockId id, std::string_view data) override;
  BufferView readBlock(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

 private:
  struct Replica {
    Buffer data;
    std::vector<uint32_t> crcs;
    /// Set after the first successful read verification; later reads of the
    /// same resident buffer skip re-hashing. Any buffer swap (overwrite,
    /// corruption) resets it, so detection is never lost — and scanAll()
    /// (the block scanner) always verifies regardless.
    bool verified = false;
  };

  mutable std::mutex mutex_;
  /// mutable: const reads cache their verification verdict in the slot.
  mutable std::map<BlockId, Replica> replicas_;
  /// Running total of replica payload bytes (O(1) usedBytes; gauge reads
  /// never walk the map while the data path contends for the mutex).
  uint64_t used_bytes_ = 0;
};

/// Replicas as blk_<id> / blk_<id>.meta files under `root`.
class FileBlockStore final : public BlockStore {
 public:
  /// Creates `root` if needed; existing blk_* files are adopted (restart).
  explicit FileBlockStore(std::filesystem::path root);

  void writeBlock(BlockId id, std::string_view data) override;
  BufferView readBlock(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path dataPath(BlockId id) const;
  std::filesystem::path metaPath(BlockId id) const;
  std::vector<uint32_t> readMeta(BlockId id) const;

  std::filesystem::path root_;
  mutable std::mutex mutex_;
};

}  // namespace mh::hdfs
