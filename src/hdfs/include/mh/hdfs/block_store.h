#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/common/codec.h"
#include "mh/hdfs/types.h"

/// \file block_store.h
/// A DataNode's local replica storage. Replicas carry CRC-32C checksums per
/// 512-byte chunk (like HDFS's .meta sidecars); every read re-verifies and
/// throws ChecksumError on a mismatch, which is what drives the
/// corrupt-replica / re-replication machinery upstream.
///
/// Reads return refcounted BufferViews (buffer.h): MemBlockStore serves a
/// view of the resident replica itself — zero payload bytes move — while
/// FileBlockStore wraps the freshly read file. Replicas are immutable once
/// written; corruptBlock is copy-on-write so outstanding views never see a
/// mutation.
///
/// Compression (codec.h): when a codec is configured, writeBlock encodes
/// the payload into a framed stream and the store holds only the *stored*
/// (compressed) bytes — chunk checksums, the verified-once cache, usedBytes,
/// scanAll, and replication all operate on that resident form. readBlock
/// decodes into a fresh buffer; readBlockRange decodes only the frames
/// covering the range. blockSize always reports the RAW (logical) size the
/// namespace accounts in; storedSize reports the resident bytes.
///
/// Two implementations: MemBlockStore (fast, used by most tests and the
/// mini-cluster) and FileBlockStore (blk_<id> + blk_<id>.meta files under a
/// root directory — the "physical view at the Linux FS" from the paper's
/// Figure 2).

namespace mh::hdfs {

/// Checksum chunk width, bytes.
inline constexpr size_t kChecksumChunk = 512;

/// Computes the per-chunk CRC vector for a replica payload.
std::vector<uint32_t> chunkChecksums(std::string_view data);

/// Verifies data against stored chunk CRCs; throws ChecksumError naming
/// `block_id` on the first mismatching chunk.
void verifyChunks(BlockId block_id, std::string_view data,
                  const std::vector<uint32_t>& crcs);

/// A chunk-verified replica in its resident (possibly compressed) form.
struct StoredReplica {
  BufferView stored;       ///< the resident bytes, checksum-verified
  uint64_t raw_size = 0;   ///< logical payload size after decoding
  CodecKind codec = CodecKind::kNone;  ///< how `stored` is encoded
};

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Configures at-rest compression (`dfs.block.compression.codec`). Blocks
  /// written afterwards are stored as framed streams; blocks already stored
  /// raw remain readable. `metrics`/`trace` (optional) route the codec's
  /// encode/decode histograms and COMPRESS/DECOMPRESS spans.
  void configureCodec(CodecKind codec, MetricsRegistry* metrics = nullptr,
                      TraceCollector* trace = nullptr,
                      std::string component = "blockstore");
  CodecKind codec() const { return codec_; }

  /// Stores a replica of the RAW payload, encoding it first when a codec is
  /// configured; overwrites any previous replica of the same block.
  void writeBlock(BlockId id, std::string_view data);

  /// Adopts an already-encoded (or raw) replica byte-for-byte — the
  /// replication receive path, which must never re-encode. Framed payloads
  /// are structurally validated to recover the raw size; their per-frame
  /// CRCs still guard the payload end-to-end (chunk checksums are computed
  /// over the wire bytes, so corruption picked up in transit is caught at
  /// decode, not masked by a fresh local checksum).
  void adoptStored(BlockId id, std::string_view stored);

  /// Reads and verifies the replica in its resident form — compressed when
  /// the replica was stored with a codec. No payload copy. This is what
  /// replication ships. Throws NotFoundError / ChecksumError.
  virtual StoredReplica readStored(BlockId id) const = 0;

  /// Reads, checksum-verifies, and (when encoded) decodes the whole
  /// replica. Raw replicas are served as a view of the resident buffer —
  /// no payload copy; encoded replicas decode into a fresh buffer.
  /// Throws NotFoundError / ChecksumError, and IoError when the replica's
  /// codec disagrees with the configured one (an encoded replica must not
  /// be served as raw garbage).
  BufferView readBlock(BlockId id) const;

  /// Reads [offset, offset+len) after verifying the replica. For an
  /// encoded replica only the frames covering the range are decoded. len
  /// clamps to the block end; an offset past the end throws
  /// InvalidArgumentError.
  BufferView readBlockRange(BlockId id, uint64_t offset, uint64_t len) const;

  virtual bool hasBlock(BlockId id) const = 0;
  virtual void deleteBlock(BlockId id) = 0;

  /// RAW (logical) replica size in bytes — what the namespace accounts;
  /// throws NotFoundError.
  virtual uint64_t blockSize(BlockId id) const = 0;

  /// Resident (stored, possibly compressed) size in bytes; throws
  /// NotFoundError.
  virtual uint64_t storedSize(BlockId id) const = 0;

  /// All stored block ids (sorted), as sent in block reports.
  virtual std::vector<BlockId> listBlocks() const = 0;

  /// Sum of replica payload bytes currently resident in the store — the
  /// STORED form, so compressed replicas count their compressed size.
  /// Shared buffers are charged once — outstanding read views never
  /// inflate this.
  virtual uint64_t usedBytes() const = 0;

  /// Verifies every replica's checksums; returns ids that fail. This is the
  /// periodic DataNode block scanner and the post-restart integrity check
  /// the paper reports taking 15 minutes on the real cluster.
  virtual std::vector<BlockId> scanAll() const = 0;

  /// Test/failure-injection hook: flips one byte of the stored payload
  /// without updating checksums. Throws NotFoundError. Copy-on-write:
  /// views handed out before the corruption keep seeing the clean bytes.
  virtual void corruptBlock(BlockId id, size_t byte_offset) = 0;

 protected:
  /// Stores already-encoded bytes with their logical size and codec.
  virtual void putStored(BlockId id, std::string_view stored,
                         uint64_t raw_size, CodecKind codec) = 0;

  /// Enforces the configured-vs-replica codec policy; raw replicas are
  /// always acceptable (blocks written before compression was enabled).
  void checkReplicaCodec(BlockId id, CodecKind replica_codec) const;

  CodecKind codec_ = CodecKind::kNone;
  MetricsRegistry* codec_metrics_ = nullptr;
  TraceCollector* codec_trace_ = nullptr;
  std::string codec_component_ = "blockstore";
};

/// Replicas held in memory.
class MemBlockStore final : public BlockStore {
 public:
  StoredReplica readStored(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  uint64_t storedSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

 protected:
  void putStored(BlockId id, std::string_view stored, uint64_t raw_size,
                 CodecKind codec) override;

 private:
  struct Replica {
    Buffer data;  ///< stored form (encoded when codec != kNone)
    std::vector<uint32_t> crcs;
    uint64_t raw_size = 0;
    CodecKind codec = CodecKind::kNone;
    /// Set after the first successful read verification; later reads of the
    /// same resident buffer skip re-hashing. Any buffer swap (overwrite,
    /// corruption) resets it, so detection is never lost — and scanAll()
    /// (the block scanner) always verifies regardless.
    bool verified = false;
  };

  mutable std::mutex mutex_;
  /// mutable: const reads cache their verification verdict in the slot.
  mutable std::map<BlockId, Replica> replicas_;
  /// Running total of stored replica bytes (O(1) usedBytes; gauge reads
  /// never walk the map while the data path contends for the mutex).
  uint64_t used_bytes_ = 0;
};

/// Replicas as blk_<id> / blk_<id>.meta files under `root`.
class FileBlockStore final : public BlockStore {
 public:
  /// Creates `root` if needed; existing blk_* files are adopted (restart).
  explicit FileBlockStore(std::filesystem::path root);

  StoredReplica readStored(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  uint64_t storedSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

  const std::filesystem::path& root() const { return root_; }

 protected:
  void putStored(BlockId id, std::string_view stored, uint64_t raw_size,
                 CodecKind codec) override;

 private:
  /// Meta sidecar: varint CRC count + u32 CRCs (v1), optionally followed by
  /// u8 codec id + varint raw size (v2). V1 metas — written before
  /// compression existed — imply a raw replica whose logical size is the
  /// data file's size.
  struct Meta {
    std::vector<uint32_t> crcs;
    CodecKind codec = CodecKind::kNone;
    uint64_t raw_size = 0;
    bool has_raw_size = false;
  };

  std::filesystem::path dataPath(BlockId id) const;
  std::filesystem::path metaPath(BlockId id) const;
  Meta readMeta(BlockId id) const;

  std::filesystem::path root_;
  mutable std::mutex mutex_;
};

}  // namespace mh::hdfs
