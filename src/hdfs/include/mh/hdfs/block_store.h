#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/hdfs/types.h"

/// \file block_store.h
/// A DataNode's local replica storage. Replicas carry CRC-32C checksums per
/// 512-byte chunk (like HDFS's .meta sidecars); every read re-verifies and
/// throws ChecksumError on a mismatch, which is what drives the
/// corrupt-replica / re-replication machinery upstream.
///
/// Two implementations: MemBlockStore (fast, used by most tests and the
/// mini-cluster) and FileBlockStore (blk_<id> + blk_<id>.meta files under a
/// root directory — the "physical view at the Linux FS" from the paper's
/// Figure 2).

namespace mh::hdfs {

/// Checksum chunk width, bytes.
inline constexpr size_t kChecksumChunk = 512;

/// Computes the per-chunk CRC vector for a replica payload.
std::vector<uint32_t> chunkChecksums(std::string_view data);

/// Verifies data against stored chunk CRCs; throws ChecksumError naming
/// `block_id` on the first mismatching chunk.
void verifyChunks(BlockId block_id, std::string_view data,
                  const std::vector<uint32_t>& crcs);

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Stores a replica; overwrites any previous replica of the same block.
  virtual void writeBlock(BlockId id, std::string_view data) = 0;

  /// Reads and checksum-verifies the whole replica.
  /// Throws NotFoundError / ChecksumError.
  virtual Bytes readBlock(BlockId id) const = 0;

  /// Reads [offset, offset+len) after verifying the whole replica.
  Bytes readBlockRange(BlockId id, uint64_t offset, uint64_t len) const;

  virtual bool hasBlock(BlockId id) const = 0;
  virtual void deleteBlock(BlockId id) = 0;

  /// Replica size in bytes; throws NotFoundError.
  virtual uint64_t blockSize(BlockId id) const = 0;

  /// All stored block ids (sorted), as sent in block reports.
  virtual std::vector<BlockId> listBlocks() const = 0;

  /// Sum of replica payload bytes.
  virtual uint64_t usedBytes() const = 0;

  /// Verifies every replica's checksums; returns ids that fail. This is the
  /// periodic DataNode block scanner and the post-restart integrity check
  /// the paper reports taking 15 minutes on the real cluster.
  virtual std::vector<BlockId> scanAll() const = 0;

  /// Test/failure-injection hook: flips one byte of the stored payload
  /// without updating checksums. Throws NotFoundError.
  virtual void corruptBlock(BlockId id, size_t byte_offset) = 0;
};

/// Replicas held in memory.
class MemBlockStore final : public BlockStore {
 public:
  void writeBlock(BlockId id, std::string_view data) override;
  Bytes readBlock(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

 private:
  struct Replica {
    Bytes data;
    std::vector<uint32_t> crcs;
  };

  mutable std::mutex mutex_;
  std::map<BlockId, Replica> replicas_;
};

/// Replicas as blk_<id> / blk_<id>.meta files under `root`.
class FileBlockStore final : public BlockStore {
 public:
  /// Creates `root` if needed; existing blk_* files are adopted (restart).
  explicit FileBlockStore(std::filesystem::path root);

  void writeBlock(BlockId id, std::string_view data) override;
  Bytes readBlock(BlockId id) const override;
  bool hasBlock(BlockId id) const override;
  void deleteBlock(BlockId id) override;
  uint64_t blockSize(BlockId id) const override;
  std::vector<BlockId> listBlocks() const override;
  uint64_t usedBytes() const override;
  std::vector<BlockId> scanAll() const override;
  void corruptBlock(BlockId id, size_t byte_offset) override;

  const std::filesystem::path& root() const { return root_; }

 private:
  std::filesystem::path dataPath(BlockId id) const;
  std::filesystem::path metaPath(BlockId id) const;
  std::vector<uint32_t> readMeta(BlockId id) const;

  std::filesystem::path root_;
  mutable std::mutex mutex_;
};

}  // namespace mh::hdfs
