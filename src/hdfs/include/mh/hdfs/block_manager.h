#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "mh/common/rng.h"
#include "mh/hdfs/types.h"

/// \file block_manager.h
/// The NameNode's block map: for every block, which DataNodes hold a live
/// replica, which replicas are known corrupt, and what the target
/// replication factor is. Pure state (no locking — the NameNode serializes
/// access); the NameNode's replication monitor consumes the
/// under/over-replication queries to emit DataNode commands.

namespace mh::hdfs {

/// Candidate datanode for placement decisions.
struct PlacementCandidate {
  std::string host;
  uint64_t free_bytes = 0;
  std::string rack = "/default-rack";
};

/// Chooses up to `count` distinct target hosts following HDFS's default
/// placement policy:
///   1. the writer's own node when it is a datanode (data locality),
///   2. a node on a DIFFERENT rack (survives a rack failure),
///   3. a second node on that remote rack (bounds inter-rack traffic),
///   4+ random.
/// Within each step, candidates are weighted toward free space; hosts in
/// `exclude` are never chosen. When the topology cannot satisfy a rack
/// constraint the step falls back to "any node". Returns fewer than `count`
/// hosts when the cluster is too small.
std::vector<std::string> choosePlacement(
    const std::vector<PlacementCandidate>& candidates, size_t count,
    const std::string& preferred, const std::set<std::string>& exclude,
    Rng& rng);

class BlockManager {
 public:
  /// Allocates a fresh block id and registers the block with the given
  /// target replication. Size starts at 0 and is set by commitBlock().
  Block allocateBlock(uint16_t replication);

  /// Registers a block already known from an fsimage (NameNode restart).
  void registerBlock(Block block, uint16_t replication);

  /// Guarantees allocateBlock never re-issues an id <= max_seen. Needed on
  /// restart for block ids that were journaled but whose files were later
  /// deleted: a DataNode may still hold the old replica, and re-issuing the
  /// id would alias it onto the new block.
  void reserveBlockIds(BlockId max_seen);

  /// Records the finalized size of a block.
  void commitBlock(BlockId id, uint64_t size);

  /// Forgets a block entirely (file deleted). Unknown ids are ignored.
  void removeBlock(BlockId id);

  bool contains(BlockId id) const;
  uint64_t blockCount() const { return blocks_.size(); }

  /// Replica lifecycle.
  void addReplica(BlockId id, const std::string& host);
  void removeReplica(BlockId id, const std::string& host);
  /// Drops all replicas hosted by `host` (datanode death); returns the
  /// affected block ids.
  std::vector<BlockId> removeAllReplicasOn(const std::string& host);

  /// Marks one replica corrupt (client checksum failure / scanner report).
  void markCorrupt(BlockId id, const std::string& host);
  bool isCorrupt(BlockId id, const std::string& host) const;

  /// Hosts with a live, non-corrupt replica. Unknown blocks yield {}.
  std::vector<std::string> liveReplicas(BlockId id) const;
  /// Hosts whose replica is marked corrupt.
  std::vector<std::string> corruptReplicas(BlockId id) const;

  uint16_t expectedReplication(BlockId id) const;

  /// Changes a block's target replication (setrep). Unknown ids ignored.
  void setExpectedReplication(BlockId id, uint16_t replication);
  uint64_t blockSize(BlockId id) const;

  /// Blocks with fewer live replicas than their target but at least one
  /// live replica (repairable).
  std::vector<BlockId> underReplicated() const;
  /// Blocks with more live replicas than their target.
  std::vector<BlockId> overReplicated() const;
  /// Blocks with zero live replicas.
  std::vector<BlockId> missing() const;
  /// Blocks with at least one corrupt replica.
  std::vector<BlockId> withCorruptReplicas() const;

  /// Number of blocks with >= 1 live replica (safe-mode accounting).
  uint64_t reportedBlocks() const;

 private:
  struct BlockInfo {
    uint64_t size = 0;
    uint16_t replication = 1;
    std::set<std::string> live;
    std::set<std::string> corrupt;
  };

  const BlockInfo& info(BlockId id) const;

  // Hash map: the block map is the NameNode's hottest structure (every
  // report, read, and replication pass hits it), and at a million blocks
  // O(log n) tree walks dominate replay. Queries that drive scheduling
  // return sorted ids so monitor behavior stays deterministic.
  std::unordered_map<BlockId, BlockInfo> blocks_;
  BlockId next_id_ = 1;
};

}  // namespace mh::hdfs
