#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "mh/hdfs/block_store.h"

/// \file short_circuit.h
/// Short-circuit local reads (HDFS-347). When a DfsClient runs on the same
/// host as a replica, the RPC round-trip through the DataNode is pure
/// overhead: in real Hadoop the DataNode passes the client an open file
/// descriptor over a Unix domain socket and the client reads the block file
/// directly. Here the analogue is a process-wide registry mapping
/// (network fabric, host) -> the BlockStore the host's DataNode serves, so
/// a co-located client can read checksum-verified views straight from the
/// store.
///
/// The DataNode publishes its store on start() and withdraws it on stop()
/// and crash() — a dead DataNode's blocks are unreadable even though the
/// store object survives for restart, matching the RPC path's behavior.
/// Entries hold weak_ptrs: the registry never extends a store's lifetime.

namespace mh::net {
class Network;
}  // namespace mh::net

namespace mh::hdfs {

class ShortCircuitRegistry {
 public:
  /// The process-wide registry (covers every in-process fabric; entries are
  /// keyed by fabric so two mini-clusters in one test never cross wires).
  static ShortCircuitRegistry& instance();

  /// Announces that `host`'s DataNode on `fabric` serves `store`.
  void publish(const net::Network* fabric, const std::string& host,
               std::weak_ptr<BlockStore> store);

  /// Removes the host's entry (no-op if absent).
  void withdraw(const net::Network* fabric, const std::string& host);

  /// The store co-located with `host`, or nullptr when no live DataNode has
  /// published one (the caller then takes the normal RPC path).
  std::shared_ptr<BlockStore> lookup(const net::Network* fabric,
                                     const std::string& host) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<const net::Network*, std::string>,
           std::weak_ptr<BlockStore>>
      stores_;
};

}  // namespace mh::hdfs
