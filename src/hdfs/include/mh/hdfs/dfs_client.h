#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mh/common/config.h"
#include "mh/common/metrics.h"
#include "mh/hdfs/namenode_rpc.h"
#include "mh/hdfs/types.h"
#include "mh/net/network.h"

/// \file dfs_client.h
/// User-facing HDFS client (the library behind `hadoop fs`). Writes go
/// through the replica pipeline (client -> dn1 -> dn2 -> dn3); reads prefer
/// the replica on the caller's own host — the data-locality read path that
/// MapReduce tasks rely on. Checksum failures on read are reported to the
/// NameNode and the client falls over to the next replica.
///
/// Reads return refcounted views (buffer.h) of the serving store's buffer —
/// no payload copy on the loopback/zero-copy RPC path. With
/// `dfs.client.read.shortcircuit=true` and a replica on the caller's own
/// host, the client bypasses the RPC entirely and reads checksum-verified
/// views straight from the co-located BlockStore (HDFS-347); failures fall
/// back to the normal replica sweep.

namespace mh::hdfs {

class DfsClient {
 public:
  /// `client_host` is the identity reads/writes originate from; MapReduce
  /// tasks pass their TaskTracker's host so local reads stay local.
  DfsClient(Config conf, std::shared_ptr<net::Network> network,
            std::string client_host, std::string namenode_host);

  const std::string& clientHost() const { return namenode_.localHost(); }

  // ----- whole-file convenience -------------------------------------------

  /// Creates `path` and writes `data` through replica pipelines, one block
  /// at a time, then finalizes the file.
  void writeFile(const std::string& path, std::string_view data,
                 uint16_t replication = 0, uint64_t block_size = 0);

  /// Reads the whole file, preferring local replicas. Blocks are fetched
  /// in parallel (up to `dfs.client.parallel.reads`, default 4, in flight)
  /// and assembled in order; per-block replica retry and error reporting
  /// behave exactly as in the serial path. This is the owned-copy
  /// convenience wrapper over readFileViews().
  Bytes readFile(const std::string& path);

  /// Zero-copy whole-file read: one view per block, in file order. The
  /// views alias the serving stores' buffers; concatenation (and its copy)
  /// is the caller's choice.
  std::vector<BufferView> readFileViews(const std::string& path);

  // ----- block-granular access (used by MapReduce record readers) ----------

  std::vector<LocatedBlock> getBlockLocations(const std::string& path);

  /// Reads [offset, offset+len) of one block, trying replicas best-first
  /// (short-circuit local store when enabled, then local-first RPC sweep).
  /// Reports checksum failures and retries other replicas.
  BufferView readBlockRange(const LocatedBlock& located, uint64_t offset,
                            uint64_t len);

  // ----- namespace passthrough ---------------------------------------------

  void mkdirs(const std::string& path) { namenode_.mkdirs(path); }
  bool exists(const std::string& path) { return namenode_.exists(path); }
  bool remove(const std::string& path, bool recursive) {
    return namenode_.remove(path, recursive);
  }
  void rename(const std::string& from, const std::string& to) {
    namenode_.rename(from, to);
  }
  FileStatus getFileStatus(const std::string& path) {
    return namenode_.getFileStatus(path);
  }
  std::vector<FileStatus> listStatus(const std::string& path) {
    return namenode_.listStatus(path);
  }
  std::vector<std::string> listFilesRecursive(const std::string& path) {
    return namenode_.listFilesRecursive(path);
  }
  void setReplication(const std::string& path, uint16_t replication) {
    namenode_.setReplication(path, replication);
  }
  FsckReport fsck() { return namenode_.fsck(); }
  std::vector<DataNodeInfo> datanodeReport() {
    return namenode_.datanodeReport();
  }
  bool inSafeMode() { return namenode_.inSafeMode(); }

  NameNodeRpc& namenode() { return namenode_; }

 private:
  /// Orders replica hosts: the client's own host first, rest unchanged.
  std::vector<std::string> orderByLocality(
      std::vector<std::string> hosts) const;

  /// Short-circuit attempt: a checksum-verified view straight from the
  /// co-located BlockStore, or an empty optional when the path does not
  /// apply (disabled, no local replica, store withdrawn, host fenced) or
  /// failed in a way the RPC sweep should retry.
  std::optional<BufferView> tryShortCircuitRead(const LocatedBlock& located,
                                                uint64_t offset, uint64_t len);

  Config conf_;
  std::shared_ptr<net::Network> network_;
  NameNodeRpc namenode_;
  bool short_circuit_ = false;
  Counter* short_circuit_reads_ = nullptr;
};

}  // namespace mh::hdfs
