#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file types.h
/// Plain data types shared across the HDFS implementation: blocks, located
/// blocks, file status, datanode descriptors, fsck reports.

namespace mh::hdfs {

/// Globally unique block identifier, allocated by the NameNode.
using BlockId = uint64_t;

/// Well-known ports (mirroring Hadoop 1.x defaults).
inline constexpr int kNameNodePort = 8020;
inline constexpr int kDataNodePort = 50010;

/// A block: identity plus the number of bytes it holds.
struct Block {
  BlockId id = 0;
  uint64_t size = 0;

  bool operator==(const Block&) const = default;
};

/// A block plus where its replicas currently live — what
/// getBlockLocations() hands to clients and the JobTracker.
struct LocatedBlock {
  Block block;
  uint64_t offset = 0;             ///< byte offset of this block in the file
  std::vector<std::string> hosts;  ///< replica locations, best-first
};

/// Metadata for one namespace entry.
struct FileStatus {
  std::string path;
  bool is_dir = false;
  uint64_t length = 0;       ///< total bytes (files only)
  uint16_t replication = 0;  ///< target replication factor (files only)
  uint64_t block_size = 0;
  int64_t mtime_ms = 0;
};

/// NameNode's view of one DataNode, as shown by `hadoop dfsadmin -report`.
struct DataNodeInfo {
  std::string host;
  std::string rack;
  uint64_t capacity_bytes = 0;
  uint64_t used_bytes = 0;
  uint64_t num_blocks = 0;
  int64_t millis_since_heartbeat = 0;
  bool alive = false;
};

/// Result of a namespace + block-map audit (`hadoop fsck /`).
struct FsckReport {
  uint64_t total_files = 0;
  uint64_t total_dirs = 0;
  uint64_t total_bytes = 0;
  uint64_t total_blocks = 0;
  uint64_t min_replication_blocks = 0;  ///< blocks meeting their target
  uint64_t under_replicated = 0;
  uint64_t over_replicated = 0;
  uint64_t corrupt_blocks = 0;   ///< blocks with at least one corrupt replica
  uint64_t missing_blocks = 0;   ///< blocks with zero live replicas
  bool healthy = false;          ///< no corrupt and no missing blocks

  /// Renders the classic fsck summary block.
  std::string render() const;
};

/// Commands a heartbeat reply can carry back to a DataNode.
struct DataNodeCommand {
  enum class Kind : uint8_t {
    kReplicate = 0,  ///< copy `block` to each host in `targets`
    kDelete = 1,     ///< drop the local replica of `block`
  };
  Kind kind = Kind::kDelete;
  BlockId block = 0;
  std::vector<std::string> targets;

  bool operator==(const DataNodeCommand&) const = default;
};

/// What a heartbeat brings back from the NameNode.
struct HeartbeatReply {
  /// Set when the NameNode does not know this DataNode (e.g. after a
  /// NameNode restart): re-register and send a full block report.
  bool reregister = false;
  /// Set when the NameNode has no block report since registration.
  bool request_block_report = false;
  std::vector<DataNodeCommand> commands;
};

}  // namespace mh::hdfs
