#pragma once

#include <string>
#include <vector>

#include "mh/hdfs/dfs_client.h"

/// \file fs_shell.h
/// The `hadoop fs` command surface. The course's second assignment has
/// students run these commands and record the output to observe how HDFS
/// "transforms, stores, replicates, and abstracts" data; examples and tests
/// drive this class the same way.
///
/// Supported commands:
///   -ls <path>            -lsr <path>        -mkdir <path>
///   -put <local> <dfs>    -get <dfs> <local> -copyToLocal <dfs> <local>
///   -cat <path>           -rm <path>         -rmr <path>
///   -mv <from> <to>       -du <path>         -touchz <path>
///   -setrep <n> <path>    -stat <path>       -tail <path>
///   -count <path>         -report            -fsck [path]
///   -safemode <get|enter|leave>
///   -saveNamespace        -rollEdits

namespace mh::hdfs {

class FsShell {
 public:
  struct Result {
    int code = 0;        ///< 0 success, non-zero failure (like the real CLI)
    std::string output;  ///< what would have been printed
  };

  explicit FsShell(DfsClient& client) : client_(client) {}

  /// Executes one command line, e.g. {"-put", "/tmp/x", "/data/x"}.
  /// Expected user errors (missing path, wrong arity) come back as a
  /// non-zero Result, not an exception.
  Result run(const std::vector<std::string>& args);

 private:
  Result ls(const std::string& path, bool recursive);
  Result put(const std::string& local, const std::string& dfs);
  Result get(const std::string& dfs, const std::string& local);
  Result cat(const std::string& path);
  Result rm(const std::string& path, bool recursive);
  Result du(const std::string& path);
  Result report();

  DfsClient& client_;
};

}  // namespace mh::hdfs
