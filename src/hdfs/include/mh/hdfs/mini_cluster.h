#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mh/common/config.h"
#include "mh/hdfs/datanode.h"
#include "mh/hdfs/dfs_client.h"
#include "mh/hdfs/namenode.h"
#include "mh/net/network.h"

/// \file mini_cluster.h
/// An in-process HDFS cluster: one NameNode plus N DataNodes on a shared
/// network fabric — the fixture behind tests, benchmarks, and examples
/// (Hadoop's own MiniDFSCluster plays the same role).
///
/// Hosts are named node01..nodeNN; the NameNode runs on "namenode".

namespace mh::hdfs {

struct MiniDfsOptions {
  int num_datanodes = 3;
  /// Nodes are spread round-robin over this many racks ("/rack0"...).
  int racks = 1;
  Config conf;
  /// Use on-disk FileBlockStores rooted under `store_root` instead of
  /// in-memory stores.
  bool use_file_store = false;
  std::filesystem::path store_root;
};

class MiniDfsCluster {
 public:
  explicit MiniDfsCluster(MiniDfsOptions options = {});
  ~MiniDfsCluster();
  MiniDfsCluster(const MiniDfsCluster&) = delete;
  MiniDfsCluster& operator=(const MiniDfsCluster&) = delete;

  const std::shared_ptr<net::Network>& network() const { return network_; }
  NameNode& nameNode() { return *namenode_; }
  const Config& conf() const { return conf_; }

  /// Cluster metrics tree (root of the per-daemon child registries).
  MetricsRegistry& metrics() { return network_->metrics(); }
  /// Cluster trace journal (disabled by default; enable before running
  /// workloads to capture per-daemon swimlanes).
  TraceCollector& tracer() { return network_->tracer(); }

  std::vector<std::string> dataNodeHosts() const;
  DataNode& dataNode(const std::string& host);

  /// A client whose reads/writes originate from `host` (defaults to a
  /// dedicated off-cluster "client" host; pass a datanode host to exercise
  /// the local-read path).
  DfsClient client(const std::string& host = "client");

  /// Machine crash: host down on the fabric, heartbeats stop.
  void killDataNode(const std::string& host);
  /// Clean daemon shutdown (port released).
  void stopDataNode(const std::string& host);
  /// Brings a killed/stopped DataNode back with its replica store intact.
  void restartDataNode(const std::string& host);
  /// Adds a brand-new empty DataNode; returns its host name.
  std::string addDataNode();

  /// The rack a datanode host was assigned to.
  std::string rackOf(const std::string& host) const;

  /// Kills the NameNode (kill -9: unsynced edits lost, in-flight replies
  /// dropped) without any saveImage. Until restartNameNode() the cluster
  /// has no master; nameNode() must not be called in that window. Requires
  /// `dfs.namenode.name.dir` journaling for a later restart to recover.
  void crashNameNode();

  /// Whether a NameNode object currently exists (false between
  /// crashNameNode() and restartNameNode()).
  bool nameNodeRunning() const { return namenode_ != nullptr; }

  /// Restarts the NameNode. With `dfs.namenode.name.dir` set, the new
  /// NameNode recovers from the on-disk image + edit log (works after
  /// crashNameNode(), nothing saved manually); otherwise the legacy path
  /// saves the fsimage from the running NameNode and restarts from it.
  /// Either way it sits in safe mode until DataNodes re-report.
  void restartNameNode();

  /// Polls fsck until the filesystem is healthy with no under-replicated
  /// blocks, or the timeout elapses. Returns success.
  bool waitHealthy(int timeout_ms = 10'000);

  /// Polls until the NameNode has left safe mode. Returns success.
  bool waitOutOfSafeMode(int timeout_ms = 10'000);

 private:
  std::string hostName(int index) const;
  void startDataNodeOn(const std::string& host);

  MiniDfsOptions options_;
  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::unique_ptr<NameNode> namenode_;
  std::map<std::string, std::shared_ptr<BlockStore>> stores_;
  std::map<std::string, std::unique_ptr<DataNode>> datanodes_;
  int next_node_index_ = 1;
};

}  // namespace mh::hdfs
