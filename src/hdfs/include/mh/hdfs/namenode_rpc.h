#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mh/hdfs/types.h"
#include "mh/hdfs/wire.h"
#include "mh/net/network.h"

/// \file namenode_rpc.h
/// Client stub for the NameNode protocol. Every caller that is not the
/// NameNode itself (DFS clients, DataNodes, the JobTracker) goes through
/// this stub so the traffic is serialized, metered, and subject to the
/// fabric's failure semantics.

namespace mh::hdfs {

class NameNodeRpc {
 public:
  NameNodeRpc(std::shared_ptr<net::Network> network, std::string local_host,
              std::string namenode_host)
      : network_(std::move(network)),
        local_host_(std::move(local_host)),
        namenode_host_(std::move(namenode_host)) {
    network_->addHost(local_host_);
  }

  const std::string& localHost() const { return local_host_; }
  const std::string& namenodeHost() const { return namenode_host_; }
  const std::shared_ptr<net::Network>& network() const { return network_; }

  // ----- client protocol --------------------------------------------------

  void mkdirs(const std::string& path) { call("mkdirs", pack(path)); }

  bool exists(const std::string& path) {
    return std::get<0>(unpack<bool>(call("exists", pack(path))));
  }

  FileStatus getFileStatus(const std::string& path) {
    return std::get<0>(
        unpack<FileStatus>(call("getFileStatus", pack(path))));
  }

  std::vector<FileStatus> listStatus(const std::string& path) {
    return std::get<0>(
        unpack<std::vector<FileStatus>>(call("listStatus", pack(path))));
  }

  std::vector<std::string> listFilesRecursive(const std::string& path) {
    return std::get<0>(unpack<std::vector<std::string>>(
        call("listFilesRecursive", pack(path))));
  }

  bool remove(const std::string& path, bool recursive) {
    return std::get<0>(
        unpack<bool>(call("delete", pack(path, recursive))));
  }

  void rename(const std::string& from, const std::string& to) {
    call("rename", pack(from, to));
  }

  void create(const std::string& path, uint16_t replication = 0,
              uint64_t block_size = 0) {
    call("create",
         pack(path, static_cast<uint64_t>(replication), block_size));
  }

  LocatedBlock addBlock(const std::string& path) {
    return std::get<0>(
        unpack<LocatedBlock>(call("addBlock", pack(path, local_host_))));
  }

  void completeFile(const std::string& path) { call("complete", pack(path)); }

  std::vector<LocatedBlock> getBlockLocations(const std::string& path) {
    return std::get<0>(unpack<std::vector<LocatedBlock>>(
        call("getBlockLocations", pack(path))));
  }

  void reportBadBlock(BlockId block, const std::string& host) {
    call("reportBadBlock", pack(static_cast<uint64_t>(block), host));
  }

  void setReplication(const std::string& path, uint16_t replication) {
    call("setReplication", pack(path, replication));
  }

  // ----- datanode protocol ------------------------------------------------

  void registerDataNode(uint64_t capacity_bytes,
                        const std::string& rack = "/default-rack") {
    call("registerDataNode", pack(local_host_, capacity_bytes, rack));
  }

  HeartbeatReply heartbeat(uint64_t capacity_bytes, uint64_t used_bytes,
                           uint64_t num_blocks) {
    return std::get<0>(unpack<HeartbeatReply>(call(
        "heartbeat", pack(local_host_, capacity_bytes, used_bytes,
                          num_blocks))));
  }

  std::vector<BlockId> blockReport(const std::vector<Block>& blocks) {
    return std::get<0>(unpack<std::vector<BlockId>>(
        call("blockReport", pack(local_host_, blocks))));
  }

  void blockReceived(Block block) {
    call("blockReceived", pack(local_host_, block));
  }

  // ----- admin --------------------------------------------------------

  FsckReport fsck() { return std::get<0>(unpack<FsckReport>(call("fsck", {}))); }

  std::vector<DataNodeInfo> datanodeReport() {
    return std::get<0>(
        unpack<std::vector<DataNodeInfo>>(call("datanodeReport", {})));
  }

  bool inSafeMode() {
    return std::get<0>(unpack<bool>(call("safemode.get", {})));
  }

  void setSafeMode(bool on) { call("safemode.set", pack(on)); }

  Bytes saveImage() {
    return std::get<0>(unpack<Bytes>(call("saveImage", {})));
  }

  /// Forces an fsimage checkpoint (dfsadmin -saveNamespace); returns the
  /// txn the image covers.
  uint64_t saveNamespace() {
    return std::get<0>(unpack<uint64_t>(call("saveNamespace", {})));
  }

  /// Rolls the edit segment (dfsadmin -rollEdits); returns the new
  /// segment's first txn.
  uint64_t rollEdits() {
    return std::get<0>(unpack<uint64_t>(call("rollEdits", {})));
  }

 private:
  Bytes call(std::string method, Bytes body) {
    return network_->call(local_host_, namenode_host_, kNameNodePort,
                          std::move(method), std::move(body));
  }

  std::shared_ptr<net::Network> network_;
  std::string local_host_;
  std::string namenode_host_;
};

}  // namespace mh::hdfs
