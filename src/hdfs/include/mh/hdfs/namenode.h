#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "mh/common/config.h"
#include "mh/common/rng.h"
#include "mh/hdfs/block_manager.h"
#include "mh/hdfs/edit_log.h"
#include "mh/hdfs/namespace.h"
#include "mh/hdfs/types.h"
#include "mh/net/network.h"

/// \file namenode.h
/// The HDFS master: namespace tree + block map + datanode liveness +
/// replication management + safe mode — all metadata in memory, exactly the
/// structure the paper's Figure 2 teaches.
///
/// Threading model mirrors Hadoop 1.x's FSNamesystem: one big lock
/// serializes every operation; a background monitor thread expires stale
/// heartbeats and schedules re-replication / invalidation work, which is
/// delivered to DataNodes piggybacked on their heartbeat replies.
///
/// Config keys (defaults):
///   dfs.replication                           3
///   dfs.blocksize                             65536
///   dfs.namenode.heartbeat.expiry.ms          1000
///   dfs.namenode.monitor.interval.ms          50
///   dfs.safemode.threshold                    0.999
///   dfs.namenode.replication.max.streams      64
///   dfs.namenode.pending.replication.timeout.ms  2000
///
/// Durability (see edit_log.h for the journal/checkpoint keys): when
/// `dfs.namenode.name.dir` is set, every namespace mutation is journaled to
/// an on-disk edit log before the RPC returns, the monitor writes periodic
/// fsimage checkpoints, and the plain constructor recovers image + edits
/// from that directory (or formats it when empty) — a crash loses no acked
/// mutation.

namespace mh::hdfs {

class NameNode {
 public:
  /// Fresh, empty namespace — unless `dfs.namenode.name.dir` names a
  /// directory with existing edit-log state, in which case the namespace is
  /// recovered from the latest fsimage plus every newer edit segment
  /// (tolerating a torn final record) and the NameNode starts in safe mode
  /// until block reports cover the recovered block map. A missing or empty
  /// directory is formatted and the NameNode starts clean.
  NameNode(Config conf, std::shared_ptr<net::Network> network,
           std::string host = "namenode");

  /// Restart from a saved fsimage. The namespace and expected blocks are
  /// restored, but no replica locations are known, so the NameNode starts in
  /// **safe mode** and leaves only when block reports cover
  /// dfs.safemode.threshold of the blocks — the paper's "at least fifteen
  /// minutes for all the Data Nodes to check for data integrity and report
  /// back to the Name Node".
  NameNode(Config conf, std::shared_ptr<net::Network> network,
           std::string host, std::string_view fsimage);

  ~NameNode();
  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  /// Binds the RPC endpoint and starts the monitor thread.
  void start();

  /// Stops the monitor and unbinds the endpoint. Idempotent. Synced edits
  /// are flushed, so a clean stop + reconstruct recovers everything.
  void stop();

  /// Simulated kill -9: the host drops off the fabric (in-flight replies
  /// are lost), the monitor dies, and any edit-log records buffered but not
  /// yet synced are discarded — exactly what a machine crash does to the
  /// page cache. The endpoint is released so a new NameNode can recover
  /// from `dfs.namenode.name.dir` and bind. Idempotent.
  void crash();

  const std::string& host() const { return host_; }

  // ----- client protocol -------------------------------------------------

  void mkdirs(const std::string& path);
  bool exists(const std::string& path) const;
  FileStatus getFileStatus(const std::string& path) const;
  std::vector<FileStatus> listStatus(const std::string& path) const;
  std::vector<std::string> listFilesRecursive(const std::string& path) const;

  /// Deletes a path; returns false if it did not exist. Freed blocks are
  /// scheduled for invalidation on their DataNodes.
  bool remove(const std::string& path, bool recursive);

  void rename(const std::string& from, const std::string& to);

  /// Starts a new file. replication/block_size of 0 mean "use the config
  /// default".
  void create(const std::string& path, uint16_t replication = 0,
              uint64_t block_size = 0);

  /// Allocates the next block of an under-construction file and chooses the
  /// replica pipeline. `client_host` gets the first replica when it is a
  /// live DataNode (the data-locality placement rule).
  LocatedBlock addBlock(const std::string& path,
                        const std::string& client_host);

  /// Finalizes a file: records block sizes into the namespace.
  void completeFile(const std::string& path);

  /// Every block of the file with current replica locations, best-first.
  std::vector<LocatedBlock> getBlockLocations(const std::string& path) const;

  /// Client-side checksum failure: marks the replica corrupt; the monitor
  /// re-replicates from a good copy and then invalidates the bad one.
  void reportBadBlock(BlockId block, const std::string& host);

  /// Changes a file's target replication; the monitor converges the actual
  /// replica counts (replicating up or invalidating down).
  void setReplication(const std::string& path, uint16_t replication);

  // ----- datanode protocol ------------------------------------------------

  void registerDataNode(const std::string& host, uint64_t capacity_bytes,
                        const std::string& rack = "/default-rack");

  HeartbeatReply heartbeat(const std::string& host, uint64_t capacity_bytes,
                           uint64_t used_bytes, uint64_t num_blocks);

  /// Full replica inventory from one DataNode. Returns block ids the
  /// DataNode should invalidate (blocks the NameNode no longer knows).
  std::vector<BlockId> blockReport(const std::string& host,
                                   const std::vector<Block>& blocks);

  /// One replica finished writing on `host` (pipeline or re-replication).
  void blockReceived(const std::string& host, Block block);

  // ----- admin ------------------------------------------------------------

  FsckReport fsck() const;
  std::vector<DataNodeInfo> datanodeReport() const;
  bool inSafeMode() const;
  /// Manually enter/leave safe mode (dfsadmin -safemode enter/leave).
  void setSafeMode(bool on);
  /// Serialized namespace for restart.
  Bytes saveImage() const;

  /// Forces a checkpoint now (dfsadmin -saveNamespace): writes
  /// fsimage_<lastTxn> and retires covered edit segments. Returns the txn
  /// the image covers. Throws IllegalStateError when journaling is off.
  uint64_t saveNamespace();

  /// Closes the current edit segment and opens a new one (dfsadmin
  /// -rollEdits). Returns the new segment's first txn. Throws
  /// IllegalStateError when journaling is off.
  uint64_t rollEdits();

  /// True when journaling to dfs.namenode.name.dir is active.
  bool journaling() const { return edits_ != nullptr; }

  uint64_t totalBlocks() const;
  uint64_t liveDataNodes() const;

  /// Milliseconds since the stalest live DataNode's last heartbeat (0 when
  /// no DataNode is live) — the "heartbeat staleness" gauge.
  int64_t maxHeartbeatStalenessMillis() const;

  /// Runs one monitor pass synchronously (deterministic tests).
  void runMonitorOnce();

 private:
  struct DataNodeDescriptor {
    std::string rack = "/default-rack";
    uint64_t capacity = 0;
    uint64_t used = 0;
    uint64_t num_blocks = 0;
    int64_t last_heartbeat_ms = 0;  // steady-clock ms
    bool alive = false;
    bool reported = false;  // block report received since (re-)registration
    std::vector<DataNodeCommand> pending_commands;
  };

  static int64_t steadyMillis();
  void installRpc();
  void recoverOrFormatStorage();
  void journalLocked(EditRecord rec);
  uint64_t checkpointLocked();
  void maybeCheckpointLocked();
  void checkNotInSafeModeLocked(const char* op) const;
  void maybeLeaveSafeModeLocked();
  void queueInvalidateLocked(const std::vector<Block>& blocks);
  std::vector<PlacementCandidate> aliveCandidatesLocked() const;
  void monitorPassLocked();
  void expireHeartbeatsLocked();
  void scheduleReplicationLocked();
  void handleOverReplicationLocked();
  void handleCorruptReplicasLocked();

  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::string host_;

  // Claimed from the network's registry at construction, before any lock_
  // acquisition; incremented without registry lookups on hot paths.
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* tracer_ = nullptr;

  mutable std::mutex lock_;  // the FSNamesystem lock
  Namespace namespace_;
  BlockManager blocks_;
  std::unique_ptr<EditLog> edits_;  // null when journaling is off
  int64_t last_checkpoint_steady_ms_ = 0;
  std::map<std::string, DataNodeDescriptor> datanodes_;
  std::map<BlockId, int64_t> pending_replications_;  // block -> scheduled at
  bool safe_mode_ = false;
  bool started_ = false;
  mutable Rng rng_;

  std::jthread monitor_;
};

}  // namespace mh::hdfs
