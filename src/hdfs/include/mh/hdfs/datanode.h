#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mh/common/config.h"
#include "mh/hdfs/block_store.h"
#include "mh/hdfs/namenode_rpc.h"
#include "mh/hdfs/types.h"
#include "mh/net/network.h"

/// \file datanode.h
/// The HDFS worker daemon: stores checksummed block replicas, heartbeats to
/// the NameNode, sends block reports, serves reads, participates in write
/// pipelines, and executes replicate/delete commands piggybacked on
/// heartbeat replies.
///
/// Lifecycle verbs map to the paper's war stories:
///  * stop()    — clean shutdown: daemon threads join, ports are released.
///  * abandon() — the "ghost daemon": threads stop but the port stays bound,
///                so the next cluster booted on this host fails to bind.
///  * crash()   — the host drops off the network (OOM-killed JVM); the
///                NameNode notices via heartbeat expiry and re-replicates.
///
/// Config keys (defaults):
///   dfs.heartbeat.interval.ms     100
///   dfs.blockreport.interval.ms   10000
///   dfs.datanode.capacity         1073741824

namespace mh::hdfs {

class DataNode {
 public:
  DataNode(Config conf, std::shared_ptr<net::Network> network,
           std::string host, std::shared_ptr<BlockStore> store,
           std::string namenode_host);

  ~DataNode();
  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  /// Registers with the NameNode, binds the data port (throws
  /// AlreadyExistsError when a ghost daemon still holds it), sends an
  /// initial block report, and starts the heartbeat thread.
  void start();

  /// Clean shutdown: stop threads, unbind the port. Idempotent.
  void stop();

  /// Ghost-daemon exit: threads stop, the port stays bound.
  void abandon();

  /// Simulated machine crash: the host goes down on the fabric and threads
  /// stop. Bindings stay (a hung process), so a later restart on the same
  /// host must go through restartable start() semantics.
  void crash();

  const std::string& host() const { return host_; }
  BlockStore& store() { return *store_; }
  const BlockStore& store() const { return *store_; }
  bool running() const;

  /// Sends one heartbeat and executes any returned commands (test hook —
  /// the background thread does the same thing on its interval).
  void heartbeatNow();

  /// Sends a full block report now.
  void blockReportNow();

  /// Verifies every replica's checksums (the DataNode block scanner / the
  /// post-restart integrity check). Corrupt replicas are reported to the
  /// NameNode. Returns the corrupt block ids.
  std::vector<BlockId> runBlockScanner();

 private:
  void installRpc();
  void heartbeatLoop(std::stop_token token);
  void executeCommand(const DataNodeCommand& command);
  void replicateTo(BlockId block, const std::vector<std::string>& targets);

  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::string host_;
  std::shared_ptr<BlockStore> store_;
  NameNodeRpc namenode_;

  // Claimed at construction ("datanode.<host>"); counters are cached so hot
  // paths never do a registry lookup.
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* tracer_ = nullptr;
  Counter* blocks_read_ = nullptr;
  Counter* blocks_written_ = nullptr;
  Counter* bytes_read_ = nullptr;
  Counter* bytes_written_ = nullptr;
  Counter* replications_ = nullptr;
  Counter* deletes_ = nullptr;
  /// Per-write raw (logical) vs stored (possibly compressed) byte totals;
  /// equal while `dfs.block.compression.codec` is "none".
  Counter* block_raw_bytes_ = nullptr;
  Counter* block_compressed_bytes_ = nullptr;

  mutable std::mutex state_mutex_;
  bool running_ = false;
  bool port_bound_ = false;

  std::jthread heartbeat_thread_;
};

}  // namespace mh::hdfs
