#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/metrics.h"
#include "mh/common/trace.h"
#include "mh/hdfs/namespace.h"
#include "mh/hdfs/types.h"

/// \file edit_log.h
/// The NameNode's write-ahead journal: every namespace mutation is appended
/// to an on-disk edit log before the operation is acknowledged, so a crash
/// loses nothing that a client was told succeeded (the production answer to
/// the paper's "at least fifteen minutes" restart-integrity anecdote).
///
/// Storage layout, under one directory (`dfs.namenode.name.dir`):
///
///   fsimage_<txn>   checkpoint: the namespace serialized by
///                   Namespace::saveImage(), covering all edits <= txn
///   edits_<txn>     a segment of framed edit records, first txn in the name
///
/// Each record is framed as [u32 length][u32 CRC-32C of payload][payload].
/// A torn final record (partial frame or checksum mismatch at the very tail
/// of the last segment — a crash mid-write) is tolerated: replay stops at
/// the last complete transaction. A checksum mismatch anywhere else is real
/// corruption and recovery refuses to proceed (ChecksumError) rather than
/// ever building a wrong namespace.
///
/// Checkpointing follows the secondary-NameNode idiom: roll the current
/// segment, write fsimage_<lastTxn>, then retire every segment (and older
/// image) the new image covers.
///
/// Config keys (defaults):
///   dfs.namenode.name.dir              ""       journaling off when empty
///   dfs.namenode.edits.sync            always   always | batch
///   dfs.namenode.edits.sync.batch.txns 64       auto-sync threshold (batch)
///   dfs.namenode.checkpoint.txns       100000   checkpoint every N txns
///   dfs.namenode.checkpoint.period.ms  0        and/or every period (0=off)

namespace mh::hdfs {

enum class EditOp : uint8_t {
  kMkdirs = 1,
  kCreate = 2,
  kAddBlock = 3,
  kComplete = 4,
  kDelete = 5,
  kRename = 6,
  kSetReplication = 7,
};

/// One journaled namespace mutation. Which fields are meaningful depends on
/// `op`; unused fields stay default.
struct EditRecord {
  uint64_t txn = 0;  ///< Assigned by EditLog::logEdit.
  EditOp op = EditOp::kMkdirs;
  std::string path;           ///< Primary path (the source for kRename).
  std::string path2;          ///< kRename destination.
  uint16_t replication = 0;   ///< kCreate / kSetReplication.
  uint64_t block_size = 0;    ///< kCreate.
  Block block;                ///< kAddBlock.
  std::vector<Block> blocks;  ///< kComplete: the finalized block list.
  bool recursive = false;     ///< kDelete.

  bool operator==(const EditRecord&) const = default;
};

/// Serializes one record's payload (no frame). Exposed for tests.
Bytes encodeEditRecord(const EditRecord& rec);
/// Inverse of encodeEditRecord; throws InvalidArgumentError on malformed
/// input (only reachable when a CRC-valid frame holds a bad payload).
EditRecord decodeEditRecord(std::string_view payload);

/// Applies one record to a namespace. Idempotent in sequence context:
/// replaying a whole log twice leaves exactly the state of replaying it
/// once (kCreate resets an existing path, kRename clobbers a stale
/// destination, kDelete of a missing path is a no-op, ...).
void applyEdit(Namespace& ns, const EditRecord& rec);

struct ReplayResult {
  uint64_t last_txn = 0;     ///< Highest txn applied (0 when none).
  uint64_t applied = 0;      ///< Records applied (txn > from_txn).
  BlockId max_block_id = 0;  ///< Highest block id journaled, even if the
                             ///< file was later deleted — the id allocator
                             ///< must never re-issue it (a stale replica of
                             ///< the old block would alias the new one).
};

/// Replays `edits` into `ns`, skipping records with txn <= from_txn (those
/// are covered by the fsimage the namespace was loaded from).
ReplayResult replayEdits(Namespace& ns, const std::vector<EditRecord>& edits,
                         uint64_t from_txn = 0);

/// Everything recovered from an edit-log directory.
struct LoadedStorage {
  Bytes image;            ///< Latest checkpoint; empty = fresh namespace.
  uint64_t image_txn = 0; ///< Last txn the image covers.
  std::vector<EditRecord> edits;  ///< All readable records, ascending txn.
  uint64_t last_txn = 0;  ///< max(image_txn, last edit txn).
};

class EditLog {
 public:
  struct Options {
    std::filesystem::path dir;
    /// "always": every logEdit is on disk before it returns (an acked
    /// mutation survives any crash). "batch": records buffer in memory and
    /// hit disk every `batch_txns` (or on sync/roll/checkpoint); a crash
    /// loses the unsynced suffix, like a real page cache.
    std::string sync = "always";
    uint64_t batch_txns = 64;
    MetricsRegistry* metrics = nullptr;  ///< Optional: edits.* signals.
    TraceCollector* tracer = nullptr;    ///< Optional: EDIT_SYNC spans.
  };

  /// Opens the directory for appending at txn `last_txn + 1`. Creates and
  /// formats the directory when it is missing or empty (the fresh-format
  /// case); pass the values recovered by load() when state exists.
  explicit EditLog(Options options, uint64_t last_txn = 0,
                   uint64_t checkpoint_txn = 0);
  ~EditLog();
  EditLog(const EditLog&) = delete;
  EditLog& operator=(const EditLog&) = delete;

  /// Assigns the next txn id, frames and journals the record, and syncs it
  /// per policy. Returns the txn id.
  uint64_t logEdit(EditRecord rec);

  /// Flushes every pending record to disk.
  void sync();

  /// Syncs and starts a new segment at lastTxn()+1 (no-op when the current
  /// segment is empty). Returns the active segment's first txn.
  uint64_t roll();

  /// Secondary-NameNode-style checkpoint of an image covering every txn up
  /// to lastTxn(): roll, write fsimage_<lastTxn> (atomic tmp+rename), then
  /// retire the covered segments and any older image.
  void checkpoint(const Bytes& image);

  /// Simulated kill -9: drops records not yet synced to disk. The next
  /// logEdit txn follows the last *synced* txn, as a restarted process
  /// would see.
  void discardPending();

  uint64_t lastTxn() const { return last_txn_; }
  uint64_t lastSyncedTxn() const { return synced_txn_; }
  uint64_t lastCheckpointTxn() const { return checkpoint_txn_; }
  uint64_t txnsSinceCheckpoint() const { return last_txn_ - checkpoint_txn_; }
  const std::filesystem::path& dir() const { return dir_; }

  /// True when `dir` holds any edit-log state (an image or a segment).
  static bool hasState(const std::filesystem::path& dir);

  /// Reads the latest image and every edit segment. Tolerates a torn tail
  /// in the final segment; throws ChecksumError on mid-log corruption and
  /// IoError on structural damage (torn non-final segment, txns out of
  /// order, unreadable image).
  static LoadedStorage load(const std::filesystem::path& dir);

 private:
  void openSegment(uint64_t first_txn);

  std::filesystem::path dir_;
  bool sync_always_ = true;
  uint64_t batch_txns_ = 64;
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* tracer_ = nullptr;

  std::ofstream out_;
  uint64_t segment_first_txn_ = 1;
  uint64_t last_txn_ = 0;
  uint64_t synced_txn_ = 0;
  uint64_t checkpoint_txn_ = 0;
  Bytes pending_;  ///< Framed records not yet written + flushed.
  uint64_t pending_txns_ = 0;
};

}  // namespace mh::hdfs
