#include "mh/hdfs/edit_log.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <optional>
#include <utility>

#include "mh/common/crc32.h"
#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/stopwatch.h"

namespace mh::hdfs {

namespace fs = std::filesystem;

namespace {

constexpr const char* kLog = "editlog";
constexpr uint32_t kImageMagic = 0x4D48464D;  // "MHFM": minihadoop fsimage
constexpr const char* kEditsPrefix = "edits_";
constexpr const char* kImagePrefix = "fsimage_";

std::string txnFileName(const char* prefix, uint64_t txn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%020llu", prefix,
                static_cast<unsigned long long>(txn));
  return buf;
}

/// Parses "<prefix><txn>" file names; nullopt for anything else (tmp files,
/// strays).
std::optional<uint64_t> txnFromName(const std::string& name,
                                    const char* prefix) {
  const std::string_view p(prefix);
  if (name.size() <= p.size() || name.compare(0, p.size(), p) != 0) {
    return std::nullopt;
  }
  uint64_t txn = 0;
  const char* first = name.data() + p.size();
  const char* last = name.data() + name.size();
  const auto [ptr, ec] = std::from_chars(first, last, txn);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return txn;
}

Bytes readWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path.string());
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

struct SegmentContents {
  std::vector<EditRecord> records;
  bool torn = false;  ///< A partial/corrupt record ended the scan at EOF.
};

/// Scans one segment. Stops cleanly at a torn tail (incomplete frame, or a
/// CRC mismatch on the final frame — a bit flip there is indistinguishable
/// from a crash mid-write); throws ChecksumError for a mismatch with more
/// data behind it.
SegmentContents readSegment(const fs::path& path) {
  const Bytes data = readWholeFile(path);
  SegmentContents out;
  ByteReader r(data);
  while (!r.atEnd()) {
    if (r.remaining() < 8) {
      out.torn = true;
      break;
    }
    const uint32_t len = r.readU32();
    const uint32_t crc = r.readU32();
    if (len > r.remaining()) {
      out.torn = true;
      break;
    }
    const std::string_view payload = r.readRaw(len);
    if (crc32c(payload) != crc) {
      if (r.atEnd()) {
        out.torn = true;
        break;
      }
      throw ChecksumError("edit log frame CRC mismatch in " + path.string() +
                          " at byte " +
                          std::to_string(r.position() - len - 8));
    }
    out.records.push_back(decodeEditRecord(payload));
  }
  return out;
}

void appendFrame(Bytes& out, const Bytes& payload) {
  ByteWriter w(out);
  w.writeU32(static_cast<uint32_t>(payload.size()));
  w.writeU32(crc32c(payload));
  w.writeRaw(payload);
}

}  // namespace

Bytes encodeEditRecord(const EditRecord& rec) {
  Bytes out;
  ByteWriter w(out);
  w.writeVarU64(rec.txn);
  w.writeU8(static_cast<uint8_t>(rec.op));
  w.writeBytes(rec.path);
  switch (rec.op) {
    case EditOp::kMkdirs:
      break;
    case EditOp::kCreate:
      w.writeVarU64(rec.replication);
      w.writeVarU64(rec.block_size);
      break;
    case EditOp::kAddBlock:
      w.writeVarU64(rec.block.id);
      w.writeVarU64(rec.block.size);
      break;
    case EditOp::kComplete:
      w.writeVarU64(rec.blocks.size());
      for (const Block& b : rec.blocks) {
        w.writeVarU64(b.id);
        w.writeVarU64(b.size);
      }
      break;
    case EditOp::kDelete:
      w.writeBool(rec.recursive);
      break;
    case EditOp::kRename:
      w.writeBytes(rec.path2);
      break;
    case EditOp::kSetReplication:
      w.writeVarU64(rec.replication);
      break;
  }
  return out;
}

EditRecord decodeEditRecord(std::string_view payload) {
  ByteReader r(payload);
  EditRecord rec;
  rec.txn = r.readVarU64();
  const uint8_t op = r.readU8();
  if (op < static_cast<uint8_t>(EditOp::kMkdirs) ||
      op > static_cast<uint8_t>(EditOp::kSetReplication)) {
    throw InvalidArgumentError("unknown edit opcode " + std::to_string(op));
  }
  rec.op = static_cast<EditOp>(op);
  rec.path = r.readString();
  switch (rec.op) {
    case EditOp::kMkdirs:
      break;
    case EditOp::kCreate:
      rec.replication = static_cast<uint16_t>(r.readVarU64());
      rec.block_size = r.readVarU64();
      break;
    case EditOp::kAddBlock:
      rec.block.id = r.readVarU64();
      rec.block.size = r.readVarU64();
      break;
    case EditOp::kComplete: {
      const uint64_t n = r.readVarU64();
      rec.blocks.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        Block b;
        b.id = r.readVarU64();
        b.size = r.readVarU64();
        rec.blocks.push_back(b);
      }
      break;
    }
    case EditOp::kDelete:
      rec.recursive = r.readBool();
      break;
    case EditOp::kRename:
      rec.path2 = r.readString();
      break;
    case EditOp::kSetReplication:
      rec.replication = static_cast<uint16_t>(r.readVarU64());
      break;
  }
  if (!r.atEnd()) {
    throw InvalidArgumentError("trailing bytes in edit record");
  }
  return rec;
}

void applyEdit(Namespace& ns, const EditRecord& rec) {
  switch (rec.op) {
    case EditOp::kMkdirs:
      ns.mkdirs(rec.path);
      break;
    case EditOp::kCreate:
      // A second replay pass (or a create over a leftover) resets the path;
      // the records that follow rebuild it identically.
      if (ns.exists(rec.path)) ns.remove(rec.path, /*recursive=*/true);
      ns.createFile(rec.path, rec.replication, rec.block_size);
      break;
    case EditOp::kAddBlock: {
      if (!ns.exists(rec.path) || ns.isDirectory(rec.path) ||
          ns.isComplete(rec.path)) {
        break;
      }
      const auto& blocks = ns.fileBlocks(rec.path);
      const bool dup =
          std::any_of(blocks.begin(), blocks.end(),
                      [&](const Block& b) { return b.id == rec.block.id; });
      if (!dup) ns.addBlock(rec.path, rec.block);
      break;
    }
    case EditOp::kComplete:
      if (!ns.exists(rec.path) || ns.isDirectory(rec.path)) break;
      ns.setFileBlocks(rec.path, rec.blocks);
      ns.completeFile(rec.path);
      break;
    case EditOp::kDelete:
      if (ns.exists(rec.path)) ns.remove(rec.path, rec.recursive);
      break;
    case EditOp::kRename:
      if (!ns.exists(rec.path)) break;
      // On a second pass the destination holds the first pass's result;
      // replace it with this pass's (identical) source.
      if (ns.exists(rec.path2)) ns.remove(rec.path2, /*recursive=*/true);
      ns.rename(rec.path, rec.path2);
      break;
    case EditOp::kSetReplication:
      if (!ns.exists(rec.path) || ns.isDirectory(rec.path)) break;
      ns.setReplication(rec.path, rec.replication);
      break;
  }
}

ReplayResult replayEdits(Namespace& ns, const std::vector<EditRecord>& edits,
                         uint64_t from_txn) {
  ReplayResult result;
  result.last_txn = from_txn;
  for (const EditRecord& rec : edits) {
    if (rec.op == EditOp::kAddBlock) {
      result.max_block_id = std::max(result.max_block_id, rec.block.id);
    }
    for (const Block& b : rec.blocks) {
      result.max_block_id = std::max(result.max_block_id, b.id);
    }
    if (rec.txn <= from_txn) continue;  // already covered by the image
    applyEdit(ns, rec);
    result.last_txn = rec.txn;
    ++result.applied;
  }
  return result;
}

// ------------------------------------------------------------------ EditLog

EditLog::EditLog(Options options, uint64_t last_txn, uint64_t checkpoint_txn)
    : dir_(std::move(options.dir)),
      sync_always_(options.sync != "batch"),
      batch_txns_(std::max<uint64_t>(1, options.batch_txns)),
      metrics_(options.metrics),
      tracer_(options.tracer),
      last_txn_(last_txn),
      synced_txn_(last_txn),
      checkpoint_txn_(checkpoint_txn) {
  if (options.sync != "always" && options.sync != "batch") {
    throw InvalidArgumentError("dfs.namenode.edits.sync must be 'always' or "
                               "'batch', got '" + options.sync + "'");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw IoError("cannot create edit log dir " + dir_.string() + ": " +
                  ec.message());
  }
  // Always open a fresh segment at last_txn+1 (recovery never appends to an
  // old segment). If the file already exists it can only hold a torn record
  // or nothing — every complete record was counted into last_txn — so
  // truncating discards only garbage.
  openSegment(last_txn_ + 1);
}

EditLog::~EditLog() {
  try {
    sync();
  } catch (const Error& e) {
    logWarn(kLog) << "sync on close failed: " << e.what();
  }
}

void EditLog::openSegment(uint64_t first_txn) {
  segment_first_txn_ = first_txn;
  const fs::path path = dir_ / txnFileName(kEditsPrefix, first_txn);
  out_.close();
  out_.clear();
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_) throw IoError("cannot open edits segment " + path.string());
}

uint64_t EditLog::logEdit(EditRecord rec) {
  rec.txn = ++last_txn_;
  appendFrame(pending_, encodeEditRecord(rec));
  ++pending_txns_;
  if (metrics_ != nullptr) metrics_->counter("edits.txns").add();
  if (sync_always_ || pending_txns_ >= batch_txns_) sync();
  return last_txn_;
}

void EditLog::sync() {
  if (pending_.empty()) return;
  Stopwatch sw;
  std::optional<TraceSpan> span;
  if (tracer_ != nullptr && tracer_->enabled()) {
    span.emplace(tracer_, "namenode", "EDIT_SYNC");
    span->arg("txns", std::to_string(pending_txns_));
  }
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  out_.flush();
  if (!out_) {
    throw IoError("edit log sync failed on segment " +
                  txnFileName(kEditsPrefix, segment_first_txn_));
  }
  pending_.clear();
  pending_txns_ = 0;
  synced_txn_ = last_txn_;
  if (metrics_ != nullptr) {
    metrics_->histogram("edits.sync.micros").record(sw.elapsedMicros());
  }
}

uint64_t EditLog::roll() {
  sync();
  if (last_txn_ + 1 == segment_first_txn_) {
    return segment_first_txn_;  // current segment is empty; nothing to roll
  }
  openSegment(last_txn_ + 1);
  return segment_first_txn_;
}

void EditLog::checkpoint(const Bytes& image) {
  roll();
  Bytes file;
  ByteWriter w(file);
  w.writeU32(kImageMagic);
  w.writeVarU64(last_txn_);
  w.writeU32(crc32c(image));
  w.writeBytes(image);

  const fs::path tmp = dir_ / (txnFileName(kImagePrefix, last_txn_) + ".tmp");
  const fs::path final_path = dir_ / txnFileName(kImagePrefix, last_txn_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) throw IoError("cannot write checkpoint " + tmp.string());
  }
  fs::rename(tmp, final_path);
  checkpoint_txn_ = last_txn_;

  // Retire everything the new image covers: every non-current segment (the
  // roll above closed them all at txns <= checkpoint_txn_) and older images.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (const auto txn = txnFromName(name, kEditsPrefix);
        txn && *txn != segment_first_txn_) {
      fs::remove(entry.path());
    } else if (const auto itxn = txnFromName(name, kImagePrefix);
               itxn && *itxn < checkpoint_txn_) {
      fs::remove(entry.path());
    }
  }
  logInfo(kLog) << "checkpoint at txn " << checkpoint_txn_ << " ("
                << image.size() << " image bytes)";
}

void EditLog::discardPending() {
  pending_.clear();
  pending_txns_ = 0;
  last_txn_ = synced_txn_;
}

bool EditLog::hasState(const fs::path& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (txnFromName(name, kEditsPrefix) || txnFromName(name, kImagePrefix)) {
      return true;
    }
  }
  return false;
}

LoadedStorage EditLog::load(const fs::path& dir) {
  LoadedStorage loaded;
  std::vector<uint64_t> segments;
  uint64_t image_txn = 0;
  bool have_image = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (const auto txn = txnFromName(name, kEditsPrefix)) {
      segments.push_back(*txn);
    } else if (const auto itxn = txnFromName(name, kImagePrefix)) {
      if (!have_image || *itxn > image_txn) {
        image_txn = *itxn;
        have_image = true;
      }
    }
  }
  if (have_image) {
    const Bytes file = readWholeFile(dir / txnFileName(kImagePrefix, image_txn));
    ByteReader r(file);
    try {
      if (r.readU32() != kImageMagic) {
        throw InvalidArgumentError("bad magic");
      }
      const uint64_t txn = r.readVarU64();
      const uint32_t crc = r.readU32();
      const std::string_view image = r.readBytes();
      if (crc32c(image) != crc) {
        throw ChecksumError("fsimage CRC mismatch");
      }
      loaded.image = Bytes(image);
      loaded.image_txn = txn;
    } catch (const InvalidArgumentError& e) {
      throw IoError("unreadable fsimage_" + std::to_string(image_txn) + ": " +
                    e.what());
    }
  }
  loaded.last_txn = loaded.image_txn;

  std::sort(segments.begin(), segments.end());
  for (size_t i = 0; i < segments.size(); ++i) {
    const fs::path path = dir / txnFileName(kEditsPrefix, segments[i]);
    const SegmentContents contents = readSegment(path);
    if (contents.torn && i + 1 != segments.size()) {
      throw IoError("torn record in non-final edits segment " + path.string());
    }
    for (const EditRecord& rec : contents.records) {
      if (!loaded.edits.empty() && rec.txn <= loaded.edits.back().txn) {
        throw IoError("edit txns out of order in " + path.string() + ": txn " +
                      std::to_string(rec.txn) + " after " +
                      std::to_string(loaded.edits.back().txn));
      }
      loaded.edits.push_back(rec);
      loaded.last_txn = std::max(loaded.last_txn, rec.txn);
    }
  }
  return loaded;
}

}  // namespace mh::hdfs
