#include "mh/hdfs/mini_cluster.h"

#include <chrono>
#include <thread>

#include "mh/common/error.h"

namespace mh::hdfs {

MiniDfsCluster::MiniDfsCluster(MiniDfsOptions options)
    : options_(std::move(options)), conf_(options_.conf) {
  if (options_.num_datanodes < 1) {
    throw InvalidArgumentError("cluster needs >= 1 datanode");
  }
  network_ = std::make_shared<net::Network>();
  namenode_ = std::make_unique<NameNode>(conf_, network_, "namenode");
  namenode_->start();
  for (int i = 0; i < options_.num_datanodes; ++i) {
    addDataNode();
  }
}

MiniDfsCluster::~MiniDfsCluster() {
  // Snapshotter first: its sampler walks every daemon's gauges, so it must
  // quiesce before any daemon is destroyed.
  network_->stopSnapshotter();
  for (auto& [host, dn] : datanodes_) dn->stop();
  if (namenode_ != nullptr) namenode_->stop();
}

std::string MiniDfsCluster::hostName(int index) const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "node%02d", index);
  return buf;
}

std::vector<std::string> MiniDfsCluster::dataNodeHosts() const {
  std::vector<std::string> hosts;
  hosts.reserve(datanodes_.size());
  for (const auto& [host, dn] : datanodes_) hosts.push_back(host);
  return hosts;
}

DataNode& MiniDfsCluster::dataNode(const std::string& host) {
  const auto it = datanodes_.find(host);
  if (it == datanodes_.end()) {
    throw NotFoundError("no datanode on " + host);
  }
  return *it->second;
}

DfsClient MiniDfsCluster::client(const std::string& host) {
  // The NameNode host name is fixed, so clients can be minted even while
  // the NameNode is down (they get NetworkError until it returns).
  return DfsClient(conf_, network_, host, "namenode");
}

void MiniDfsCluster::killDataNode(const std::string& host) {
  dataNode(host).crash();
}

void MiniDfsCluster::stopDataNode(const std::string& host) {
  dataNode(host).stop();
}

void MiniDfsCluster::restartDataNode(const std::string& host) {
  network_->setHostUp(host, true);
  dataNode(host).start();
}

std::string MiniDfsCluster::rackOf(const std::string& host) const {
  // Hosts are node01, node02, ... assigned round-robin over the racks.
  const int racks = std::max(1, options_.racks);
  const int index = std::stoi(host.substr(4)) - 1;
  return "/rack" + std::to_string(index % racks);
}

std::string MiniDfsCluster::addDataNode() {
  const std::string host = hostName(next_node_index_++);
  std::shared_ptr<BlockStore> store;
  if (options_.use_file_store) {
    store = std::make_shared<FileBlockStore>(options_.store_root / host);
  } else {
    store = std::make_shared<MemBlockStore>();
  }
  stores_.emplace(host, store);
  Config node_conf = conf_;
  node_conf.set("dfs.datanode.rack", rackOf(host));
  auto dn = std::make_unique<DataNode>(node_conf, network_, host, store,
                                       namenode_->host());
  dn->start();
  datanodes_.emplace(host, std::move(dn));
  return host;
}

void MiniDfsCluster::crashNameNode() {
  if (namenode_ == nullptr) return;
  namenode_->crash();
  namenode_.reset();
}

void MiniDfsCluster::restartNameNode() {
  if (!conf_.get("dfs.namenode.name.dir").empty()) {
    // Journaling cluster: recover from disk (image + edit segments). Works
    // whether the old NameNode stopped cleanly, crashed, or is already gone.
    if (namenode_ != nullptr) {
      namenode_->stop();
      namenode_.reset();
    }
    network_->setHostUp("namenode", true);
    namenode_ = std::make_unique<NameNode>(conf_, network_, "namenode");
    namenode_->start();
    return;
  }
  const Bytes image = namenode_->saveImage();
  namenode_->stop();
  namenode_ = std::make_unique<NameNode>(conf_, network_, "namenode", image);
  namenode_->start();
}

bool MiniDfsCluster::waitHealthy(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (namenode_ != nullptr) {
      const FsckReport report = namenode_->fsck();
      if (report.healthy && report.under_replicated == 0) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

bool MiniDfsCluster::waitOutOfSafeMode(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (namenode_ != nullptr && !namenode_->inSafeMode()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace mh::hdfs
