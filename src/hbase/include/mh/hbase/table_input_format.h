#pragma once

#include <string>

#include "mh/hbase/table.h"
#include "mh/mr/input_format.h"

/// \file table_input_format.h
/// MapReduce over an HBase table (the analogue of Hadoop's
/// TableInputFormat): splits are contiguous row ranges, records are
///
///   key   = row key
///   value = kv_stream frames of (column, value) pairs (decode with
///           mh::mr::KvReader)
///
/// Each map task opens its own read-only view of the table through the
/// task's FileSystemView, so scans run wherever the task was scheduled.
/// Split descriptors are self-contained (row ranges hex-encoded into the
/// InputSplit path), which lets them travel through the ordinary task
/// assignment wire format.

namespace mh::hbase {

class TableInputFormat final : public mr::InputFormat {
 public:
  /// The job's input_paths are ignored; the table identity lives here.
  TableInputFormat(std::string root, std::string name,
                   uint32_t num_splits = 4);

  std::vector<mr::InputSplit> getSplits(
      mr::FileSystemView& fs, const std::vector<std::string>& paths) override;

  std::unique_ptr<mr::RecordReader> createReader(
      mr::FileSystemView& fs, const mr::InputSplit& split,
      const Config& conf) override;

  /// Builds the factory for a JobSpec. Set the spec's input_paths to any
  /// non-empty placeholder (conventionally the table directory).
  static mr::InputFormatFactory factory(std::string root, std::string name,
                                        uint32_t num_splits = 4);

 private:
  std::string root_;
  std::string name_;
  uint32_t num_splits_;
};

/// Encodes one row's columns as the value payload (kv_stream frames).
Bytes encodeRowColumns(const RowResult& row);

/// Decodes a TableInputFormat value payload back into column -> value.
std::map<std::string, Bytes> decodeRowColumns(std::string_view value);

}  // namespace mh::hbase
