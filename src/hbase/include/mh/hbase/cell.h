#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "mh/common/serde.h"

/// \file cell.h
/// The unit of storage in the mini-HBase table: a versioned (row, column)
/// entry. Cells are ordered by (row, column, seq DESC) so scans see the
/// newest version of each coordinate first.

namespace mh::hbase {

enum class CellType : uint8_t {
  kPut = 0,
  kDelete = 1,  ///< tombstone: hides older versions until compacted away
};

struct Cell {
  std::string row;
  std::string column;
  uint64_t seq = 0;  ///< monotonically increasing write sequence
  CellType type = CellType::kPut;
  Bytes value;

  bool operator==(const Cell&) const = default;

  /// Sort key: (row, column) ascending, then newest (highest seq) first.
  friend bool operator<(const Cell& a, const Cell& b) {
    return std::tie(a.row, a.column) < std::tie(b.row, b.column) ||
           (std::tie(a.row, a.column) == std::tie(b.row, b.column) &&
            a.seq > b.seq);
  }

  /// Same (row, column) coordinate?
  bool sameCoord(const Cell& other) const {
    return row == other.row && column == other.column;
  }
};

}  // namespace mh::hbase

namespace mh {

template <>
struct Serde<hbase::Cell> {
  static void encode(ByteWriter& w, const hbase::Cell& v) {
    w.writeBytes(v.row);
    w.writeBytes(v.column);
    w.writeVarU64(v.seq);
    w.writeU8(static_cast<uint8_t>(v.type));
    w.writeBytes(v.value);
  }
  static hbase::Cell decode(ByteReader& r) {
    hbase::Cell v;
    v.row = r.readString();
    v.column = r.readString();
    v.seq = r.readVarU64();
    v.type = static_cast<hbase::CellType>(r.readU8());
    v.value = r.readString();
    return v;
  }
};

}  // namespace mh
