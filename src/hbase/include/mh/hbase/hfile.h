#pragma once

#include <string>
#include <vector>

#include "mh/hbase/cell.h"
#include "mh/mr/fs_view.h"

/// \file hfile.h
/// The immutable on-(H)DFS file format holding a sorted run of cells — the
/// mini-HBase analogue of HFiles. Layout:
///
///   [magic "MHF1"][varint cell count][cells...][crc32c of everything prior]
///
/// Files are written once (matching HDFS's write-once contract) and read
/// whole; the trailing checksum catches truncation/corruption beyond what
/// the DataNode's block checksums already cover.

namespace mh::hbase {

inline constexpr const char* kHFileMagic = "MHF1";

/// Serializes sorted cells into HFile bytes. Cells must already be sorted;
/// throws InvalidArgumentError otherwise.
Bytes encodeHFile(const std::vector<Cell>& cells);

/// Parses and validates HFile bytes.
std::vector<Cell> decodeHFile(std::string_view data);

/// Writes an HFile to `path` via the file system view.
void writeHFile(mr::FileSystemView& fs, const std::string& path,
                const std::vector<Cell>& cells);

/// Reads an HFile from `path`.
std::vector<Cell> readHFile(mr::FileSystemView& fs, const std::string& path);

}  // namespace mh::hbase
