#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mh/common/config.h"
#include "mh/hbase/cell.h"
#include "mh/mr/fs_view.h"

/// \file table.h
/// A single-region mini-HBase table: an LSM tree over any FileSystemView
/// (HDFS or local). This is the working artifact behind the course's
/// Fall-2013 HBase lecture — "a more comprehensive view of the Hadoop
/// ecosystem" — demonstrating how a random-access, mutable store is built
/// on top of an immutable, append-only file system:
///
///  * writes land in an in-memory **MemStore** and in **WAL segments**
///    (write-once files, grouped every `hbase.wal.segment.ops` mutations);
///  * **flush()** turns the MemStore into an immutable sorted **HFile**;
///  * reads/scans merge the MemStore with every HFile, newest version
///    wins, delete tombstones hide older puts;
///  * **compact()** folds all HFiles into one, discarding shadowed
///    versions and tombstones;
///  * **open()** recovers state from HFiles + WAL replay after a crash.
///
/// Directory layout under `<root>/<name>`:
///   hfile-<seq>   sorted immutable runs
///   wal-<seq>     write-ahead segments since the last flush

namespace mh::hbase {

/// One row of scan output: column -> value.
struct RowResult {
  std::string row;
  std::map<std::string, Bytes> columns;

  bool operator==(const RowResult&) const = default;
};

class Table {
 public:
  /// Opens (or creates) the table at `<root>/<name>`, replaying any WAL
  /// segments left by a crash. `fs` must outlive the table.
  static std::unique_ptr<Table> open(mr::FileSystemView& fs,
                                     const std::string& root,
                                     const std::string& name,
                                     Config conf = {});

  /// Writes a cell (buffered in the MemStore; WAL-segmented durability).
  void put(const std::string& row, const std::string& column, Bytes value);

  /// Tombstones a cell.
  void remove(const std::string& row, const std::string& column);

  /// Latest value, or nullopt if absent/deleted.
  std::optional<Bytes> get(const std::string& row, const std::string& column);

  /// All live columns of one row.
  std::optional<RowResult> getRow(const std::string& row);

  /// Rows in [start_row, end_row), merged and deduplicated, newest wins.
  /// An empty end_row means "to the end".
  std::vector<RowResult> scan(const std::string& start_row = "",
                              const std::string& end_row = "");

  /// Persists the MemStore as a new HFile and drops the WAL segments.
  void flush();

  /// Merges every HFile into one, dropping shadowed versions + tombstones.
  /// Flushes first so the result is the complete table.
  void compact();

  /// Forces any buffered WAL ops into a segment (group-commit sync).
  void syncWal();

  // ----- introspection ------------------------------------------------

  size_t memstoreCells() const { return memstore_.size(); }
  size_t hfileCount() const { return hfiles_.size(); }
  uint64_t lastSeq() const { return next_seq_ - 1; }

 private:
  Table(mr::FileSystemView& fs, std::string dir, Config conf);

  void recover();
  void logToWal(const Cell& cell);
  void writeWalSegment();
  /// All cells, sorted, memstore + hfiles (no dedup).
  std::vector<Cell> mergedCells() const;

  mr::FileSystemView& fs_;
  std::string dir_;
  Config conf_;

  std::map<std::pair<std::string, std::string>, Cell> memstore_;
  std::vector<std::vector<Cell>> hfiles_;  // loaded, each sorted
  std::vector<std::string> hfile_paths_;
  std::vector<Cell> wal_buffer_;
  uint64_t next_seq_ = 1;
  uint64_t next_file_seq_ = 1;
  uint64_t next_wal_seq_ = 1;
};

}  // namespace mh::hbase
