#include "mh/hbase/table_input_format.h"

#include "mh/common/error.h"
#include "mh/common/strings.h"
#include "mh/mr/kv_stream.h"

namespace mh::hbase {

namespace {

constexpr const char* kScheme = "mhtable:";

std::string hexEncode(std::string_view s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() * 2);
  for (const char c : s) {
    out.push_back(kDigits[static_cast<uint8_t>(c) >> 4]);
    out.push_back(kDigits[static_cast<uint8_t>(c) & 0xF]);
  }
  return out;
}

std::string hexDecode(std::string_view s) {
  if (s.size() % 2 != 0) throw InvalidArgumentError("odd hex length");
  const auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw InvalidArgumentError("bad hex digit");
  };
  std::string out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<char>(nibble(s[i]) << 4 | nibble(s[i + 1])));
  }
  return out;
}

/// Split descriptor: "mhtable:<root>\n<name>\n<hex start>\n<hex end>".
std::string encodeDescriptor(const std::string& root, const std::string& name,
                             const std::string& start,
                             const std::string& end) {
  return std::string(kScheme) + root + "\n" + name + "\n" + hexEncode(start) +
         "\n" + hexEncode(end);
}

struct Descriptor {
  std::string root;
  std::string name;
  std::string start;
  std::string end;
};

Descriptor decodeDescriptor(const std::string& path) {
  if (path.rfind(kScheme, 0) != 0) {
    throw InvalidArgumentError("not a table split: " + path);
  }
  const auto parts =
      splitString(path.substr(std::string(kScheme).size()), '\n');
  if (parts.size() != 4) {
    throw InvalidArgumentError("bad table split descriptor");
  }
  return {parts[0], parts[1], hexDecode(parts[2]), hexDecode(parts[3])};
}

class TableRecordReader final : public mr::RecordReader {
 public:
  TableRecordReader(mr::FileSystemView& fs, const Descriptor& descriptor) {
    auto table = Table::open(fs, descriptor.root, descriptor.name);
    rows_ = table->scan(descriptor.start, descriptor.end);
  }

  bool next(std::string_view& key, std::string_view& value) override {
    if (pos_ >= rows_.size()) return false;
    key = rows_[pos_].row;
    value_ = encodeRowColumns(rows_[pos_]);
    value = value_;
    ++pos_;
    return true;
  }

 private:
  std::vector<RowResult> rows_;
  Bytes value_;  // backing store for the returned value view
  size_t pos_ = 0;
};

}  // namespace

Bytes encodeRowColumns(const RowResult& row) {
  Bytes out;
  mr::KvWriter writer(out);
  for (const auto& [column, value] : row.columns) {
    writer.write(column, value);
  }
  return out;
}

std::map<std::string, Bytes> decodeRowColumns(std::string_view value) {
  std::map<std::string, Bytes> columns;
  mr::KvReader reader(value);
  std::string_view col;
  std::string_view val;
  while (reader.next(col, val)) {
    columns.emplace(std::string(col), Bytes(val));
  }
  return columns;
}

TableInputFormat::TableInputFormat(std::string root, std::string name,
                                   uint32_t num_splits)
    : root_(std::move(root)), name_(std::move(name)),
      num_splits_(num_splits) {
  if (num_splits_ == 0) throw InvalidArgumentError("need >= 1 split");
}

std::vector<mr::InputSplit> TableInputFormat::getSplits(
    mr::FileSystemView& fs, const std::vector<std::string>&) {
  // Sample the current row set to choose contiguous range boundaries.
  auto table = Table::open(fs, root_, name_);
  const auto rows = table->scan();
  std::vector<mr::InputSplit> splits;
  if (rows.empty()) return splits;

  const size_t per_split =
      (rows.size() + num_splits_ - 1) / num_splits_;
  std::string start;  // "" = from the beginning
  for (size_t begin = 0; begin < rows.size(); begin += per_split) {
    const size_t end_index = begin + per_split;
    const std::string end =
        end_index < rows.size() ? rows[end_index].row : "";
    mr::InputSplit split;
    split.path = encodeDescriptor(root_, name_, start, end);
    split.length = std::min(per_split, rows.size() - begin);  // row count
    splits.push_back(std::move(split));
    if (end.empty()) break;
    start = end;
  }
  return splits;
}

std::unique_ptr<mr::RecordReader> TableInputFormat::createReader(
    mr::FileSystemView& fs, const mr::InputSplit& split, const Config&) {
  return std::make_unique<TableRecordReader>(fs, decodeDescriptor(split.path));
}

mr::InputFormatFactory TableInputFormat::factory(std::string root,
                                                 std::string name,
                                                 uint32_t num_splits) {
  return [root = std::move(root), name = std::move(name), num_splits] {
    return std::make_unique<TableInputFormat>(root, name, num_splits);
  };
}

}  // namespace mh::hbase
