#include "mh/hbase/table.h"

#include <algorithm>

#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/strings.h"
#include "mh/hbase/hfile.h"

namespace mh::hbase {

namespace {
constexpr const char* kLog = "hbase";

uint64_t suffixNumber(const std::string& path, const char* prefix) {
  const auto slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (name.rfind(prefix, 0) != 0) return 0;
  const std::string digits = name.substr(std::string(prefix).size());
  return isDigits(digits) ? std::stoull(digits) : 0;
}

}  // namespace

Table::Table(mr::FileSystemView& fs, std::string dir, Config conf)
    : fs_(fs), dir_(std::move(dir)), conf_(std::move(conf)) {}

std::unique_ptr<Table> Table::open(mr::FileSystemView& fs,
                                   const std::string& root,
                                   const std::string& name, Config conf) {
  auto table = std::unique_ptr<Table>(
      new Table(fs, root + "/" + name, std::move(conf)));
  fs.mkdirs(table->dir_);
  table->recover();
  return table;
}

void Table::recover() {
  // Collect hfile-* and wal-* under the table dir, ordered by sequence.
  std::vector<std::pair<uint64_t, std::string>> hfile_entries;
  std::vector<std::pair<uint64_t, std::string>> wal_entries;
  for (const auto& path : fs_.listFiles(dir_)) {
    if (const uint64_t n = suffixNumber(path, "hfile-"); n > 0) {
      hfile_entries.emplace_back(n, path);
    } else if (const uint64_t n2 = suffixNumber(path, "wal-"); n2 > 0) {
      wal_entries.emplace_back(n2, path);
    }
  }
  std::sort(hfile_entries.begin(), hfile_entries.end());
  std::sort(wal_entries.begin(), wal_entries.end());

  for (const auto& [seq, path] : hfile_entries) {
    hfiles_.push_back(readHFile(fs_, path));
    hfile_paths_.push_back(path);
    next_file_seq_ = std::max(next_file_seq_, seq + 1);
    for (const Cell& cell : hfiles_.back()) {
      next_seq_ = std::max(next_seq_, cell.seq + 1);
    }
  }
  // Replay WAL segments into the MemStore (they are cells since the last
  // flush; a crash lost only the unsynced tail of the in-memory buffer).
  for (const auto& [seq, path] : wal_entries) {
    const Bytes body = fs_.readRange(path, 0, fs_.fileLength(path));
    ByteReader r(body);
    while (!r.atEnd()) {
      Cell cell = Serde<Cell>::decode(r);
      next_seq_ = std::max(next_seq_, cell.seq + 1);
      memstore_[{cell.row, cell.column}] = std::move(cell);
    }
    next_wal_seq_ = std::max(next_wal_seq_, seq + 1);
  }
  if (!wal_entries.empty()) {
    logInfo(kLog) << dir_ << ": replayed " << wal_entries.size()
                  << " WAL segment(s), " << memstore_.size()
                  << " cells into the memstore";
  }
}

void Table::writeWalSegment() {
  if (wal_buffer_.empty()) return;
  Bytes body;
  ByteWriter w(body);
  for (const Cell& cell : wal_buffer_) {
    Serde<Cell>::encode(w, cell);
  }
  fs_.writeFile(dir_ + "/wal-" + std::to_string(next_wal_seq_++), body);
  wal_buffer_.clear();
}

void Table::logToWal(const Cell& cell) {
  wal_buffer_.push_back(cell);
  const auto segment_ops =
      static_cast<size_t>(conf_.getInt("hbase.wal.segment.ops", 64));
  if (wal_buffer_.size() >= segment_ops) writeWalSegment();
}

void Table::syncWal() { writeWalSegment(); }

void Table::put(const std::string& row, const std::string& column,
                Bytes value) {
  Cell cell{row, column, next_seq_++, CellType::kPut, std::move(value)};
  logToWal(cell);
  memstore_[{row, column}] = std::move(cell);
}

void Table::remove(const std::string& row, const std::string& column) {
  Cell cell{row, column, next_seq_++, CellType::kDelete, {}};
  logToWal(cell);
  memstore_[{row, column}] = std::move(cell);
}

std::optional<Bytes> Table::get(const std::string& row,
                                const std::string& column) {
  // MemStore first (always newest), then HFiles newest-file-first.
  const auto it = memstore_.find({row, column});
  if (it != memstore_.end()) {
    if (it->second.type == CellType::kDelete) return std::nullopt;
    return it->second.value;
  }
  const Cell probe{row, column, UINT64_MAX, CellType::kPut, {}};
  const Cell* best = nullptr;
  for (const auto& hfile : hfiles_) {
    const auto pos = std::lower_bound(hfile.begin(), hfile.end(), probe);
    if (pos != hfile.end() && pos->sameCoord(probe)) {
      if (best == nullptr || pos->seq > best->seq) best = &*pos;
    }
  }
  if (best == nullptr || best->type == CellType::kDelete) return std::nullopt;
  return best->value;
}

std::vector<Cell> Table::mergedCells() const {
  std::vector<Cell> all;
  for (const auto& hfile : hfiles_) {
    all.insert(all.end(), hfile.begin(), hfile.end());
  }
  for (const auto& [coord, cell] : memstore_) {
    all.push_back(cell);
  }
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<RowResult> Table::scan(const std::string& start_row,
                                   const std::string& end_row) {
  std::vector<RowResult> out;
  const auto cells = mergedCells();
  size_t i = 0;
  while (i < cells.size()) {
    // cells are (row, col) ascending with newest seq first: cells[i] is the
    // authoritative version of its coordinate.
    const Cell& cell = cells[i];
    size_t j = i + 1;
    while (j < cells.size() && cells[j].sameCoord(cell)) ++j;
    i = j;
    if (cell.row < start_row) continue;
    if (!end_row.empty() && cell.row >= end_row) continue;
    if (cell.type == CellType::kDelete) continue;
    if (out.empty() || out.back().row != cell.row) {
      out.push_back({cell.row, {}});
    }
    out.back().columns[cell.column] = cell.value;
  }
  return out;
}

std::optional<RowResult> Table::getRow(const std::string& row) {
  // Half-open scan over exactly this row: end key is row + '\0'.
  auto rows = scan(row, row + std::string(1, '\0'));
  if (rows.empty()) return std::nullopt;
  return std::move(rows.front());
}

void Table::flush() {
  writeWalSegment();
  if (memstore_.empty()) return;
  std::vector<Cell> cells;
  cells.reserve(memstore_.size());
  for (const auto& [coord, cell] : memstore_) cells.push_back(cell);
  std::sort(cells.begin(), cells.end());

  const std::string path =
      dir_ + "/hfile-" + std::to_string(next_file_seq_++);
  writeHFile(fs_, path, cells);
  hfiles_.push_back(std::move(cells));
  hfile_paths_.push_back(path);
  memstore_.clear();

  // The WAL is superseded by the durable HFile.
  for (const auto& file : fs_.listFiles(dir_)) {
    if (suffixNumber(file, "wal-") > 0) fs_.remove(file);
  }
  logInfo(kLog) << dir_ << ": flushed to " << path;
}

void Table::compact() {
  flush();
  if (hfiles_.size() <= 1 &&
      (hfiles_.empty() ||
       std::none_of(hfiles_[0].begin(), hfiles_[0].end(), [](const Cell& c) {
         return c.type == CellType::kDelete;
       }))) {
    return;  // already compact and tombstone-free
  }
  // Keep only the newest version per coordinate; drop tombstones entirely.
  std::vector<Cell> survivors;
  const auto cells = mergedCells();
  size_t i = 0;
  while (i < cells.size()) {
    const Cell& cell = cells[i];
    size_t j = i + 1;
    while (j < cells.size() && cells[j].sameCoord(cell)) ++j;
    i = j;
    if (cell.type == CellType::kPut) survivors.push_back(cell);
  }

  for (const auto& path : hfile_paths_) fs_.remove(path);
  hfiles_.clear();
  hfile_paths_.clear();
  if (!survivors.empty()) {
    const std::string path =
        dir_ + "/hfile-" + std::to_string(next_file_seq_++);
    writeHFile(fs_, path, survivors);
    hfiles_.push_back(std::move(survivors));
    hfile_paths_.push_back(path);
  }
  logInfo(kLog) << dir_ << ": compacted to " << hfiles_.size() << " hfile(s)";
}

}  // namespace mh::hbase
