#include "mh/hbase/hfile.h"

#include <algorithm>

#include "mh/common/crc32.h"
#include "mh/common/error.h"

namespace mh::hbase {

Bytes encodeHFile(const std::vector<Cell>& cells) {
  if (!std::is_sorted(cells.begin(), cells.end())) {
    throw InvalidArgumentError("HFile cells must be sorted");
  }
  Bytes out;
  ByteWriter w(out);
  w.writeRaw(kHFileMagic);
  w.writeVarU64(cells.size());
  for (const Cell& cell : cells) {
    Serde<Cell>::encode(w, cell);
  }
  const uint32_t crc = crc32c(out);
  w.writeU32(crc);
  return out;
}

std::vector<Cell> decodeHFile(std::string_view data) {
  if (data.size() < 8) throw InvalidArgumentError("HFile too small");
  const std::string_view body = data.substr(0, data.size() - 4);
  ByteReader trailer(data.substr(data.size() - 4));
  if (trailer.readU32() != crc32c(body)) {
    throw ChecksumError("HFile trailer checksum mismatch");
  }
  ByteReader r(body);
  if (r.readRaw(4) != kHFileMagic) {
    throw InvalidArgumentError("bad HFile magic");
  }
  const uint64_t count = r.readVarU64();
  std::vector<Cell> cells;
  cells.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    cells.push_back(Serde<Cell>::decode(r));
  }
  if (!r.atEnd()) throw InvalidArgumentError("trailing bytes in HFile");
  return cells;
}

void writeHFile(mr::FileSystemView& fs, const std::string& path,
                const std::vector<Cell>& cells) {
  fs.writeFile(path, encodeHFile(cells));
}

std::vector<Cell> readHFile(mr::FileSystemView& fs, const std::string& path) {
  return decodeHFile(fs.readRange(path, 0, fs.fileLength(path)));
}

}  // namespace mh::hbase
