#pragma once

#include <stdexcept>
#include <string>

/// \file error.h
/// Exception hierarchy used across the minihadoop library.
///
/// Errors that a correct program cannot recover from locally are thrown;
/// expected conditions (file-not-found on user-supplied paths in the shell,
/// etc.) are surfaced as status codes at the CLI boundary.

namespace mh {

/// Base class of all minihadoop exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Disk or block-store I/O failure.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("IoError: " + what) {}
};

/// A path, block, job, or node that does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what)
      : Error("NotFoundError: " + what) {}
};

/// Creating something that already exists (file, directory, endpoint).
class AlreadyExistsError : public Error {
 public:
  explicit AlreadyExistsError(const std::string& what)
      : Error("AlreadyExistsError: " + what) {}
};

/// An operation attempted in a state that forbids it
/// (e.g. writes while the NameNode is in safe mode).
class IllegalStateError : public Error {
 public:
  explicit IllegalStateError(const std::string& what)
      : Error("IllegalStateError: " + what) {}
};

/// Malformed user input: paths, CSV rows, serialized records.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what)
      : Error("InvalidArgumentError: " + what) {}
};

/// Simulated-network failures: unreachable host, port in use, closed bus.
class NetworkError : public Error {
 public:
  explicit NetworkError(const std::string& what)
      : Error("NetworkError: " + what) {}
};

/// Checksum mismatch while reading a block replica.
class ChecksumError : public IoError {
 public:
  explicit ChecksumError(const std::string& what)
      : IoError("checksum mismatch: " + what) {}
};

}  // namespace mh
