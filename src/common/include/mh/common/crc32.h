#pragma once

#include <cstdint>
#include <string_view>

/// \file crc32.h
/// CRC-32C (Castagnoli) — the checksum HDFS uses for block data integrity.
/// DataNodes store one CRC per 512-byte chunk in each block's .meta sidecar
/// and re-verify on every read and during periodic block scans.

namespace mh {

/// Computes CRC-32C over `data`, continuing from `seed` (0 for a fresh CRC).
uint32_t crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace mh
