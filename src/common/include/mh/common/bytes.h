#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "mh/common/error.h"

/// \file bytes.h
/// Binary encoding primitives: the wire format used for HDFS block metadata,
/// MapReduce intermediate key/value records, and RPC payloads.
///
/// The format is deliberately simple and Hadoop-Writable-flavoured:
/// fixed-width big-endian integers, LEB128 varints with zig-zag for signed
/// values, and length-prefixed byte strings.

namespace mh {

/// Owned binary buffer. A plain std::string keeps the API familiar and
/// allocation-friendly; contents are binary-safe.
using Bytes = std::string;

/// Appends encodings to a Bytes buffer.
class ByteWriter {
 public:
  /// Writes into an external buffer owned by the caller.
  explicit ByteWriter(Bytes& out) : out_(out) {}

  void writeU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void writeU32(uint32_t v) {
    char buf[4];
    buf[0] = static_cast<char>(v >> 24);
    buf[1] = static_cast<char>(v >> 16);
    buf[2] = static_cast<char>(v >> 8);
    buf[3] = static_cast<char>(v);
    out_.append(buf, 4);
  }

  void writeU64(uint64_t v) {
    writeU32(static_cast<uint32_t>(v >> 32));
    writeU32(static_cast<uint32_t>(v));
  }

  void writeI32(int32_t v) { writeU32(static_cast<uint32_t>(v)); }
  void writeI64(int64_t v) { writeU64(static_cast<uint64_t>(v)); }

  void writeDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    writeU64(bits);
  }

  void writeBool(bool v) { writeU8(v ? 1 : 0); }

  /// Unsigned LEB128.
  void writeVarU64(uint64_t v) {
    while (v >= 0x80) {
      writeU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    writeU8(static_cast<uint8_t>(v));
  }

  /// Zig-zag + LEB128 for signed values.
  void writeVarI64(int64_t v) {
    writeVarU64((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  /// Varint length prefix followed by raw bytes.
  void writeBytes(std::string_view v) {
    writeVarU64(v.size());
    out_.append(v.data(), v.size());
  }

  /// Raw bytes with no prefix (caller manages framing).
  void writeRaw(std::string_view v) { out_.append(v.data(), v.size()); }

 private:
  Bytes& out_;
};

/// Consumes encodings from a buffer; throws InvalidArgumentError on
/// truncated or malformed input.
class ByteReader {
 public:
  explicit ByteReader(std::string_view in) : in_(in) {}

  bool atEnd() const { return pos_ == in_.size(); }
  size_t remaining() const { return in_.size() - pos_; }
  size_t position() const { return pos_; }

  uint8_t readU8() {
    need(1);
    return static_cast<uint8_t>(in_[pos_++]);
  }

  uint32_t readU32() {
    need(4);
    uint32_t v = (static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_])) << 24) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_ + 1])) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_ + 2])) << 8) |
                 static_cast<uint32_t>(static_cast<uint8_t>(in_[pos_ + 3]));
    pos_ += 4;
    return v;
  }

  uint64_t readU64() {
    const uint64_t hi = readU32();
    return (hi << 32) | readU32();
  }

  int32_t readI32() { return static_cast<int32_t>(readU32()); }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }

  double readDouble() {
    const uint64_t bits = readU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool readBool() { return readU8() != 0; }

  uint64_t readVarU64() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift > 63) throw InvalidArgumentError("varint too long");
      const uint8_t b = readU8();
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  int64_t readVarI64() {
    const uint64_t z = readVarU64();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string_view readBytes() {
    const uint64_t n = readVarU64();
    need(n);
    std::string_view v = in_.substr(pos_, n);
    pos_ += n;
    return v;
  }

  std::string readString() { return std::string(readBytes()); }

  std::string_view readRaw(size_t n) {
    need(n);
    std::string_view v = in_.substr(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  void need(uint64_t n) const {
    if (remaining() < n) {
      throw InvalidArgumentError("truncated buffer: need " + std::to_string(n) +
                                 " bytes, have " + std::to_string(remaining()));
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

}  // namespace mh
