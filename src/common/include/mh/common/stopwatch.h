#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

/// \file stopwatch.h
/// Wall-clock timer over std::chrono::steady_clock for live-layer
/// measurements (benchmarks use google-benchmark's own timing; this is for
/// counters and progress reporting).

namespace mh {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void restart() { start_ = std::chrono::steady_clock::now(); }

  int64_t elapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  int64_t elapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  double elapsedSeconds() const {
    return static_cast<double>(elapsedMicros()) / 1e6;
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Sleeps up to `total`, waking early (within ~10 ms) when the stop token
/// fires — daemon heartbeat loops use this so shutdown never waits out a
/// full interval.
inline void interruptibleSleep(const std::stop_token& token,
                               std::chrono::milliseconds total) {
  constexpr auto kSlice = std::chrono::milliseconds(10);
  auto remaining = total;
  while (remaining.count() > 0 && !token.stop_requested()) {
    std::this_thread::sleep_for(std::min(kSlice, remaining));
    remaining -= kSlice;
  }
}

}  // namespace mh
