#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "mh/common/bytes.h"
#include "mh/common/error.h"

/// \file buffer.h
/// Immutable refcounted payload buffers — the zero-copy currency of the data
/// path. A `Buffer` owns bytes behind a `shared_ptr<const Bytes>`; a
/// `BufferView` is a (owner, offset, length) slice whose copy costs one
/// refcount bump plus two integers. Block reads, RPC payload replies, and
/// shuffle runs travel as views, so a 64 MB block served to a co-located
/// reader moves zero payload bytes.
///
/// Ownership rules (see DESIGN.md "Zero-copy data path"):
///  * Buffers are immutable once constructed. Mutation is copy-on-write at
///    the producer (e.g. MemBlockStore::corruptBlock builds a new Buffer).
///  * A view keeps its whole backing buffer alive; holding a tiny view of a
///    huge buffer pins the huge buffer. Call `str()` to detach.
///  * `str()` / assembling into a `Bytes` is the explicit copy point.

namespace mh {

class BufferView;

/// An immutable, refcounted byte buffer.
class Buffer {
 public:
  Buffer() = default;

  /// Takes ownership of `data` without copying.
  static Buffer fromString(Bytes&& data) {
    return Buffer(std::make_shared<const Bytes>(std::move(data)));
  }

  /// Copies `data` into a fresh buffer (the explicit copy point).
  static Buffer copyOf(std::string_view data) {
    return Buffer(std::make_shared<const Bytes>(data));
  }

  /// Adopts an existing shared payload — e.g. a MapOutputStore run — so the
  /// buffer aliases it instead of copying.
  static Buffer wrap(std::shared_ptr<const Bytes> data) {
    return Buffer(std::move(data));
  }

  bool empty() const { return data_ == nullptr || data_->empty(); }
  size_t size() const { return data_ == nullptr ? 0 : data_->size(); }
  const char* data() const { return data_ == nullptr ? nullptr : data_->data(); }

  std::string_view view() const {
    return data_ == nullptr ? std::string_view{} : std::string_view(*data_);
  }

  /// The underlying shared payload (null for a default-constructed buffer).
  const std::shared_ptr<const Bytes>& shared() const { return data_; }

  /// How many owners (buffers + views) share the payload; 0 when empty.
  long useCount() const { return data_ == nullptr ? 0 : data_.use_count(); }

 private:
  explicit Buffer(std::shared_ptr<const Bytes> data) : data_(std::move(data)) {}

  std::shared_ptr<const Bytes> data_;
};

/// A cheap slice of a Buffer: refcounted owner + (offset, length). Copying a
/// view never copies payload bytes; the view keeps the backing buffer alive.
class BufferView {
 public:
  BufferView() = default;

  /// Whole-buffer view.
  BufferView(Buffer buffer)  // NOLINT(google-explicit-constructor)
      : buffer_(std::move(buffer)), offset_(0), length_(buffer_.size()) {}

  /// Sub-range view; throws InvalidArgumentError when the range does not
  /// fit inside the buffer (length is NOT clamped — callers state intent).
  BufferView(Buffer buffer, size_t offset, size_t length)
      : buffer_(std::move(buffer)), offset_(offset), length_(length) {
    if (offset_ > buffer_.size() || length_ > buffer_.size() - offset_) {
      throw InvalidArgumentError(
          "BufferView range [" + std::to_string(offset_) + ", +" +
          std::to_string(length_) + ") outside buffer of " +
          std::to_string(buffer_.size()) + " bytes");
    }
  }

  bool empty() const { return length_ == 0; }
  size_t size() const { return length_; }
  const char* data() const { return buffer_.data() + offset_; }

  std::string_view view() const {
    return buffer_.view().substr(offset_, length_);
  }
  operator std::string_view() const { return view(); }  // NOLINT

  /// A narrower view sharing the same backing buffer. `length` is clamped
  /// to the view end (substr semantics); `offset` past the end throws.
  BufferView slice(size_t offset, size_t length) const {
    if (offset > length_) {
      throw InvalidArgumentError("BufferView::slice offset " +
                                 std::to_string(offset) + " past view end " +
                                 std::to_string(length_));
    }
    return BufferView(buffer_, offset_ + offset,
                      std::min(length, length_ - offset), Unchecked{});
  }

  /// Materializes the slice as an owned string (the explicit copy point).
  Bytes str() const { return Bytes(view()); }

  /// The backing buffer (its size may exceed this view's).
  const Buffer& buffer() const { return buffer_; }

 private:
  struct Unchecked {};
  BufferView(Buffer buffer, size_t offset, size_t length, Unchecked)
      : buffer_(std::move(buffer)), offset_(offset), length_(length) {}

  Buffer buffer_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

/// Content equality. The string_view overloads also cover Bytes and string
/// literals (both convert), which keeps gtest EXPECT_EQ natural.
inline bool operator==(const BufferView& a, const BufferView& b) {
  return a.view() == b.view();
}
inline bool operator==(const BufferView& a, std::string_view b) {
  return a.view() == b;
}
inline bool operator==(std::string_view a, const BufferView& b) {
  return a == b.view();
}

inline std::ostream& operator<<(std::ostream& os, const BufferView& v) {
  return os << v.view();
}

}  // namespace mh
