#pragma once

#include <cstdint>
#include <string_view>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/common/metrics.h"
#include "mh/common/trace.h"

/// \file codec.h
/// The pluggable compression layer: dependency-free codecs plus the framed
/// stream container shared by every seam (HDFS blocks at rest, map-side
/// spill runs, shuffle payloads).
///
/// Stream layout:
///
///     +------+------+=================================+
///     | MHC1 | codec|  frame  |  frame  | ... | frame |
///     | (4B) | (1B) |                                 |
///     +------+------+=================================+
///
///     frame := varint raw_len      uncompressed bytes in this frame
///              u8     method       0 = stored raw, 1 = codec-compressed
///              varint payload_len  bytes of payload that follow
///              u32    crc32c       of the RAW (decoded) frame bytes
///              payload
///
/// Each frame holds at most 64 KiB of raw input and decodes independently,
/// so a range read touches only the frames covering the range. The CRC is
/// over the raw bytes: a frame that decompresses structurally but to the
/// wrong bytes is caught, and the error is a ChecksumError — the same shape
/// a chunk-checksum mismatch produces, so upstream replica sweeps treat the
/// two identically. Structural damage (truncation, impossible token,
/// out-of-window offset) throws InvalidArgumentError instead. A frame whose
/// compressed form would not shrink is stored raw (method 0), so the worst
/// case expansion is the per-frame header.
///
/// Decoded output always lands in a fresh `mh::Buffer`; consumers keep
/// zero-copy views of that buffer, never of the encoded stream.

namespace mh {

/// Wire identifiers — stable, they appear in stored streams and meta files.
enum class CodecKind : uint8_t {
  kNone = 0,   ///< identity; never appears in a framed stream
  kMhLz = 1,   ///< byte-oriented LZ77, greedy hash-chain match, 64 KiB window
  kVarRle = 2  ///< varint-token run-length encoding
};

/// Config value <-> kind ("none", "mh-lz", "var-rle"); throws
/// InvalidArgumentError on an unknown name or id.
CodecKind codecFromName(std::string_view name);
std::string_view codecName(CodecKind kind);
CodecKind codecFromId(uint8_t id);

/// Raw bytes per frame. Also the LZ match window: offsets are 16-bit.
inline constexpr size_t kCodecFrameRawBytes = 64 * 1024;

/// Magic (4) + codec id (1).
inline constexpr size_t kCodecHeaderBytes = 5;

/// True when `stream` starts with a well-formed codec header. Raw data can
/// collide with the magic only by starting with the literal bytes "MHC1" —
/// callers that accept both shapes should gate on configuration first.
bool isEncodedStream(std::string_view stream);

/// Cheap structural summary of an encoded stream: walks the frame headers
/// (no decompression, no CRC work). Throws InvalidArgumentError when the
/// stream is not framed or a frame header is torn.
struct EncodedStreamInfo {
  CodecKind codec = CodecKind::kNone;
  uint64_t raw_size = 0;
  size_t frame_count = 0;
};
EncodedStreamInfo encodedStreamInfo(std::string_view stream);

/// Encodes `raw` into a framed stream. `kNone` is rejected (the caller's
/// seam should skip encoding entirely). When `metrics` is non-null the
/// elapsed time lands in the `codec.<name>` child's `encode.micros`
/// histogram; when `trace` is enabled a COMPRESS span is emitted under
/// `component`.
Bytes codecEncode(CodecKind kind, std::string_view raw,
                  MetricsRegistry* metrics = nullptr,
                  TraceCollector* trace = nullptr,
                  std::string_view component = "codec");

/// Decodes a whole framed stream into a fresh Buffer. Self-describing: the
/// codec comes from the stream header. Throws InvalidArgumentError on
/// structural damage, ChecksumError on a frame-CRC mismatch.
Buffer codecDecode(std::string_view stream, MetricsRegistry* metrics = nullptr,
                   TraceCollector* trace = nullptr,
                   std::string_view component = "codec");

/// Decodes only the frames covering [offset, offset+len) of the raw bytes
/// and returns a view positioned over exactly that range (len clamps to the
/// raw end; an offset past the end throws InvalidArgumentError — mirroring
/// BlockStore::readBlockRange). Frames before the range are skipped without
/// decompression.
BufferView codecDecodeRange(std::string_view stream, uint64_t offset,
                            uint64_t len, MetricsRegistry* metrics = nullptr,
                            TraceCollector* trace = nullptr,
                            std::string_view component = "codec");

}  // namespace mh
