#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file csv.h
/// RFC-4180-ish CSV encode/decode for the synthetic datasets (airline
/// on-time, movie ratings, music ratings, cluster trace). Handles quoted
/// fields with embedded commas/quotes/newlines; no header inference.

namespace mh {

/// Parses a single CSV record. Throws InvalidArgumentError on an unbalanced
/// quote. Embedded newlines are supported only via parseCsvStream.
std::vector<std::string> parseCsvLine(std::string_view line);

/// Encodes fields as one CSV record (no trailing newline).
std::string formatCsvLine(const std::vector<std::string>& fields);

}  // namespace mh
