#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

/// \file blocking_queue.h
/// Unbounded MPMC queue with close() semantics, used for heartbeat events
/// and shuffle fetch scheduling. pop() returns nullopt once the queue is
/// closed and drained.

namespace mh {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item; returns false if the queue has been closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt when closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> tryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Wakes all waiters; subsequent pushes fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mh
