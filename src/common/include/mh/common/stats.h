#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// \file stats.h
/// Summary statistics used by the survey reproduction (Tables I–IV) and by
/// benchmark reporting: single-pass mean/stddev, histograms, percentiles.

namespace mh {

/// Welford's online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator), 0 for fewer than 2 samples.
  double stddev() const;
  /// Population standard deviation (n denominator).
  double stddevPopulation() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStat& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void add(double x);
  int64_t bucketCount(size_t i) const { return counts_.at(i); }
  size_t buckets() const { return counts_.size(); }
  int64_t total() const { return total_; }
  double bucketLow(size_t i) const;
  double bucketHigh(size_t i) const;

  /// Renders a terminal bar chart, one line per bucket.
  std::string render(size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Returns the p-th percentile (0..100) of the sample by linear
/// interpolation. The input is copied and sorted. An empty sample has no
/// percentiles; by definition this returns 0.0 for it (matching the
/// metrics-layer histograms), rather than throwing.
double percentile(std::vector<double> samples, double p);

/// Formats "m±s" with the given precision, as the paper's tables print.
std::string formatMeanStd(double mean, double stddev, int precision = 2);

}  // namespace mh
