#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file threadpool.h
/// Fixed-size worker pool. TaskTrackers use one pool per tracker (its "task
/// slots"); benchmarks use pools for parallel data generation.

namespace mh {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(size_t threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its result. Tasks submitted after
  /// shutdown() throw IllegalStateError.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Blocks until every queued and running task has finished.
  void waitIdle();

  /// Stops accepting work; running tasks finish, queued tasks still run.
  void shutdown();

  size_t threadCount() const { return workers_.size(); }

 private:
  void enqueue(std::function<void()> task);
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace mh
