#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mh/common/metrics.h"

/// \file metrics_snapshot.h
/// Background metrics time-series sampler. A `MetricsSnapshotter` walks a
/// `MetricsRegistry` tree at a fixed interval and keeps a bounded ring of
/// timestamped flattened snapshots (counters, sampled gauges, histogram
/// count/sum), exportable as JSONL — turning end-of-run totals into
/// rate-over-time views (shuffle bytes/sec, heap gauge trajectories).
///
/// Lifetime: gauge callbacks capture their owning daemon, so the
/// snapshotter must be stopped before any daemon it samples is destroyed
/// (the mini-clusters stop it first in their destructors; daemons also
/// freeze their gauges to final values on destruction as a second line of
/// defense). `stop()` joins the sampling thread and is idempotent.

namespace mh {

struct MetricsSnapshotOptions {
  int64_t interval_ms = 250;  ///< Sampling period.
  size_t capacity = 2048;     ///< Ring size; oldest snapshots drop.
};

class MetricsSnapshotter {
 public:
  using Options = MetricsSnapshotOptions;

  /// One timestamped flattened sample of the whole registry tree.
  struct Snapshot {
    int64_t ts_ms = 0;  ///< Millis since the snapshotter was constructed.
    std::vector<std::pair<std::string, double>> values;
  };

  explicit MetricsSnapshotter(MetricsRegistry* root, Options options = {});
  ~MetricsSnapshotter();
  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Launches the background sampling thread (no-op if already running).
  void start();
  /// Stops and joins the sampling thread (no-op if not running).
  void stop();
  bool running() const;

  /// Takes one sample synchronously (also what the background thread
  /// calls) — the deterministic test hook.
  void sampleOnce();

  size_t size() const;
  /// Snapshots discarded because the ring was full.
  uint64_t droppedSnapshots() const;
  int64_t intervalMs() const { return options_.interval_ms; }

  /// Chronological copy of the buffered snapshots (oldest first).
  std::vector<Snapshot> snapshots() const;

  /// One JSON object per line: a header
  /// `{"type":"header","interval_ms":..,"snapshot_count":..,"dropped_snapshots":..}`
  /// then `{"ts_ms":..,"values":{"name":value,...}}` per snapshot.
  std::string exportJsonl() const;

 private:
  void runLoop(std::stop_token token);

  MetricsRegistry* const root_;
  const Options options_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<Snapshot> ring_;
  size_t next_ = 0;
  uint64_t dropped_ = 0;
  bool running_ = false;
  std::jthread thread_;
};

}  // namespace mh
