#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// Small string helpers shared across modules (path handling, trimming,
/// human-readable sizes).

namespace mh {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> splitString(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> splitWhitespace(std::string_view s);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Joins parts with a delimiter.
std::string joinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Renders a byte count as "1.5 MB" style text (binary units).
std::string formatBytes(uint64_t bytes);

/// Renders milliseconds as "1m 23.4s" style text.
std::string formatMillis(int64_t ms);

/// Lower-cases ASCII letters; leaves other bytes untouched.
std::string toLowerAscii(std::string_view s);

/// True if `s` consists only of [0-9] and is non-empty.
bool isDigits(std::string_view s);

}  // namespace mh
