#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file trace.h
/// Structured event journal for job-history tracing. Daemons record point
/// events (`instant`) and RAII scopes (`TraceSpan`) with monotonic
/// timestamps, a component name (the swimlane: "jobtracker",
/// "tasktracker.node01", ...), and key=value attributes. Events land in a
/// bounded ring buffer (oldest overwritten) and export as Chrome
/// trace-event JSON — load the file in `chrome://tracing` or
/// https://ui.perfetto.dev to see per-daemon swimlanes with one span per
/// map/reduce attempt — or as line-delimited JSON for scripting.
///
/// Tracing is **disabled by default**: a disabled collector costs one
/// relaxed atomic load per would-be event, no clock read, no allocation.

namespace mh {

struct TraceEvent {
  std::string component;  ///< Swimlane ("jobtracker", "datanode.node02").
  std::string name;       ///< Event name ("MAP m3 a0", "SUBMIT").
  bool span = false;      ///< true: complete span; false: instant event.
  int64_t ts_us = 0;      ///< Start time, micros since collector epoch.
  int64_t dur_us = 0;     ///< Span duration (0 for instants).
  uint64_t tid = 0;       ///< Hashed originating thread id.
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Micros since this collector's construction (monotonic clock).
  int64_t nowMicros() const;

  /// Records a point event. No-op while disabled.
  void instant(std::string_view component, std::string_view name,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Records a completed span [ts_us, ts_us + dur_us). No-op while
  /// disabled (spans started while enabled still land if recording ends
  /// after a disable; the ring stays bounded either way).
  void record(TraceEvent event);

  /// Chronological copy of the buffered events (oldest first).
  std::vector<TraceEvent> snapshot() const;

  void clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t droppedEvents() const;

  /// `{"traceEvents": [...]}` with one process lane per component
  /// (process_name metadata events) — the format chrome://tracing loads.
  std::string exportChromeJson() const;

  /// One JSON object per line, chronological.
  std::string exportJsonl() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< Up to capacity_ events.
  size_t next_ = 0;               ///< Ring write cursor.
  uint64_t dropped_ = 0;
};

/// RAII span: captures the start time at construction, records a span
/// event at destruction. Constructed against a disabled (or null)
/// collector it does nothing — not even read the clock.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view component,
            std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key=value attribute to the span (no-op when inactive).
  void arg(std::string_view key, std::string_view value);

  bool active() const { return collector_ != nullptr; }

 private:
  TraceCollector* collector_ = nullptr;  ///< Null when inactive.
  TraceEvent event_;
};

}  // namespace mh
