#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file trace.h
/// Structured event journal for job-history tracing. Daemons record point
/// events (`instant`) and RAII scopes (`TraceSpan`) with monotonic
/// timestamps, a component name (the swimlane: "jobtracker",
/// "tasktracker.node01", ...), and key=value attributes. Events land in a
/// bounded ring buffer (oldest overwritten) and export as Chrome
/// trace-event JSON — load the file in `chrome://tracing` or
/// https://ui.perfetto.dev to see per-daemon swimlanes with one span per
/// map/reduce attempt — or as line-delimited JSON for scripting.
///
/// Events are **causally linked**, Dapper-style: every span gets a unique
/// `span_id` and inherits `trace_id`/`parent_span_id` from the ambient
/// thread-local `TraceContext`, which the span installs for its own
/// lifetime. RPC handlers run synchronously on the caller's thread, so a
/// span recorded inside a handler becomes a child of the caller's active
/// span with no explicit plumbing; crossing a real thread boundary (task
/// pools, fetcher loops) takes one `TraceContextScope` on the new thread.
/// The JobTracker mints one `trace_id` per job, so a whole job — maps,
/// spills, shuffles, DFS I/O on every daemon, even injected faults — forms
/// one tree (see `trace_analysis.h` for critical-path reports over it).
///
/// Tracing is **disabled by default**: a disabled collector costs one
/// relaxed atomic load per would-be event, no clock read, no allocation,
/// no span-id allocation (`idsAllocated()` lets tests assert this).

namespace mh {

/// Causal position of the current activity: which trace it belongs to and
/// which span children should attach to. `trace_id == 0` means "not inside
/// any trace" — events still record, they just float outside every tree.
struct TraceContext {
  uint64_t trace_id = 0;        ///< One per job (or other root activity).
  uint64_t span_id = 0;         ///< The active span; children parent here.
  uint64_t parent_span_id = 0;  ///< The active span's own parent.

  bool valid() const { return trace_id != 0; }
};

/// The calling thread's ambient context (zero-initialized by default).
TraceContext currentTraceContext();

/// RAII: installs `ctx` (and optionally a human-readable track name such
/// as "m3 a0") as the calling thread's ambient context, restoring the
/// previous one on destruction. Use when work hops threads: capture
/// `currentTraceContext()` before spawning, install it inside the worker.
/// Must be destroyed on the thread that constructed it.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& ctx,
                             std::string_view track = {});
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext saved_;
  std::string saved_track_;
  bool track_changed_ = false;
};

struct TraceEvent {
  std::string component;  ///< Swimlane ("jobtracker", "datanode.node02").
  std::string name;       ///< Event name ("MAP m3 a0", "SUBMIT").
  bool span = false;      ///< true: complete span; false: instant event.
  int64_t ts_us = 0;      ///< Start time, micros since collector epoch.
  int64_t dur_us = 0;     ///< Span duration (0 for instants).
  uint64_t tid = 0;       ///< Hashed originating thread id.
  uint64_t trace_id = 0;  ///< Trace this event belongs to (0 = none).
  uint64_t span_id = 0;   ///< Unique id for spans (0 for instants).
  uint64_t parent_span_id = 0;  ///< Enclosing span at record time.
  std::string track;      ///< Stable display track ("m3 a0"); may be "".
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Micros since this collector's construction (monotonic clock).
  int64_t nowMicros() const;

  /// Allocates a fresh nonzero id (trace ids and span ids share the
  /// space, so a trace id never collides with a span id).
  uint64_t newId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  /// How many ids have ever been allocated — a disabled collector must
  /// never allocate any (asserted by the fast-path gate test).
  uint64_t idsAllocated() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Records a point event in the calling thread's ambient context.
  /// No-op while disabled.
  void instant(std::string_view component, std::string_view name,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Records a point event in an explicit context (for threads that act
  /// on behalf of a job without ambient context, e.g. the JobTracker's
  /// heartbeat/monitor threads). No-op while disabled.
  void instant(const TraceContext& ctx, std::string_view component,
               std::string_view name,
               std::vector<std::pair<std::string, std::string>> args = {});

  /// Records a completed span [ts_us, ts_us + dur_us). No-op while
  /// disabled (spans started while enabled still land if recording ends
  /// after a disable; the ring stays bounded either way).
  void record(TraceEvent event);

  /// Chronological copy of the buffered events (oldest first).
  std::vector<TraceEvent> snapshot() const;

  void clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t droppedEvents() const;

  /// `{"traceEvents": [...], "droppedEvents": N}` with one process lane
  /// per component (process_name metadata events) and one named thread
  /// track per `TraceEvent::track` (thread_name metadata events) — the
  /// format chrome://tracing loads. Events that never set a track fall
  /// back to a per-thread "tid NNN" track.
  std::string exportChromeJson() const;

  /// One JSON object per line, chronological, preceded by a header line
  /// `{"type":"header","dropped_events":N,"event_count":M}` so truncated
  /// exports are self-describing.
  std::string exportJsonl() const;

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};

  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;  ///< Up to capacity_ events.
  size_t next_ = 0;               ///< Ring write cursor.
  uint64_t dropped_ = 0;
};

/// RAII span: captures the start time at construction, records a span
/// event at destruction. While alive it is the thread's ambient context,
/// so nested spans/instants (including those inside RPC handlers invoked
/// from this thread) become its children. Constructed against a disabled
/// (or null) collector it does nothing — not even read the clock. Must be
/// destroyed on the thread that constructed it.
class TraceSpan {
 public:
  TraceSpan(TraceCollector* collector, std::string_view component,
            std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key=value attribute to the span (no-op when inactive).
  void arg(std::string_view key, std::string_view value);

  bool active() const { return collector_ != nullptr; }
  /// This span's causal context (zero when inactive).
  TraceContext context() const;

 private:
  TraceCollector* collector_ = nullptr;  ///< Null when inactive.
  TraceEvent event_;
  TraceContext prev_;  ///< Ambient context to restore on destruction.
};

}  // namespace mh
