#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "mh/common/error.h"

/// \file rng.h
/// Deterministic random number generation for dataset synthesis and
/// failure injection. All randomness in the library flows through a seeded
/// Rng so every experiment is reproducible bit-for-bit.

namespace mh {

/// xoshiro256** seeded via SplitMix64. Small, fast, and deterministic across
/// platforms (unlike std::default_random_engine / std distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t uniform(uint64_t bound) {
    if (bound == 0) throw InvalidArgumentError("uniform(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;
    while (true) {
      const uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    if (hi < lo) throw InvalidArgumentError("range(hi < lo)");
    return lo + static_cast<int64_t>(
                    uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Normal(mean, stddev) via Box–Muller.
  double normal(double mean, double stddev) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform01() - 1.0;
      v = 2.0 * uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    have_spare_ = true;
    return mean + stddev * u * mul;
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    if (mean <= 0) throw InvalidArgumentError("exponential mean <= 0");
    double u;
    do {
      u = uniform01();
    } while (u == 0.0);
    return -mean * std::log(u);
  }

  /// Forks an independent, deterministic child stream.
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ull); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Zipfian sampler over ranks 1..n with exponent s — used for word
/// frequencies in the synthetic text corpus and key skew in rating data.
/// Precomputes the CDF; O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s) : cdf_(n) {
    if (n == 0) throw InvalidArgumentError("Zipf over empty domain");
    double sum = 0.0;
    for (uint64_t k = 1; k <= n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_[k - 1] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Samples a rank in [0, n).
  uint64_t sample(Rng& rng) const {
    const double u = rng.uniform01();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t domain() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace mh
