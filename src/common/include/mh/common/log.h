#pragma once

#include <sstream>
#include <string>
#include <string_view>

/// \file log.h
/// Minimal thread-safe leveled logger.
///
/// Daemons (NameNode, DataNode, JobTracker, TaskTracker) tag records with a
/// component name so interleaved mini-cluster output stays readable, much
/// like Hadoop's log4j layout. The default level is kWarn so tests and
/// benchmarks stay quiet; examples raise it to kInfo to narrate behaviour.
///
/// The `MH_LOG_LEVEL` environment variable (debug/info/warn/error/off,
/// case-insensitive) overrides the default at first use, so students can
/// turn up daemon narration without editing code. `setLogLevel()` still
/// wins once called.

namespace mh {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; records below it are dropped.
void setLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel logLevel();

/// Parses a level name ("debug", "INFO", "off", ...); returns `fallback`
/// for anything unrecognized. Used for the MH_LOG_LEVEL variable and
/// exposed for tests.
LogLevel logLevelFromName(std::string_view name, LogLevel fallback);

/// Emits one record to stderr: "HH:MM:SS.mmm LEVEL component: message".
void logRecord(LogLevel level, const std::string& component,
               const std::string& message);

namespace detail {

/// Stream-style log statement builder; flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() {
    if (level_ >= logLevel()) logRecord(level_, component_, stream_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= logLevel()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine logDebug(std::string component) {
  return {LogLevel::kDebug, std::move(component)};
}
inline detail::LogLine logInfo(std::string component) {
  return {LogLevel::kInfo, std::move(component)};
}
inline detail::LogLine logWarn(std::string component) {
  return {LogLevel::kWarn, std::move(component)};
}
inline detail::LogLine logError(std::string component) {
  return {LogLevel::kError, std::move(component)};
}

}  // namespace mh
