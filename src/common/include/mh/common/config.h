#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

/// \file config.h
/// Hadoop-style string-keyed configuration ("dfs.replication",
/// "mapred.tasktracker.map.tasks.maximum", ...). Typed getters parse on
/// access and fall back to a caller-supplied default, mirroring
/// org.apache.hadoop.conf.Configuration.

namespace mh {

class Config {
 public:
  Config() = default;

  /// Sets a key; later sets win.
  void set(std::string key, std::string value);
  void setInt(std::string key, int64_t value);
  void setDouble(std::string key, double value);
  void setBool(std::string key, bool value);

  /// Raw access; nullopt if absent.
  std::optional<std::string> getRaw(std::string_view key) const;

  std::string get(std::string_view key, std::string_view def = "") const;
  /// Throws InvalidArgumentError when the stored value does not parse.
  int64_t getInt(std::string_view key, int64_t def) const;
  double getDouble(std::string_view key, double def) const;
  /// Accepts true/false/1/0/yes/no (case-insensitive).
  bool getBool(std::string_view key, bool def) const;

  bool contains(std::string_view key) const;

  /// Copies every entry of `other` over this config.
  void merge(const Config& other);

  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace mh
