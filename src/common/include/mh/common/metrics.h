#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file metrics.h
/// Cluster-wide metrics registry: named counters, callback-backed gauges,
/// and log-bucketed latency histograms, organized as a tree of per-daemon
/// child registries (`namenode`, `datanode.<host>`, `jobtracker`,
/// `tasktracker.<host>`, `network`).
///
/// Job `Counters` answer "what did this job do"; this registry answers
/// "what is the *cluster* doing" — RPC latency percentiles, per-daemon op
/// rates, heap gauges — the Hadoop metrics2 / JMX role. The root registry
/// hangs off the shared `net::Network`, so every daemon on a mini-cluster
/// reports into one tree and `render()` / `exportPrometheus()` /
/// `exportJson()` dump the whole cluster at once.
///
/// Concurrency: instrument handles (`Counter&`, `LatencyHistogram&`)
/// returned by the registry are stable for its lifetime and internally
/// lock-free (plain atomics), so hot paths pay no lock after the first
/// lookup. Registry lookups themselves take a short mutex. Gauge callbacks
/// run during export and may take their owner's lock — owners must never
/// call back into the registry while holding that lock.

namespace mh {

/// Monotonic named accumulator (lock-free).
class Counter {
 public:
  void add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucketed latency recorder over non-negative integer samples
/// (conventionally microseconds). Bucket 0 holds [0, 1); bucket i holds
/// [2^(i-1), 2^i). Percentiles interpolate linearly inside the winning
/// bucket and are exact at the recorded min/max; an empty histogram reports
/// 0 everywhere.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 48;

  void record(int64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const;
  double mean() const;

  /// Approximate p-th percentile (0..100) from the bucket counts.
  int64_t percentile(double p) const;

  uint64_t bucketCount(size_t i) const {
    return counts_.at(i).load(std::memory_order_relaxed);
  }
  static int64_t bucketLow(size_t i);
  static int64_t bucketHigh(size_t i);

  /// "count=12 mean=340us p50=210us p95=1.2ms p99=4ms max=4ms"
  std::string summary() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_{std::numeric_limits<int64_t>::min()};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Creates or returns the child registry `name` (a daemon identity like
  /// "datanode.node01"; dots are literal, not a path). The reference stays
  /// valid for this registry's lifetime.
  MetricsRegistry& child(std::string_view name);
  std::vector<std::string> childNames() const;

  /// Creates or returns the named instrument. References stay valid for
  /// this registry's lifetime; operations on them are lock-free.
  Counter& counter(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Registers (or replaces) a gauge: a callback sampled at export time.
  void setGauge(std::string_view name, std::function<double()> fn);

  /// Current value, 0 when the counter/gauge was never registered.
  int64_t counterValue(std::string_view name) const;
  double gaugeValue(std::string_view name) const;
  bool hasHistogram(std::string_view name) const;

  /// Human-readable dump of this registry and all children.
  std::string render() const;

  /// Prometheus text exposition (counters, gauges, summary-style
  /// histograms), names flattened as mh_<registry>_<metric>.
  std::string exportPrometheus() const;

  /// Nested JSON object mirroring the registry tree.
  std::string exportJson() const;

  /// Flattened numeric view of this registry and all children, for
  /// time-series sampling (`MetricsSnapshotter`): counters as their value,
  /// gauges sampled now, histograms as `<name>.count` / `<name>.sum_us`.
  /// Names are '/'-joined paths ("tasktracker.node01/shuffle_bytes" —
  /// child names contain literal dots, so the separator is '/').
  std::vector<std::pair<std::string, double>> flattenValues() const;

 private:
  void flattenInto(std::vector<std::pair<std::string, double>>& out,
                   const std::string& prefix) const;
  void renderInto(std::string& out, const std::string& label) const;
  void prometheusInto(std::string& out, const std::string& prefix) const;
  void jsonInto(std::string& out, int indent) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
  std::map<std::string, std::function<double()>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricsRegistry>, std::less<>>
      children_;
};

/// Formats a microsecond quantity with a readable unit ("340us", "1.2ms",
/// "3.4s").
std::string formatMicros(int64_t micros);

}  // namespace mh
