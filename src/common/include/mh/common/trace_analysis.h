#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mh/common/trace.h"

/// \file trace_analysis.h
/// Offline analysis over a `TraceCollector` snapshot: reconstruct one
/// job's span tree (by `trace_id`), check it is connected, walk the
/// critical path, and attribute every microsecond of the job's wall time
/// to a phase — map compute, spill, shuffle wait, merge, reduce, DFS I/O,
/// or scheduling gap — as an ASCII report (printed next to the JobHistory
/// Gantt) and as JSON.
///
/// The DAG is span parent/child edges plus the engine's happens-before
/// rules: every reduce needs every map's output before its merge can run,
/// so the path runs root -> last-finishing reduce -> (gate) last-finishing
/// map, and un-spanned stretches of the root are scheduling gaps. Under
/// slowstart (mapred.reduce.slowstart.completed.maps < 1.0) the reduce span
/// overlaps the map phase; attribution clips it to the stretch after the
/// map gate, so the overlapped shuffle is never double-counted and the
/// phase totals still sum exactly to the job's wall clock.

namespace mh {

/// Phase attribution buckets, in display order.
inline constexpr const char* kTracePhases[] = {
    "map", "spill", "innode", "shuffle", "merge", "reduce", "dfs",
    "scheduling"};

/// Classifies a span name into a phase bucket; returns "" for container
/// or unclassified spans (JOB, COMPRESS, ...) whose time folds into the
/// enclosing phase.
std::string_view classifyTracePhase(std::string_view span_name);

/// Shape of one trace's event set, for connectivity assertions.
struct TraceTreeStats {
  size_t span_count = 0;
  size_t instant_count = 0;
  /// Events whose nonzero parent_span_id names no span in the set.
  size_t missing_parents = 0;
  /// Span ids with parent_span_id == 0 (should be exactly the JOB root).
  std::vector<uint64_t> root_span_ids;
  /// Distinct daemon kinds seen ("jobtracker", "tasktracker", ...):
  /// component with any ".<host>" suffix stripped.
  std::vector<std::string> daemon_kinds;

  bool connected() const {
    return missing_parents == 0 && root_span_ids.size() == 1;
  }
};

/// Stats for the events carrying `trace_id` in `events`.
TraceTreeStats analyzeTraceTree(const std::vector<TraceEvent>& events,
                                uint64_t trace_id);

/// One hop of the critical path (a span, or a gap between spans).
struct CriticalPathStep {
  std::string name;       ///< Span name, or "(scheduling gap)".
  std::string component;  ///< Owning swimlane ("" for gaps).
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

struct CriticalPathPhase {
  std::string phase;
  int64_t micros = 0;
};

struct CriticalPathReport {
  uint64_t trace_id = 0;
  bool found = false;     ///< False when no root span exists for the id.
  int64_t total_us = 0;   ///< Root (JOB) span duration.
  std::vector<CriticalPathStep> steps;    ///< Chronological.
  std::vector<CriticalPathPhase> phases;  ///< Sorted by micros, descending.

  /// Phase with the largest attribution ("" when not found).
  std::string dominantPhase() const;
  int64_t phaseMicros(std::string_view phase) const;

  /// Human-readable "where the time went" report.
  std::string renderAscii() const;
  /// The same report as a JSON object.
  std::string exportJson() const;
};

/// Computes the critical path + per-phase time attribution for the trace
/// `trace_id` within `events` (a `TraceCollector::snapshot()`).
CriticalPathReport computeCriticalPath(const std::vector<TraceEvent>& events,
                                       uint64_t trace_id);

}  // namespace mh
