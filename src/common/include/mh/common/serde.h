#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "mh/common/bytes.h"

/// \file serde.h
/// Typed serialization trait used by the MapReduce API.
///
/// `Serde<T>` plays the role of Hadoop's `Writable`: the engine moves opaque
/// byte strings, and typed mappers/reducers (de)serialize through this trait.
/// Implementing a Serde specialization for a user struct is exactly the
/// "customized Hadoop Value class" exercise from the course's assignment 1.
///
/// Contract: `encode` appends a self-delimiting representation via the
/// ByteWriter; `decode` consumes exactly what `encode` wrote.

namespace mh {

template <typename T>
struct Serde;  // primary template: intentionally undefined

template <>
struct Serde<int64_t> {
  static void encode(ByteWriter& w, int64_t v) { w.writeVarI64(v); }
  static int64_t decode(ByteReader& r) { return r.readVarI64(); }
};

template <>
struct Serde<int32_t> {
  static void encode(ByteWriter& w, int32_t v) { w.writeVarI64(v); }
  static int32_t decode(ByteReader& r) {
    return static_cast<int32_t>(r.readVarI64());
  }
};

template <>
struct Serde<uint64_t> {
  static void encode(ByteWriter& w, uint64_t v) { w.writeVarU64(v); }
  static uint64_t decode(ByteReader& r) { return r.readVarU64(); }
};

template <>
struct Serde<uint32_t> {
  static void encode(ByteWriter& w, uint32_t v) { w.writeVarU64(v); }
  static uint32_t decode(ByteReader& r) {
    return static_cast<uint32_t>(r.readVarU64());
  }
};

template <>
struct Serde<uint16_t> {
  static void encode(ByteWriter& w, uint16_t v) { w.writeVarU64(v); }
  static uint16_t decode(ByteReader& r) {
    return static_cast<uint16_t>(r.readVarU64());
  }
};

template <>
struct Serde<double> {
  static void encode(ByteWriter& w, double v) { w.writeDouble(v); }
  static double decode(ByteReader& r) { return r.readDouble(); }
};

template <>
struct Serde<bool> {
  static void encode(ByteWriter& w, bool v) { w.writeBool(v); }
  static bool decode(ByteReader& r) { return r.readBool(); }
};

template <>
struct Serde<std::string> {
  static void encode(ByteWriter& w, const std::string& v) { w.writeBytes(v); }
  static std::string decode(ByteReader& r) { return r.readString(); }
};

/// Wire-compatible with Serde<std::string>. Decoding yields a view into the
/// reader's buffer — the zero-copy unpack for bulk payloads (block data,
/// shuffle runs); the caller must keep that buffer alive while the view is
/// in use.
template <>
struct Serde<std::string_view> {
  static void encode(ByteWriter& w, std::string_view v) { w.writeBytes(v); }
  static std::string_view decode(ByteReader& r) { return r.readBytes(); }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void encode(ByteWriter& w, const std::pair<A, B>& v) {
    Serde<A>::encode(w, v.first);
    Serde<B>::encode(w, v.second);
  }
  static std::pair<A, B> decode(ByteReader& r) {
    A a = Serde<A>::decode(r);
    B b = Serde<B>::decode(r);
    return {std::move(a), std::move(b)};
  }
};

template <typename... Ts>
struct Serde<std::tuple<Ts...>> {
  static void encode(ByteWriter& w, const std::tuple<Ts...>& v) {
    std::apply([&w](const Ts&... parts) { (Serde<Ts>::encode(w, parts), ...); },
               v);
  }
  static std::tuple<Ts...> decode(ByteReader& r) {
    // Braced init guarantees left-to-right evaluation.
    return std::tuple<Ts...>{Serde<Ts>::decode(r)...};
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void encode(ByteWriter& w, const std::vector<T>& v) {
    w.writeVarU64(v.size());
    for (const auto& item : v) Serde<T>::encode(w, item);
  }
  static std::vector<T> decode(ByteReader& r) {
    const uint64_t n = r.readVarU64();
    std::vector<T> v;
    v.reserve(n);
    for (uint64_t i = 0; i < n; ++i) v.push_back(Serde<T>::decode(r));
    return v;
  }
};

/// Serializes a value to a standalone buffer.
template <typename T>
Bytes serialize(const T& value) {
  Bytes out;
  ByteWriter w(out);
  Serde<T>::encode(w, value);
  return out;
}

/// Deserializes a value from a standalone buffer; trailing bytes are an error.
template <typename T>
T deserialize(std::string_view buf) {
  ByteReader r(buf);
  T value = Serde<T>::decode(r);
  if (!r.atEnd()) {
    throw InvalidArgumentError("trailing bytes after deserialize");
  }
  return value;
}

/// Deserializes a value from a reader positioned at its encoding.
template <typename T>
T deserializeFrom(ByteReader& r) {
  return Serde<T>::decode(r);
}

/// Packs several values into one buffer — RPC argument marshalling.
template <typename... Ts>
Bytes pack(const Ts&... values) {
  Bytes out;
  ByteWriter w(out);
  (Serde<std::decay_t<Ts>>::encode(w, values), ...);
  return out;
}

/// Unpacks values previously written by pack() with the same type list.
/// Trailing bytes are an error.
template <typename... Ts>
std::tuple<Ts...> unpack(std::string_view buf) {
  ByteReader r(buf);
  // Braced init guarantees left-to-right evaluation of the decodes.
  std::tuple<Ts...> out{Serde<Ts>::decode(r)...};
  if (!r.atEnd()) throw InvalidArgumentError("trailing bytes after unpack");
  return out;
}

}  // namespace mh
