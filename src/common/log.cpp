#include "mh/common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mh {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sink_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void logRecord(LogLevel level, const std::string& component,
               const std::string& message) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto millis = duration_cast<milliseconds>(now - secs).count();
  const std::time_t tt = system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&tt, &tm);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%02d:%02d:%02d.%03d %s %s: %s\n", tm.tm_hour, tm.tm_min,
               tm.tm_sec, static_cast<int>(millis), levelName(level),
               component.c_str(), message.c_str());
}

}  // namespace mh
