#include "mh/common/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace mh {

namespace {

/// The global level, initialized from MH_LOG_LEVEL on first use (function-
/// local static, so the env var is honored no matter which logging call
/// comes first).
std::atomic<LogLevel>& levelRef() {
  static std::atomic<LogLevel> level{[] {
    const char* env = std::getenv("MH_LOG_LEVEL");
    return env == nullptr ? LogLevel::kWarn
                          : logLevelFromName(env, LogLevel::kWarn);
  }()};
  return level;
}

std::mutex g_sink_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

void setLogLevel(LogLevel level) {
  levelRef().store(level, std::memory_order_relaxed);
}

LogLevel logLevel() { return levelRef().load(std::memory_order_relaxed); }

LogLevel logLevelFromName(std::string_view name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return fallback;
}

void logRecord(LogLevel level, const std::string& component,
               const std::string& message) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto millis = duration_cast<milliseconds>(now - secs).count();
  const std::time_t tt = system_clock::to_time_t(now);
  std::tm tm{};
  localtime_r(&tt, &tm);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "%02d:%02d:%02d.%03d %s %s: %s\n", tm.tm_hour, tm.tm_min,
               tm.tm_sec, static_cast<int>(millis), levelName(level),
               component.c_str(), message.c_str());
}

}  // namespace mh
