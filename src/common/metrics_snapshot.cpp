#include "mh/common/metrics_snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mh {

namespace {

std::string formatValue(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(MetricsRegistry* root, Options options)
    : root_(root),
      options_{std::max<int64_t>(options.interval_ms, 1),
               std::max<size_t>(options.capacity, 1)},
      epoch_(std::chrono::steady_clock::now()) {}

MetricsSnapshotter::~MetricsSnapshotter() { stop(); }

void MetricsSnapshotter::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::jthread([this](std::stop_token token) { runLoop(token); });
}

void MetricsSnapshotter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  thread_.request_stop();
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool MetricsSnapshotter::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void MetricsSnapshotter::runLoop(std::stop_token token) {
  while (!token.stop_requested()) {
    sampleOnce();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, token,
                 std::chrono::milliseconds(options_.interval_ms),
                 [] { return false; });
  }
}

void MetricsSnapshotter::sampleOnce() {
  // Sample outside the ring lock: flattenValues() runs gauge callbacks
  // that may take daemon locks.
  Snapshot snap;
  snap.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - epoch_)
                   .count();
  snap.values = root_->flattenValues();

  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < options_.capacity) {
    ring_.push_back(std::move(snap));
  } else {
    ring_[next_] = std::move(snap);
    ++dropped_;
  }
  next_ = (next_ + 1) % options_.capacity;
}

size_t MetricsSnapshotter::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t MetricsSnapshotter::droppedSnapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<MetricsSnapshotter::Snapshot> MetricsSnapshotter::snapshots()
    const {
  std::vector<Snapshot> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(ring_.size());
  if (ring_.size() < options_.capacity) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::string MetricsSnapshotter::exportJsonl() const {
  const auto snaps = snapshots();
  std::string out = "{\"type\":\"header\",\"interval_ms\":" +
                    std::to_string(options_.interval_ms) +
                    ",\"snapshot_count\":" + std::to_string(snaps.size()) +
                    ",\"dropped_snapshots\":" +
                    std::to_string(droppedSnapshots()) + "}\n";
  for (const auto& snap : snaps) {
    out += "{\"ts_ms\":" + std::to_string(snap.ts_ms) + ",\"values\":{";
    for (size_t i = 0; i < snap.values.size(); ++i) {
      if (i) out += ",";
      out += "\"" + snap.values[i].first +
             "\":" + formatValue(snap.values[i].second);
    }
    out += "}}\n";
  }
  return out;
}

}  // namespace mh
