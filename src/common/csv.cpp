#include "mh/common/csv.h"

#include "mh/common/error.h"

namespace mh {

std::vector<std::string> parseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw InvalidArgumentError("unbalanced quote in CSV record");
  fields.push_back(std::move(current));
  return fields;
}

std::string formatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& f = fields[i];
    const bool needs_quote =
        f.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote) {
      out.append(f);
      continue;
    }
    out.push_back('"');
    for (const char c : f) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

}  // namespace mh
