#include "mh/common/config.h"

#include <charconv>

#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh {

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

void Config::setInt(std::string key, int64_t value) {
  set(std::move(key), std::to_string(value));
}

void Config::setDouble(std::string key, double value) {
  set(std::move(key), std::to_string(value));
}

void Config::setBool(std::string key, bool value) {
  set(std::move(key), value ? "true" : "false");
}

std::optional<std::string> Config::getRaw(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get(std::string_view key, std::string_view def) const {
  const auto raw = getRaw(key);
  return raw ? *raw : std::string(def);
}

int64_t Config::getInt(std::string_view key, int64_t def) const {
  const auto raw = getRaw(key);
  if (!raw) return def;
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), value);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    throw InvalidArgumentError("config key '" + std::string(key) +
                               "' is not an integer: " + *raw);
  }
  return value;
}

double Config::getDouble(std::string_view key, double def) const {
  const auto raw = getRaw(key);
  if (!raw) return def;
  try {
    size_t consumed = 0;
    const double value = std::stod(*raw, &consumed);
    if (consumed != raw->size()) throw std::invalid_argument("trailing");
    return value;
  } catch (const std::exception&) {
    throw InvalidArgumentError("config key '" + std::string(key) +
                               "' is not a double: " + *raw);
  }
}

bool Config::getBool(std::string_view key, bool def) const {
  const auto raw = getRaw(key);
  if (!raw) return def;
  const std::string v = toLowerAscii(*raw);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw InvalidArgumentError("config key '" + std::string(key) +
                             "' is not a bool: " + *raw);
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_[k] = v;
}

}  // namespace mh
