#include "mh/common/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>

namespace mh {

namespace {

uint64_t currentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void appendArgsJson(std::string& out, const TraceEvent& e) {
  out += "\"args\":{";
  for (size_t i = 0; i < e.args.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    out += jsonEscape(e.args[i].first);
    out += "\":\"";
    out += jsonEscape(e.args[i].second);
    out += "\"";
  }
  out += "}";
}

}  // namespace

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceCollector::nowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceCollector::instant(
    std::string_view component, std::string_view name,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.component = std::string(component);
  event.name = std::string(name);
  event.span = false;
  event.ts_us = nowMicros();
  event.tid = currentTid();
  event.args = std::move(args);
  record(std::move(event));
}

void TraceCollector::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      // Oldest event sits at the write cursor once the ring has wrapped.
      out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<ptrdiff_t>(next_));
    }
  }
  // Ring order is insertion order, but concurrent writers can interleave;
  // present a stable chronological view.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t TraceCollector::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceCollector::exportChromeJson() const {
  const auto events = snapshot();

  // One chrome://tracing "process" lane per component, in sorted order so
  // lane assignment is deterministic.
  std::map<std::string, int> lanes;
  for (const auto& e : events) lanes.emplace(e.component, 0);
  int next_pid = 1;
  for (auto& [component, pid] : lanes) pid = next_pid++;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (const auto& [component, pid] : lanes) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           jsonEscape(component) + "\"}}";
  }
  for (const auto& e : events) {
    comma();
    const int pid = lanes[e.component];
    out += "{\"ph\":\"" + std::string(e.span ? "X" : "i") + "\",\"name\":\"" +
           jsonEscape(e.name) + "\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(e.tid % 1000000) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.span) {
      out += ",\"dur\":" + std::to_string(e.dur_us);
    } else {
      out += ",\"s\":\"p\"";
    }
    out += ",";
    appendArgsJson(out, e);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string TraceCollector::exportJsonl() const {
  std::string out;
  for (const auto& e : snapshot()) {
    out += "{\"component\":\"" + jsonEscape(e.component) + "\",\"name\":\"" +
           jsonEscape(e.name) + "\",\"type\":\"" +
           (e.span ? "span" : "instant") +
           "\",\"ts_us\":" + std::to_string(e.ts_us) +
           ",\"dur_us\":" + std::to_string(e.dur_us) + ",";
    appendArgsJson(out, e);
    out += "}\n";
  }
  return out;
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string_view component,
                     std::string_view name) {
  if (collector == nullptr || !collector->enabled()) return;
  collector_ = collector;
  event_.component = std::string(component);
  event_.name = std::string(name);
  event_.span = true;
  event_.ts_us = collector->nowMicros();
  event_.tid = currentTid();
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  event_.dur_us = collector_->nowMicros() - event_.ts_us;
  collector_->record(std::move(event_));
}

void TraceSpan::arg(std::string_view key, std::string_view value) {
  if (collector_ == nullptr) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

}  // namespace mh
