#include "mh/common/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <thread>

namespace mh {

namespace {

uint64_t currentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

// Per-thread ambient causal context. Spans install themselves here for
// their lifetime; `TraceContextScope` carries a context across explicit
// thread hops. The track is the human-readable display lane ("m3 a0")
// stamped onto events recorded by this thread.
thread_local TraceContext t_ambient{};
thread_local std::string t_track;

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void appendArgsJson(std::string& out, const TraceEvent& e) {
  out += "\"args\":{";
  bool first = true;
  const auto entry = [&](std::string_view key) -> std::string& {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += key;
    out += "\":";
    return out;
  };
  for (const auto& [key, value] : e.args) {
    entry(jsonEscape(key)) += "\"" + jsonEscape(value) + "\"";
  }
  if (e.trace_id != 0) {
    entry("trace_id") += std::to_string(e.trace_id);
    if (e.span_id != 0) entry("span_id") += std::to_string(e.span_id);
    entry("parent_span_id") += std::to_string(e.parent_span_id);
  }
  out += "}";
}

// Display track for chrome://tracing: the explicit track when the event
// set one, else a per-thread fallback so unnamed threads still separate.
std::string displayTrack(const TraceEvent& e) {
  if (!e.track.empty()) return e.track;
  return "tid " + std::to_string(e.tid % 1000000);
}

}  // namespace

TraceContext currentTraceContext() { return t_ambient; }

TraceContextScope::TraceContextScope(const TraceContext& ctx,
                                     std::string_view track)
    : saved_(t_ambient) {
  t_ambient = ctx;
  if (!track.empty()) {
    saved_track_ = std::move(t_track);
    t_track.assign(track);
    track_changed_ = true;
  }
}

TraceContextScope::~TraceContextScope() {
  t_ambient = saved_;
  if (track_changed_) t_track = std::move(saved_track_);
}

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceCollector::nowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceCollector::instant(
    std::string_view component, std::string_view name,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  instant(t_ambient, component, name, std::move(args));
}

void TraceCollector::instant(
    const TraceContext& ctx, std::string_view component, std::string_view name,
    std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.component = std::string(component);
  event.name = std::string(name);
  event.span = false;
  event.ts_us = nowMicros();
  event.tid = currentTid();
  event.trace_id = ctx.trace_id;
  event.parent_span_id = ctx.span_id;
  event.track = t_track;
  event.args = std::move(args);
  record(std::move(event));
}

void TraceCollector::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
    ++dropped_;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      // Oldest event sits at the write cursor once the ring has wrapped.
      out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<ptrdiff_t>(next_));
    }
  }
  // Ring order is insertion order, but concurrent writers can interleave;
  // present a stable chronological view.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t TraceCollector::droppedEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string TraceCollector::exportChromeJson() const {
  const auto events = snapshot();
  const uint64_t dropped = droppedEvents();

  // One chrome://tracing "process" lane per component, in sorted order so
  // lane assignment is deterministic; within each lane, one named thread
  // track per distinct TraceEvent::track, numbered by first appearance in
  // chronological order (so "m0 a0" sits above "r1 a0", not at a hashed
  // position).
  std::map<std::string, int> lanes;
  for (const auto& e : events) lanes.emplace(e.component, 0);
  int next_pid = 1;
  for (auto& [component, pid] : lanes) pid = next_pid++;

  std::map<std::pair<int, std::string>, int> tracks;  // (pid, track) -> tid
  std::vector<std::pair<std::pair<int, std::string>, int>> track_order;
  for (const auto& e : events) {
    const auto key = std::make_pair(lanes[e.component], displayTrack(e));
    const auto [it, inserted] =
        tracks.emplace(key, static_cast<int>(tracks.size()) + 1);
    if (inserted) track_order.emplace_back(it->first, it->second);
  }

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (const auto& [component, pid] : lanes) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           jsonEscape(component) + "\"}}";
  }
  for (const auto& [key, tid] : track_order) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(key.first) + ",\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"" + jsonEscape(key.second) + "\"}}";
  }
  for (const auto& e : events) {
    comma();
    const int pid = lanes[e.component];
    const int tid = tracks[std::make_pair(pid, displayTrack(e))];
    out += "{\"ph\":\"" + std::string(e.span ? "X" : "i") + "\",\"name\":\"" +
           jsonEscape(e.name) + "\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.span) {
      out += ",\"dur\":" + std::to_string(e.dur_us);
    } else {
      out += ",\"s\":\"p\"";
    }
    out += ",";
    appendArgsJson(out, e);
    out += "}";
  }
  out += "\n],\"droppedEvents\":" + std::to_string(dropped) + "}\n";
  return out;
}

std::string TraceCollector::exportJsonl() const {
  const auto events = snapshot();
  std::string out = "{\"type\":\"header\",\"dropped_events\":" +
                    std::to_string(droppedEvents()) +
                    ",\"event_count\":" + std::to_string(events.size()) +
                    "}\n";
  for (const auto& e : events) {
    out += "{\"component\":\"" + jsonEscape(e.component) + "\",\"name\":\"" +
           jsonEscape(e.name) + "\",\"type\":\"" +
           (e.span ? "span" : "instant") +
           "\",\"ts_us\":" + std::to_string(e.ts_us) +
           ",\"dur_us\":" + std::to_string(e.dur_us) +
           ",\"trace_id\":" + std::to_string(e.trace_id) +
           ",\"span_id\":" + std::to_string(e.span_id) +
           ",\"parent_span_id\":" + std::to_string(e.parent_span_id) +
           ",\"track\":\"" + jsonEscape(e.track) + "\",";
    appendArgsJson(out, e);
    out += "}\n";
  }
  return out;
}

TraceSpan::TraceSpan(TraceCollector* collector, std::string_view component,
                     std::string_view name) {
  if (collector == nullptr || !collector->enabled()) return;
  collector_ = collector;
  event_.component = std::string(component);
  event_.name = std::string(name);
  event_.span = true;
  event_.ts_us = collector->nowMicros();
  event_.tid = currentTid();
  event_.trace_id = t_ambient.trace_id;
  event_.parent_span_id = t_ambient.span_id;
  event_.span_id = collector->newId();
  event_.track = t_track;
  prev_ = t_ambient;
  t_ambient =
      TraceContext{event_.trace_id, event_.span_id, event_.parent_span_id};
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  t_ambient = prev_;
  event_.dur_us = collector_->nowMicros() - event_.ts_us;
  collector_->record(std::move(event_));
}

void TraceSpan::arg(std::string_view key, std::string_view value) {
  if (collector_ == nullptr) return;
  event_.args.emplace_back(std::string(key), std::string(value));
}

TraceContext TraceSpan::context() const {
  if (collector_ == nullptr) return {};
  return {event_.trace_id, event_.span_id, event_.parent_span_id};
}

}  // namespace mh
