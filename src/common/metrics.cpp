#include "mh/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mh {

// ------------------------------------------------------- LatencyHistogram

namespace {

size_t bucketIndex(int64_t value) {
  if (value <= 0) return 0;
  size_t i = 1;
  while (i < LatencyHistogram::kBuckets - 1 && (int64_t{1} << (i)) <= value) {
    ++i;
  }
  return i;
}

void atomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void atomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t seen = slot.load(std::memory_order_relaxed);
  while (seen > value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::record(int64_t value) {
  value = std::max<int64_t>(value, 0);
  counts_[bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomicMin(min_, value);
  atomicMax(max_, value);
}

int64_t LatencyHistogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t LatencyHistogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double LatencyHistogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t LatencyHistogram::bucketLow(size_t i) {
  return i == 0 ? 0 : int64_t{1} << (i - 1);
}

int64_t LatencyHistogram::bucketHigh(size_t i) { return int64_t{1} << i; }

int64_t LatencyHistogram::percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample (1-based, ceil like classic nearest-rank).
  const auto rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const uint64_t target = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const uint64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate within the bucket, clamped to the observed range so a
      // single-sample histogram reports its exact value.
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(in_bucket);
      const auto lo = static_cast<double>(bucketLow(i));
      const auto hi = static_cast<double>(bucketHigh(i));
      const auto est = static_cast<int64_t>(lo + (hi - lo) * frac);
      return std::clamp(est, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

std::string LatencyHistogram::summary() const {
  std::string out = "count=" + std::to_string(count());
  out += " mean=" + formatMicros(static_cast<int64_t>(mean()));
  out += " p50=" + formatMicros(percentile(50));
  out += " p95=" + formatMicros(percentile(95));
  out += " p99=" + formatMicros(percentile(99));
  out += " max=" + formatMicros(max());
  return out;
}

std::string formatMicros(int64_t micros) {
  char buf[32];
  if (micros < 1000) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros));
  } else if (micros < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms",
                  static_cast<double>(micros) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs",
                  static_cast<double>(micros) / 1e6);
  }
  return buf;
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::child(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = children_.find(name);
  if (it == children_.end()) {
    it = children_
             .emplace(std::string(name), std::make_unique<MetricsRegistry>())
             .first;
  }
  return *it->second;
}

std::vector<std::string> MetricsRegistry::childNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(children_.size());
  for (const auto& [name, reg] : children_) names.push_back(name);
  return names;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

void MetricsRegistry::setGauge(std::string_view name,
                               std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.insert_or_assign(std::string(name), std::move(fn));
}

int64_t MetricsRegistry::counterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gaugeValue(std::string_view name) const {
  std::function<double()> fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) return 0.0;
    fn = it->second;
  }
  // Sampled outside the registry lock: gauge callbacks take their owner's
  // lock (e.g. the Network traffic mutex).
  return fn();
}

namespace {

std::string formatGauge(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else becomes '_'.
std::string sanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

void MetricsRegistry::renderInto(std::string& out,
                                 const std::string& label) const {
  // Copy instrument views under the lock; sample gauges after releasing it.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, std::string>> hists;
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  std::vector<std::pair<std::string, const MetricsRegistry*>> children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, h] : histograms_) {
      hists.emplace_back(name, h->summary());
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
    for (const auto& [name, reg] : children_) {
      children.emplace_back(name, reg.get());
    }
  }
  if (!counters.empty() || !hists.empty() || !gauges.empty()) {
    out += "[" + (label.empty() ? std::string("cluster") : label) + "]\n";
    for (const auto& [name, value] : counters) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
    for (const auto& [name, fn] : gauges) {
      out += "  " + name + " = " + formatGauge(fn()) + " (gauge)\n";
    }
    for (const auto& [name, summary] : hists) {
      out += "  " + name + ": " + summary + "\n";
    }
  }
  for (const auto& [name, reg] : children) {
    reg->renderInto(out, label.empty() ? name : label + "." + name);
  }
}

std::string MetricsRegistry::render() const {
  std::string out;
  renderInto(out, "");
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

void MetricsRegistry::prometheusInto(std::string& out,
                                     const std::string& prefix) const {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  std::vector<std::pair<std::string, const MetricsRegistry*>> children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, h] : histograms_) {
      hists.emplace_back(name, h.get());
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
    for (const auto& [name, reg] : children_) {
      children.emplace_back(name, reg.get());
    }
  }
  for (const auto& [name, value] : counters) {
    const std::string metric = sanitizeMetricName(prefix + name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, fn] : gauges) {
    const std::string metric = sanitizeMetricName(prefix + name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + formatGauge(fn()) + "\n";
  }
  for (const auto& [name, h] : hists) {
    const std::string metric = sanitizeMetricName(prefix + name);
    out += "# TYPE " + metric + " summary\n";
    for (const double q : {0.5, 0.95, 0.99}) {
      char qbuf[16];
      std::snprintf(qbuf, sizeof(qbuf), "%g", q);
      out += metric + "{quantile=\"" + qbuf + "\"} " +
             std::to_string(h->percentile(q * 100.0)) + "\n";
    }
    out += metric + "_count " + std::to_string(h->count()) + "\n";
    out += metric + "_sum " + std::to_string(h->sum()) + "\n";
  }
  for (const auto& [name, reg] : children) {
    reg->prometheusInto(out, prefix + name + "_");
  }
}

std::string MetricsRegistry::exportPrometheus() const {
  std::string out;
  prometheusInto(out, "mh_");
  return out;
}

void MetricsRegistry::jsonInto(std::string& out, int indent) const {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, const LatencyHistogram*>> hists;
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  std::vector<std::pair<std::string, const MetricsRegistry*>> children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, h] : histograms_) {
      hists.emplace_back(name, h.get());
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
    for (const auto& [name, reg] : children_) {
      children.emplace_back(name, reg.get());
    }
  }
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string pad2(static_cast<size_t>(indent + 1) * 2, ' ');
  out += "{\n";
  bool first_section = true;
  const auto section = [&](const char* key) {
    if (!first_section) out += ",\n";
    first_section = false;
    out += pad2 + "\"" + key + "\": ";
  };
  if (!counters.empty()) {
    section("counters");
    out += "{";
    for (size_t i = 0; i < counters.size(); ++i) {
      out += (i ? ", " : "") + ("\"" + jsonEscape(counters[i].first) +
                                "\": " + std::to_string(counters[i].second));
    }
    out += "}";
  }
  if (!gauges.empty()) {
    section("gauges");
    out += "{";
    for (size_t i = 0; i < gauges.size(); ++i) {
      out += (i ? ", " : "") + ("\"" + jsonEscape(gauges[i].first) + "\": " +
                                formatGauge(gauges[i].second()));
    }
    out += "}";
  }
  if (!hists.empty()) {
    section("histograms");
    out += "{";
    for (size_t i = 0; i < hists.size(); ++i) {
      const LatencyHistogram& h = *hists[i].second;
      out += (i ? ", " : "") + ("\"" + jsonEscape(hists[i].first) + "\": ");
      out += "{\"count\": " + std::to_string(h.count()) +
             ", \"sum\": " + std::to_string(h.sum()) +
             ", \"p50\": " + std::to_string(h.percentile(50)) +
             ", \"p95\": " + std::to_string(h.percentile(95)) +
             ", \"p99\": " + std::to_string(h.percentile(99)) +
             ", \"max\": " + std::to_string(h.max()) + "}";
    }
    out += "}";
  }
  if (!children.empty()) {
    section("children");
    out += "{\n";
    for (size_t i = 0; i < children.size(); ++i) {
      out += pad2 + "  \"" + jsonEscape(children[i].first) + "\": ";
      children[i].second->jsonInto(out, indent + 2);
      if (i + 1 < children.size()) out += ",";
      out += "\n";
    }
    out += pad2 + "}";
  }
  out += "\n" + pad + "}";
}

std::string MetricsRegistry::exportJson() const {
  std::string out;
  jsonInto(out, 0);
  out += "\n";
  return out;
}

bool MetricsRegistry::hasHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.contains(name);
}

void MetricsRegistry::flattenInto(
    std::vector<std::pair<std::string, double>>& out,
    const std::string& prefix) const {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, std::pair<uint64_t, int64_t>>> hists;
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  std::vector<std::pair<std::string, const MetricsRegistry*>> children;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      counters.emplace_back(name, c->value());
    }
    for (const auto& [name, h] : histograms_) {
      hists.emplace_back(name, std::make_pair(h->count(), h->sum()));
    }
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
    for (const auto& [name, reg] : children_) {
      children.emplace_back(name, reg.get());
    }
  }
  for (const auto& [name, value] : counters) {
    out.emplace_back(prefix + name, static_cast<double>(value));
  }
  // Sampled outside the registry lock: gauge callbacks take their owner's
  // lock (e.g. the Network traffic mutex).
  for (const auto& [name, fn] : gauges) out.emplace_back(prefix + name, fn());
  for (const auto& [name, counts] : hists) {
    out.emplace_back(prefix + name + ".count",
                     static_cast<double>(counts.first));
    out.emplace_back(prefix + name + ".sum_us",
                     static_cast<double>(counts.second));
  }
  for (const auto& [name, reg] : children) {
    reg->flattenInto(out, prefix + name + "/");
  }
}

std::vector<std::pair<std::string, double>> MetricsRegistry::flattenValues()
    const {
  std::vector<std::pair<std::string, double>> out;
  flattenInto(out, "");
  return out;
}

}  // namespace mh
