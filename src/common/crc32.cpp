#include "mh/common/crc32.h"

#include <array>

namespace mh {

namespace {

// Table-driven CRC-32C, reflected polynomial 0x82F63B78.
std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kTable = makeTable();

}  // namespace

uint32_t crc32c(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  for (const char c : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(c)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace mh
