#include "mh/common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace mh {

namespace {

// Slice-by-8 CRC-32C, reflected polynomial 0x82F63B78. Table k holds the
// CRC contribution of a byte that is k positions ahead of the current one,
// so eight input bytes fold into the running CRC with eight table lookups
// and no inter-byte dependency chain (~8x the bytewise loop's throughput).
using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

constexpr SliceTables makeTables() {
  SliceTables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

constexpr SliceTables kTables = makeTables();

}  // namespace

uint32_t crc32c(std::string_view data, uint32_t seed) {
  uint32_t crc = ~seed;
  const char* p = data.data();
  size_t n = data.size();

  // The 8-byte folding step assumes the chunk's bytes land little-endian in
  // the two 32-bit halves; on a big-endian target fall through to the
  // bytewise tail loop for the whole input (results are identical).
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      uint64_t chunk;
      std::memcpy(&chunk, p, 8);
      const uint32_t lo = crc ^ static_cast<uint32_t>(chunk);
      const uint32_t hi = static_cast<uint32_t>(chunk >> 32);
      crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
            kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
            kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n > 0) {
    crc = kTables[0][(crc ^ static_cast<uint8_t>(*p)) & 0xFF] ^ (crc >> 8);
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace mh
