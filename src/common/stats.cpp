#include "mh/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "mh/common/error.h"

namespace mh {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double RunningStat::stddevPopulation() const {
  if (count_ < 1) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_));
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw InvalidArgumentError("Histogram needs hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<int64_t>((x - lo_) / span *
                                  static_cast<double>(counts_.size()));
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bucketLow(size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucketHigh(size_t i) const { return bucketLow(i + 1); }

std::string Histogram::render(size_t width) const {
  int64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bucketLow(i) << ", " << bucketHigh(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw InvalidArgumentError("percentile p out of range");
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

std::string formatMeanStd(double mean, double stddev, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << std::fixed << mean << "±" << stddev;
  return out.str();
}

}  // namespace mh
