#include "mh/common/codec.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include "mh/common/crc32.h"
#include "mh/common/error.h"
#include "mh/common/stopwatch.h"

namespace mh {

namespace {

constexpr char kMagic[4] = {'M', 'H', 'C', '1'};

/// Frame payload method bytes.
constexpr uint8_t kMethodStored = 0;      ///< payload IS the raw bytes
constexpr uint8_t kMethodCompressed = 1;  ///< payload is codec-compressed

// --------------------------------------------------------------- mh-lz
//
// LZ4-flavoured byte stream: a sequence of (token, literals, match) units.
// token = (lit_len << 4) | (match_len - 4); a nibble of 15 spills into
// 255-continuation extension bytes. Matches reference back up to 65535
// bytes inside the same frame via a 2-byte little-endian offset. The final
// unit carries literals only (its match nibble is 0 and no offset follows).

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 14;
constexpr int kMaxChain = 32;

uint32_t read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void writeLzLen(Bytes& out, size_t len) {
  // Extension bytes after a nibble of 15: 255-continuations, then the
  // remainder (which may be 0).
  while (len >= 255) {
    out.push_back(static_cast<char>(0xFF));
    len -= 255;
  }
  out.push_back(static_cast<char>(len));
}

void mhLzCompress(std::string_view raw, Bytes& out) {
  const size_t n = raw.size();
  const char* const base = raw.data();
  std::vector<int32_t> head(size_t{1} << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  size_t anchor = 0;  // first literal not yet emitted
  size_t i = 0;
  const size_t match_limit = n >= kMinMatch ? n - kMinMatch + 1 : 0;
  while (i < match_limit) {
    // Walk the hash chain for the best match at i (greedy).
    const uint32_t h = hash4(read32(base + i));
    size_t best_len = 0;
    size_t best_pos = 0;
    int32_t cand = head[h];
    for (int depth = 0; cand >= 0 && depth < kMaxChain;
         cand = prev[static_cast<size_t>(cand)], ++depth) {
      const size_t c = static_cast<size_t>(cand);
      if (i - c > kMaxOffset) break;  // chain only grows older
      if (read32(base + c) != read32(base + i)) continue;
      size_t len = kMinMatch;
      const size_t max_len = n - i;
      while (len < max_len && base[c + len] == base[i + len]) ++len;
      if (len > best_len) {
        best_len = len;
        best_pos = c;
      }
    }

    if (best_len >= kMinMatch) {
      const size_t lit_len = i - anchor;
      const size_t match_code = best_len - kMinMatch;
      out.push_back(static_cast<char>(
          (std::min<size_t>(lit_len, 15) << 4) |
          std::min<size_t>(match_code, 15)));
      if (lit_len >= 15) writeLzLen(out, lit_len - 15);
      out.append(base + anchor, lit_len);
      const size_t offset = i - best_pos;
      out.push_back(static_cast<char>(offset & 0xFF));
      out.push_back(static_cast<char>((offset >> 8) & 0xFF));
      if (match_code >= 15) writeLzLen(out, match_code - 15);

      // Insert the covered positions into the chains so later matches can
      // reference inside this one.
      const size_t match_end = i + best_len;
      for (size_t p = i, e = std::min(match_end, match_limit); p < e; ++p) {
        const uint32_t ih = hash4(read32(base + p));
        prev[p] = head[ih];
        head[ih] = static_cast<int32_t>(p);
      }
      i = match_end;
      anchor = match_end;
    } else {
      prev[i] = head[h];
      head[h] = static_cast<int32_t>(i);
      ++i;
    }
  }

  // Final literals-only unit (always emitted, even for an empty tail, so
  // the decoder unambiguously consumes the whole payload).
  const size_t lit_len = n - anchor;
  out.push_back(static_cast<char>(std::min<size_t>(lit_len, 15) << 4));
  if (lit_len >= 15) writeLzLen(out, lit_len - 15);
  out.append(base + anchor, lit_len);
}

void mhLzDecompress(std::string_view payload, size_t raw_len, Bytes& out) {
  // The frame header already told us the exact raw length, so decode into a
  // pre-sized region through raw pointers. 8 bytes of slack let match
  // copies run in full 8-byte strides past their true end (the classic LZ4
  // wild copy) — the slack is trimmed before the caller sees the bytes.
  const size_t start = out.size();
  out.resize(start + raw_len + 8);
  char* const base = out.data() + start;
  size_t op = 0;

  const char* ip = payload.data();
  const char* const ip_end = ip + payload.size();
  const auto need = [&](size_t n) {
    if (static_cast<size_t>(ip_end - ip) < n) {
      throw InvalidArgumentError("mh-lz frame payload truncated");
    }
  };
  const auto readExt = [&](size_t len) {
    uint8_t b;
    do {
      need(1);
      b = static_cast<uint8_t>(*ip++);
      len += b;
    } while (b == 0xFF);
    return len;
  };

  while (true) {
    need(1);
    const uint8_t token = static_cast<uint8_t>(*ip++);
    size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len = readExt(15);
    if (lit_len > 0) {
      need(lit_len);
      if (op + lit_len > raw_len) {
        throw InvalidArgumentError("mh-lz frame decodes past its raw length");
      }
      std::memcpy(base + op, ip, lit_len);
      ip += lit_len;
      op += lit_len;
    }
    if (ip == ip_end) break;  // final unit: literals only

    need(2);
    const size_t offset = static_cast<size_t>(static_cast<uint8_t>(ip[0])) |
                          (static_cast<size_t>(static_cast<uint8_t>(ip[1]))
                           << 8);
    ip += 2;
    if (offset == 0 || offset > op) {
      throw InvalidArgumentError("mh-lz match offset outside window");
    }
    size_t match_len = (token & 0x0F) + kMinMatch;
    if ((token & 0x0F) == 15) match_len = readExt(15) + kMinMatch;
    if (op + match_len > raw_len) {
      throw InvalidArgumentError("mh-lz frame decodes past its raw length");
    }
    const char* src = base + op - offset;
    char* dst = base + op;
    if (offset == 1) {
      std::memset(dst, static_cast<unsigned char>(*src), match_len);
    } else if (offset >= 8) {
      // Bounded above: copies at most match_len+7 bytes, which the slack
      // absorbs; offset >= 8 keeps each stride's source fully written.
      size_t k = 0;
      do {
        std::memcpy(dst + k, src + k, 8);
        k += 8;
      } while (k < match_len);
    } else {
      // Short overlapping offsets (2..7) replicate byte-wise.
      for (size_t k = 0; k < match_len; ++k) dst[k] = src[k];
    }
    op += match_len;
  }
  if (op != raw_len) {
    throw InvalidArgumentError("mh-lz frame decodes short of its raw length");
  }
  out.resize(start + raw_len);  // trim the wild-copy slack
}

// -------------------------------------------------------------- var-rle
//
// Token stream: varint (len << 1 | is_run). A run token is followed by the
// one repeated byte; a literal token by `len` verbatim bytes. Runs are
// emitted for >= 4 equal bytes.

constexpr size_t kMinRun = 4;

void varRleCompress(std::string_view raw, Bytes& out) {
  ByteWriter w(out);
  size_t i = 0;
  size_t lit_start = 0;
  const size_t n = raw.size();
  while (i < n) {
    size_t j = i + 1;
    while (j < n && raw[j] == raw[i]) ++j;
    const size_t run = j - i;
    if (run >= kMinRun) {
      if (i > lit_start) {
        w.writeVarU64((i - lit_start) << 1);
        w.writeRaw(raw.substr(lit_start, i - lit_start));
      }
      w.writeVarU64((run << 1) | 1);
      w.writeU8(static_cast<uint8_t>(raw[i]));
      lit_start = j;
    }
    i = j;
  }
  if (n > lit_start) {
    w.writeVarU64((n - lit_start) << 1);
    w.writeRaw(raw.substr(lit_start));
  }
}

void varRleDecompress(std::string_view payload, size_t raw_len, Bytes& out) {
  const size_t start = out.size();
  ByteReader r(payload);
  while (!r.atEnd()) {
    const uint64_t token = r.readVarU64();
    const size_t len = static_cast<size_t>(token >> 1);
    if (out.size() - start + len > raw_len) {
      throw InvalidArgumentError("var-rle frame decodes past its raw length");
    }
    if (token & 1) {
      const char b = static_cast<char>(r.readU8());
      out.append(len, b);
    } else {
      const std::string_view lits = r.readRaw(len);
      out.append(lits.data(), lits.size());
    }
  }
  if (out.size() - start != raw_len) {
    throw InvalidArgumentError("var-rle frame decodes short of its raw length");
  }
}

void compressChunk(CodecKind kind, std::string_view chunk, Bytes& scratch) {
  scratch.clear();
  switch (kind) {
    case CodecKind::kMhLz:
      mhLzCompress(chunk, scratch);
      break;
    case CodecKind::kVarRle:
      varRleCompress(chunk, scratch);
      break;
    case CodecKind::kNone:
      throw InvalidArgumentError("codec 'none' cannot encode");
  }
}

void decompressChunk(CodecKind kind, std::string_view payload, size_t raw_len,
                     Bytes& out) {
  switch (kind) {
    case CodecKind::kMhLz:
      mhLzDecompress(payload, raw_len, out);
      break;
    case CodecKind::kVarRle:
      varRleDecompress(payload, raw_len, out);
      break;
    case CodecKind::kNone:
      throw InvalidArgumentError("codec 'none' cannot decode a frame");
  }
}

/// Parses and validates the 5-byte stream header; returns the codec.
CodecKind readHeader(ByteReader& r) {
  const std::string_view magic = r.readRaw(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0) {
    throw InvalidArgumentError("not a codec stream (bad magic)");
  }
  return codecFromId(r.readU8());
}

struct FrameHeader {
  uint64_t raw_len = 0;
  uint8_t method = 0;
  uint64_t payload_len = 0;
  uint32_t crc = 0;
};

FrameHeader readFrameHeader(ByteReader& r) {
  FrameHeader f;
  f.raw_len = r.readVarU64();
  f.method = r.readU8();
  if (f.method != kMethodStored && f.method != kMethodCompressed) {
    throw InvalidArgumentError("codec frame: unknown method " +
                               std::to_string(f.method));
  }
  f.payload_len = r.readVarU64();
  f.crc = r.readU32();
  if (f.method == kMethodStored && f.payload_len != f.raw_len) {
    throw InvalidArgumentError("codec frame: stored payload length mismatch");
  }
  if (f.raw_len > kCodecFrameRawBytes) {
    throw InvalidArgumentError("codec frame: raw length exceeds frame limit");
  }
  return f;
}

/// Decodes one frame's raw bytes onto `out`, verifying the frame CRC.
void decodeFrame(CodecKind kind, const FrameHeader& f, std::string_view payload,
                 size_t frame_index, Bytes& out) {
  const size_t start = out.size();
  if (f.method == kMethodStored) {
    out.append(payload.data(), payload.size());
  } else {
    decompressChunk(kind, payload, static_cast<size_t>(f.raw_len), out);
  }
  const std::string_view raw(out.data() + start, out.size() - start);
  if (crc32c(raw) != f.crc) {
    throw ChecksumError("codec frame " + std::to_string(frame_index) +
                        " crc mismatch");
  }
}

void recordCodec(MetricsRegistry* metrics, CodecKind kind, const char* which,
                 int64_t micros) {
  if (metrics == nullptr) return;
  metrics->child(std::string("codec.") + std::string(codecName(kind)))
      .histogram(which)
      .record(micros);
}

}  // namespace

CodecKind codecFromName(std::string_view name) {
  if (name == "none" || name.empty()) return CodecKind::kNone;
  if (name == "mh-lz") return CodecKind::kMhLz;
  if (name == "var-rle") return CodecKind::kVarRle;
  throw InvalidArgumentError("unknown codec '" + std::string(name) + "'");
}

std::string_view codecName(CodecKind kind) {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kMhLz:
      return "mh-lz";
    case CodecKind::kVarRle:
      return "var-rle";
  }
  throw InvalidArgumentError("unknown codec kind");
}

CodecKind codecFromId(uint8_t id) {
  switch (id) {
    case 1:
      return CodecKind::kMhLz;
    case 2:
      return CodecKind::kVarRle;
    default:
      throw InvalidArgumentError("unknown codec id " + std::to_string(id));
  }
}

bool isEncodedStream(std::string_view stream) {
  if (stream.size() < kCodecHeaderBytes) return false;
  if (std::memcmp(stream.data(), kMagic, 4) != 0) return false;
  const uint8_t id = static_cast<uint8_t>(stream[4]);
  return id == 1 || id == 2;
}

EncodedStreamInfo encodedStreamInfo(std::string_view stream) {
  ByteReader r(stream);
  EncodedStreamInfo info;
  info.codec = readHeader(r);
  while (!r.atEnd()) {
    const FrameHeader f = readFrameHeader(r);
    r.readRaw(static_cast<size_t>(f.payload_len));  // throws when torn
    info.raw_size += f.raw_len;
    ++info.frame_count;
  }
  return info;
}

Bytes codecEncode(CodecKind kind, std::string_view raw,
                  MetricsRegistry* metrics, TraceCollector* trace,
                  std::string_view component) {
  if (kind == CodecKind::kNone) {
    throw InvalidArgumentError("codecEncode called with codec 'none'");
  }
  Stopwatch watch;
  TraceSpan span(trace != nullptr && trace->enabled() ? trace : nullptr,
                 component, "COMPRESS");

  Bytes out;
  out.reserve(raw.size() / 2 + kCodecHeaderBytes + 16);
  out.append(kMagic, 4);
  out.push_back(static_cast<char>(kind));

  Bytes scratch;
  ByteWriter w(out);
  for (size_t off = 0; off < raw.size(); off += kCodecFrameRawBytes) {
    const std::string_view chunk = raw.substr(off, kCodecFrameRawBytes);
    compressChunk(kind, chunk, scratch);
    w.writeVarU64(chunk.size());
    // A chunk the codec cannot shrink is stored raw — worst case the stream
    // grows only by the per-frame header.
    const bool stored = scratch.size() >= chunk.size();
    w.writeU8(stored ? kMethodStored : kMethodCompressed);
    w.writeVarU64(stored ? chunk.size() : scratch.size());
    w.writeU32(crc32c(chunk));
    w.writeRaw(stored ? chunk : std::string_view(scratch));
  }

  recordCodec(metrics, kind, "encode.micros", watch.elapsedMicros());
  if (span.active()) {
    span.arg("codec", codecName(kind));
    span.arg("raw_bytes", std::to_string(raw.size()));
    span.arg("encoded_bytes", std::to_string(out.size()));
  }
  return out;
}

Buffer codecDecode(std::string_view stream, MetricsRegistry* metrics,
                   TraceCollector* trace, std::string_view component) {
  Stopwatch watch;
  TraceSpan span(trace != nullptr && trace->enabled() ? trace : nullptr,
                 component, "DECOMPRESS");
  ByteReader r(stream);
  const CodecKind kind = readHeader(r);

  Bytes out;
  size_t frame_index = 0;
  while (!r.atEnd()) {
    const FrameHeader f = readFrameHeader(r);
    const std::string_view payload =
        r.readRaw(static_cast<size_t>(f.payload_len));
    decodeFrame(kind, f, payload, frame_index++, out);
  }

  recordCodec(metrics, kind, "decode.micros", watch.elapsedMicros());
  if (span.active()) {
    span.arg("codec", codecName(kind));
    span.arg("raw_bytes", std::to_string(out.size()));
    span.arg("encoded_bytes", std::to_string(stream.size()));
  }
  return Buffer::fromString(std::move(out));
}

BufferView codecDecodeRange(std::string_view stream, uint64_t offset,
                            uint64_t len, MetricsRegistry* metrics,
                            TraceCollector* trace,
                            std::string_view component) {
  Stopwatch watch;
  TraceSpan span(trace != nullptr && trace->enabled() ? trace : nullptr,
                 component, "DECOMPRESS");
  ByteReader r(stream);
  const CodecKind kind = readHeader(r);

  // Frames decode independently: skip whole frames before the range without
  // decompressing them, stop once the range is covered.
  Bytes out;
  uint64_t raw_pos = 0;       // raw offset of the next frame
  uint64_t range_start = 0;   // raw offset of out's first byte
  bool started = false;
  size_t frame_index = 0;
  const uint64_t range_end =
      len > std::numeric_limits<uint64_t>::max() - offset
          ? std::numeric_limits<uint64_t>::max()
          : offset + len;
  while (!r.atEnd() && raw_pos < range_end) {
    const FrameHeader f = readFrameHeader(r);
    const std::string_view payload =
        r.readRaw(static_cast<size_t>(f.payload_len));
    const uint64_t frame_end = raw_pos + f.raw_len;
    if (frame_end > offset) {
      if (!started) {
        range_start = raw_pos;
        started = true;
      }
      decodeFrame(kind, f, payload, frame_index, out);
    }
    raw_pos = frame_end;
    ++frame_index;
  }

  recordCodec(metrics, kind, "decode.micros", watch.elapsedMicros());
  if (span.active()) {
    span.arg("codec", codecName(kind));
    span.arg("raw_bytes", std::to_string(out.size()));
  }

  if (!started) {
    // Frames are contiguous, so nothing overlapped the range: either the
    // range is empty inside the stream, or it starts past the raw end (the
    // loop drained every frame without reaching `offset`).
    if (offset > raw_pos) {
      throw InvalidArgumentError("range start past end of codec stream");
    }
    return BufferView();
  }
  // The first overlapping frame starts at range_start <= offset and ends
  // past it, so the slice below is always in range; len clamps (substr
  // semantics, like readBlockRange).
  const uint64_t have_end = range_start + out.size();
  const size_t inner = static_cast<size_t>(offset - range_start);
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(len, have_end - offset));
  return BufferView(Buffer::fromString(std::move(out))).slice(inner, want);
}

}  // namespace mh
