#include "mh/common/strings.h"

#include <cctype>
#include <sstream>

namespace mh {

std::vector<std::string> splitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string joinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string formatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream out;
  out.precision(v < 10 ? 2 : 1);
  out << std::fixed << v << " " << kUnits[unit];
  return out.str();
}

std::string formatMillis(int64_t ms) {
  std::ostringstream out;
  if (ms < 0) {
    out << "-";
    ms = -ms;
  }
  const int64_t hours = ms / 3'600'000;
  const int64_t minutes = (ms / 60'000) % 60;
  const double seconds = static_cast<double>(ms % 60'000) / 1000.0;
  if (hours > 0) out << hours << "h ";
  if (hours > 0 || minutes > 0) out << minutes << "m ";
  out.precision(ms >= 60'000 ? 0 : 3);
  out << std::fixed << seconds << "s";
  return out.str();
}

std::string toLowerAscii(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool isDigits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace mh
