#include "mh/common/threadpool.h"

#include "mh/common/error.h"

namespace mh {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) throw InvalidArgumentError("ThreadPool needs >= 1 thread");
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw IllegalStateError("submit() on a shut-down ThreadPool");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();  // packaged_task captures exceptions into the future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
}

}  // namespace mh
