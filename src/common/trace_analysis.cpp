#include "mh/common/trace_analysis.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace mh {

namespace {

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatMs(int64_t micros) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(micros) / 1000.0);
  return buf;
}

struct SpanNode {
  const TraceEvent* event = nullptr;
  std::vector<uint64_t> children;
  int64_t end() const { return event->ts_us + event->dur_us; }
};

struct TraceIndex {
  std::unordered_map<uint64_t, SpanNode> spans;  // span_id -> node

  explicit TraceIndex(const std::vector<TraceEvent>& events,
                      uint64_t trace_id) {
    for (const auto& e : events) {
      if (e.trace_id != trace_id || !e.span || e.span_id == 0) continue;
      spans[e.span_id].event = &e;
    }
    for (auto& [id, node] : spans) {
      const uint64_t parent = node.event->parent_span_id;
      if (parent != 0) {
        const auto it = spans.find(parent);
        if (it != spans.end()) it->second.children.push_back(id);
      }
    }
  }

  /// Classified spans reachable from `id` through unclassified spans
  /// (unclassified spans are transparent: their time folds upward).
  void collectClassified(uint64_t id, std::vector<uint64_t>& out) const {
    const auto it = spans.find(id);
    if (it == spans.end()) return;
    for (const uint64_t child : it->second.children) {
      const auto cit = spans.find(child);
      if (cit == spans.end()) continue;
      if (classifyTracePhase(cit->second.event->name).empty()) {
        collectClassified(child, out);
      } else {
        out.push_back(child);
      }
    }
  }
};

/// Total length of the union of [start, end) intervals.
int64_t unionLength(std::vector<std::pair<int64_t, int64_t>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  int64_t total = 0;
  int64_t cur_start = 0, cur_end = -1;
  bool open = false;
  for (const auto& [s, e] : intervals) {
    if (e <= s) continue;
    if (!open || s > cur_end) {
      if (open) total += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
      open = true;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (open) total += cur_end - cur_start;
  return total;
}

}  // namespace

std::string_view classifyTracePhase(std::string_view span_name) {
  if (startsWith(span_name, "MAP")) return "map";
  // Must precede the "REDUCE" prefix check: the pipelined reduce's idle
  // stretches waiting on map-completion events are shuffle time.
  if (startsWith(span_name, "REDUCE_SHUFFLE_WAIT")) return "shuffle";
  if (startsWith(span_name, "REDUCE")) return "reduce";
  if (startsWith(span_name, "SHUFFLE_FETCH")) return "shuffle";
  if (startsWith(span_name, "SORT_SPILL")) return "spill";
  if (startsWith(span_name, "INNODE_COMBINE")) return "innode";
  if (startsWith(span_name, "MERGE")) return "merge";
  if (startsWith(span_name, "DFS_READ") || startsWith(span_name, "DFS_WRITE") ||
      startsWith(span_name, "READ_BLOCK") ||
      startsWith(span_name, "WRITE_BLOCK") ||
      startsWith(span_name, "REPLICATE") ||
      startsWith(span_name, "SHORT_CIRCUIT")) {
    return "dfs";
  }
  return {};  // JOB, COMPRESS, ... fold into the enclosing phase.
}

TraceTreeStats analyzeTraceTree(const std::vector<TraceEvent>& events,
                                uint64_t trace_id) {
  TraceTreeStats stats;
  std::unordered_set<uint64_t> span_ids;
  for (const auto& e : events) {
    if (e.trace_id != trace_id) continue;
    if (e.span && e.span_id != 0) span_ids.insert(e.span_id);
  }
  std::set<std::string> kinds;
  for (const auto& e : events) {
    if (e.trace_id != trace_id) continue;
    if (e.span) {
      ++stats.span_count;
      if (e.parent_span_id == 0) stats.root_span_ids.push_back(e.span_id);
    } else {
      ++stats.instant_count;
    }
    if (e.parent_span_id != 0 && span_ids.count(e.parent_span_id) == 0) {
      ++stats.missing_parents;
    }
    kinds.insert(std::string(
        std::string_view(e.component).substr(0, e.component.find('.'))));
  }
  stats.daemon_kinds.assign(kinds.begin(), kinds.end());
  return stats;
}

std::string CriticalPathReport::dominantPhase() const {
  if (phases.empty() || phases.front().micros <= 0) return "";
  return phases.front().phase;
}

int64_t CriticalPathReport::phaseMicros(std::string_view phase) const {
  for (const auto& p : phases) {
    if (p.phase == phase) return p.micros;
  }
  return 0;
}

std::string CriticalPathReport::renderAscii() const {
  std::string out;
  if (!found) {
    out = "critical path: no root span for trace " + std::to_string(trace_id) +
          " (tracing disabled, or the ring dropped the JOB span)\n";
    return out;
  }
  out += "critical path (trace " + std::to_string(trace_id) + ", total " +
         formatMs(total_us) + " ms):\n";
  for (const auto& step : steps) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-22s %-28s @%8s ms  +%8s ms\n",
                  step.component.empty() ? "-" : step.component.c_str(),
                  step.name.c_str(), formatMs(step.start_us).c_str(),
                  formatMs(step.dur_us).c_str());
    out += line;
  }
  out += "where the time went:\n";
  int64_t max_micros = 1;
  for (const auto& p : phases) max_micros = std::max(max_micros, p.micros);
  for (const auto& p : phases) {
    const double pct =
        total_us > 0 ? 100.0 * static_cast<double>(p.micros) / total_us : 0.0;
    const int bar =
        static_cast<int>(30.0 * static_cast<double>(p.micros) / max_micros);
    char line[160];
    std::snprintf(line, sizeof(line), "  %-10s %10s ms %5.1f%%  %s\n",
                  p.phase.c_str(), formatMs(p.micros).c_str(), pct,
                  std::string(static_cast<size_t>(std::max(bar, 0)), '#')
                      .c_str());
    out += line;
  }
  return out;
}

std::string CriticalPathReport::exportJson() const {
  std::string out = "{\"trace_id\":" + std::to_string(trace_id) +
                    ",\"found\":" + (found ? "true" : "false") +
                    ",\"total_us\":" + std::to_string(total_us) +
                    ",\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i) out += ",";
    out += "\"" + phases[i].phase +
           "\":" + std::to_string(phases[i].micros);
  }
  out += "},\"critical_path\":[";
  for (size_t i = 0; i < steps.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":\"" + steps[i].name + "\",\"component\":\"" +
           steps[i].component +
           "\",\"start_us\":" + std::to_string(steps[i].start_us) +
           ",\"dur_us\":" + std::to_string(steps[i].dur_us) + "}";
  }
  out += "]}";
  return out;
}

CriticalPathReport computeCriticalPath(const std::vector<TraceEvent>& events,
                                       uint64_t trace_id) {
  CriticalPathReport report;
  report.trace_id = trace_id;

  const TraceIndex index(events, trace_id);

  // The root is the (single) span with no parent — the JOB span the
  // JobTracker records at finish, backdated to submit time.
  const SpanNode* root = nullptr;
  for (const auto& [id, node] : index.spans) {
    if (node.event->parent_span_id == 0) {
      if (root == nullptr || startsWith(node.event->name, "JOB")) root = &node;
    }
  }
  std::map<std::string, int64_t> phase_micros;
  for (const char* phase : kTracePhases) phase_micros[phase] = 0;

  if (root == nullptr) {
    for (const auto& [phase, micros] : phase_micros) {
      report.phases.push_back({phase, micros});
    }
    return report;
  }
  report.found = true;
  report.total_us = root->event->dur_us;

  // Last-finishing reduce and map attempts anywhere in the trace: the
  // happens-before gates of the engine (all maps -> any reduce).
  const SpanNode* last_map = nullptr;
  const SpanNode* last_reduce = nullptr;
  for (const auto& [id, node] : index.spans) {
    const auto phase = classifyTracePhase(node.event->name);
    if (phase == "map" && (last_map == nullptr || node.end() > last_map->end()))
      last_map = &node;
    if (phase == "reduce" &&
        (last_reduce == nullptr || node.end() > last_reduce->end()))
      last_reduce = &node;
  }

  // Attributes a critical-path span's subtree, restricted to the clipped
  // window [win_start, win_end): classified descendants get their own
  // phases (recursively, each clipped to its visible stretch); the span
  // keeps the window length minus the union of its classified descendants'
  // clipped intervals (so overlapping parallel children are not subtracted
  // twice, and unclassified spans fold upward). The window matters under
  // slowstart: a pipelined reduce overlaps the map phase, and its
  // overlapped stretch is already on the path as map time — clipping keeps
  // the phase totals summing exactly to the job's wall clock.
  const std::function<void(const SpanNode&, const std::string&, int64_t,
                           int64_t)>
      attribute = [&](const SpanNode& node, const std::string& phase,
                      int64_t win_start, int64_t win_end) {
        const int64_t start = std::max(node.event->ts_us, win_start);
        const int64_t end = std::min(node.end(), win_end);
        if (end <= start) return;
        std::vector<uint64_t> classified;
        index.collectClassified(node.event->span_id, classified);
        std::vector<std::pair<int64_t, int64_t>> intervals;
        for (const uint64_t id : classified) {
          const SpanNode& child = index.spans.at(id);
          const int64_t child_start = std::max(child.event->ts_us, start);
          const int64_t child_end = std::min(child.end(), end);
          if (child_end <= child_start) continue;
          intervals.emplace_back(child_start, child_end);
          attribute(child, std::string(classifyTracePhase(child.event->name)),
                    child_start, child_end);
        }
        const int64_t covered = unionLength(std::move(intervals));
        phase_micros[phase] += std::max<int64_t>(end - start - covered, 0);
      };

  const auto addStep = [&](const SpanNode& node) {
    report.steps.push_back({node.event->name, node.event->component,
                            node.event->ts_us - root->event->ts_us,
                            node.event->dur_us});
  };
  const auto addGap = [&](int64_t start, int64_t end) {
    if (end <= start) return;
    report.steps.push_back(
        {"(scheduling gap)", "", start - root->event->ts_us, end - start});
    phase_micros["scheduling"] += end - start;
  };

  addStep(*root);
  int64_t cursor = root->event->ts_us;
  if (last_map != nullptr) {
    addGap(cursor, last_map->event->ts_us);
    addStep(*last_map);
    attribute(*last_map, "map", last_map->event->ts_us, last_map->end());
    cursor = std::max(cursor, last_map->end());
  }
  if (last_reduce != nullptr) {
    addGap(cursor, last_reduce->event->ts_us);
    addStep(*last_reduce);
    // With slowstart the reduce launches mid-map-phase; only its stretch
    // past the map gate (== `cursor`) is its own wall-clock contribution.
    attribute(*last_reduce, "reduce",
              std::max(cursor, last_reduce->event->ts_us),
              last_reduce->end());
    cursor = std::max(cursor, last_reduce->end());
  }
  addGap(cursor, root->end());

  for (const auto& [phase, micros] : phase_micros) {
    report.phases.push_back({phase, micros});
  }
  std::stable_sort(report.phases.begin(), report.phases.end(),
                   [](const CriticalPathPhase& a, const CriticalPathPhase& b) {
                     return a.micros > b.micros;
                   });
  return report;
}

}  // namespace mh
