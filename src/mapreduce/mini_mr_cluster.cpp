#include "mh/mr/mini_mr_cluster.h"

#include "mh/common/error.h"

namespace mh::mr {

MiniMrCluster::MiniMrCluster(MiniMrOptions options)
    : options_(std::move(options)), conf_(options_.conf) {
  dfs_ = std::make_unique<hdfs::MiniDfsCluster>(
      hdfs::MiniDfsOptions{.num_datanodes = options_.num_nodes,
                           .racks = options_.racks,
                           .conf = conf_});
  registry_ = std::make_shared<JobRegistry>();
  job_tracker_ = std::make_unique<JobTracker>(conf_, dfs_->network(),
                                              registry_, "jobtracker",
                                              dfs_->nameNode().host());
  job_tracker_->start();
  for (const auto& host : dfs_->dataNodeHosts()) {
    Config node_conf = conf_;
    node_conf.set("dfs.datanode.rack", dfs_->rackOf(host));
    auto tracker = std::make_unique<TaskTracker>(
        node_conf, dfs_->network(), host, registry_, job_tracker_->host(),
        dfs_->nameNode().host());
    tracker->start();
    trackers_.emplace(host, std::move(tracker));
  }
}

MiniMrCluster::~MiniMrCluster() {
  // Snapshotter first: its sampler walks every daemon's gauges, so it must
  // quiesce before any daemon is destroyed.
  network()->stopSnapshotter();
  for (auto& [host, tracker] : trackers_) tracker->stop();
  job_tracker_->stop();
}

TaskTracker& MiniMrCluster::taskTracker(const std::string& host) {
  const auto it = trackers_.find(host);
  if (it == trackers_.end()) {
    throw NotFoundError("no tasktracker on " + host);
  }
  return *it->second;
}

std::vector<std::string> MiniMrCluster::trackerHosts() const {
  std::vector<std::string> hosts;
  hosts.reserve(trackers_.size());
  for (const auto& [host, tracker] : trackers_) hosts.push_back(host);
  return hosts;
}

JobResult MiniMrCluster::runJob(JobSpec spec) {
  const JobId id = job_tracker_->submit(std::move(spec));
  return job_tracker_->wait(id);
}

void MiniMrCluster::killNode(const std::string& host) {
  taskTracker(host).crash();
  dfs_->killDataNode(host);
}

void MiniMrCluster::restartNode(const std::string& host) {
  dfs_->restartDataNode(host);
  taskTracker(host).start();
}

}  // namespace mh::mr
