#include "mh/mr/fs_view.h"

#include <algorithm>
#include <fstream>

#include "mh/common/error.h"

namespace mh::mr {

namespace fs = std::filesystem;

BufferView FileSystemView::readRangeView(const std::string& path,
                                         uint64_t offset, uint64_t length) {
  return BufferView(Buffer::fromString(readRange(path, offset, length)));
}

// ------------------------------------------------------------------ local

LocalFs::LocalFs(uint64_t split_size) : split_size_(split_size) {
  if (split_size_ == 0) throw InvalidArgumentError("split size must be >= 1");
}

std::vector<std::string> LocalFs::listFiles(const std::string& path) {
  if (!fs::exists(path)) throw NotFoundError("no such path: " + path);
  std::vector<std::string> out;
  if (fs::is_regular_file(path)) {
    out.push_back(path);
    return out;
  }
  for (const auto& entry : fs::recursive_directory_iterator(path)) {
    if (entry.is_regular_file()) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t LocalFs::fileLength(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) throw NotFoundError("no such file: " + path);
  return size;
}

Bytes LocalFs::readRange(const std::string& path, uint64_t offset,
                         uint64_t length) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw NotFoundError("no such file: " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  Bytes out(length, '\0');
  in.read(out.data(), static_cast<std::streamsize>(length));
  out.resize(static_cast<size_t>(in.gcount()));
  return out;
}

void LocalFs::writeFile(const std::string& path, std::string_view data) {
  const fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw IoError("cannot write: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

bool LocalFs::exists(const std::string& path) { return fs::exists(path); }

void LocalFs::mkdirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw IoError("mkdirs " + path + ": " + ec.message());
}

void LocalFs::remove(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
}

void LocalFs::rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) throw IoError("rename " + from + " -> " + to + ": " + ec.message());
}

std::vector<InputSplit> LocalFs::splitsForFile(const std::string& path) {
  const uint64_t length = fileLength(path);
  std::vector<InputSplit> splits;
  if (length == 0) return splits;
  for (uint64_t offset = 0; offset < length; offset += split_size_) {
    InputSplit split;
    split.path = path;
    split.offset = offset;
    split.length = std::min(split_size_, length - offset);
    splits.push_back(std::move(split));
  }
  return splits;
}

// ------------------------------------------------------------------- hdfs

std::vector<std::string> HdfsFs::listFiles(const std::string& path) {
  return client_.listFilesRecursive(path);
}

uint64_t HdfsFs::fileLength(const std::string& path) {
  return client_.getFileStatus(path).length;
}

std::vector<BufferView> HdfsFs::readPieces(const std::string& path,
                                           uint64_t offset, uint64_t length) {
  std::vector<BufferView> pieces;
  for (const auto& located : client_.getBlockLocations(path)) {
    const uint64_t block_end = located.offset + located.block.size;
    if (block_end <= offset) continue;
    if (located.offset >= offset + length) break;
    const uint64_t start_in_block =
        offset > located.offset ? offset - located.offset : 0;
    const uint64_t want =
        std::min(block_end, offset + length) - (located.offset + start_in_block);
    pieces.push_back(client_.readBlockRange(located, start_in_block, want));
  }
  return pieces;
}

Bytes HdfsFs::readRange(const std::string& path, uint64_t offset,
                        uint64_t length) {
  const std::vector<BufferView> pieces = readPieces(path, offset, length);
  size_t total = 0;
  for (const BufferView& piece : pieces) total += piece.size();
  Bytes out;
  out.reserve(total);
  for (const BufferView& piece : pieces) out.append(piece.view());
  return out;
}

BufferView HdfsFs::readRangeView(const std::string& path, uint64_t offset,
                                 uint64_t length) {
  std::vector<BufferView> pieces = readPieces(path, offset, length);
  // The common case — a record reader's range inside one block — returns
  // the replica's buffer uncopied. Multi-block ranges pay one splice.
  if (pieces.size() == 1) return std::move(pieces.front());
  size_t total = 0;
  for (const BufferView& piece : pieces) total += piece.size();
  Bytes out;
  out.reserve(total);
  for (const BufferView& piece : pieces) out.append(piece.view());
  return BufferView(Buffer::fromString(std::move(out)));
}

void HdfsFs::writeFile(const std::string& path, std::string_view data) {
  client_.writeFile(path, data);
}

bool HdfsFs::exists(const std::string& path) { return client_.exists(path); }

void HdfsFs::mkdirs(const std::string& path) { client_.mkdirs(path); }

void HdfsFs::remove(const std::string& path) { client_.remove(path, true); }

void HdfsFs::rename(const std::string& from, const std::string& to) {
  client_.rename(from, to);
}

std::vector<InputSplit> HdfsFs::splitsForFile(const std::string& path) {
  std::vector<InputSplit> splits;
  for (const auto& located : client_.getBlockLocations(path)) {
    InputSplit split;
    split.path = path;
    split.offset = located.offset;
    split.length = located.block.size;
    split.hosts = located.hosts;
    splits.push_back(std::move(split));
  }
  return splits;
}

}  // namespace mh::mr
