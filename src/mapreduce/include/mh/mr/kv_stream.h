#pragma once

#include <string_view>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/mr/types.h"

/// \file kv_stream.h
/// The intermediate record format: a run of [varint klen][key][varint
/// vlen][value] frames. Map outputs are stored and shuffled in this format;
/// reduce merges decode it back.

namespace mh::mr {

/// Appends framed records to a buffer.
class KvWriter {
 public:
  explicit KvWriter(Bytes& out) : writer_(out) {}

  void write(std::string_view key, std::string_view value) {
    writer_.writeBytes(key);
    writer_.writeBytes(value);
  }

  void write(const KeyValue& kv) { write(kv.key, kv.value); }

 private:
  ByteWriter writer_;
};

/// Streams framed records back out of a buffer.
class KvReader {
 public:
  explicit KvReader(std::string_view in) : reader_(in) {}

  /// False at end of stream; throws InvalidArgumentError on a torn frame.
  bool next(std::string_view& key, std::string_view& value) {
    if (reader_.atEnd()) return false;
    key = reader_.readBytes();
    value = reader_.readBytes();
    return true;
  }

 private:
  ByteReader reader_;
};

/// Decodes a whole run into materialized records.
std::vector<KeyValue> decodeKvRun(std::string_view run);

/// Encodes records into one run.
Bytes encodeKvRun(const std::vector<KeyValue>& records);

}  // namespace mh::mr
