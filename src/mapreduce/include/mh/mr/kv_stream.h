#pragma once

#include <string_view>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/common/codec.h"
#include "mh/mr/types.h"

/// \file kv_stream.h
/// The intermediate record format: a run of [varint klen][key][varint
/// vlen][value] frames. Map outputs are stored and shuffled in this format;
/// reduce merges decode it back. When a compression seam is on, whole runs
/// travel as framed codec streams (codec.h) and `DecodedRunSet` unwraps
/// them at the merge input.

namespace mh::mr {

/// Appends framed records to a buffer.
class KvWriter {
 public:
  explicit KvWriter(Bytes& out) : writer_(out) {}

  void write(std::string_view key, std::string_view value) {
    writer_.writeBytes(key);
    writer_.writeBytes(value);
  }

  void write(const KeyValue& kv) { write(kv.key, kv.value); }

 private:
  ByteWriter writer_;
};

/// Streams framed records back out of a buffer.
class KvReader {
 public:
  explicit KvReader(std::string_view in) : reader_(in) {}

  /// False at end of stream; throws InvalidArgumentError on a torn frame.
  bool next(std::string_view& key, std::string_view& value) {
    if (reader_.atEnd()) return false;
    key = reader_.readBytes();
    value = reader_.readBytes();
    return true;
  }

 private:
  ByteReader reader_;
};

/// Decodes a whole run into materialized records.
std::vector<KeyValue> decodeKvRun(std::string_view run);

/// Encodes records into one run.
Bytes encodeKvRun(const std::vector<KeyValue>& records);

/// Presents a set of possibly codec-compressed kv runs as plain decoded
/// views for the KvRunMerger. Compressed runs (`isEncodedStream`) decode
/// into fresh refcounted buffers owned by this set; raw runs pass through
/// as views of their original buffers — zero copy either way downstream.
/// The set must outlive the merger consuming `views()`.
///
/// `allow_decode=false` pins every run as raw — the caller's seams are all
/// off, so bytes that merely resemble a codec header are not misdecoded.
class DecodedRunSet {
 public:
  /// `metrics`/`trace`/`component` meter DECOMPRESS work (all optional).
  DecodedRunSet(const std::vector<BufferView>& runs, bool allow_decode,
                MetricsRegistry* metrics = nullptr,
                TraceCollector* trace = nullptr,
                std::string_view component = "kvstream");

  const std::vector<std::string_view>& views() const { return views_; }

  /// Total decoded (logical) bytes across all runs.
  int64_t rawBytes() const { return raw_bytes_; }
  /// Encoded wire bytes of the runs that actually decoded (0 when none).
  int64_t encodedBytes() const { return encoded_bytes_; }
  /// Extra resident bytes the decode materialized (the decoded buffers'
  /// sizes — the encoded originals stay alive and charged by the caller),
  /// i.e. what a heap budget should additionally charge.
  int64_t decodedHeapBytes() const { return decoded_heap_bytes_; }

 private:
  std::vector<BufferView> owned_;  ///< originals or fresh decoded buffers
  std::vector<std::string_view> views_;
  int64_t raw_bytes_ = 0;
  int64_t encoded_bytes_ = 0;
  int64_t decoded_heap_bytes_ = 0;
};

}  // namespace mh::mr
