#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "mh/common/serde.h"

/// \file types.h
/// Core MapReduce value conventions.
///
/// The engine moves opaque byte strings. Typed user code converts through
/// `MrCodec<T>`: `std::string` passes through **unwrapped** (so text data
/// stays readable in intermediate and output files, like Hadoop's Text),
/// every other type round-trips through its `Serde<T>` (the custom-Writable
/// mechanism). Keys compare byte-lexicographically during the sort/shuffle;
/// Serde's varint encodings are injective, so grouping is exact for any key
/// type.

namespace mh::mr {

/// One record flowing between stages.
struct KeyValue {
  Bytes key;
  Bytes value;

  bool operator==(const KeyValue&) const = default;
};

/// Encode/decode between user types and engine byte strings.
template <typename T>
struct MrCodec {
  static Bytes enc(const T& v) { return serialize(v); }
  static T dec(std::string_view b) { return deserialize<T>(b); }
};

/// Strings are raw bytes — no length prefix — since each key/value already
/// occupies its own buffer.
template <>
struct MrCodec<std::string> {
  static Bytes enc(const std::string& v) { return v; }
  static std::string dec(std::string_view b) { return std::string(b); }
};

/// Job identifier assigned by the JobTracker.
using JobId = uint32_t;

/// Well-known port numbers (Hadoop 1.x defaults).
inline constexpr int kJobTrackerPort = 50030;
inline constexpr int kTaskTrackerPort = 50060;

/// Counter groups and names used by the engine. Applications may add their
/// own groups freely.
namespace counters {
inline constexpr const char* kTaskGroup = "task";
inline constexpr const char* kMapInputRecords = "MAP_INPUT_RECORDS";
inline constexpr const char* kMapOutputRecords = "MAP_OUTPUT_RECORDS";
inline constexpr const char* kMapOutputBytes = "MAP_OUTPUT_BYTES";
inline constexpr const char* kCombineInputRecords = "COMBINE_INPUT_RECORDS";
inline constexpr const char* kCombineOutputRecords = "COMBINE_OUTPUT_RECORDS";
inline constexpr const char* kReduceInputGroups = "REDUCE_INPUT_GROUPS";
inline constexpr const char* kReduceInputRecords = "REDUCE_INPUT_RECORDS";
inline constexpr const char* kReduceOutputRecords = "REDUCE_OUTPUT_RECORDS";
inline constexpr const char* kSpilledRecords = "SPILLED_RECORDS";
inline constexpr const char* kMapSpills = "MAP_SPILLS";
inline constexpr const char* kMergeSegments = "MERGE_SEGMENTS";
/// Spill-run bytes before/after map-output compression; equal counts are
/// never recorded — both stay 0 while the codec is off.
inline constexpr const char* kSpillRawBytes = "SPILL_RAW_BYTES";
inline constexpr const char* kSpillCompressedBytes = "SPILL_COMPRESSED_BYTES";
/// In-node combining (`mapred.innode.combine`): records entering/leaving
/// tracker-level merges of completed map outputs, and the time spent
/// merging. Charged to the map task that triggered the merge, so PR-4
/// attempt-replacement keeps them exactly-once like every task counter.
inline constexpr const char* kInnodeCombineRecordsIn =
    "INNODE_COMBINE_RECORDS_IN";
inline constexpr const char* kInnodeCombineRecordsOut =
    "INNODE_COMBINE_RECORDS_OUT";
inline constexpr const char* kInnodeCombineMillis = "INNODE_COMBINE_MILLIS";

inline constexpr const char* kJobGroup = "job";
inline constexpr const char* kDataLocalMaps = "DATA_LOCAL_MAPS";
inline constexpr const char* kRackLocalMaps = "RACK_LOCAL_MAPS";
inline constexpr const char* kRemoteMaps = "REMOTE_MAPS";
inline constexpr const char* kLaunchedMaps = "TOTAL_LAUNCHED_MAPS";
inline constexpr const char* kLaunchedReduces = "TOTAL_LAUNCHED_REDUCES";
inline constexpr const char* kFailedMaps = "FAILED_MAPS";
inline constexpr const char* kFailedReduces = "FAILED_REDUCES";
inline constexpr const char* kSpeculativeMaps = "TOTAL_SPECULATIVE_MAPS";

inline constexpr const char* kShuffleGroup = "shuffle";
inline constexpr const char* kShuffleBytes = "SHUFFLE_BYTES";
inline constexpr const char* kShuffleFetchMillis = "SHUFFLE_FETCH_MILLIS";
inline constexpr const char* kShuffleFetchRetries = "SHUFFLE_FETCH_RETRIES";
/// Reduce-input run bytes after/before decoding shuffled payloads; both
/// stay 0 while no compression seam is enabled.
inline constexpr const char* kShuffleRawBytes = "SHUFFLE_RAW_BYTES";
inline constexpr const char* kShuffleCompressedBytes =
    "SHUFFLE_COMPRESSED_BYTES";
/// Pipelined shuffle (slowstart < 1.0): runs/bytes fetched while the map
/// phase was still running, and runs discarded + re-fetched because a
/// completion-feed invalidation (speculative win, lost tracker, map
/// re-execution) made them stale.
inline constexpr const char* kShufflePipelinedRuns = "SHUFFLE_PIPELINED_RUNS";
inline constexpr const char* kShufflePipelinedBytes =
    "SHUFFLE_PIPELINED_BYTES";
inline constexpr const char* kShufflePipelinedRefetches =
    "SHUFFLE_PIPELINED_REFETCHES";
}  // namespace counters

}  // namespace mh::mr
