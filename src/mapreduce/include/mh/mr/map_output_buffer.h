#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mh/common/codec.h"
#include "mh/common/trace.h"
#include "mh/mr/job.h"

/// \file map_output_buffer.h
/// The map side's collect/sort/spill core — this library's MapOutputBuffer.
///
/// Map emissions append raw key and value bytes into one contiguous arena;
/// a parallel index of fixed-width `{key prefix, partition, offset,
/// key_len, val_len}` entries describes the records. Nothing is
/// heap-allocated per record: sorting permutes the 24-byte index entries
/// (partition-major, then byte-lexicographic key order — resolved from the
/// entry's cached 8-byte key prefix when possible, via string_views into
/// the arena otherwise, then arena offset, which is insertion order, so
/// the sort is stable) while the record bytes never move.
///
/// The buffer has a hard budget. When the working set (arena bytes + index
/// bytes) crosses `io.sort.mb * io.sort.spill.percent`, the buffer sorts,
/// runs the combiner (per spill, as real Hadoop does), encodes one
/// kv_stream run per partition — a *spill* — and resets the arena. A map
/// task's collect working set is therefore bounded regardless of input
/// size. `finish()` spills the remainder and, when a task spilled more than
/// once, merges the per-partition spill runs through the loser-tree
/// `KvRunMerger` with a final combine pass.
///
/// The arena, index, packed sort keys, and retained spill runs are charged
/// against the TaskTracker heap budget through the task's HeapFn
/// (capacity-accurate, released when the buffer dies), so a map's memory
/// discipline is visible on the same gauge as the reduce side's shuffle
/// working set.
///
/// Config keys (defaults):
///   io.sort.mb             32    collect budget, MiB (clamped to [1, 2047])
///   io.sort.spill.percent  0.80  fill fraction that triggers a spill
///
/// Counter semantics (Hadoop-faithful):
///   MAP_SPILLS       — number of sort/spill passes this task ran
///   SPILLED_RECORDS  — records written to spill runs, plus records written
///                      again by the final multi-spill merge; equals map
///                      output records for a single-spill, combiner-less
///                      task and exceeds it once a task spills twice
///   COMBINE_INPUT/OUTPUT_RECORDS — grow with every spill *and* with the
///                      final merge's combine pass

namespace mh::mr {

class MapOutputBuffer {
 public:
  /// `spec` supplies conf (budget keys, the map-output codec) and the
  /// optional combiner factory; `counters` receives the spill/combine
  /// counters; `heap` (optional) is the TaskTracker budget callback;
  /// `fs`/`trace`/`trace_component` (optional) plumb side-data access for
  /// combiners and SORT_SPILL spans; `metrics` (optional) hosts the
  /// per-codec encode/decode histograms.
  MapOutputBuffer(const JobSpec& spec, Counters& counters,
                  TaskContext::HeapFn heap, FileSystemView* fs,
                  TraceCollector* trace, std::string_view trace_component,
                  MetricsRegistry* metrics = nullptr);
  ~MapOutputBuffer();
  MapOutputBuffer(const MapOutputBuffer&) = delete;
  MapOutputBuffer& operator=(const MapOutputBuffer&) = delete;

  /// Appends one record. May trigger a synchronous sort+spill when the
  /// working set crosses the spill threshold. A single record larger than
  /// the whole threshold is admitted and spilled solo (the arena briefly
  /// overshoots by that one record).
  void collect(std::string_view key, std::string_view value,
               uint32_t partition);

  /// Spills whatever is still buffered, then merges all spill runs into
  /// the task's final sorted run per partition (loser-tree merge + final
  /// combine when spills > 1). Call exactly once, after the mapper's
  /// cleanup().
  std::vector<Bytes> finish();

  /// Sort/spill passes so far (the MAP_SPILLS counter).
  int64_t spillCount() const { return spill_count_; }

  /// Cumulative wall time inside index sorts, for the tracker's
  /// `map.sort.micros` histogram.
  int64_t sortMicros() const { return sort_micros_; }

  /// Current charged working set, bytes (test/diagnostic hook).
  int64_t chargedBytes() const { return charged_; }

 private:
  /// 24 bytes per record; offsets address the arena, so the budget is
  /// clamped below 2^32 bytes. `prefix` caches the key's first 8 bytes
  /// big-endian (zero-padded), so the sort resolves most comparisons with
  /// one integer compare instead of chasing the key into the arena.
  struct IndexEntry {
    uint64_t prefix;
    uint32_t partition;
    uint32_t offset;  ///< key bytes start; value bytes follow the key
    uint32_t key_len;
    uint32_t val_len;
  };

  std::string_view keyAt(const IndexEntry& e) const {
    return {arena_.data() + e.offset, e.key_len};
  }
  std::string_view valueAt(const IndexEntry& e) const {
    return {arena_.data() + e.offset + e.key_len, e.val_len};
  }

  /// The entry at sorted position `rank` (valid after sortIndex). The
  /// all-short-keys fast path sorts a packed side array and reads the batch
  /// through it; the general path sorts `index_` in place.
  const IndexEntry& entryAt(size_t rank) const {
    return packed_sorted_ ? index_[static_cast<uint32_t>(packed_[rank])]
                          : index_[rank];
  }

  size_t workingSet() const {
    return arena_.size() + index_.size() * sizeof(IndexEntry);
  }

  void sortIndex();
  void spill();
  /// Encodes one finished run in place when the map-output codec is on,
  /// bumping the SPILL_RAW/COMPRESSED_BYTES counters. No-op otherwise.
  void maybeEncodeRun(Bytes& run);
  /// Runs the combiner over the key-grouped records described by
  /// `entries[begin, end)` (one partition), appending re-sorted framed
  /// output to `out`. Returns records written.
  int64_t combineIndexRange(size_t begin, size_t end, Bytes& out);
  /// Re-syncs the heap charge to the current capacities; may throw
  /// OutOfMemoryError from the HeapFn (the charge is recorded first, so
  /// the destructor releases exactly what was added).
  void syncCharge();

  const JobSpec& spec_;
  Counters& counters_;
  TaskContext::HeapFn heap_;
  FileSystemView* fs_;
  TraceCollector* trace_;
  std::string trace_component_;
  MetricsRegistry* metrics_;

  uint32_t partitions_;
  size_t spill_threshold_;
  /// `mapred.map.output.compression.codec`: spill runs are encoded at
  /// spill time, so the retained runs — and their heap charge — are the
  /// compressed bytes.
  CodecKind codec_ = CodecKind::kNone;

  Bytes arena_;
  std::vector<IndexEntry> index_;
  /// Packed (prefix | key_len | insertion rank) sort keys for the fast
  /// path; `packed_sorted_` says entryAt must indirect through it.
  std::vector<unsigned __int128> packed_;
  bool packed_sorted_ = false;
  /// Longest key in the current (unspilled) batch; <= 8 enables the packed
  /// sort fast path.
  size_t batch_max_key_len_ = 0;
  /// Encoded spill runs: spills_[s][p] is spill s's run for partition p.
  std::vector<std::vector<Bytes>> spills_;
  size_t spill_bytes_ = 0;  ///< total bytes across retained spill runs

  int64_t charged_ = 0;
  int64_t spill_count_ = 0;
  int64_t sort_micros_ = 0;
  bool finished_ = false;
};

}  // namespace mh::mr
