#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "mh/mr/api.h"
#include "mh/mr/kv_stream.h"

/// \file merge.h
/// Streaming k-way merge over sorted kv_stream runs — the reduce-side merge.
///
/// Map tasks emit runs that are already key-sorted, so the reduce merge
/// never needs to decode whole runs into memory and re-sort: a tournament
/// (loser) tree over one cursor per run yields records in global key order
/// with one comparison path per record. Groups are exposed lazily: the
/// caller pulls a key and a ValuesIterator whose views point straight into
/// the run buffers (zero-copy); unconsumed values are skipped when the next
/// group is requested.
///
/// Ties are broken by run index, so duplicate keys come out in run order and
/// within-run order — the same stability contract as Hadoop's merge (and as
/// the old concatenate-and-stable_sort implementation).

namespace mh::mr {

/// Merges k sorted runs into one key-grouped stream.
///
/// The run buffers must outlive the merger; every string_view it hands out
/// (keys and values) points into them. A torn frame in any run surfaces as
/// InvalidArgumentError from the constructor (first record) or from group
/// iteration (later records), exactly as KvReader would have thrown.
class KvRunMerger {
 public:
  /// `runs` are views over encoded kv_stream runs; empty runs are skipped.
  explicit KvRunMerger(const std::vector<std::string_view>& runs);

  /// Advances to the next key group, discarding any unconsumed values of
  /// the current one. False when every run is exhausted.
  bool nextGroup();

  /// Key of the current group. Valid until the next nextGroup() call.
  std::string_view key() const { return group_key_; }

  /// The current group's values, in run order then within-run order.
  ValuesIterator& values() { return values_; }

  /// Number of non-empty runs under the merge (the MERGE_SEGMENTS counter).
  size_t segmentCount() const { return cursors_.size(); }

  /// Records streamed out so far (equals total input records once drained).
  int64_t recordsRead() const { return records_read_; }

 private:
  /// One run's read head.
  struct Cursor {
    explicit Cursor(std::string_view run) : reader(run) {}
    KvReader reader;
    std::string_view key;
    std::string_view value;
    bool exhausted = false;
  };

  class GroupValues final : public ValuesIterator {
   public:
    explicit GroupValues(KvRunMerger& merger) : merger_(merger) {}
    std::optional<std::string_view> next() override {
      return merger_.nextValueInGroup();
    }

   private:
    KvRunMerger& merger_;
  };

  bool beats(size_t a, size_t b) const;
  void replay(size_t leaf);
  void advanceCursor(size_t index);
  std::optional<std::string_view> nextValueInGroup();

  std::vector<Cursor> cursors_;  ///< non-empty runs, in original run order
  std::vector<size_t> tree_;     ///< loser tree; tree_[0] is the winner
  size_t winner_ = 0;
  std::string_view group_key_;
  bool in_group_ = false;
  int64_t records_read_ = 0;
  GroupValues values_{*this};
};

/// The pipelined shuffle's reduce-side accumulator: runs fetched while the
/// map phase is still going are registered here and folded into a bounded
/// number of pre-merged segments, so the final merge (once membership is
/// complete) runs over a handful of segments instead of one run per map.
///
/// **Identity contract.** Every run is keyed by the sorted set of map
/// indices it covers (a single map in classic shuffle, a node-combined
/// membership in in-node mode); covers are disjoint, and the canonical
/// merge order is ascending lowest-covered-map. In `adjacent_only` mode a
/// fold only consumes a block of covers forming a gap-free integer range,
/// and `assemble()` emits segments and unfolded runs in canonical order —
/// with KvRunMerger's stable tie-break (equal keys drain in run order) the
/// final merged stream is byte-identical to a one-shot merge over all runs,
/// no matter which blocks folded or when. In-node covers are not contiguous
/// ranges, so in-node callers run with `adjacent_only=false` (fold any
/// block): membership grouping there is already timing-dependent, which is
/// sound because in-node combining requires a combiner, and combiner jobs
/// are grouping-insensitive by contract.
///
/// **Re-execution.** `invalidate(map)` discards whatever covers a map whose
/// output went stale — a pending run, or a folded segment (which dissolves;
/// its other members must be re-fetched). The merger never talks to the
/// network: the caller re-fetches and `addRun`s again.
///
/// Not thread-safe; the owning reduce task drives it from one thread.
class IncrementalMerger {
 public:
  struct Options {
    /// Fold when an eligible block reaches this many pending runs. The
    /// final merge therefore sees at most ~fanin unfolded runs per segment
    /// gap plus the segments themselves.
    size_t fold_fanin = 8;
    /// True (classic shuffle): only gap-free map-index ranges may fold,
    /// preserving byte-identity with the one-shot merge. False (in-node):
    /// any block of pending runs may fold.
    bool adjacent_only = true;
    /// Decode codec-framed runs when folding (the shuffle-compression
    /// seam); folded segments are stored raw.
    bool allow_decode = false;
    /// Optional DECOMPRESS metering for folds, passed to DecodedRunSet.
    MetricsRegistry* metrics = nullptr;
    TraceCollector* trace = nullptr;
    std::string component = "incremental-merge";
  };

  explicit IncrementalMerger(Options opts) : opts_(std::move(opts)) {}

  /// Registers a fetched run covering `maps` (sorted ascending, non-empty).
  /// A cover intersecting a pending run replaces it (a stale generation the
  /// caller chose to overwrite); a cover intersecting a folded segment is
  /// an error — invalidate() first. Zero-length runs are legal (an empty
  /// partition) and still cover their maps.
  void addRun(std::vector<uint32_t> maps, BufferView run);

  /// True when `map` is covered by a pending run or folded segment.
  bool covers(uint32_t map) const;

  /// Discards everything covering `map`. Returns the OTHER maps whose data
  /// was collateral damage (members of a dissolved segment or of a shared
  /// cover) and must be re-fetched; the invalidated map itself is excluded.
  std::vector<uint32_t> invalidate(uint32_t map);

  /// One fold pass: merges every eligible block of pending runs into a
  /// segment. Returns true when anything folded.
  bool foldOnce();

  /// Segments and unfolded runs in canonical (lowest-covered-map) order —
  /// the input_runs for runReduceTask.
  std::vector<BufferView> assemble() const;

  size_t pendingRuns() const;
  size_t segmentCount() const;
  /// Bytes currently resident (pending runs + folded segments) — what the
  /// owner should have charged to its heap budget.
  int64_t heldBytes() const { return held_bytes_; }

 private:
  struct Item {
    std::vector<uint32_t> cover;  ///< sorted, disjoint from every other item
    BufferView data;
    bool segment = false;
  };

  /// Merges `block` (in canonical order) into one raw segment.
  Bytes foldBlock(const std::vector<const Item*>& block) const;

  Options opts_;
  std::map<uint32_t, Item> items_;  ///< keyed by cover.front()
  int64_t held_bytes_ = 0;
};

}  // namespace mh::mr
