#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mh/mr/api.h"
#include "mh/mr/kv_stream.h"

/// \file merge.h
/// Streaming k-way merge over sorted kv_stream runs — the reduce-side merge.
///
/// Map tasks emit runs that are already key-sorted, so the reduce merge
/// never needs to decode whole runs into memory and re-sort: a tournament
/// (loser) tree over one cursor per run yields records in global key order
/// with one comparison path per record. Groups are exposed lazily: the
/// caller pulls a key and a ValuesIterator whose views point straight into
/// the run buffers (zero-copy); unconsumed values are skipped when the next
/// group is requested.
///
/// Ties are broken by run index, so duplicate keys come out in run order and
/// within-run order — the same stability contract as Hadoop's merge (and as
/// the old concatenate-and-stable_sort implementation).

namespace mh::mr {

/// Merges k sorted runs into one key-grouped stream.
///
/// The run buffers must outlive the merger; every string_view it hands out
/// (keys and values) points into them. A torn frame in any run surfaces as
/// InvalidArgumentError from the constructor (first record) or from group
/// iteration (later records), exactly as KvReader would have thrown.
class KvRunMerger {
 public:
  /// `runs` are views over encoded kv_stream runs; empty runs are skipped.
  explicit KvRunMerger(const std::vector<std::string_view>& runs);

  /// Advances to the next key group, discarding any unconsumed values of
  /// the current one. False when every run is exhausted.
  bool nextGroup();

  /// Key of the current group. Valid until the next nextGroup() call.
  std::string_view key() const { return group_key_; }

  /// The current group's values, in run order then within-run order.
  ValuesIterator& values() { return values_; }

  /// Number of non-empty runs under the merge (the MERGE_SEGMENTS counter).
  size_t segmentCount() const { return cursors_.size(); }

  /// Records streamed out so far (equals total input records once drained).
  int64_t recordsRead() const { return records_read_; }

 private:
  /// One run's read head.
  struct Cursor {
    explicit Cursor(std::string_view run) : reader(run) {}
    KvReader reader;
    std::string_view key;
    std::string_view value;
    bool exhausted = false;
  };

  class GroupValues final : public ValuesIterator {
   public:
    explicit GroupValues(KvRunMerger& merger) : merger_(merger) {}
    std::optional<std::string_view> next() override {
      return merger_.nextValueInGroup();
    }

   private:
    KvRunMerger& merger_;
  };

  bool beats(size_t a, size_t b) const;
  void replay(size_t leaf);
  void advanceCursor(size_t index);
  std::optional<std::string_view> nextValueInGroup();

  std::vector<Cursor> cursors_;  ///< non-empty runs, in original run order
  std::vector<size_t> tree_;     ///< loser tree; tree_[0] is the winner
  size_t winner_ = 0;
  std::string_view group_key_;
  bool in_group_ = false;
  int64_t records_read_ = 0;
  GroupValues values_{*this};
};

}  // namespace mh::mr
