#pragma once

#include "mh/mr/job.h"
#include "mh/mr/task_runner.h"

/// \file local_runner.h
/// Serial execution of a complete job against any FileSystemView — the
/// course's "MapReduce API libraries on the standard Linux command line,
/// without a supporting HDFS/MapReduce infrastructure" mode (assignment 1).
/// No daemons, no network: splits run one after another on the calling
/// thread, or on small pools via mapred.local.map.threads and
/// mapred.local.reduce.threads (each reduce partition commits its own part
/// file, so partitions parallelize safely).

namespace mh::mr {

class LocalJobRunner {
 public:
  /// `fs` supplies both input and output (typically LocalFs).
  explicit LocalJobRunner(FileSystemView& fs) : fs_(fs) {}

  /// Runs the job to completion. User-code exceptions fail the job (state
  /// kFailed + error message) rather than propagate, matching the
  /// distributed engine's contract.
  JobResult run(JobSpec spec);

 private:
  FileSystemView& fs_;
};

}  // namespace mh::mr
