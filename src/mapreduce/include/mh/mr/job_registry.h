#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "mh/mr/job.h"

/// \file job_registry.h
/// Shared in-process registry mapping job ids to their JobSpec. Stands in
/// for Hadoop's job-jar distribution: the JobTracker publishes a spec here
/// at submit time and TaskTrackers look it up by id when an assignment
/// arrives (the control plane itself only carries ids).

namespace mh::mr {

class JobRegistry {
 public:
  void put(JobId id, std::shared_ptr<const JobSpec> spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    specs_[id] = std::move(spec);
  }

  /// Throws NotFoundError for unknown jobs.
  std::shared_ptr<const JobSpec> get(JobId id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = specs_.find(id);
    if (it == specs_.end()) {
      throw NotFoundError("job " + std::to_string(id) + " not in registry");
    }
    return it->second;
  }

  void remove(JobId id) {
    std::lock_guard<std::mutex> lock(mutex_);
    specs_.erase(id);
  }

 private:
  mutable std::mutex mutex_;
  std::map<JobId, std::shared_ptr<const JobSpec>> specs_;
};

}  // namespace mh::mr
