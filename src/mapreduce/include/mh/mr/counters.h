#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file counters.h
/// Hadoop-style job counters: named 64-bit accumulators grouped by
/// namespace. Tasks count locally; the framework merges task counters into
/// the job's totals — the "final MapReduce job report" students read to see
/// the combiner's effect on shuffle volume.

namespace mh::mr {

class Counters {
 public:
  Counters() = default;
  Counters(const Counters& other);
  Counters& operator=(const Counters& other);

  void increment(std::string_view group, std::string_view name,
                 int64_t delta = 1);

  /// Zero when the counter was never incremented.
  int64_t value(std::string_view group, std::string_view name) const;

  /// Adds every counter from `other` into this one.
  void merge(const Counters& other);

  /// Flat (group, name, value) triples, sorted — the wire/reporting form.
  std::vector<std::tuple<std::string, std::string, int64_t>> snapshot() const;

  /// Rebuilds from snapshot() output.
  static Counters fromSnapshot(
      const std::vector<std::tuple<std::string, std::string, int64_t>>& rows);

  /// Classic job-report rendering, grouped.
  std::string render() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::map<std::string, int64_t, std::less<>>,
           std::less<>>
      groups_;
};

}  // namespace mh::mr
