#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mh/common/config.h"
#include "mh/common/threadpool.h"
#include "mh/mr/job_registry.h"
#include "mh/mr/map_output_store.h"
#include "mh/mr/mr_wire.h"
#include "mh/net/network.h"

/// \file task_tracker.h
/// The MapReduce worker daemon. Runs on the same host as a DataNode (that
/// co-location is what makes map-side data locality possible), heartbeats
/// to the JobTracker for work, executes map/reduce tasks in its slots,
/// serves finished map outputs to shuffling reducers, and enforces a memory
/// budget on its tasks.
///
/// Memory policy (the paper's deadline-night lesson): a task that grows the
/// heap past `mapred.tasktracker.memory.bytes` either fails with
/// OutOfMemoryError (`policy=fail-task`, default) or takes the whole
/// tracker down (`policy=crash-tracker`) — run-time errors "created memory
/// leaks on the Java heap and consequently crashed the task tracker".
///
/// Config keys (defaults):
///   mapred.tasktracker.map.tasks.maximum     2
///   mapred.tasktracker.reduce.tasks.maximum  1
///   mapred.tasktracker.heartbeat.ms          50
///   mapred.tasktracker.memory.bytes          (unlimited)
///   mapred.tasktracker.oom.policy            fail-task | crash-tracker
///   mapred.reduce.parallel.copies            5
///   mapred.shuffle.fetch.retries             3
///   mapred.shuffle.fetch.backoff.ms          5    (exponential base; actual
///                                            sleep is seeded full jitter in
///                                            [0, capped backoff])
///   mapred.shuffle.fetch.backoff.max.ms      200
///   mapred.reduce.merge.fold.fanin           8    (pipelined shuffle: fold
///                                            an eligible block into one
///                                            segment once it reaches this
///                                            many fetched runs)

namespace mh::mr {

struct JobSpec;

/// Fetches partition `assignment.task_index`'s run from every map host in
/// `assignment.map_outputs`, with up to `mapred.reduce.parallel.copies`
/// (default 5) fetches in flight at once. Hosts are visited in an order
/// permuted by a job-seeded RNG (deterministic per seed, so chaos replays
/// are stable) to spread concurrent reducers across serving trackers, but
/// results land in canonical map order regardless of visit order. Runs
/// arrive as refcounted views — a run served by a tracker on this fabric is
/// the map output store's own buffer, uncopied. Retries back off
/// exponentially with seeded full jitter (sleep uniform in [0, capped
/// backoff], seed derived from job/task/attempt/retry so it is independent
/// of thread interleaving). On any failure throws
/// IoError("fetch-failure host=<h> map=<i>: ...") — the shape the
/// JobTracker parses to re-execute the source map; when several concurrent
/// fetches fail, the lowest map index is reported. On success, meters
/// SHUFFLE_BYTES and the wall-clock SHUFFLE_FETCH_MILLIS of the whole fetch
/// phase into `shuffle_counters`.
///
/// When `spec` is given and in-node combining is on for the job (a combiner
/// plus `mapred.innode.combine=true`), the map list is grouped by host and
/// each group fetched as ONE `getNodeOutput` call — the serving tracker
/// merges all its maps' runs through the combiner and ships one consolidated
/// run per node. A failed node fetch is attributed to the specific missing
/// map when the server names one ("missing map=<i>"), else to the group's
/// lowest map index, keeping the re-execute contract exact.
std::vector<BufferView> fetchShuffleRuns(net::Network& network,
                                         const std::string& host,
                                         const TaskAssignment& assignment,
                                         const Config& conf,
                                         Counters& shuffle_counters,
                                         const JobSpec* spec = nullptr);

class TaskTracker {
 public:
  TaskTracker(Config conf, std::shared_ptr<net::Network> network,
              std::string host, std::shared_ptr<JobRegistry> registry,
              std::string jobtracker_host = "jobtracker",
              std::string namenode_host = "namenode");
  ~TaskTracker();
  TaskTracker(const TaskTracker&) = delete;
  TaskTracker& operator=(const TaskTracker&) = delete;

  /// Registers with the JobTracker, binds the shuffle port, starts the
  /// heartbeat thread. Throws AlreadyExistsError on a ghost daemon's port.
  void start();

  /// Clean shutdown: finish nothing, drop everything, release the port.
  void stop();

  /// Ghost-daemon exit: threads stop, port stays bound.
  void abandon();

  /// Machine crash: host down on the fabric; map outputs are lost to
  /// shufflers, heartbeats stop, the JobTracker declares the tracker dead.
  void crash();

  const std::string& host() const { return host_; }
  bool running() const { return running_.load(); }
  MapOutputStore& mapOutputs() { return outputs_; }

  /// Current charged task heap, bytes (test/diagnostic hook).
  int64_t heapUsed() const { return heap_used_.load(); }

  /// High-water mark of charged task heap since start().
  int64_t heapPeak() const { return heap_peak_.load(); }

 private:
  /// Shared between the heartbeat thread (producer: routes map-completion
  /// events piggybacked on heartbeat replies) and one pipelined reduce task
  /// (consumer). Registered for the lifetime of the task's shuffle phase.
  struct PipelinedShuffleState {
    JobId job = 0;
    uint32_t task_index = 0;
    std::mutex mutex;
    std::condition_variable cv;
    uint64_t cursor = 0;  ///< highest event id routed into the inbox
    std::deque<MapCompletionEvent> inbox;
    bool aborted = false;  ///< tracker stopping / job purged: give up
  };

  void installRpc();
  void heartbeatLoop(std::stop_token token);
  void heartbeatOnce();
  void runAssignment(const TaskAssignment& assignment);
  void runMapAssignment(const TaskAssignment& assignment);
  void runReduceAssignment(const TaskAssignment& assignment);
  /// The pipelined (slowstart) shuffle: fetches map outputs incrementally as
  /// completion events arrive, folding fetched runs into bounded segments,
  /// and returns the assembled input runs once membership is complete.
  /// Charges fetched bytes to the task heap as they arrive; the running
  /// total is reported through `charged_bytes` for the caller's heap guard
  /// (already released again if this throws).
  std::vector<BufferView> runPipelinedShuffle(const TaskAssignment& assignment,
                                              const JobSpec& spec,
                                              Counters& shuffle_counters,
                                              int64_t& charged_bytes);
  /// Marks registered pipelined shuffles aborted and wakes their waiters
  /// (`job == 0` → all of them; used by stop/abandon/crash and purgeJob).
  void abortPipelinedShuffles(JobId job);
  void chargeHeap(int64_t delta);
  /// Non-throwing budget check for opportunistic caches (the store's
  /// combined runs and encoded-serve cache): charges `delta` and returns
  /// true, or refuses growth past the budget and returns false WITHOUT
  /// invoking the OOM policy — a declined cache is not a task failure.
  bool tryChargeHeap(int64_t delta);
  void queueReport(TaskStatusReport report);

  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::string host_;
  std::shared_ptr<JobRegistry> registry_;
  std::string jobtracker_host_;
  std::string namenode_host_;

  // Claimed at construction ("tasktracker.<host>"); cached handles are
  // lock-free so task threads never do registry lookups.
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* tracer_ = nullptr;
  Counter* maps_completed_ = nullptr;
  Counter* maps_failed_ = nullptr;
  Counter* reduces_completed_ = nullptr;
  Counter* reduces_failed_ = nullptr;
  Counter* merge_segments_ = nullptr;
  Counter* shuffle_fetch_millis_ = nullptr;
  Counter* shuffle_bytes_ = nullptr;
  Counter* map_spills_ = nullptr;
  Counter* spilled_records_ = nullptr;
  /// Serve-side shuffle compression accounting: logical vs wire bytes of
  /// runs served while `mapred.shuffle.compression` is on for the job.
  Counter* shuffle_raw_bytes_ = nullptr;
  Counter* shuffle_compressed_bytes_ = nullptr;
  /// Pipelined shuffle: runs/bytes fetched while maps were still running,
  /// and runs discarded + re-fetched after an invalidation event. Bumped
  /// live (not success-gated) — they describe tracker work, not job truth.
  Counter* pipelined_runs_ = nullptr;
  Counter* pipelined_bytes_ = nullptr;
  Counter* pipelined_refetches_ = nullptr;
  LatencyHistogram* map_micros_ = nullptr;
  LatencyHistogram* reduce_micros_ = nullptr;
  LatencyHistogram* map_sort_micros_ = nullptr;

  uint32_t map_slots_;
  uint32_t reduce_slots_;
  std::unique_ptr<ThreadPool> map_pool_;
  std::unique_ptr<ThreadPool> reduce_pool_;
  std::atomic<uint32_t> busy_maps_{0};
  std::atomic<uint32_t> busy_reduces_{0};
  std::atomic<int64_t> heap_used_{0};
  std::atomic<int64_t> heap_peak_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  bool port_bound_ = false;

  MapOutputStore outputs_;

  /// Active pipelined shuffles on this tracker, for heartbeat event routing.
  std::mutex shuffles_mutex_;
  std::vector<std::shared_ptr<PipelinedShuffleState>> shuffles_;

  std::mutex reports_mutex_;
  std::vector<TaskStatusReport> pending_reports_;

  std::jthread heartbeat_thread_;
};

}  // namespace mh::mr
