#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "mh/common/config.h"
#include "mh/common/error.h"
#include "mh/mr/counters.h"
#include "mh/mr/types.h"

/// \file api.h
/// The user-facing MapReduce programming model: Mapper, Reducer (also used
/// as Combiner), Partitioner, and the task context they run in. This is the
/// "programming API libraries" half of the course's two-aspect split —
/// everything here works identically under the serial LocalJobRunner (no
/// HDFS, assignment 1) and the distributed engine (assignment 2).

namespace mh::mr {

class FileSystemView;

/// Simulated out-of-heap condition (the Java heap-leak lesson).
class OutOfMemoryError : public Error {
 public:
  explicit OutOfMemoryError(const std::string& what)
      : Error("OutOfMemoryError: " + what) {}
};

/// Runtime services available to a running task.
class TaskContext {
 public:
  using EmitFn = std::function<void(Bytes, Bytes)>;
  using HeapFn = std::function<void(int64_t)>;

  TaskContext(const Config& conf, Counters& counters, EmitFn emit,
              HeapFn heap = {}, FileSystemView* fs = nullptr)
      : conf_(conf),
        counters_(counters),
        emit_(std::move(emit)),
        heap_(std::move(heap)),
        fs_(fs) {}

  /// Emits one raw record to the next stage.
  void emit(Bytes key, Bytes value) { emit_(std::move(key), std::move(value)); }

  /// Typed emit through MrCodec.
  template <typename K, typename V>
  void emitTyped(const K& key, const V& value) {
    emit_(MrCodec<K>::enc(key), MrCodec<V>::enc(value));
  }

  Counters& counters() { return counters_; }
  const Config& conf() const { return conf_; }

  /// Declares task heap growth/shrink (bytes). The TaskTracker charges this
  /// against its memory budget; exceeding it raises OutOfMemoryError or
  /// crashes the tracker depending on configuration — reproducing the
  /// deadline-night "memory leaks crashed the task tracker" episode.
  void allocateHeap(int64_t delta_bytes) {
    if (heap_) heap_(delta_bytes);
  }

  /// The file system the task runs against — how tasks open SIDE DATA
  /// files (the course's movie-genre / song-album join tables). Throws
  /// IllegalStateError when the runtime provided none.
  FileSystemView& fs() {
    if (fs_ == nullptr) {
      throw IllegalStateError("no FileSystemView available in this context");
    }
    return *fs_;
  }

 private:
  const Config& conf_;
  Counters& counters_;
  EmitFn emit_;
  HeapFn heap_;
  FileSystemView* fs_;
};

/// Iterates the values of one reduce group.
class ValuesIterator {
 public:
  virtual ~ValuesIterator() = default;
  /// Next raw value, or nullopt at the end of the group.
  virtual std::optional<std::string_view> next() = 0;

  /// Typed convenience.
  template <typename V>
  std::optional<V> nextTyped() {
    const auto raw = next();
    if (!raw) return std::nullopt;
    return MrCodec<V>::dec(*raw);
  }
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void setup(TaskContext&) {}
  /// Called once per input record.
  virtual void map(std::string_view key, std::string_view value,
                   TaskContext& ctx) = 0;
  /// Called after the last record — where in-mapper combining flushes.
  virtual void cleanup(TaskContext&) {}
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void setup(TaskContext&) {}
  /// Called once per distinct key with all its values.
  virtual void reduce(std::string_view key, ValuesIterator& values,
                      TaskContext& ctx) = 0;
  virtual void cleanup(TaskContext&) {}
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  /// Maps a key to a reduce partition in [0, num_partitions).
  virtual uint32_t partition(std::string_view key,
                             uint32_t num_partitions) const = 0;
};

/// Hadoop's default: hash(key) mod partitions (FNV-1a here).
class HashPartitioner final : public Partitioner {
 public:
  uint32_t partition(std::string_view key,
                     uint32_t num_partitions) const override {
    uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
      h ^= static_cast<uint8_t>(c);
      h *= 1099511628211ull;
    }
    return static_cast<uint32_t>(h % num_partitions);
  }
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
using PartitionerFactory = std::function<std::unique_ptr<Partitioner>()>;

/// Wraps a callable as a Mapper — handy for small jobs and tests.
template <typename Fn>
class LambdaMapper final : public Mapper {
 public:
  explicit LambdaMapper(Fn fn) : fn_(std::move(fn)) {}
  void map(std::string_view key, std::string_view value,
           TaskContext& ctx) override {
    fn_(key, value, ctx);
  }

 private:
  Fn fn_;
};

template <typename Fn>
MapperFactory mapperFromLambda(Fn fn) {
  return [fn]() { return std::make_unique<LambdaMapper<Fn>>(fn); };
}

template <typename Fn>
class LambdaReducer final : public Reducer {
 public:
  explicit LambdaReducer(Fn fn) : fn_(std::move(fn)) {}
  void reduce(std::string_view key, ValuesIterator& values,
              TaskContext& ctx) override {
    fn_(key, values, ctx);
  }

 private:
  Fn fn_;
};

template <typename Fn>
ReducerFactory reducerFromLambda(Fn fn) {
  return [fn]() { return std::make_unique<LambdaReducer<Fn>>(fn); };
}

}  // namespace mh::mr
