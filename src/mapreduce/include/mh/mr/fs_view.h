#pragma once

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/hdfs/dfs_client.h"

/// \file fs_view.h
/// The engine's storage abstraction. MapReduce code reads splits and writes
/// part files through this interface, so the same job runs:
///  * serially over the local Linux file system ("MapReduce without HDFS",
///    the course's first assignment), or
///  * distributed over HDFS with block-location-aware splits (the second).

namespace mh::mr {

/// One unit of map input: a byte range of a file plus the hosts that store
/// it (for locality-aware scheduling).
struct InputSplit {
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
  std::vector<std::string> hosts;

  bool operator==(const InputSplit&) const = default;
};

class FileSystemView {
 public:
  virtual ~FileSystemView() = default;

  /// All file paths under `path` (a file lists itself).
  virtual std::vector<std::string> listFiles(const std::string& path) = 0;

  virtual uint64_t fileLength(const std::string& path) = 0;

  /// Reads [offset, offset+length); short reads only at end of file.
  virtual Bytes readRange(const std::string& path, uint64_t offset,
                          uint64_t length) = 0;

  /// Zero-copy variant of readRange(): a refcounted view of the fetched
  /// range. The default wraps readRange() in a fresh buffer; HDFS serves a
  /// range inside one block as an uncopied view of the replica's buffer.
  virtual BufferView readRangeView(const std::string& path, uint64_t offset,
                                   uint64_t length);

  /// Creates/overwrites a whole file.
  virtual void writeFile(const std::string& path, std::string_view data) = 0;

  virtual bool exists(const std::string& path) = 0;
  virtual void mkdirs(const std::string& path) = 0;
  virtual void remove(const std::string& path) = 0;
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Natural splits of one file: HDFS yields its blocks (with replica
  /// hosts); the local FS yields fixed-size ranges with no hosts.
  virtual std::vector<InputSplit> splitsForFile(const std::string& path) = 0;
};

/// Local Linux file system; split size is configurable (default 64 KiB).
class LocalFs final : public FileSystemView {
 public:
  explicit LocalFs(uint64_t split_size = 64 * 1024);

  std::vector<std::string> listFiles(const std::string& path) override;
  uint64_t fileLength(const std::string& path) override;
  Bytes readRange(const std::string& path, uint64_t offset,
                  uint64_t length) override;
  void writeFile(const std::string& path, std::string_view data) override;
  bool exists(const std::string& path) override;
  void mkdirs(const std::string& path) override;
  void remove(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  std::vector<InputSplit> splitsForFile(const std::string& path) override;

 private:
  uint64_t split_size_;
};

/// HDFS through a DfsClient; the client's host determines read locality.
class HdfsFs final : public FileSystemView {
 public:
  explicit HdfsFs(hdfs::DfsClient client) : client_(std::move(client)) {}

  std::vector<std::string> listFiles(const std::string& path) override;
  uint64_t fileLength(const std::string& path) override;
  Bytes readRange(const std::string& path, uint64_t offset,
                  uint64_t length) override;
  BufferView readRangeView(const std::string& path, uint64_t offset,
                           uint64_t length) override;
  void writeFile(const std::string& path, std::string_view data) override;
  bool exists(const std::string& path) override;
  void mkdirs(const std::string& path) override;
  void remove(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  std::vector<InputSplit> splitsForFile(const std::string& path) override;

  hdfs::DfsClient& client() { return client_; }

 private:
  /// Per-block views covering [offset, offset+length), in file order.
  std::vector<BufferView> readPieces(const std::string& path, uint64_t offset,
                                     uint64_t length);

  hdfs::DfsClient client_;
};

}  // namespace mh::mr
