#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mh/hdfs/mini_cluster.h"
#include "mh/mr/job_tracker.h"
#include "mh/mr/task_tracker.h"

/// \file mini_mr_cluster.h
/// A full in-process Hadoop-1.x-style cluster: HDFS (NameNode + DataNodes)
/// plus MapReduce (JobTracker + one TaskTracker per DataNode host, the
/// co-location that enables data locality). This is the paper's Figure 2 as
/// an executable object.

namespace mh::mr {

struct MiniMrOptions {
  int num_nodes = 3;
  /// Nodes spread round-robin over this many racks (rack-aware placement
  /// and scheduling kick in above 1).
  int racks = 1;
  Config conf;
};

class MiniMrCluster {
 public:
  explicit MiniMrCluster(MiniMrOptions options = {});
  ~MiniMrCluster();
  MiniMrCluster(const MiniMrCluster&) = delete;
  MiniMrCluster& operator=(const MiniMrCluster&) = delete;

  hdfs::MiniDfsCluster& dfs() { return *dfs_; }
  JobTracker& jobTracker() { return *job_tracker_; }
  TaskTracker& taskTracker(const std::string& host);
  std::vector<std::string> trackerHosts() const;
  const std::shared_ptr<JobRegistry>& registry() const { return registry_; }
  const std::shared_ptr<net::Network>& network() const {
    return dfs_->network();
  }
  const Config& conf() const { return conf_; }

  /// Cluster metrics tree: "namenode", "datanode.<host>", "jobtracker",
  /// "tasktracker.<host>", and "network" child registries.
  MetricsRegistry& metrics() { return network()->metrics(); }
  /// Cluster trace journal (disabled by default).
  TraceCollector& tracer() { return network()->tracer(); }

  /// Off-cluster HDFS client (stage inputs / fetch outputs).
  hdfs::DfsClient client() { return dfs_->client(); }

  /// Submits and waits: the everyday "run my jar" call.
  JobResult runJob(JobSpec spec);

  /// Kills the whole worker node: TaskTracker and DataNode both crash (one
  /// machine, as in Figure 2).
  void killNode(const std::string& host);

  /// Restarts a killed node's daemons.
  void restartNode(const std::string& host);

 private:
  MiniMrOptions options_;
  Config conf_;
  std::unique_ptr<hdfs::MiniDfsCluster> dfs_;
  std::shared_ptr<JobRegistry> registry_;
  std::unique_ptr<JobTracker> job_tracker_;
  std::map<std::string, std::unique_ptr<TaskTracker>> trackers_;
};

}  // namespace mh::mr
