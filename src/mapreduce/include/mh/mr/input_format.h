#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mh/common/config.h"
#include "mh/mr/fs_view.h"
#include "mh/mr/types.h"

/// \file input_format.h
/// Input splitting and record reading. TextInputFormat implements Hadoop's
/// line-splitting contract: a split that does not start at byte 0 skips its
/// leading partial line, and a line that *starts* inside a split is read to
/// completion even when it crosses the split boundary — so every line is
/// processed exactly once regardless of where block boundaries fall.

namespace mh::mr {

class RecordReader {
 public:
  virtual ~RecordReader() = default;
  /// Produces the next record; false at end of split. The views point at
  /// reader-owned storage (usually the split's backing buffer, uncopied)
  /// and stay valid until the next call to next() or the reader's
  /// destruction — copy (`Bytes(key)`) to keep a record longer.
  virtual bool next(std::string_view& key, std::string_view& value) = 0;
};

class InputFormat {
 public:
  virtual ~InputFormat() = default;

  /// Expands input paths (files or directories) into splits. Non-file
  /// input formats (e.g. hbase::TableInputFormat) override this to define
  /// their own split geometry.
  virtual std::vector<InputSplit> getSplits(
      FileSystemView& fs, const std::vector<std::string>& paths);

  /// `conf` is the job configuration (readers take tuning keys from it;
  /// formats that need none ignore it).
  virtual std::unique_ptr<RecordReader> createReader(
      FileSystemView& fs, const InputSplit& split, const Config& conf) = 0;
};

/// Records are lines; key = MrCodec<int64_t> byte offset of the line start,
/// value = the line without its terminator (trailing '\r' stripped).
///
/// Config keys (defaults):
///   mapred.linerecordreader.readahead.bytes  65536 — chunk size for
///     reading the final line's tail past the split end (one storage/RPC
///     round-trip per chunk).
class TextInputFormat final : public InputFormat {
 public:
  std::unique_ptr<RecordReader> createReader(FileSystemView& fs,
                                             const InputSplit& split,
                                             const Config& conf) override;
};

/// Records are kv_stream frames (used for binary intermediate files).
class KvInputFormat final : public InputFormat {
 public:
  std::unique_ptr<RecordReader> createReader(FileSystemView& fs,
                                             const InputSplit& split,
                                             const Config& conf) override;
};

using InputFormatFactory = std::function<std::unique_ptr<InputFormat>()>;

}  // namespace mh::mr
