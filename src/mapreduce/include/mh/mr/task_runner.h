#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/trace.h"
#include "mh/mr/job.h"

/// \file task_runner.h
/// The map-side and reduce-side execution cores, shared verbatim by the
/// serial LocalJobRunner and the distributed TaskTracker — which is how the
/// library guarantees the two execution modes compute identical results.
///
/// Map side: read split -> map() -> partition -> collect into the
/// arena-backed MapOutputBuffer (sort/spill under the io.sort.mb budget,
/// combiner per spill) -> loser-tree merge of the spill runs -> one
/// kv_stream run per partition. See map_output_buffer.h.
/// Reduce side: streaming k-way merge over the (already sorted) map runs
/// for one partition -> group by key -> reduce() -> committed part file.

namespace mh::mr {

struct MapTaskResult {
  /// One sorted (and combined) kv_stream run per reduce partition.
  std::vector<Bytes> partitions;
  Counters counters;
  int64_t millis = 0;
  /// Wall time spent inside the buffer's index sorts (the tracker feeds
  /// this into its `map.sort.micros` histogram).
  int64_t sort_micros = 0;
};

/// Executes one map task over `split`. `heap` (optional) is the
/// TaskTracker's memory-budget callback passed through to the TaskContext.
/// `trace`/`trace_component` (optional) route phase events into the
/// cluster's trace journal; the LocalJobRunner passes neither. `metrics`
/// (optional) hosts the per-codec encode/decode histograms when the
/// map-output compression seam is on.
/// Exceptions from user code propagate to the caller (task failure).
MapTaskResult runMapTask(const JobSpec& spec, FileSystemView& fs,
                         const InputSplit& split,
                         TaskContext::HeapFn heap = {},
                         TraceCollector* trace = nullptr,
                         std::string_view trace_component = {},
                         MetricsRegistry* metrics = nullptr);

struct ReduceTaskResult {
  Counters counters;
  int64_t millis = 0;
};

/// Executes one reduce task over the collected map runs for `partition`
/// (refcounted views — shuffled runs are merged in place, never copied)
/// and commits output_dir/part-NNNNN via `fs`. When a compression seam is
/// on (`mapred.map.output.compression.codec` or `mapred.shuffle.compression`
/// in the spec conf), encoded input runs decode at the merge input; the
/// decoded working set is charged to `heap` for the task's duration.
ReduceTaskResult runReduceTask(const JobSpec& spec, FileSystemView& fs,
                               uint32_t partition, uint32_t attempt,
                               const std::vector<BufferView>& input_runs,
                               TaskContext::HeapFn heap = {},
                               TraceCollector* trace = nullptr,
                               std::string_view trace_component = {},
                               MetricsRegistry* metrics = nullptr);

}  // namespace mh::mr
