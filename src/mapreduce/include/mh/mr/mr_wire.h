#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "mh/common/serde.h"
#include "mh/mr/fs_view.h"
#include "mh/mr/types.h"

/// \file mr_wire.h
/// Control-plane messages between TaskTrackers and the JobTracker, plus
/// their Serde specializations.
///
/// Note on "jar distribution": mapper/reducer factories are C++ closures and
/// cannot cross the wire, so a shared in-process JobRegistry stands in for
/// Hadoop's out-of-band jar shipping; only job ids, task indices, splits,
/// and output locations travel in these messages (see DESIGN.md
/// substitutions).

namespace mh::mr {

/// Counter rows on the wire.
using CounterRows = std::vector<std::tuple<std::string, std::string, int64_t>>;

/// A finished (or failed) task attempt, reported on the next heartbeat.
struct TaskStatusReport {
  JobId job = 0;
  uint32_t task_index = 0;
  bool is_map = true;
  uint32_t attempt = 0;
  bool succeeded = false;
  std::string error;
  CounterRows counters;
  int64_t millis = 0;
};

enum class AssignmentKind : uint8_t { kMap = 0, kReduce = 1 };

/// Where one map task's output lives.
struct MapOutputLocation {
  uint32_t map_index = 0;
  std::string host;

  bool operator==(const MapOutputLocation&) const = default;
};

struct TaskAssignment {
  AssignmentKind kind = AssignmentKind::kMap;
  JobId job = 0;
  uint32_t task_index = 0;
  uint32_t attempt = 0;
  InputSplit split;                             ///< maps only
  std::vector<MapOutputLocation> map_outputs;   ///< reduces only
  /// The job's causal trace identity (0 when tracing is off at the
  /// JobTracker). Task threads install this as their ambient context, so
  /// MAP/REDUCE spans on the tracker parent to the job's root span.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  /// Reduces only: total maps in the job and the event-feed cursor this
  /// assignment's `map_outputs` snapshot is current through. With slowstart
  /// a reduce launches before every map finished — the missing locations
  /// arrive as MapCompletionEvents with ids > `event_cursor` on later
  /// heartbeats.
  uint32_t total_maps = 0;
  uint64_t event_cursor = 0;
};

/// One entry in a job's map-completion event feed. Event ids are monotonic
/// per job; a tracker subscribed at cursor `c` receives every event with
/// `event_id > c` exactly once (the feed is replayed from the JobTracker's
/// in-memory log, so heartbeat loss only delays delivery).
struct MapCompletionEvent {
  JobId job = 0;
  uint64_t event_id = 0;
  uint32_t map_index = 0;
  /// false: the map succeeded on `host` with output generation
  /// `map_generation`. true: a previously announced output became stale
  /// (speculative win elsewhere, tracker lost, fetch-failure re-execution)
  /// — fetched runs for this map at an older generation must be discarded.
  bool invalidated = false;
  std::string host;
  uint64_t map_generation = 0;
};

/// A tracker's per-job subscription position, sent with each heartbeat for
/// every job it is running a pipelined reduce of.
struct ShuffleEventCursor {
  JobId job = 0;
  uint64_t after = 0;  ///< deliver events with event_id > after
};

struct TrackerHeartbeatReply {
  bool reregister = false;
  std::vector<TaskAssignment> assignments;
  std::vector<JobId> purge_jobs;  ///< finished jobs whose map outputs can go
  /// Map-completion events answering the tracker's ShuffleEventCursors.
  std::vector<MapCompletionEvent> map_events;
};

}  // namespace mh::mr

namespace mh {

template <>
struct Serde<mr::InputSplit> {
  static void encode(ByteWriter& w, const mr::InputSplit& v) {
    w.writeBytes(v.path);
    w.writeVarU64(v.offset);
    w.writeVarU64(v.length);
    Serde<std::vector<std::string>>::encode(w, v.hosts);
  }
  static mr::InputSplit decode(ByteReader& r) {
    mr::InputSplit v;
    v.path = r.readString();
    v.offset = r.readVarU64();
    v.length = r.readVarU64();
    v.hosts = Serde<std::vector<std::string>>::decode(r);
    return v;
  }
};

template <>
struct Serde<mr::TaskStatusReport> {
  static void encode(ByteWriter& w, const mr::TaskStatusReport& v) {
    w.writeVarU64(v.job);
    w.writeVarU64(v.task_index);
    w.writeBool(v.is_map);
    w.writeVarU64(v.attempt);
    w.writeBool(v.succeeded);
    w.writeBytes(v.error);
    Serde<mr::CounterRows>::encode(w, v.counters);
    w.writeVarI64(v.millis);
  }
  static mr::TaskStatusReport decode(ByteReader& r) {
    mr::TaskStatusReport v;
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.task_index = static_cast<uint32_t>(r.readVarU64());
    v.is_map = r.readBool();
    v.attempt = static_cast<uint32_t>(r.readVarU64());
    v.succeeded = r.readBool();
    v.error = r.readString();
    v.counters = Serde<mr::CounterRows>::decode(r);
    v.millis = r.readVarI64();
    return v;
  }
};

template <>
struct Serde<mr::MapOutputLocation> {
  static void encode(ByteWriter& w, const mr::MapOutputLocation& v) {
    w.writeVarU64(v.map_index);
    w.writeBytes(v.host);
  }
  static mr::MapOutputLocation decode(ByteReader& r) {
    mr::MapOutputLocation v;
    v.map_index = static_cast<uint32_t>(r.readVarU64());
    v.host = r.readString();
    return v;
  }
};

template <>
struct Serde<mr::TaskAssignment> {
  static void encode(ByteWriter& w, const mr::TaskAssignment& v) {
    w.writeU8(static_cast<uint8_t>(v.kind));
    w.writeVarU64(v.job);
    w.writeVarU64(v.task_index);
    w.writeVarU64(v.attempt);
    Serde<mr::InputSplit>::encode(w, v.split);
    Serde<std::vector<mr::MapOutputLocation>>::encode(w, v.map_outputs);
    w.writeVarU64(v.trace_id);
    w.writeVarU64(v.parent_span_id);
    w.writeVarU64(v.total_maps);
    w.writeVarU64(v.event_cursor);
  }
  static mr::TaskAssignment decode(ByteReader& r) {
    mr::TaskAssignment v;
    v.kind = static_cast<mr::AssignmentKind>(r.readU8());
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.task_index = static_cast<uint32_t>(r.readVarU64());
    v.attempt = static_cast<uint32_t>(r.readVarU64());
    v.split = Serde<mr::InputSplit>::decode(r);
    v.map_outputs = Serde<std::vector<mr::MapOutputLocation>>::decode(r);
    v.trace_id = r.readVarU64();
    v.parent_span_id = r.readVarU64();
    v.total_maps = static_cast<uint32_t>(r.readVarU64());
    v.event_cursor = r.readVarU64();
    return v;
  }
};

template <>
struct Serde<mr::MapCompletionEvent> {
  static void encode(ByteWriter& w, const mr::MapCompletionEvent& v) {
    w.writeVarU64(v.job);
    w.writeVarU64(v.event_id);
    w.writeVarU64(v.map_index);
    w.writeBool(v.invalidated);
    w.writeBytes(v.host);
    w.writeVarU64(v.map_generation);
  }
  static mr::MapCompletionEvent decode(ByteReader& r) {
    mr::MapCompletionEvent v;
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.event_id = r.readVarU64();
    v.map_index = static_cast<uint32_t>(r.readVarU64());
    v.invalidated = r.readBool();
    v.host = r.readString();
    v.map_generation = r.readVarU64();
    return v;
  }
};

template <>
struct Serde<mr::ShuffleEventCursor> {
  static void encode(ByteWriter& w, const mr::ShuffleEventCursor& v) {
    w.writeVarU64(v.job);
    w.writeVarU64(v.after);
  }
  static mr::ShuffleEventCursor decode(ByteReader& r) {
    mr::ShuffleEventCursor v;
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.after = r.readVarU64();
    return v;
  }
};

template <>
struct Serde<mr::TrackerHeartbeatReply> {
  static void encode(ByteWriter& w, const mr::TrackerHeartbeatReply& v) {
    w.writeBool(v.reregister);
    Serde<std::vector<mr::TaskAssignment>>::encode(w, v.assignments);
    Serde<std::vector<mr::JobId>>::encode(w, v.purge_jobs);
    Serde<std::vector<mr::MapCompletionEvent>>::encode(w, v.map_events);
  }
  static mr::TrackerHeartbeatReply decode(ByteReader& r) {
    mr::TrackerHeartbeatReply v;
    v.reregister = r.readBool();
    v.assignments = Serde<std::vector<mr::TaskAssignment>>::decode(r);
    v.purge_jobs = Serde<std::vector<mr::JobId>>::decode(r);
    v.map_events = Serde<std::vector<mr::MapCompletionEvent>>::decode(r);
    return v;
  }
};

}  // namespace mh
