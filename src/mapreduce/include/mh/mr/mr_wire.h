#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "mh/common/serde.h"
#include "mh/mr/fs_view.h"
#include "mh/mr/types.h"

/// \file mr_wire.h
/// Control-plane messages between TaskTrackers and the JobTracker, plus
/// their Serde specializations.
///
/// Note on "jar distribution": mapper/reducer factories are C++ closures and
/// cannot cross the wire, so a shared in-process JobRegistry stands in for
/// Hadoop's out-of-band jar shipping; only job ids, task indices, splits,
/// and output locations travel in these messages (see DESIGN.md
/// substitutions).

namespace mh::mr {

/// Counter rows on the wire.
using CounterRows = std::vector<std::tuple<std::string, std::string, int64_t>>;

/// A finished (or failed) task attempt, reported on the next heartbeat.
struct TaskStatusReport {
  JobId job = 0;
  uint32_t task_index = 0;
  bool is_map = true;
  uint32_t attempt = 0;
  bool succeeded = false;
  std::string error;
  CounterRows counters;
  int64_t millis = 0;
};

enum class AssignmentKind : uint8_t { kMap = 0, kReduce = 1 };

/// Where one map task's output lives.
struct MapOutputLocation {
  uint32_t map_index = 0;
  std::string host;

  bool operator==(const MapOutputLocation&) const = default;
};

struct TaskAssignment {
  AssignmentKind kind = AssignmentKind::kMap;
  JobId job = 0;
  uint32_t task_index = 0;
  uint32_t attempt = 0;
  InputSplit split;                             ///< maps only
  std::vector<MapOutputLocation> map_outputs;   ///< reduces only
  /// The job's causal trace identity (0 when tracing is off at the
  /// JobTracker). Task threads install this as their ambient context, so
  /// MAP/REDUCE spans on the tracker parent to the job's root span.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
};

struct TrackerHeartbeatReply {
  bool reregister = false;
  std::vector<TaskAssignment> assignments;
  std::vector<JobId> purge_jobs;  ///< finished jobs whose map outputs can go
};

}  // namespace mh::mr

namespace mh {

template <>
struct Serde<mr::InputSplit> {
  static void encode(ByteWriter& w, const mr::InputSplit& v) {
    w.writeBytes(v.path);
    w.writeVarU64(v.offset);
    w.writeVarU64(v.length);
    Serde<std::vector<std::string>>::encode(w, v.hosts);
  }
  static mr::InputSplit decode(ByteReader& r) {
    mr::InputSplit v;
    v.path = r.readString();
    v.offset = r.readVarU64();
    v.length = r.readVarU64();
    v.hosts = Serde<std::vector<std::string>>::decode(r);
    return v;
  }
};

template <>
struct Serde<mr::TaskStatusReport> {
  static void encode(ByteWriter& w, const mr::TaskStatusReport& v) {
    w.writeVarU64(v.job);
    w.writeVarU64(v.task_index);
    w.writeBool(v.is_map);
    w.writeVarU64(v.attempt);
    w.writeBool(v.succeeded);
    w.writeBytes(v.error);
    Serde<mr::CounterRows>::encode(w, v.counters);
    w.writeVarI64(v.millis);
  }
  static mr::TaskStatusReport decode(ByteReader& r) {
    mr::TaskStatusReport v;
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.task_index = static_cast<uint32_t>(r.readVarU64());
    v.is_map = r.readBool();
    v.attempt = static_cast<uint32_t>(r.readVarU64());
    v.succeeded = r.readBool();
    v.error = r.readString();
    v.counters = Serde<mr::CounterRows>::decode(r);
    v.millis = r.readVarI64();
    return v;
  }
};

template <>
struct Serde<mr::MapOutputLocation> {
  static void encode(ByteWriter& w, const mr::MapOutputLocation& v) {
    w.writeVarU64(v.map_index);
    w.writeBytes(v.host);
  }
  static mr::MapOutputLocation decode(ByteReader& r) {
    mr::MapOutputLocation v;
    v.map_index = static_cast<uint32_t>(r.readVarU64());
    v.host = r.readString();
    return v;
  }
};

template <>
struct Serde<mr::TaskAssignment> {
  static void encode(ByteWriter& w, const mr::TaskAssignment& v) {
    w.writeU8(static_cast<uint8_t>(v.kind));
    w.writeVarU64(v.job);
    w.writeVarU64(v.task_index);
    w.writeVarU64(v.attempt);
    Serde<mr::InputSplit>::encode(w, v.split);
    Serde<std::vector<mr::MapOutputLocation>>::encode(w, v.map_outputs);
    w.writeVarU64(v.trace_id);
    w.writeVarU64(v.parent_span_id);
  }
  static mr::TaskAssignment decode(ByteReader& r) {
    mr::TaskAssignment v;
    v.kind = static_cast<mr::AssignmentKind>(r.readU8());
    v.job = static_cast<mr::JobId>(r.readVarU64());
    v.task_index = static_cast<uint32_t>(r.readVarU64());
    v.attempt = static_cast<uint32_t>(r.readVarU64());
    v.split = Serde<mr::InputSplit>::decode(r);
    v.map_outputs = Serde<std::vector<mr::MapOutputLocation>>::decode(r);
    v.trace_id = r.readVarU64();
    v.parent_span_id = r.readVarU64();
    return v;
  }
};

template <>
struct Serde<mr::TrackerHeartbeatReply> {
  static void encode(ByteWriter& w, const mr::TrackerHeartbeatReply& v) {
    w.writeBool(v.reregister);
    Serde<std::vector<mr::TaskAssignment>>::encode(w, v.assignments);
    Serde<std::vector<mr::JobId>>::encode(w, v.purge_jobs);
  }
  static mr::TrackerHeartbeatReply decode(ByteReader& r) {
    mr::TrackerHeartbeatReply v;
    v.reregister = r.readBool();
    v.assignments = Serde<std::vector<mr::TaskAssignment>>::decode(r);
    v.purge_jobs = Serde<std::vector<mr::JobId>>::decode(r);
    return v;
  }
};

}  // namespace mh
