#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/common/codec.h"
#include "mh/common/error.h"
#include "mh/common/metrics.h"
#include "mh/common/trace.h"
#include "mh/mr/counters.h"
#include "mh/mr/types.h"

/// \file map_output_store.h
/// Per-TaskTracker storage for finished map tasks' sorted partition runs.
/// Reduce tasks fetch from here over the network (the shuffle); the
/// JobTracker tells trackers to purge a job's outputs once it finishes.
///
/// Runs are held behind shared_ptr so serving a fetch only bumps a
/// refcount under the store mutex; the (simulated) wire copy happens on the
/// caller's thread, and a concurrent purge cannot pull the buffer out from
/// under an in-flight fetch.
///
/// Beyond plain per-map storage, the store is the home of two serve-side
/// optimisations (both need the attachments from `attach()`):
///
///  * **In-node combining** (`mapred.innode.combine`, a job conf key): when
///    the job has a combiner, completed maps' runs for the same job are
///    merged node-locally (KvRunMerger + combiner) into one consolidated
///    run per partition, so a reducer fetches one run per *node* instead of
///    one per map. Indexing is generation-aware: every `put()` bumps the
///    slot's generation, and a combined run remembers the exact
///    (map, generation) set it was built from — a late, re-executed, or
///    speculative attempt invalidates the aggregate and contributes exactly
///    once to the next build. Reducers name the exact map set they expect
///    (`serveNodeOutput`), so a map that re-ran elsewhere is never served
///    twice from two nodes' aggregates.
///  * **Encode-once shuffle serving**: a run stored raw while
///    `mapred.shuffle.compression` is on is encoded on first serve and the
///    encoded form cached (charged to the tracker heap budget via the
///    `TryChargeFn`; over budget the serve falls back to one-shot
///    encoding), so fetch retries never pay the codec again.

namespace mh::mr {

class JobRegistry;
struct JobSpec;

class MapOutputStore {
 public:
  /// Heap-budget hook: charge `delta` bytes (negative releases). Returns
  /// false when the budget refuses the growth — the store then skips the
  /// optional caching that needed it. Must never throw.
  using TryChargeFn = std::function<bool(int64_t)>;

  MapOutputStore() = default;
  ~MapOutputStore();
  MapOutputStore(const MapOutputStore&) = delete;
  MapOutputStore& operator=(const MapOutputStore&) = delete;

  /// Wires the store into its owning tracker: job specs (combiner factory
  /// and conf seams), a metrics child for the `mapoutput.replaced.runs` /
  /// `innode.combined.runs` / `innode.bytes.saved` counters, tracing for
  /// INNODE_COMBINE spans, and the heap-budget hook that bounds combined
  /// runs and encoded-serve caches. A detached store (tests) behaves like
  /// plain per-map storage.
  void attach(JobRegistry* registry, MetricsRegistry* metrics,
              TraceCollector* trace, std::string trace_component,
              TryChargeFn try_charge);

  /// Installs (or replaces — speculative duplicates and re-executions) one
  /// map's per-partition runs. A replacement bumps the slot generation and
  /// the `mapoutput.replaced.runs` counter, and invalidates any node
  /// aggregate the prior attempt contributed to. When in-node combining is
  /// on for the job, runs above the `mapred.innode.combine.min.runs` /
  /// `.min.bytes` thresholds are merged into the node aggregate here (the
  /// INNODE_COMBINE_* counters land in `counters`, typically the map
  /// task's, so attempt replacement keeps them exactly-once).
  void put(JobId job, uint32_t map_index, std::vector<Bytes> partitions,
           Counters* counters = nullptr);

  /// Throws NotFoundError when the output is absent (e.g. after a purge or
  /// tracker restart) — the fetch failure reduces report to the JobTracker.
  std::shared_ptr<const Bytes> get(JobId job, uint32_t map_index,
                                   uint32_t partition) const;

  bool has(JobId job, uint32_t map_index) const;

  /// Serve-side byte accounting for a shuffle-compressed serve: logical vs
  /// wire sizes. Both stay 0 when the serve shipped plain bytes.
  struct ServeStats {
    int64_t raw_bytes = 0;
    int64_t compressed_bytes = 0;
  };

  /// One map's run for `partition`, in wire form under the job's shuffle
  /// codec: stored-encoded runs ship as-is, raw runs encode once (cached),
  /// encoded runs with shuffle compression off decode at serve.
  BufferView serveMapOutput(JobId job, uint32_t map_index, uint32_t partition,
                            CodecKind shuffle, ServeStats* stats = nullptr);

  /// The node-combined run for `partition` covering exactly `maps` — the
  /// in-node combine serve path. Uses the cached aggregate when its member
  /// generations are current, otherwise merges (combiner included) for the
  /// requested set. Throws NotFoundError naming the first absent map
  /// ("missing map=<i>") so the fetcher attributes the failure to the right
  /// map for re-execution.
  BufferView serveNodeOutput(JobId job, uint32_t partition,
                             const std::vector<uint32_t>& maps,
                             CodecKind shuffle, ServeStats* stats = nullptr);

  void purgeJob(JobId job);

  void clear();

  /// O(1): a running total of the per-map stored runs, maintained by
  /// put/purgeJob/clear, so gauge reads never walk the store while shuffle
  /// fetches contend for the mutex.
  uint64_t totalBytes() const;

  /// Current slot generation, 0 when the map has no output here (test and
  /// diagnostic hook).
  uint64_t generation(JobId job, uint32_t map_index) const;

  /// Bytes currently charged to the heap budget for node aggregates and
  /// encoded-serve caches (test and diagnostic hook).
  int64_t cachedBytes() const;

 private:
  /// One finished map attempt's output: per-partition runs in stored form
  /// (encoded when the job's map-output codec is on) plus the lazily built
  /// per-partition shuffle-wire cache.
  struct MapSlot {
    std::vector<std::shared_ptr<const Bytes>> runs;
    std::vector<std::shared_ptr<const Bytes>> wire;
    uint64_t generation = 0;
  };

  /// A node aggregate for one exact member set: per-partition combined
  /// runs plus their shuffle-wire cache, valid while every member's slot
  /// still has the recorded generation.
  struct NodeRun {
    std::map<uint32_t, uint64_t> members;  ///< map_index -> build generation
    std::vector<std::shared_ptr<const Bytes>> runs;
    std::vector<std::shared_ptr<const Bytes>> wire;
  };

  struct JobSlots {
    std::map<uint32_t, MapSlot> maps;
    std::map<std::vector<uint32_t>, NodeRun> combined;
    uint64_t next_generation = 1;
  };

  static uint64_t runsBytes(
      const std::vector<std::shared_ptr<const Bytes>>& runs);

  std::shared_ptr<const JobSpec> specFor(JobId job) const;
  bool tryChargeLocked(int64_t delta);
  void releaseLocked(int64_t bytes);
  void dropNodeRunLocked(NodeRun& node);
  bool currentLocked(const JobSlots& slots, const NodeRun& node) const;
  void maybeCombineOnPut(JobId job, const JobSpec& spec, Counters* counters);

  /// Combined per-partition runs for exactly `members` — cache hit when
  /// current, otherwise a fresh merge (installed when still current and the
  /// heap budget allows). Throws NotFoundError ("missing map=<i>") when a
  /// member has no output here.
  std::vector<std::shared_ptr<const Bytes>> nodeRuns(
      JobId job, const JobSpec* spec, const std::vector<uint32_t>& members,
      Counters* counters);

  /// Ships `run` under the shuffle codec, consulting/filling the wire
  /// cache slot that `find_cache` resolves (called under the mutex; may
  /// return nullptr when the owning slot was replaced or purged).
  BufferView serveRun(
      const std::shared_ptr<const Bytes>& run, CodecKind shuffle,
      ServeStats* stats,
      const std::function<std::vector<std::shared_ptr<const Bytes>>*()>&
          find_cache,
      uint32_t partition, size_t num_partitions);

  mutable std::mutex mutex_;
  std::map<JobId, JobSlots> jobs_;
  uint64_t total_bytes_ = 0;
  int64_t charged_ = 0;

  JobRegistry* registry_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* trace_ = nullptr;
  std::string component_ = "mapoutputstore";
  TryChargeFn try_charge_;
  Counter* replaced_runs_ = nullptr;
  Counter* combined_runs_ = nullptr;
  Counter* bytes_saved_ = nullptr;
};

}  // namespace mh::mr
