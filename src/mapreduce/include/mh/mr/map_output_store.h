#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/error.h"
#include "mh/mr/types.h"

/// \file map_output_store.h
/// Per-TaskTracker storage for finished map tasks' sorted partition runs.
/// Reduce tasks fetch from here over the network (the shuffle); the
/// JobTracker tells trackers to purge a job's outputs once it finishes.
///
/// Runs are held behind shared_ptr so serving a fetch only bumps a
/// refcount under the store mutex; the (simulated) wire copy happens on the
/// caller's thread, and a concurrent purge cannot pull the buffer out from
/// under an in-flight fetch.

namespace mh::mr {

class MapOutputStore {
 public:
  void put(JobId job, uint32_t map_index, std::vector<Bytes> partitions) {
    std::vector<std::shared_ptr<const Bytes>> runs;
    runs.reserve(partitions.size());
    uint64_t bytes = 0;
    for (Bytes& run : partitions) {
      bytes += run.size();
      runs.push_back(std::make_shared<const Bytes>(std::move(run)));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = outputs_[{job, map_index}];
    total_bytes_ -= runsBytes(slot);  // speculative duplicate: replace
    total_bytes_ += bytes;
    slot = std::move(runs);
  }

  /// Throws NotFoundError when the output is absent (e.g. after a purge or
  /// tracker restart) — the fetch failure reduces report to the JobTracker.
  std::shared_ptr<const Bytes> get(JobId job, uint32_t map_index,
                                   uint32_t partition) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = outputs_.find({job, map_index});
    if (it == outputs_.end()) {
      throw NotFoundError("map output " + std::to_string(job) + "/" +
                          std::to_string(map_index));
    }
    if (partition >= it->second.size()) {
      throw InvalidArgumentError("partition out of range");
    }
    return it->second[partition];
  }

  bool has(JobId job, uint32_t map_index) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return outputs_.contains({job, map_index});
  }

  void purgeJob(JobId job) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto begin = outputs_.lower_bound({job, 0});
    const auto end = outputs_.lower_bound({job + 1, 0});
    for (auto it = begin; it != end; ++it) total_bytes_ -= runsBytes(it->second);
    outputs_.erase(begin, end);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    outputs_.clear();
    total_bytes_ = 0;
  }

  /// O(1): a running total maintained by put/purgeJob/clear, so gauge reads
  /// never walk the store while shuffle fetches contend for the mutex.
  uint64_t totalBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_bytes_;
  }

 private:
  static uint64_t runsBytes(
      const std::vector<std::shared_ptr<const Bytes>>& runs) {
    uint64_t total = 0;
    for (const auto& run : runs) total += run->size();
    return total;
  }

  mutable std::mutex mutex_;
  std::map<std::pair<JobId, uint32_t>,
           std::vector<std::shared_ptr<const Bytes>>>
      outputs_;
  uint64_t total_bytes_ = 0;
};

}  // namespace mh::mr
