#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "mh/common/config.h"
#include "mh/mr/job.h"
#include "mh/mr/job_registry.h"
#include "mh/mr/mr_wire.h"
#include "mh/net/network.h"

/// \file job_tracker.h
/// The MapReduce master (Hadoop 1.x JobTracker). Computes input splits from
/// HDFS block locations, hands tasks to heartbeating TaskTrackers with
/// node-local splits first (the Figure-2 integration: "JobTracker assigns
/// work based on block location information from NameNode"), retries failed
/// attempts, re-executes map tasks whose tracker died (their outputs died
/// with it), and aggregates task counters into the job report.
///
/// Config keys (defaults):
///   mapred.max.attempts               4
///   mapred.tasktracker.expiry.ms      1000
///   mapred.jobtracker.monitor.interval.ms  50
///   mapred.task.timeout.ms            600000 (<= 0 disables; a Running
///                                     attempt older than this is failed and
///                                     rescheduled — rescues assignments
///                                     whose heartbeat reply was lost)
///   mapred.speculative.execution      false  (launch backup attempts for
///                                     straggler maps; first success wins)
///   mapred.speculative.min.ms         500    (minimum runtime before a
///                                     task can be considered a straggler)
///   mapred.reduce.slowstart.completed.maps  0.05  (fraction of the job's
///                                     maps that must succeed before reduces
///                                     launch; 1.0 restores the blocking
///                                     all-maps-first schedule. Clamped to
///                                     [0, 1]; the job conf overrides the
///                                     cluster conf.)

namespace mh::mr {

class JobTracker {
 public:
  JobTracker(Config conf, std::shared_ptr<net::Network> network,
             std::shared_ptr<JobRegistry> registry,
             std::string host = "jobtracker",
             std::string namenode_host = "namenode");
  ~JobTracker();
  JobTracker(const JobTracker&) = delete;
  JobTracker& operator=(const JobTracker&) = delete;

  /// Binds the RPC port and starts the tracker-expiry monitor.
  void start();
  void stop();

  const std::string& host() const { return host_; }

  /// Validates the spec, computes splits from HDFS, registers the job, and
  /// returns its id. The job runs as trackers heartbeat in.
  JobId submit(JobSpec spec);

  /// Blocks until the job reaches a terminal state.
  JobResult wait(JobId id);

  JobStatus status(JobId id) const;
  std::vector<JobStatus> listJobs() const;

  /// jobdetails.jsp-style text report — the "JobTracker's web interface"
  /// the course has students read map task run times and counters from.
  std::string renderJobDetails(JobId id) const;

  // ----- TaskTracker protocol ----------------------------------------------

  void registerTracker(const std::string& host, uint32_t map_slots,
                       uint32_t reduce_slots,
                       const std::string& rack = "/default-rack");

  TrackerHeartbeatReply trackerHeartbeat(
      const std::string& host, uint32_t free_map_slots,
      uint32_t free_reduce_slots,
      const std::vector<TaskStatusReport>& reports,
      const std::vector<ShuffleEventCursor>& cursors = {});

  /// Test hook: one synchronous expiry pass.
  void runMonitorOnce();

  /// Test hook: the tracker host where `map_index` of `job` currently has a
  /// succeeded output, empty when pending/running/unknown.
  std::string mapLocation(JobId job, uint32_t map_index) const;

 private:
  enum class TaskState : uint8_t { kPending, kRunning, kSucceeded };
  enum class Locality : uint8_t { kNodeLocal, kRackLocal, kRemote };

  struct TaskInProgress {
    TaskState state = TaskState::kPending;
    uint32_t next_attempt = 0;
    uint32_t running_attempt = 0;
    uint32_t failures = 0;
    std::string tracker;  ///< where running / where succeeded
    InputSplit split;     ///< maps only
    Locality locality = Locality::kRemote;  ///< of the current assignment
    int64_t started_ms = 0;  ///< when the current attempt launched
    /// This task's counters as last merged into the job totals. A task
    /// re-executed after its output was lost (fetch failure, dead tracker)
    /// succeeds a second time; its new counters must REPLACE this
    /// contribution, not stack on top of it.
    Counters contributed;
    // Speculative (backup) attempt for stragglers; first success wins.
    bool has_speculative = false;
    uint32_t speculative_attempt = 0;
    std::string speculative_tracker;
    /// Bumped on every success of this (map) task — the scheduler-side
    /// analog of the MapOutputStore slot generation. Completion events
    /// carry it so pipelined reducers can tell a fresh output from a stale
    /// re-announcement.
    uint64_t output_generation = 0;
  };

  struct JobInProgress {
    JobId id = 0;
    std::shared_ptr<const JobSpec> spec;
    std::vector<TaskInProgress> maps;
    std::vector<TaskInProgress> reduces;
    JobState state = JobState::kRunning;
    std::string error;
    Counters counters;
    int64_t map_millis = 0;
    int64_t reduce_millis = 0;
    int64_t submit_ms = 0;
    int64_t finish_ms = 0;
    /// Causal trace identity, minted at submit when tracing is enabled
    /// (zero otherwise). Every assignment carries `trace_id` +
    /// `root_span_id` so MAP/REDUCE spans on remote trackers parent to the
    /// job's root span; the root JOB span itself is recorded at finish,
    /// backdated to `trace_start_us`.
    uint64_t trace_id = 0;
    uint64_t root_span_id = 0;
    int64_t trace_start_us = 0;
    /// JobHistory: every attempt ever scheduled, opened at assignment and
    /// closed by its status report (or tracker expiry).
    std::vector<TaskAttemptRecord> attempts;
    /// Map-completion event feed for pipelined shuffles: success and
    /// invalidation events with monotonic ids, kept for the job's lifetime
    /// and replayed to trackers from whatever cursor they present.
    std::vector<MapCompletionEvent> map_events;
    uint64_t next_event_id = 1;
  };

  struct TrackerInfo {
    std::string rack = "/default-rack";
    uint32_t map_slots = 0;
    uint32_t reduce_slots = 0;
    int64_t last_heartbeat_ms = 0;
    bool alive = false;
  };

  static int64_t steadyMillis();
  void installRpc();
  void openAttemptLocked(JobInProgress& job, bool is_map, uint32_t task_index,
                         uint32_t attempt, const std::string& tracker,
                         bool speculative);
  void closeAttemptLocked(JobInProgress& job, bool is_map,
                          uint32_t task_index, uint32_t attempt,
                          bool succeeded, const std::string& error);
  void processReportLocked(const std::string& tracker_host,
                           const TaskStatusReport& report);
  void assignSpeculativeLocked(const std::string& tracker_host,
                               uint32_t& free_map_slots,
                               std::vector<TaskAssignment>& out);
  void failJobLocked(JobInProgress& job, const std::string& error);
  void finishJobLocked(JobInProgress& job, JobState state);
  bool allMapsDoneLocked(const JobInProgress& job) const;
  /// True once the job's succeeded-map count reaches the slowstart
  /// threshold (ceil(slowstart * maps), at least 1 for a non-empty map
  /// phase), so reduces may launch with a partial location list.
  bool reduceLaunchableLocked(const JobInProgress& job) const;
  /// Appends a success/invalidation event for `map_index` to the job's
  /// event feed (monotonic ids; success events carry the tracker host and
  /// the new output generation).
  void emitMapEventLocked(JobInProgress& job, uint32_t map_index,
                          bool invalidated);
  void assignTasksLocked(const std::string& tracker_host,
                         uint32_t free_map_slots, uint32_t free_reduce_slots,
                         std::vector<TaskAssignment>& out);
  void expireTrackersLocked();
  void timeoutTasksLocked();
  JobStatus statusLocked(const JobInProgress& job) const;

  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::shared_ptr<JobRegistry> registry_;
  std::string host_;
  std::string namenode_host_;

  // Claimed at construction (registry child "jobtracker"); the cached
  // Counter handles are lock-free, safe to bump under lock_.
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector* tracer_ = nullptr;
  Counter* jobs_submitted_ = nullptr;
  Counter* jobs_succeeded_ = nullptr;
  Counter* jobs_failed_ = nullptr;
  Counter* attempts_failed_ = nullptr;

  mutable std::mutex lock_;
  std::condition_variable job_done_;
  std::map<JobId, JobInProgress> jobs_;
  std::map<std::string, TrackerInfo> trackers_;
  JobId next_job_id_ = 1;
  bool started_ = false;

  std::jthread monitor_;
};

}  // namespace mh::mr
