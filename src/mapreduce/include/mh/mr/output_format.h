#pragma once

#include <functional>
#include <memory>
#include <string>

#include "mh/mr/fs_view.h"
#include "mh/mr/types.h"

/// \file output_format.h
/// Writing reduce output. Each reduce task owns one part file
/// (part-00000, part-00001, ...) and commits it atomically: records are
/// buffered into a _temporary attempt file and renamed into place on
/// success, so a failed/retried attempt never leaves a torn part file.

namespace mh::mr {

class RecordWriter {
 public:
  virtual ~RecordWriter() = default;
  virtual void write(std::string_view key, std::string_view value) = 0;
  /// Finalizes and commits the part file.
  virtual void close() = 0;
};

class OutputFormat {
 public:
  virtual ~OutputFormat() = default;

  /// Opens the writer for one partition's part file under `output_dir`.
  /// `attempt` disambiguates retried tasks' temporary files.
  virtual std::unique_ptr<RecordWriter> createWriter(
      FileSystemView& fs, const std::string& output_dir, uint32_t partition,
      uint32_t attempt) = 0;

  /// Part file name for a partition, e.g. part-00002.
  static std::string partName(uint32_t partition);
};

/// "key<TAB>value\n" lines (Hadoop's TextOutputFormat). A record with an
/// empty value writes just "key\n".
class TextOutputFormat final : public OutputFormat {
 public:
  std::unique_ptr<RecordWriter> createWriter(FileSystemView& fs,
                                             const std::string& output_dir,
                                             uint32_t partition,
                                             uint32_t attempt) override;
};

/// Binary kv_stream frames, re-readable by KvInputFormat (for job chains).
class KvOutputFormat final : public OutputFormat {
 public:
  std::unique_ptr<RecordWriter> createWriter(FileSystemView& fs,
                                             const std::string& output_dir,
                                             uint32_t partition,
                                             uint32_t attempt) override;
};

using OutputFormatFactory = std::function<std::unique_ptr<OutputFormat>()>;

}  // namespace mh::mr
