#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mh/common/config.h"
#include "mh/common/trace.h"
#include "mh/mr/api.h"
#include "mh/mr/counters.h"
#include "mh/mr/input_format.h"
#include "mh/mr/output_format.h"

/// \file job.h
/// Job description and results. A JobSpec is the moral equivalent of a
/// configured Hadoop Job + its jar: input/output paths, mapper/reducer/
/// combiner/partitioner factories, reducer count, and free-form conf.
/// The same JobSpec runs under the serial LocalJobRunner or a distributed
/// mini-cluster unchanged.

namespace mh::mr {

struct JobSpec {
  std::string name = "job";
  std::vector<std::string> input_paths;
  std::string output_dir;
  uint32_t num_reducers = 1;

  MapperFactory mapper;
  ReducerFactory reducer;
  /// Optional. Runs over each map task's sorted per-partition output —
  /// the §III-A lesson: more map-side work, less shuffle traffic.
  ReducerFactory combiner;
  /// Defaults to HashPartitioner.
  PartitionerFactory partitioner;
  /// Defaults to TextInputFormat / TextOutputFormat.
  InputFormatFactory input_format;
  OutputFormatFactory output_format;

  Config conf;

  /// Fills defaulted factories; throws InvalidArgumentError on an unusable
  /// spec (no mapper/reducer, no inputs, no output, zero reducers).
  void validateAndDefault();
};

enum class JobState : uint8_t { kRunning = 0, kSucceeded = 1, kFailed = 2 };

const char* jobStateName(JobState state);

/// One task attempt as the JobTracker saw it — the unit of the Hadoop
/// JobHistory file. Times are milliseconds since job submission.
struct TaskAttemptRecord {
  bool is_map = true;
  uint32_t task_index = 0;
  uint32_t attempt = 0;
  std::string tracker;    ///< TaskTracker host the attempt ran on.
  int64_t start_ms = 0;
  int64_t finish_ms = 0;  ///< Meaningful only when `finished`.
  bool finished = false;  ///< false: still running at job end / tracker lost.
  bool succeeded = false;
  bool speculative = false;
  std::string error;      ///< Failure reason, empty on success.
};

/// Per-job event record, the mini JobHistory: every attempt the JobTracker
/// scheduled, with timing, placement, and outcome.
struct JobHistory {
  int64_t submit_ms = 0;  ///< Always 0 (times are relative to submission).
  int64_t finish_ms = 0;
  std::vector<TaskAttemptRecord> attempts;

  /// ASCII per-task Gantt chart over [0, finish_ms]: one row per attempt,
  /// `=` map bars, `#` reduce bars, `x` failures.
  std::string renderTimeline(size_t width = 60) const;
};

/// Final outcome of a job.
struct JobResult {
  JobState state = JobState::kFailed;
  Counters counters;
  int64_t map_millis = 0;     ///< summed across map tasks
  int64_t reduce_millis = 0;  ///< summed across reduce tasks
  int64_t elapsed_millis = 0; ///< wall clock submit -> finish
  std::string error;
  /// The job's causal trace id (0 when tracing was off at submit). Pass
  /// the cluster tracer's `snapshot()` to `computeCriticalPath()` /
  /// `criticalPathReport()` with this id for the "where the time went"
  /// view.
  uint64_t trace_id = 0;
  /// Attempt-level event record (empty under the LocalJobRunner, which has
  /// no attempts — only the distributed JobTracker schedules them).
  JobHistory history;

  bool succeeded() const { return state == JobState::kSucceeded; }

  /// Human-readable phase timeline next to the counter report: state,
  /// elapsed time, and the per-attempt Gantt from `history`.
  std::string historyReport() const;

  /// Critical-path "where the time went" report reconstructed from the
  /// cluster trace journal (see trace_analysis.h) — the causal sibling of
  /// historyReport(). Returns a one-line notice when tracing was off.
  std::string criticalPathReport(const TraceCollector& tracer) const;
};

/// Progress snapshot while a job runs (the JobTracker "web UI" data).
struct JobStatus {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kRunning;
  uint32_t maps_total = 0;
  uint32_t maps_completed = 0;
  uint32_t reduces_total = 0;
  uint32_t reduces_completed = 0;
  std::string error;
};

}  // namespace mh::mr
