#include "mh/mr/map_output_buffer.h"

#include <algorithm>
#include <limits>

#include "mh/common/stopwatch.h"
#include "mh/mr/kv_stream.h"
#include "mh/mr/merge.h"

namespace mh::mr {

namespace {

using namespace counters;

void sortRecords(std::vector<KeyValue>& records) {
  std::stable_sort(
      records.begin(), records.end(),
      [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
}

/// Big-endian first-8-bytes of the key, zero-padded: prefix inequality
/// decides byte-lexicographic key order without touching the key bytes.
uint64_t keyPrefix(std::string_view key) {
  uint64_t prefix = 0;
  const size_t n = std::min<size_t>(key.size(), 8);
  for (size_t i = 0; i < n; ++i) {
    prefix |= static_cast<uint64_t>(static_cast<uint8_t>(key[i]))
              << (56 - 8 * i);
  }
  return prefix;
}

/// Combiners usually preserve keys, but the engine has never assumed so:
/// emissions are re-sorted (stably) before they are framed into a run.
int64_t writeSortedRecords(std::vector<KeyValue>& records, Bytes& out) {
  sortRecords(records);
  KvWriter writer(out);
  for (const KeyValue& kv : records) writer.write(kv);
  return static_cast<int64_t>(records.size());
}

}  // namespace

MapOutputBuffer::MapOutputBuffer(const JobSpec& spec, Counters& counters,
                                 TaskContext::HeapFn heap, FileSystemView* fs,
                                 TraceCollector* trace,
                                 std::string_view trace_component,
                                 MetricsRegistry* metrics)
    : spec_(spec),
      counters_(counters),
      heap_(std::move(heap)),
      fs_(fs),
      trace_(trace),
      trace_component_(trace_component),
      metrics_(metrics),
      partitions_(spec.num_reducers),
      codec_(codecFromName(
          spec.conf.get("mapred.map.output.compression.codec", "none"))) {
  // Offsets are 32-bit, so the budget must stay under 4 GiB; 2047 MiB
  // leaves headroom for one oversized record past the threshold.
  const int64_t sort_mb =
      std::clamp<int64_t>(spec.conf.getInt("io.sort.mb", 32), 1, 2047);
  const double spill_percent = std::clamp(
      spec.conf.getDouble("io.sort.spill.percent", 0.80), 0.05, 1.0);
  spill_threshold_ = static_cast<size_t>(
      static_cast<double>(sort_mb << 20) * spill_percent);
}

MapOutputBuffer::~MapOutputBuffer() {
  if (charged_ != 0 && heap_) heap_(-charged_);
  charged_ = 0;
}

void MapOutputBuffer::syncCharge() {
  const int64_t now = static_cast<int64_t>(
      arena_.capacity() + index_.capacity() * sizeof(IndexEntry) +
      packed_.capacity() * sizeof(packed_[0]) + spill_bytes_);
  const int64_t delta = now - charged_;
  if (delta == 0) return;
  // Record before calling out: the HeapFn has already accounted the delta
  // when it throws OutOfMemoryError, and ~MapOutputBuffer must release it.
  charged_ = now;
  if (heap_) heap_(delta);
}

void MapOutputBuffer::collect(std::string_view key, std::string_view value,
                              uint32_t partition) {
  if (key.size() > std::numeric_limits<uint32_t>::max() ||
      value.size() > std::numeric_limits<uint32_t>::max()) {
    throw InvalidArgumentError("map output record exceeds 4 GiB");
  }
  const size_t need = key.size() + value.size() + sizeof(IndexEntry);
  if (!index_.empty() && workingSet() + need > spill_threshold_) spill();

  IndexEntry entry;
  entry.prefix = keyPrefix(key);
  entry.partition = partition;
  entry.offset = static_cast<uint32_t>(arena_.size());
  entry.key_len = static_cast<uint32_t>(key.size());
  entry.val_len = static_cast<uint32_t>(value.size());
  batch_max_key_len_ = std::max(batch_max_key_len_, key.size());
  arena_.append(key.data(), key.size());
  arena_.append(value.data(), value.size());
  index_.push_back(entry);
  syncCharge();

  // A single record at or above the threshold spills solo right away, so
  // the overshoot never compounds.
  if (workingSet() >= spill_threshold_) spill();
}

void MapOutputBuffer::sortIndex() {
  Stopwatch watch;
  if (batch_max_key_len_ <= 8) {
    // Fast path — every key in this batch fits its 8-byte prefix, so
    // (prefix, key_len, insertion rank) packed into one 128-bit integer IS
    // the full sort key: bucket the packed entries by partition (a stable
    // counting pass), then each bucket sorts branch-free 16-byte integers
    // with no arena access at all. The batch is read back through the
    // packed order (entryAt) instead of being permuted.
    const size_t n = index_.size();
    std::vector<size_t> starts(partitions_ + 1, 0);
    for (const IndexEntry& e : index_) ++starts[e.partition + 1];
    for (uint32_t p = 0; p < partitions_; ++p) starts[p + 1] += starts[p];
    packed_.resize(n);
    std::vector<size_t> cursor(starts.begin(), starts.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      const IndexEntry& e = index_[i];
      packed_[cursor[e.partition]++] =
          (static_cast<unsigned __int128>(e.prefix) << 64) |
          (static_cast<uint64_t>(e.key_len) << 32) | static_cast<uint32_t>(i);
    }
    for (uint32_t p = 0; p < partitions_; ++p) {
      std::sort(packed_.begin() + static_cast<ptrdiff_t>(starts[p]),
                packed_.begin() + static_cast<ptrdiff_t>(starts[p + 1]));
    }
    packed_sorted_ = true;
  } else {
    std::sort(index_.begin(), index_.end(),
              [this](const IndexEntry& a, const IndexEntry& b) {
                if (a.partition != b.partition) {
                  return a.partition < b.partition;
                }
                if (a.prefix != b.prefix) return a.prefix < b.prefix;
                if (a.key_len <= 8 && b.key_len <= 8) {
                  // Equal prefixes fully encode both keys: the shorter key
                  // is a (zero-extended) prefix of the longer, so it sorts
                  // first.
                  if (a.key_len != b.key_len) return a.key_len < b.key_len;
                  return a.offset < b.offset;
                }
                if (const int c = keyAt(a).compare(keyAt(b)); c != 0) {
                  return c < 0;
                }
                return a.offset < b.offset;  // arena order == insertion order
              });
  }
  sort_micros_ += watch.elapsedMicros();
}

int64_t MapOutputBuffer::combineIndexRange(size_t begin, size_t end,
                                           Bytes& out) {
  counters_.increment(kTaskGroup, kCombineInputRecords,
                      static_cast<int64_t>(end - begin));
  std::vector<KeyValue> combined;
  TaskContext ctx(
      spec_.conf, counters_,
      [&](Bytes key, Bytes value) {
        counters_.increment(kTaskGroup, kCombineOutputRecords);
        combined.push_back({std::move(key), std::move(value)});
      },
      heap_, fs_);

  /// Iterates one key group's values straight off the sorted index.
  class IndexSliceValues final : public ValuesIterator {
   public:
    IndexSliceValues(const MapOutputBuffer& buffer, size_t begin, size_t end)
        : buffer_(buffer), pos_(begin), end_(end) {}
    std::optional<std::string_view> next() override {
      if (pos_ >= end_) return std::nullopt;
      return buffer_.valueAt(buffer_.entryAt(pos_++));
    }

   private:
    const MapOutputBuffer& buffer_;
    size_t pos_;
    size_t end_;
  };

  const auto combiner = spec_.combiner();
  combiner->setup(ctx);
  size_t i = begin;
  while (i < end) {
    size_t j = i + 1;
    while (j < end && keyAt(entryAt(j)) == keyAt(entryAt(i))) ++j;
    IndexSliceValues values(*this, i, j);
    combiner->reduce(keyAt(entryAt(i)), values, ctx);
    i = j;
  }
  combiner->cleanup(ctx);
  return writeSortedRecords(combined, out);
}

void MapOutputBuffer::maybeEncodeRun(Bytes& run) {
  if (codec_ == CodecKind::kNone || run.empty()) return;
  counters_.increment(kTaskGroup, kSpillRawBytes,
                      static_cast<int64_t>(run.size()));
  Bytes encoded =
      codecEncode(codec_, run, metrics_, trace_, trace_component_);
  counters_.increment(kTaskGroup, kSpillCompressedBytes,
                      static_cast<int64_t>(encoded.size()));
  run = std::move(encoded);
}

void MapOutputBuffer::spill() {
  if (index_.empty()) return;
  TraceSpan span(trace_, trace_component_,
                 "SORT_SPILL #" + std::to_string(spill_count_));
  const size_t arena_bytes = arena_.size();
  const size_t records_in = index_.size();

  sortIndex();

  std::vector<Bytes> runs(partitions_);
  int64_t records_out = 0;
  size_t i = 0;
  while (i < index_.size()) {
    const uint32_t p = entryAt(i).partition;
    size_t j = i + 1;
    while (j < index_.size() && entryAt(j).partition == p) ++j;
    Bytes& out = runs[p];
    if (spec_.combiner) {
      records_out += combineIndexRange(i, j, out);
    } else {
      KvWriter writer(out);
      for (size_t k = i; k < j; ++k) {
        const IndexEntry& e = entryAt(k);
        writer.write(keyAt(e), valueAt(e));
      }
      records_out += static_cast<int64_t>(j - i);
    }
    i = j;
  }

  // Encode each finished run before retaining it: the working set (and the
  // heap charge below) holds only the compressed bytes.
  for (Bytes& run : runs) maybeEncodeRun(run);

  size_t run_bytes = 0;
  for (const Bytes& run : runs) run_bytes += run.size();
  spill_bytes_ += run_bytes;
  spills_.push_back(std::move(runs));
  ++spill_count_;
  counters_.increment(kTaskGroup, kSpilledRecords, records_out);
  counters_.increment(kTaskGroup, kMapSpills);

  // The arena, index, and packed sort keys keep their capacity (and their
  // heap charge): the next fill reuses the allocations.
  arena_.clear();
  index_.clear();
  packed_.clear();
  packed_sorted_ = false;
  batch_max_key_len_ = 0;
  syncCharge();

  if (span.active()) {
    span.arg("records_in", std::to_string(records_in));
    span.arg("records_out", std::to_string(records_out));
    span.arg("arena_bytes", std::to_string(arena_bytes));
    span.arg("run_bytes", std::to_string(run_bytes));
  }
}

std::vector<Bytes> MapOutputBuffer::finish() {
  if (finished_) throw IllegalStateError("MapOutputBuffer::finish called twice");
  finished_ = true;
  spill();

  std::vector<Bytes> result(partitions_);
  if (spills_.size() == 1) {
    // Single spill: its runs ARE the task output (no merge, no re-combine —
    // the per-spill combine already ran).
    result = std::move(spills_[0]);
  } else if (spills_.size() > 1) {
    // Multi-spill: per partition, loser-tree merge of the spill runs, with
    // one more combine pass over the merged stream (Hadoop's final merge).
    for (uint32_t p = 0; p < partitions_; ++p) {
      // Encoded spill runs decode transiently for this partition's merge;
      // the decoded buffers die with the iteration.
      std::vector<Buffer> decoded;
      std::vector<std::string_view> views;
      decoded.reserve(spills_.size());
      views.reserve(spills_.size());
      for (const auto& spill : spills_) {
        if (codec_ != CodecKind::kNone && isEncodedStream(spill[p])) {
          decoded.push_back(
              codecDecode(spill[p], metrics_, trace_, trace_component_));
          views.push_back(decoded.back().view());
        } else {
          views.push_back(spill[p]);
        }
      }
      KvRunMerger merger(views);

      int64_t records_out = 0;
      if (spec_.combiner) {
        std::vector<KeyValue> combined;
        TaskContext ctx(
            spec_.conf, counters_,
            [&](Bytes key, Bytes value) {
              counters_.increment(kTaskGroup, kCombineOutputRecords);
              combined.push_back({std::move(key), std::move(value)});
            },
            heap_, fs_);
        const auto combiner = spec_.combiner();
        combiner->setup(ctx);
        while (merger.nextGroup()) {
          combiner->reduce(merger.key(), merger.values(), ctx);
        }
        combiner->cleanup(ctx);
        counters_.increment(kTaskGroup, kCombineInputRecords,
                            merger.recordsRead());
        records_out = writeSortedRecords(combined, result[p]);
      } else {
        KvWriter writer(result[p]);
        while (merger.nextGroup()) {
          const std::string_view key = merger.key();
          while (const auto value = merger.values().next()) {
            writer.write(key, *value);
            ++records_out;
          }
        }
      }
      // Hadoop counts the final merge's rewrite as spilled records too —
      // and the re-encoded final run counts toward the byte counters the
      // same way.
      counters_.increment(kTaskGroup, kSpilledRecords, records_out);
      maybeEncodeRun(result[p]);
    }
  }

  // Release the whole working-set charge; the final runs leave the buffer
  // (they are handed to the MapOutputStore / shuffle, like before).
  spills_.clear();
  spill_bytes_ = 0;
  arena_ = Bytes();
  index_ = std::vector<IndexEntry>();
  packed_ = std::vector<unsigned __int128>();
  syncCharge();
  return result;
}

}  // namespace mh::mr
