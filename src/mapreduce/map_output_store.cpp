#include "mh/mr/map_output_store.h"

#include <algorithm>
#include <utility>

#include "mh/common/stopwatch.h"
#include "mh/mr/api.h"
#include "mh/mr/job.h"
#include "mh/mr/job_registry.h"
#include "mh/mr/kv_stream.h"
#include "mh/mr/merge.h"

namespace mh::mr {

namespace {

using namespace counters;

/// Stable key sort + kv_stream framing — the same contract as the map-side
/// combine output (combiners may change keys, so emissions are re-sorted).
int64_t writeSortedRecords(std::vector<KeyValue>& records, Bytes& out) {
  std::stable_sort(
      records.begin(), records.end(),
      [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
  KvWriter writer(out);
  for (const KeyValue& kv : records) writer.write(kv);
  return static_cast<int64_t>(records.size());
}

}  // namespace

MapOutputStore::~MapOutputStore() { clear(); }

void MapOutputStore::attach(JobRegistry* registry, MetricsRegistry* metrics,
                            TraceCollector* trace, std::string trace_component,
                            TryChargeFn try_charge) {
  registry_ = registry;
  metrics_ = metrics;
  trace_ = trace;
  component_ = std::move(trace_component);
  try_charge_ = std::move(try_charge);
  if (metrics_ != nullptr) {
    replaced_runs_ = &metrics_->counter("mapoutput.replaced.runs");
    combined_runs_ = &metrics_->counter("innode.combined.runs");
    bytes_saved_ = &metrics_->counter("innode.bytes.saved");
  }
}

uint64_t MapOutputStore::runsBytes(
    const std::vector<std::shared_ptr<const Bytes>>& runs) {
  uint64_t bytes = 0;
  for (const auto& run : runs) {
    if (run) bytes += run->size();
  }
  return bytes;
}

std::shared_ptr<const JobSpec> MapOutputStore::specFor(JobId job) const {
  if (registry_ == nullptr) return nullptr;
  try {
    return registry_->get(job);
  } catch (const std::exception&) {
    return nullptr;  // job already purged from the registry
  }
}

bool MapOutputStore::tryChargeLocked(int64_t delta) {
  if (delta < 0) {
    releaseLocked(-delta);
    return true;
  }
  if (try_charge_ && !try_charge_(delta)) return false;
  charged_ += delta;
  return true;
}

void MapOutputStore::releaseLocked(int64_t bytes) {
  if (bytes == 0) return;
  charged_ -= bytes;
  if (try_charge_) try_charge_(-bytes);
}

void MapOutputStore::dropNodeRunLocked(NodeRun& node) {
  releaseLocked(static_cast<int64_t>(runsBytes(node.runs)) +
                static_cast<int64_t>(runsBytes(node.wire)));
  node.runs.clear();
  node.wire.clear();
  node.members.clear();
}

bool MapOutputStore::currentLocked(const JobSlots& slots,
                                   const NodeRun& node) const {
  for (const auto& [map_index, generation] : node.members) {
    const auto it = slots.maps.find(map_index);
    if (it == slots.maps.end() || it->second.generation != generation ||
        it->second.runs.empty()) {
      return false;
    }
  }
  return true;
}

void MapOutputStore::put(JobId job, uint32_t map_index,
                         std::vector<Bytes> partitions, Counters* counters) {
  std::vector<std::shared_ptr<const Bytes>> runs;
  runs.reserve(partitions.size());
  for (Bytes& partition : partitions) {
    runs.push_back(std::make_shared<const Bytes>(std::move(partition)));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    JobSlots& slots = jobs_[job];
    MapSlot& slot = slots.maps[map_index];
    if (!slot.runs.empty()) {
      // A speculative duplicate or re-execution replaces its prior
      // contribution: drop the old runs and their wire cache, and
      // invalidate every node aggregate the old attempt fed — the new
      // attempt contributes exactly once to the next build (the aggregate
      // analogue of PR-4's counter-replacement semantics).
      total_bytes_ -= runsBytes(slot.runs);
      releaseLocked(static_cast<int64_t>(runsBytes(slot.wire)));
      if (replaced_runs_ != nullptr) {
        replaced_runs_->add(static_cast<int64_t>(slot.runs.size()));
      }
      for (auto it = slots.combined.begin(); it != slots.combined.end();) {
        if (it->second.members.count(map_index) != 0) {
          dropNodeRunLocked(it->second);
          it = slots.combined.erase(it);
        } else {
          ++it;
        }
      }
    }
    slot.runs = std::move(runs);
    slot.wire.assign(slot.runs.size(), nullptr);
    slot.generation = slots.next_generation++;
    total_bytes_ += runsBytes(slot.runs);
  }

  const std::shared_ptr<const JobSpec> spec = specFor(job);
  if (spec && spec->combiner &&
      spec->conf.getBool("mapred.innode.combine", false)) {
    maybeCombineOnPut(job, *spec, counters);
  }
}

void MapOutputStore::maybeCombineOnPut(JobId job, const JobSpec& spec,
                                       Counters* counters) {
  const int64_t min_runs =
      spec.conf.getInt("mapred.innode.combine.min.runs", 2);
  const int64_t min_bytes =
      spec.conf.getInt("mapred.innode.combine.min.bytes", 0);
  std::vector<uint32_t> members;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto job_it = jobs_.find(job);
    if (job_it == jobs_.end()) return;
    int64_t stored = 0;
    for (const auto& [map_index, slot] : job_it->second.maps) {
      if (slot.runs.empty()) continue;
      members.push_back(map_index);
      stored += static_cast<int64_t>(runsBytes(slot.runs));
    }
    if (static_cast<int64_t>(members.size()) < std::max<int64_t>(2, min_runs) ||
        stored < min_bytes) {
      return;
    }
  }
  try {
    nodeRuns(job, &spec, members, counters);
  } catch (const std::exception&) {
    // A concurrent replace/purge raced the merge; the next put or the serve
    // path will rebuild.
  }
}

std::vector<std::shared_ptr<const Bytes>> MapOutputStore::nodeRuns(
    JobId job, const JobSpec* spec, const std::vector<uint32_t>& members,
    Counters* counters) {
  std::vector<uint32_t> key(members);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  if (key.empty()) {
    throw InvalidArgumentError("node output request with no maps");
  }

  struct Source {
    uint32_t map_index;
    uint64_t generation;
    std::vector<std::shared_ptr<const Bytes>> runs;
  };
  std::vector<Source> sources;
  sources.reserve(key.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto job_it = jobs_.find(job);
    for (const uint32_t map_index : key) {
      const MapSlot* slot = nullptr;
      if (job_it != jobs_.end()) {
        const auto it = job_it->second.maps.find(map_index);
        if (it != job_it->second.maps.end() && !it->second.runs.empty()) {
          slot = &it->second;
        }
      }
      if (slot == nullptr) {
        // "missing map=<i>" leads the fetcher's fetch-failure message so the
        // JobTracker re-executes exactly this map.
        throw NotFoundError("node output " + std::to_string(job) +
                            " missing map=" + std::to_string(map_index));
      }
      sources.push_back({map_index, slot->generation, slot->runs});
    }
    const auto cached = job_it->second.combined.find(key);
    if (cached != job_it->second.combined.end() &&
        currentLocked(job_it->second, cached->second)) {
      return cached->second.runs;
    }
  }

  // One map on this node: its per-task-combined runs ARE the node output.
  if (sources.size() == 1) return std::move(sources[0].runs);

  const size_t num_partitions = sources[0].runs.size();
  const CodecKind codec =
      spec ? codecFromName(
                 spec->conf.get("mapred.map.output.compression.codec", "none"))
           : CodecKind::kNone;
  const bool combine = spec != nullptr && spec->combiner != nullptr;

  TraceSpan span(trace_, component_,
                 "INNODE_COMBINE job " + std::to_string(job));
  span.arg("maps", std::to_string(sources.size()));
  Stopwatch watch;
  int64_t records_in = 0;
  int64_t records_out = 0;
  int64_t stored_in = 0;
  int64_t stored_out = 0;
  Counters scratch;  // combiner side-counters stay out of the job report
  std::vector<std::shared_ptr<const Bytes>> result(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    // Encoded per-map runs decode transiently for this partition's merge;
    // the decoded buffers die with the iteration.
    std::vector<Buffer> decoded;
    std::vector<std::string_view> views;
    decoded.reserve(sources.size());
    views.reserve(sources.size());
    for (const Source& source : sources) {
      const Bytes& run = *source.runs[p];
      stored_in += static_cast<int64_t>(run.size());
      if (codec != CodecKind::kNone && isEncodedStream(run)) {
        decoded.push_back(codecDecode(run, metrics_, trace_, component_));
        views.push_back(decoded.back().view());
      } else {
        views.push_back(run);
      }
    }
    KvRunMerger merger(views);
    Bytes out;
    if (combine) {
      std::vector<KeyValue> combined;
      TaskContext ctx(spec->conf, scratch, [&](Bytes k, Bytes v) {
        combined.push_back({std::move(k), std::move(v)});
      });
      const auto combiner = spec->combiner();
      combiner->setup(ctx);
      while (merger.nextGroup()) {
        combiner->reduce(merger.key(), merger.values(), ctx);
      }
      combiner->cleanup(ctx);
      records_out += writeSortedRecords(combined, out);
    } else {
      KvWriter writer(out);
      while (merger.nextGroup()) {
        const std::string_view group_key = merger.key();
        while (const auto value = merger.values().next()) {
          writer.write(group_key, *value);
          ++records_out;
        }
      }
    }
    records_in += merger.recordsRead();
    if (codec != CodecKind::kNone && !out.empty()) {
      out = codecEncode(codec, out, metrics_, trace_, component_);
    }
    stored_out += static_cast<int64_t>(out.size());
    result[p] = std::make_shared<const Bytes>(std::move(out));
  }

  const int64_t millis = watch.elapsedMillis();
  if (counters != nullptr) {
    counters->increment(kTaskGroup, kInnodeCombineRecordsIn, records_in);
    counters->increment(kTaskGroup, kInnodeCombineRecordsOut, records_out);
    counters->increment(kTaskGroup, kInnodeCombineMillis, millis);
  }
  if (combined_runs_ != nullptr) {
    combined_runs_->add(static_cast<int64_t>(num_partitions));
  }
  if (bytes_saved_ != nullptr) {
    bytes_saved_->add(std::max<int64_t>(0, stored_in - stored_out));
  }
  if (span.active()) {
    span.arg("records_in", std::to_string(records_in));
    span.arg("records_out", std::to_string(records_out));
    span.arg("bytes_in", std::to_string(stored_in));
    span.arg("bytes_out", std::to_string(stored_out));
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto job_it = jobs_.find(job);
    if (job_it != jobs_.end()) {
      JobSlots& slots = job_it->second;
      bool current = true;
      for (const Source& source : sources) {
        const auto it = slots.maps.find(source.map_index);
        if (it == slots.maps.end() ||
            it->second.generation != source.generation) {
          current = false;
          break;
        }
      }
      // Install only while every input is still the latest attempt and the
      // heap budget accepts the bytes; a stale or over-budget build is still
      // a correct answer for the requested member set — it just serves
      // uncached (maps are deterministic).
      if (current &&
          tryChargeLocked(static_cast<int64_t>(runsBytes(result)))) {
        NodeRun node;
        for (const Source& source : sources) {
          node.members[source.map_index] = source.generation;
        }
        node.runs = result;
        node.wire.assign(num_partitions, nullptr);
        // Aggregates over a strict subset of this member set are obsolete
        // coverage-wise; drop them so cached aggregates stay bounded by the
        // distinct member sets reducers actually request.
        for (auto it = slots.combined.begin(); it != slots.combined.end();) {
          const bool subset =
              it->first != key &&
              std::includes(key.begin(), key.end(), it->first.begin(),
                            it->first.end());
          if (subset) {
            dropNodeRunLocked(it->second);
            it = slots.combined.erase(it);
          } else {
            ++it;
          }
        }
        auto [slot_it, inserted] = slots.combined.try_emplace(key);
        if (!inserted) dropNodeRunLocked(slot_it->second);
        slot_it->second = std::move(node);
      }
    }
  }
  return result;
}

std::shared_ptr<const Bytes> MapOutputStore::get(JobId job, uint32_t map_index,
                                                 uint32_t partition) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto job_it = jobs_.find(job); job_it != jobs_.end()) {
    const auto it = job_it->second.maps.find(map_index);
    if (it != job_it->second.maps.end() && !it->second.runs.empty()) {
      if (partition >= it->second.runs.size()) {
        throw InvalidArgumentError("partition out of range");
      }
      return it->second.runs[partition];
    }
  }
  throw NotFoundError("map output " + std::to_string(job) + "/" +
                      std::to_string(map_index) + " partition " +
                      std::to_string(partition));
}

bool MapOutputStore::has(JobId job, uint32_t map_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto job_it = jobs_.find(job);
  if (job_it == jobs_.end()) return false;
  const auto it = job_it->second.maps.find(map_index);
  return it != job_it->second.maps.end() && !it->second.runs.empty();
}

BufferView MapOutputStore::serveRun(
    const std::shared_ptr<const Bytes>& run, CodecKind shuffle,
    ServeStats* stats,
    const std::function<std::vector<std::shared_ptr<const Bytes>>*()>&
        find_cache,
    uint32_t partition, size_t num_partitions) {
  (void)num_partitions;
  const bool encoded = isEncodedStream(*run);
  if (shuffle != CodecKind::kNone) {
    if (encoded) {
      // Stored frames ship as-is; the reducer decodes at merge input.
      if (stats != nullptr) {
        stats->raw_bytes +=
            static_cast<int64_t>(encodedStreamInfo(*run).raw_size);
        stats->compressed_bytes += static_cast<int64_t>(run->size());
      }
      return BufferView(Buffer::wrap(run));
    }
    if (run->empty()) return BufferView(Buffer::wrap(run));
    // Stored raw (map-output codec off): encode for the wire — once. The
    // first serve caches the encoded form (heap-budget permitting) so fetch
    // retries and re-fetches never pay the codec again.
    std::shared_ptr<const Bytes> wire;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto* cache = find_cache();
          cache != nullptr && partition < cache->size()) {
        wire = (*cache)[partition];
      }
    }
    if (wire == nullptr) {
      Bytes bytes = codecEncode(shuffle, *run, metrics_, trace_, component_);
      wire = std::make_shared<const Bytes>(std::move(bytes));
      std::lock_guard<std::mutex> lock(mutex_);
      auto* cache = find_cache();
      if (cache != nullptr && partition < cache->size() &&
          (*cache)[partition] == nullptr &&
          tryChargeLocked(static_cast<int64_t>(wire->size()))) {
        (*cache)[partition] = wire;
      }
    }
    if (stats != nullptr) {
      stats->raw_bytes += static_cast<int64_t>(run->size());
      stats->compressed_bytes += static_cast<int64_t>(wire->size());
    }
    return BufferView(Buffer::wrap(wire));
  }
  if (encoded) {
    // Stored compressed but shuffle compression off: decode at serve so the
    // wire carries plain kv bytes (seam independence).
    return BufferView(codecDecode(*run, metrics_, trace_, component_));
  }
  return BufferView(Buffer::wrap(run));
}

BufferView MapOutputStore::serveMapOutput(JobId job, uint32_t map_index,
                                          uint32_t partition, CodecKind shuffle,
                                          ServeStats* stats) {
  const std::shared_ptr<const Bytes> run = get(job, map_index, partition);
  const auto find_cache =
      [this, job, map_index,
       &run]() -> std::vector<std::shared_ptr<const Bytes>>* {
    const auto job_it = jobs_.find(job);
    if (job_it == jobs_.end()) return nullptr;
    const auto it = job_it->second.maps.find(map_index);
    if (it == job_it->second.maps.end()) return nullptr;
    MapSlot& slot = it->second;
    // Pointer identity ties the cache slot to THIS attempt's run; a
    // replacement in between means the cache belongs to someone else now.
    if (slot.runs.size() != slot.wire.size()) return nullptr;
    for (size_t p = 0; p < slot.runs.size(); ++p) {
      if (slot.runs[p] == run) return &slot.wire;
    }
    return nullptr;
  };
  return serveRun(run, shuffle, stats, find_cache, partition, 0);
}

BufferView MapOutputStore::serveNodeOutput(JobId job, uint32_t partition,
                                           const std::vector<uint32_t>& maps,
                                           CodecKind shuffle,
                                           ServeStats* stats) {
  const std::shared_ptr<const JobSpec> spec = specFor(job);
  const std::vector<std::shared_ptr<const Bytes>> runs =
      nodeRuns(job, spec.get(), maps, nullptr);
  if (partition >= runs.size()) {
    throw InvalidArgumentError("partition out of range");
  }
  std::vector<uint32_t> key(maps);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  const std::shared_ptr<const Bytes> run = runs[partition];
  const auto find_cache =
      [this, job, &key,
       &run]() -> std::vector<std::shared_ptr<const Bytes>>* {
    const auto job_it = jobs_.find(job);
    if (job_it == jobs_.end()) return nullptr;
    if (key.size() == 1) {
      const auto it = job_it->second.maps.find(key[0]);
      if (it == job_it->second.maps.end()) return nullptr;
      MapSlot& slot = it->second;
      if (slot.runs.size() != slot.wire.size()) return nullptr;
      for (size_t p = 0; p < slot.runs.size(); ++p) {
        if (slot.runs[p] == run) return &slot.wire;
      }
      return nullptr;
    }
    const auto it = job_it->second.combined.find(key);
    if (it == job_it->second.combined.end()) return nullptr;
    NodeRun& node = it->second;
    if (node.runs.size() != node.wire.size()) return nullptr;
    for (size_t p = 0; p < node.runs.size(); ++p) {
      if (node.runs[p] == run) return &node.wire;
    }
    return nullptr;
  };
  return serveRun(run, shuffle, stats, find_cache, partition, runs.size());
}

void MapOutputStore::purgeJob(JobId job) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto job_it = jobs_.find(job);
  if (job_it == jobs_.end()) return;
  for (auto& [map_index, slot] : job_it->second.maps) {
    total_bytes_ -= runsBytes(slot.runs);
    releaseLocked(static_cast<int64_t>(runsBytes(slot.wire)));
  }
  for (auto& [members, node] : job_it->second.combined) {
    dropNodeRunLocked(node);
  }
  jobs_.erase(job_it);
}

void MapOutputStore::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [job, slots] : jobs_) {
    for (auto& [map_index, slot] : slots.maps) {
      releaseLocked(static_cast<int64_t>(runsBytes(slot.wire)));
    }
    for (auto& [members, node] : slots.combined) {
      dropNodeRunLocked(node);
    }
  }
  jobs_.clear();
  total_bytes_ = 0;
}

uint64_t MapOutputStore::totalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

uint64_t MapOutputStore::generation(JobId job, uint32_t map_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto job_it = jobs_.find(job);
  if (job_it == jobs_.end()) return 0;
  const auto it = job_it->second.maps.find(map_index);
  return it == job_it->second.maps.end() ? 0 : it->second.generation;
}

int64_t MapOutputStore::cachedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return charged_;
}

}  // namespace mh::mr
