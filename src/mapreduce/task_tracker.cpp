#include "mh/mr/task_tracker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "mh/common/codec.h"
#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/rng.h"
#include "mh/common/stopwatch.h"
#include "mh/hdfs/dfs_client.h"
#include "mh/mr/merge.h"
#include "mh/mr/task_runner.h"

namespace mh::mr {

namespace {
constexpr const char* kLog = "tasktracker";
}  // namespace

namespace {

/// One shuffle transfer: a single map's run (classic) or one host's
/// node-combined run covering every map that ran there (in-node combining).
struct FetchUnit {
  std::string host;
  std::vector<uint32_t> maps;
  uint32_t lowest = 0;  ///< fallback attribution for a failed node fetch
};

/// The map index a failed unit's fetch-failure should re-execute: the
/// specific map the server named ("missing map=<i>", and it must be one of
/// ours — a grouped fetch can fail because ONE member is absent while the
/// rest are fine), else the group's lowest index.
uint32_t attributedMap(const FetchUnit& unit, const std::string& error) {
  const std::string_view tag = "missing map=";
  const size_t pos = error.find(tag);
  if (pos != std::string::npos) {
    uint64_t value = 0;
    bool any = false;
    for (size_t i = pos + tag.size();
         i < error.size() && error[i] >= '0' && error[i] <= '9'; ++i) {
      value = value * 10 + static_cast<uint64_t>(error[i] - '0');
      any = true;
    }
    const auto index = static_cast<uint32_t>(value);
    if (any &&
        std::find(unit.maps.begin(), unit.maps.end(), index) !=
            unit.maps.end()) {
      return index;
    }
  }
  return unit.lowest;
}

/// The map index a thrown fetch-failure blames ("fetch-failure host=<h>
/// map=<i>: ..."); UINT32_MAX when the message names none.
uint32_t parseFetchFailureMap(std::string_view error) {
  const std::string_view tag = "map=";
  const size_t pos = error.find(tag);
  if (pos == std::string_view::npos) return UINT32_MAX;
  uint64_t value = 0;
  bool any = false;
  for (size_t i = pos + tag.size();
       i < error.size() && error[i] >= '0' && error[i] <= '9'; ++i) {
    value = value * 10 + static_cast<uint64_t>(error[i] - '0');
    any = true;
  }
  return any ? static_cast<uint32_t>(value) : UINT32_MAX;
}

/// Groups locations into fetch units: one per map, or (in-node combining)
/// one per host in first-appearance order. The grouping is a pure function
/// of the location list, so the pipelined shuffle can rebuild the exact
/// units fetchShuffleRuns derived from a batch it handed over.
std::vector<FetchUnit> buildFetchUnits(
    const std::vector<MapOutputLocation>& locations, bool innode) {
  std::vector<FetchUnit> units;
  for (const MapOutputLocation& location : locations) {
    if (innode && !units.empty()) {
      const auto it = std::find_if(
          units.begin(), units.end(),
          [&](const FetchUnit& unit) { return unit.host == location.host; });
      if (it != units.end()) {
        it->maps.push_back(location.map_index);
        it->lowest = std::min(it->lowest, location.map_index);
        continue;
      }
    }
    units.push_back({location.host, {location.map_index}, location.map_index});
  }
  return units;
}

/// Root seed for a reduce attempt's fetch-side randomness (host visit order,
/// backoff jitter). Derived by hashing stable task identity — never from
/// global state or the clock — so a chaos run with a given seed replays the
/// same delays and orders no matter how fetcher threads interleave.
uint64_t fetchSeed(const TaskAssignment& assignment, uint64_t salt) {
  uint64_t x = (static_cast<uint64_t>(assignment.job) << 40) ^
               (static_cast<uint64_t>(assignment.task_index) << 20) ^
               static_cast<uint64_t>(assignment.attempt) ^ salt;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<BufferView> fetchShuffleRuns(net::Network& network,
                                         const std::string& host,
                                         const TaskAssignment& assignment,
                                         const Config& conf,
                                         Counters& shuffle_counters,
                                         const JobSpec* spec) {
  const bool innode = spec != nullptr && spec->combiner != nullptr &&
                      spec->conf.getBool("mapred.innode.combine", false);
  // In in-node mode maps are grouped by host in first-appearance order; the
  // serving tracker merges the whole group through the combiner into one run.
  const std::vector<FetchUnit> units =
      buildFetchUnits(assignment.map_outputs, innode);
  const size_t n = units.size();
  std::vector<BufferView> runs(n);
  if (n == 0) return runs;

  TraceSpan span(&network.tracer(), "tasktracker." + host,
                 "SHUFFLE_FETCH r" + std::to_string(assignment.task_index) +
                     " a" + std::to_string(assignment.attempt));
  span.arg("job", std::to_string(assignment.job));
  span.arg("maps", std::to_string(assignment.map_outputs.size()));
  if (innode) span.arg("units", std::to_string(n));
  Stopwatch watch;
  // Transient faults (a rebooting tracker, a dropped reply) deserve a few
  // bounded-backoff retries before the expensive path — declaring a
  // fetch-failure and making the JobTracker re-execute the source map.
  const auto attempts = static_cast<size_t>(
      std::max<int64_t>(1, conf.getInt("mapred.shuffle.fetch.retries", 3)));
  const int64_t backoff_ms = conf.getInt("mapred.shuffle.fetch.backoff.ms", 5);
  const int64_t backoff_max_ms =
      conf.getInt("mapred.shuffle.fetch.backoff.max.ms", 200);
  std::atomic<int64_t> retries{0};
  // Each slot holds an error message when that fetch failed; distinct slots
  // are written by distinct fetches, so no lock is needed.
  std::vector<std::unique_ptr<std::string>> errors(n);
  std::atomic<size_t> next{0};
  // Visit units in a job-seeded random order: a wave of reducers starting
  // together would otherwise all hammer the first map host before moving on
  // in lockstep. Deterministic per seed, and results land at their
  // canonical slot regardless of visit order, so outputs are unchanged.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  Rng order_rng(fetchSeed(assignment, /*salt=*/0x0bdeu));
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[order_rng.uniform(i + 1)]);
  }
  // The SHUFFLE_FETCH span is ambient on this thread; carry its context
  // into the parallel fetcher threads so getMapOutput calls (and any
  // faults injected into them) stay inside the reduce's trace subtree.
  const TraceContext fetch_ctx = currentTraceContext();
  const auto fetch_loop = [&] {
    const TraceContextScope trace_scope(fetch_ctx);
    for (size_t slot = next.fetch_add(1); slot < n;
         slot = next.fetch_add(1)) {
      const size_t i = order[slot];
      const FetchUnit& unit = units[i];
      for (size_t attempt = 0; attempt < attempts; ++attempt) {
        try {
          // In-node mode always speaks getNodeOutput — even for a
          // single-map host — so the protocol (and any fault rule matched
          // on it) is uniform across units.
          runs[i] =
              innode
                  ? network.callBuf(
                        host, unit.host, kTaskTrackerPort, "getNodeOutput",
                        BufferView(Buffer::fromString(pack(
                            assignment.job, assignment.task_index, unit.maps))),
                        "shuffle")
                  : network.callBuf(
                        host, unit.host, kTaskTrackerPort, "getMapOutput",
                        BufferView(Buffer::fromString(
                            pack(assignment.job, unit.maps[0],
                                 assignment.task_index))),
                        "shuffle");
          errors[i].reset();
          break;
        } catch (const std::exception& e) {
          errors[i] = std::make_unique<std::string>(e.what());
          if (attempt + 1 == attempts) break;
          retries.fetch_add(1, std::memory_order_relaxed);
          // Full jitter: sleep uniform in [0, capped exponential backoff],
          // decorrelating retry storms when many reducers lose the same
          // host at once. Seeded per (task identity, unit, retry) so a
          // chaos seed replays the same delays.
          const int64_t cap = std::min(
              backoff_max_ms, backoff_ms << std::min<size_t>(attempt, 20));
          Rng jitter(fetchSeed(assignment, /*salt=*/0x8acc0ffull) ^
                     (static_cast<uint64_t>(i) << 32) ^ attempt);
          const int64_t delay =
              cap > 0 ? static_cast<int64_t>(
                            jitter.uniform(static_cast<uint64_t>(cap) + 1))
                      : 0;
          if (delay > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          }
        }
      }
    }
  };

  const auto copies = static_cast<size_t>(
      std::max<int64_t>(1, conf.getInt("mapred.reduce.parallel.copies", 5)));
  if (const size_t workers = std::min(n, copies); workers <= 1) {
    fetch_loop();
  } else {
    std::vector<std::jthread> fetchers;
    fetchers.reserve(workers);
    for (size_t t = 0; t < workers; ++t) fetchers.emplace_back(fetch_loop);
  }

  const FetchUnit* failed_unit = nullptr;
  const std::string* failed_error = nullptr;
  uint32_t failed_map = 0;
  for (size_t i = 0; i < n; ++i) {
    if (errors[i] == nullptr) continue;
    const uint32_t map_index = attributedMap(units[i], *errors[i]);
    if (failed_unit == nullptr || map_index < failed_map) {
      failed_unit = &units[i];
      failed_error = errors[i].get();
      failed_map = map_index;
    }
  }
  if (failed_unit != nullptr) {
    // Formatted so the JobTracker re-executes the source map; the
    // attributed index leads the message because the JobTracker parses the
    // FIRST "map=" it finds (the cause text may contain its own).
    throw IoError("fetch-failure host=" + failed_unit->host +
                  " map=" + std::to_string(failed_map) + ": " + *failed_error);
  }

  int64_t total_bytes = 0;
  for (const BufferView& run : runs) {
    total_bytes += static_cast<int64_t>(run.size());
  }
  shuffle_counters.increment(counters::kShuffleGroup, counters::kShuffleBytes,
                             total_bytes);
  shuffle_counters.increment(counters::kShuffleGroup,
                             counters::kShuffleFetchMillis,
                             watch.elapsedMillis());
  if (const int64_t r = retries.load(); r > 0) {
    shuffle_counters.increment(counters::kShuffleGroup,
                               counters::kShuffleFetchRetries, r);
  }
  network.metrics()
      .child("tasktracker." + host)
      .histogram("shuffle.fetch.micros")
      .record(watch.elapsedMicros());
  span.arg("bytes", std::to_string(total_bytes));
  return runs;
}

TaskTracker::TaskTracker(Config conf, std::shared_ptr<net::Network> network,
                         std::string host,
                         std::shared_ptr<JobRegistry> registry,
                         std::string jobtracker_host,
                         std::string namenode_host)
    : conf_(std::move(conf)),
      network_(std::move(network)),
      host_(std::move(host)),
      registry_(std::move(registry)),
      jobtracker_host_(std::move(jobtracker_host)),
      namenode_host_(std::move(namenode_host)),
      map_slots_(static_cast<uint32_t>(
          conf_.getInt("mapred.tasktracker.map.tasks.maximum", 2))),
      reduce_slots_(static_cast<uint32_t>(
          conf_.getInt("mapred.tasktracker.reduce.tasks.maximum", 1))) {
  network_->addHost(host_);
  metrics_ = &network_->metrics().child("tasktracker." + host_);
  tracer_ = &network_->tracer();
  maps_completed_ = &metrics_->counter("tasks.maps.completed");
  maps_failed_ = &metrics_->counter("tasks.maps.failed");
  reduces_completed_ = &metrics_->counter("tasks.reduces.completed");
  reduces_failed_ = &metrics_->counter("tasks.reduces.failed");
  // Satellite view of the job-level counters (MERGE_SEGMENTS,
  // SHUFFLE_FETCH_MILLIS, SHUFFLE_BYTES): bumped only for successful
  // reduces, mirroring the JobTracker's merge-on-success, so in a clean run
  // the registry sums equal the job counter totals.
  merge_segments_ = &metrics_->counter("merge_segments");
  shuffle_fetch_millis_ = &metrics_->counter("shuffle_fetch_millis");
  shuffle_bytes_ = &metrics_->counter("shuffle_bytes");
  map_spills_ = &metrics_->counter("map_spills");
  spilled_records_ = &metrics_->counter("spilled_records");
  shuffle_raw_bytes_ = &metrics_->counter("shuffle.raw.bytes");
  shuffle_compressed_bytes_ = &metrics_->counter("shuffle.compressed.bytes");
  pipelined_runs_ = &metrics_->counter("shuffle.pipelined.runs");
  pipelined_bytes_ = &metrics_->counter("shuffle.pipelined.bytes");
  pipelined_refetches_ = &metrics_->counter("shuffle.pipelined.refetches");
  map_micros_ = &metrics_->histogram("task.map.micros");
  reduce_micros_ = &metrics_->histogram("task.reduce.micros");
  map_sort_micros_ = &metrics_->histogram("map.sort.micros");
  metrics_->setGauge("heap.used_bytes", [this] {
    return static_cast<double>(heapUsed());
  });
  metrics_->setGauge("heap.peak_bytes", [this] {
    return static_cast<double>(heapPeak());
  });
  metrics_->setGauge("mapoutput.store.bytes", [this] {
    return static_cast<double>(outputs_.totalBytes());
  });
  // The store's combined runs and encoded-serve caches are bounded by the
  // tracker heap budget, but through the non-throwing probe: a declined
  // cache degrades to serving uncached, never to a task failure.
  outputs_.attach(registry_.get(), metrics_, tracer_, "tasktracker." + host_,
                  [this](int64_t delta) { return tryChargeHeap(delta); });
}

TaskTracker::~TaskTracker() {
  stop();
  // The registry (and any MetricsSnapshotter sampling it) outlives this
  // daemon; replace `this`-capturing gauges with their final values.
  for (const char* name :
       {"heap.used_bytes", "heap.peak_bytes", "mapoutput.store.bytes"}) {
    metrics_->setGauge(name, [v = metrics_->gaugeValue(name)] { return v; });
  }
}

void TaskTracker::start() {
  if (running_.load()) return;
  if (!port_bound_) {
    installRpc();
    port_bound_ = true;
  }
  crashed_.store(false);
  network_->setHostUp(host_, true);
  map_pool_ = std::make_unique<ThreadPool>(map_slots_);
  reduce_pool_ = std::make_unique<ThreadPool>(reduce_slots_);
  heap_used_.store(0);
  running_.store(true);

  network_->call(host_, jobtracker_host_, kJobTrackerPort, "registerTracker",
                 pack(host_, map_slots_, reduce_slots_,
                      conf_.get("dfs.datanode.rack", "/default-rack")));

  heartbeat_thread_ = std::jthread(
      [this](std::stop_token token) { heartbeatLoop(token); });
  logInfo(kLog) << host_ << " started (" << map_slots_ << "M/"
                << reduce_slots_ << "R)";
}

void TaskTracker::stop() {
  if (!running_.load() && !port_bound_) return;
  running_.store(false);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  // Wake pipelined reduces waiting for completion events, then drain the
  // task pools (tasks may fail fast since the host may be down). Order
  // matters: the pool destructors join, and a reduce parked on its event
  // inbox would never return without the abort.
  abortPipelinedShuffles(0);
  map_pool_.reset();
  reduce_pool_.reset();
  if (port_bound_) {
    network_->unbind(host_, kTaskTrackerPort);
    port_bound_ = false;
  }
  outputs_.clear();
  logInfo(kLog) << host_ << " stopped";
}

void TaskTracker::abandon() {
  running_.store(false);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  abortPipelinedShuffles(0);
  map_pool_.reset();
  reduce_pool_.reset();
  logWarn(kLog) << host_ << " abandoned (port still bound)";
}

void TaskTracker::crash() {
  crashed_.store(true);
  network_->setHostUp(host_, false);
  running_.store(false);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.request_stop();
    heartbeat_thread_.join();
  }
  abortPipelinedShuffles(0);
  map_pool_.reset();
  reduce_pool_.reset();
  outputs_.clear();  // the process died; its map outputs are gone
  logWarn(kLog) << host_ << " crashed";
}

void TaskTracker::heartbeatLoop(std::stop_token token) {
  const auto interval = std::chrono::milliseconds(
      conf_.getInt("mapred.tasktracker.heartbeat.ms", 50));
  while (!token.stop_requested()) {
    interruptibleSleep(token, interval);
    if (token.stop_requested() || !running_.load()) return;
    try {
      heartbeatOnce();
    } catch (const NetworkError&) {
      // JobTracker unreachable; retry next beat.
    } catch (const std::exception& e) {
      logWarn(kLog) << host_ << " heartbeat error: " << e.what();
    }
  }
}

void TaskTracker::heartbeatOnce() {
  std::vector<TaskStatusReport> reports;
  {
    std::lock_guard<std::mutex> lock(reports_mutex_);
    reports.swap(pending_reports_);
  }
  const uint32_t free_maps = map_slots_ - std::min(map_slots_, busy_maps_.load());
  const uint32_t free_reduces =
      reduce_slots_ - std::min(reduce_slots_, busy_reduces_.load());

  // Pipelined reduces subscribe to their job's map-completion feed: present
  // one cursor per job — the minimum across this tracker's active shuffles,
  // so no subscriber misses an event another already consumed.
  std::vector<ShuffleEventCursor> cursors;
  {
    std::lock_guard<std::mutex> lock(shuffles_mutex_);
    for (const auto& shuffle : shuffles_) {
      std::lock_guard<std::mutex> state_lock(shuffle->mutex);
      const auto it = std::find_if(
          cursors.begin(), cursors.end(),
          [&](const ShuffleEventCursor& c) { return c.job == shuffle->job; });
      if (it == cursors.end()) {
        cursors.push_back({shuffle->job, shuffle->cursor});
      } else {
        it->after = std::min(it->after, shuffle->cursor);
      }
    }
  }

  TrackerHeartbeatReply reply;
  try {
    const Bytes raw = network_->call(
        host_, jobtracker_host_, kJobTrackerPort, "heartbeat",
        pack(host_, free_maps, free_reduces, reports, cursors));
    reply = std::get<0>(unpack<TrackerHeartbeatReply>(raw));
  } catch (...) {
    // Re-queue the reports so they are not lost.
    std::lock_guard<std::mutex> lock(reports_mutex_);
    pending_reports_.insert(pending_reports_.begin(), reports.begin(),
                            reports.end());
    throw;
  }

  if (reply.reregister) {
    network_->call(host_, jobtracker_host_, kJobTrackerPort,
                   "registerTracker",
                   pack(host_, map_slots_, reduce_slots_,
                        conf_.get("dfs.datanode.rack", "/default-rack")));
    return;
  }
  if (!reply.map_events.empty()) {
    // The reply concatenates replays for every cursor we presented; with
    // two subscribers at different positions the same job's ids can arrive
    // out of order. Sort so each inbox consumes ids ascending and the
    // `event_id > cursor` dedup below stays exact.
    std::vector<MapCompletionEvent> events(reply.map_events.begin(),
                                           reply.map_events.end());
    std::sort(events.begin(), events.end(),
              [](const MapCompletionEvent& a, const MapCompletionEvent& b) {
                return a.job != b.job ? a.job < b.job
                                      : a.event_id < b.event_id;
              });
    std::lock_guard<std::mutex> lock(shuffles_mutex_);
    for (const auto& shuffle : shuffles_) {
      std::lock_guard<std::mutex> state_lock(shuffle->mutex);
      bool delivered = false;
      for (const MapCompletionEvent& event : events) {
        if (event.job != shuffle->job || event.event_id <= shuffle->cursor) {
          continue;
        }
        shuffle->inbox.push_back(event);
        shuffle->cursor = event.event_id;
        delivered = true;
      }
      if (delivered) shuffle->cv.notify_all();
    }
  }
  for (const JobId job : reply.purge_jobs) {
    // A purged job is finished; a pipelined reduce still shuffling for it
    // (the job failed under it) will never complete — wake and abort it.
    abortPipelinedShuffles(job);
    outputs_.purgeJob(job);
  }
  for (const auto& assignment : reply.assignments) {
    runAssignment(assignment);
  }
}

void TaskTracker::abortPipelinedShuffles(JobId job) {
  std::lock_guard<std::mutex> lock(shuffles_mutex_);
  for (const auto& shuffle : shuffles_) {
    if (job != 0 && shuffle->job != job) continue;
    std::lock_guard<std::mutex> state_lock(shuffle->mutex);
    shuffle->aborted = true;
    shuffle->cv.notify_all();
  }
}

void TaskTracker::queueReport(TaskStatusReport report) {
  std::lock_guard<std::mutex> lock(reports_mutex_);
  pending_reports_.push_back(std::move(report));
}

void TaskTracker::chargeHeap(int64_t delta) {
  const int64_t used = heap_used_.fetch_add(delta) + delta;
  int64_t peak = heap_peak_.load();
  while (used > peak && !heap_peak_.compare_exchange_weak(peak, used)) {
  }
  // Only growth can bust the budget. Releases must never throw: they run
  // from destructors (e.g. ~MapOutputBuffer) during the unwind of a sibling
  // task's OOM, when the tracker may still be over budget — throwing there
  // would terminate() the process instead of failing the task.
  if (delta <= 0) return;
  const int64_t budget =
      conf_.getInt("mapred.tasktracker.memory.bytes",
                   std::numeric_limits<int64_t>::max());
  if (used <= budget) return;
  const std::string policy =
      conf_.get("mapred.tasktracker.oom.policy", "fail-task");
  if (policy == "crash-tracker") {
    // The heap-leak cascade: the whole daemon dies, taking its map outputs
    // (and, on the real cluster, the co-located DataNode) with it.
    logError(kLog) << host_ << " OOM (" << used << " > " << budget
                   << " bytes): crashing tracker";
    crashed_.store(true);
    network_->setHostUp(host_, false);
    running_.store(false);
    heartbeat_thread_.request_stop();  // loop exits on its next wake-up
    outputs_.clear();
  }
  throw OutOfMemoryError("task heap " + std::to_string(used) + " > budget " +
                         std::to_string(budget));
}

bool TaskTracker::tryChargeHeap(int64_t delta) {
  if (delta <= 0) {
    heap_used_.fetch_add(delta);
    return true;
  }
  const int64_t budget =
      conf_.getInt("mapred.tasktracker.memory.bytes",
                   std::numeric_limits<int64_t>::max());
  const int64_t used = heap_used_.fetch_add(delta) + delta;
  if (used > budget) {
    heap_used_.fetch_sub(delta);
    return false;
  }
  int64_t peak = heap_peak_.load();
  while (used > peak && !heap_peak_.compare_exchange_weak(peak, used)) {
  }
  return true;
}

void TaskTracker::runAssignment(const TaskAssignment& assignment) {
  if (assignment.kind == AssignmentKind::kMap) {
    ++busy_maps_;
    map_pool_->submit([this, assignment] {
      runMapAssignment(assignment);
      --busy_maps_;
    });
  } else {
    ++busy_reduces_;
    reduce_pool_->submit([this, assignment] {
      runReduceAssignment(assignment);
      --busy_reduces_;
    });
  }
}

void TaskTracker::runMapAssignment(const TaskAssignment& assignment) {
  TaskStatusReport report;
  report.job = assignment.job;
  report.task_index = assignment.task_index;
  report.is_map = true;
  report.attempt = assignment.attempt;
  // Adopt the job's trace identity on this pool thread (the assignment
  // carried it over the heartbeat RPC), and give the attempt a stable,
  // readable chrome://tracing track.
  const TraceContextScope trace_scope(
      TraceContext{assignment.trace_id, assignment.parent_span_id, 0},
      "m" + std::to_string(assignment.task_index) + " a" +
          std::to_string(assignment.attempt));
  TraceSpan span(tracer_, "tasktracker." + host_,
                 "MAP m" + std::to_string(assignment.task_index) + " a" +
                     std::to_string(assignment.attempt));
  span.arg("job", std::to_string(assignment.job));
  Stopwatch watch;
  try {
    const auto spec = registry_->get(assignment.job);
    hdfs::DfsClient dfs(conf_, network_, host_, namenode_host_);
    HdfsFs fs(std::move(dfs));
    auto result = runMapTask(*spec, fs, assignment.split,
                             [this](int64_t d) { chargeHeap(d); }, tracer_,
                             "tasktracker." + host_, metrics_);
    // The put may trigger an in-node combine of everything this node holds
    // for the job; its INNODE_COMBINE_* counters land in this attempt's
    // counters (snapshot below), so attempt replacement keeps them
    // exactly-once.
    outputs_.put(assignment.job, assignment.task_index,
                 std::move(result.partitions), &result.counters);
    report.succeeded = true;
    report.counters = result.counters.snapshot();
    report.millis = result.millis;
    maps_completed_->add();
    map_micros_->record(watch.elapsedMicros());
    map_sort_micros_->record(result.sort_micros);
    // Registry mirror of the map-side spill counters, success-only like the
    // shuffle/merge mirrors below.
    map_spills_->add(
        result.counters.value(counters::kTaskGroup, counters::kMapSpills));
    spilled_records_->add(result.counters.value(counters::kTaskGroup,
                                                counters::kSpilledRecords));
  } catch (const std::exception& e) {
    report.succeeded = false;
    report.error = e.what();
    maps_failed_->add();
    span.arg("error", e.what());
  }
  queueReport(std::move(report));
}

void TaskTracker::runReduceAssignment(const TaskAssignment& assignment) {
  TaskStatusReport report;
  report.job = assignment.job;
  report.task_index = assignment.task_index;
  report.is_map = false;
  report.attempt = assignment.attempt;
  const TraceContextScope trace_scope(
      TraceContext{assignment.trace_id, assignment.parent_span_id, 0},
      "r" + std::to_string(assignment.task_index) + " a" +
          std::to_string(assignment.attempt));
  TraceSpan span(tracer_, "tasktracker." + host_,
                 "REDUCE r" + std::to_string(assignment.task_index) + " a" +
                     std::to_string(assignment.attempt));
  span.arg("job", std::to_string(assignment.job));
  Stopwatch watch;
  try {
    const auto spec = registry_->get(assignment.job);
    Counters shuffle_counters;

    // The fetched runs are the reduce task's working set; charge them
    // against the tracker memory budget while the streaming merge runs.
    // Unlike user allocateHeap() leaks, these buffers really are freed when
    // the task ends, so the charge is released even on failure.
    struct ShuffleHeapGuard {
      TaskTracker* tracker;
      int64_t amount;
      ~ShuffleHeapGuard() { tracker->heap_used_.fetch_sub(amount); }
    } guard{this, 0};

    // Shuffle: pull this partition's run from every map's tracker, several
    // fetches in flight at once. An assignment whose location list is still
    // partial (slowstart fired before every map finished) takes the
    // pipelined path, fetching incrementally as completion events arrive;
    // a complete list — including every pre-slowstart assignment, which has
    // total_maps == 0 — takes the classic blocking path unchanged.
    std::vector<BufferView> runs;
    if (assignment.total_maps > assignment.map_outputs.size()) {
      runs = runPipelinedShuffle(assignment, *spec, shuffle_counters,
                                 guard.amount);
    } else {
      runs = fetchShuffleRuns(*network_, host_, assignment, conf_,
                              shuffle_counters, spec.get());
      int64_t shuffle_heap = 0;
      for (const BufferView& run : runs) {
        shuffle_heap += static_cast<int64_t>(run.size());
      }
      guard.amount = shuffle_heap;
      chargeHeap(shuffle_heap);
    }

    hdfs::DfsClient dfs(conf_, network_, host_, namenode_host_);
    HdfsFs fs(std::move(dfs));
    auto result = runReduceTask(*spec, fs, assignment.task_index,
                                assignment.attempt, runs,
                                [this](int64_t d) { chargeHeap(d); }, tracer_,
                                "tasktracker." + host_, metrics_);
    result.counters.merge(shuffle_counters);
    report.succeeded = true;
    report.counters = result.counters.snapshot();
    report.millis = result.millis;
    reduces_completed_->add();
    reduce_micros_->record(watch.elapsedMicros());
    // Mirror the PR-1 shuffle/merge counters into the registry on success
    // only — the JobTracker also merges counters only from successful
    // attempts, so the two stay consistent in a clean run.
    merge_segments_->add(
        result.counters.value(counters::kTaskGroup, counters::kMergeSegments));
    shuffle_fetch_millis_->add(result.counters.value(
        counters::kShuffleGroup, counters::kShuffleFetchMillis));
    shuffle_bytes_->add(
        result.counters.value(counters::kShuffleGroup,
                              counters::kShuffleBytes));
  } catch (const std::exception& e) {
    report.succeeded = false;
    report.error = e.what();
    reduces_failed_->add();
    span.arg("error", e.what());
  }
  queueReport(std::move(report));
}

std::vector<BufferView> TaskTracker::runPipelinedShuffle(
    const TaskAssignment& assignment, const JobSpec& spec,
    Counters& shuffle_counters, int64_t& charged_bytes) {
  const bool innode = spec.combiner != nullptr &&
                      spec.conf.getBool("mapred.innode.combine", false);
  const uint32_t total_maps = assignment.total_maps;
  const auto fanin = static_cast<size_t>(std::max<int64_t>(
      2, spec.conf.getInt(
             "mapred.reduce.merge.fold.fanin",
             conf_.getInt("mapred.reduce.merge.fold.fanin", 8))));
  const std::string component = "tasktracker." + host_;
  const std::string task_tag = "r" + std::to_string(assignment.task_index) +
                               " a" + std::to_string(assignment.attempt);

  // Subscribe to the job's completion-event feed from the assignment's
  // snapshot cursor; the heartbeat thread routes events into the inbox.
  auto state = std::make_shared<PipelinedShuffleState>();
  state->job = assignment.job;
  state->task_index = assignment.task_index;
  state->cursor = assignment.event_cursor;
  {
    std::lock_guard<std::mutex> lock(shuffles_mutex_);
    shuffles_.push_back(state);
  }
  struct Unsubscribe {
    TaskTracker* tracker;
    const std::shared_ptr<PipelinedShuffleState>& state;
    ~Unsubscribe() {
      std::lock_guard<std::mutex> lock(tracker->shuffles_mutex_);
      std::erase(tracker->shuffles_, state);
    }
  } unsubscribe{this, state};

  // What this reducer knows about each map output. `epoch` counts
  // invalidations; a batch launched before an invalidation is recognized by
  // its stale epoch on arrival and discarded, never merged.
  struct MapSource {
    bool known = false;    ///< a location has been announced
    bool fetched = false;  ///< accepted into the merger
    std::string host;
    uint64_t epoch = 0;
    uint64_t generation = 0;  ///< last announced output generation
  };
  std::vector<MapSource> sources(total_maps);
  for (const MapOutputLocation& location : assignment.map_outputs) {
    sources[location.map_index].known = true;
    sources[location.map_index].host = location.host;
  }

  IncrementalMerger merger(IncrementalMerger::Options{
      .fold_fanin = fanin,
      // In-node covers are host-grouped, not contiguous map ranges, so they
      // fold freely; classic runs fold adjacent-only to stay byte-identical
      // with the one-shot merge (see merge.h).
      .adjacent_only = !innode,
      .allow_decode =
          codecFromName(spec.conf.get("mapred.shuffle.compression",
                                      "none")) != CodecKind::kNone,
      .metrics = metrics_,
      .trace = tracer_,
      .component = component});

  const auto charge = [&](int64_t delta) {
    // Count before chargeHeap: an OOM throw has already grown heap_used_,
    // and the caller's guard must release exactly what was charged.
    charged_bytes += delta;
    chargeHeap(delta);
  };

  const auto drain_inbox = [&] {
    std::deque<MapCompletionEvent> events;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->aborted || !running_.load()) {
        throw IoError("pipelined shuffle aborted (tracker stopping or job "
                      "purged), job=" + std::to_string(assignment.job));
      }
      events.swap(state->inbox);
    }
    for (const MapCompletionEvent& event : events) {
      if (event.map_index >= total_maps) continue;
      MapSource& source = sources[event.map_index];
      if (event.invalidated) {
        ++source.epoch;
        source.known = false;
        source.fetched = false;
        if (merger.covers(event.map_index)) {
          // Discard the stale run. In in-node mode the whole host run goes
          // with it, and its surviving members must be fetched again.
          for (const uint32_t m : merger.invalidate(event.map_index)) {
            sources[m].fetched = false;
          }
          pipelined_refetches_->add();
          shuffle_counters.increment(counters::kShuffleGroup,
                                     counters::kShufflePipelinedRefetches, 1);
        }
      } else if (event.map_generation >= source.generation) {
        source.known = true;
        source.host = event.host;
        source.generation = event.map_generation;
      }
    }
  };

  while (true) {
    drain_inbox();
    std::vector<MapOutputLocation> ready;
    for (uint32_t m = 0; m < total_maps; ++m) {
      if (sources[m].known && !sources[m].fetched) {
        ready.push_back({m, sources[m].host});
      }
    }
    if (!ready.empty()) {
      std::vector<uint64_t> launch_epoch(total_maps, 0);
      for (const MapOutputLocation& location : ready) {
        launch_epoch[location.map_index] = sources[location.map_index].epoch;
      }
      TaskAssignment batch = assignment;
      batch.map_outputs = ready;
      std::vector<BufferView> runs;
      try {
        runs = fetchShuffleRuns(*network_, host_, batch, conf_,
                                shuffle_counters, &spec);
      } catch (const IoError& e) {
        // A stale location fails exactly like a genuine fetch-failure. When
        // an invalidation for the blamed map raced in during the batch, the
        // feed will re-announce it — retry quietly instead of failing the
        // attempt and making the JobTracker re-execute a healthy map.
        drain_inbox();
        const uint32_t failed = parseFetchFailureMap(e.what());
        if (failed >= total_maps ||
            sources[failed].epoch == launch_epoch[failed]) {
          throw;
        }
        continue;
      }
      drain_inbox();
      const std::vector<FetchUnit> units = buildFetchUnits(ready, innode);
      for (size_t i = 0; i < units.size(); ++i) {
        const FetchUnit& unit = units[i];
        const bool stale = std::any_of(
            unit.maps.begin(), unit.maps.end(), [&](uint32_t m) {
              return sources[m].epoch != launch_epoch[m];
            });
        if (stale) {
          // Fetched, then invalidated before it could merge: drop the unit
          // (surviving members re-fetch next round alongside the feed's
          // re-announced generation).
          pipelined_refetches_->add();
          shuffle_counters.increment(counters::kShuffleGroup,
                                     counters::kShufflePipelinedRefetches, 1);
          continue;
        }
        const auto bytes = static_cast<int64_t>(runs[i].size());
        merger.addRun(unit.maps, runs[i]);
        charge(bytes);
        pipelined_runs_->add();
        pipelined_bytes_->add(bytes);
        shuffle_counters.increment(counters::kShuffleGroup,
                                   counters::kShufflePipelinedRuns, 1);
        shuffle_counters.increment(counters::kShuffleGroup,
                                   counters::kShufflePipelinedBytes, bytes);
        for (const uint32_t m : unit.maps) sources[m].fetched = true;
      }
      if (merger.pendingRuns() >= fanin) {
        const int64_t held_before = merger.heldBytes();
        TraceSpan fold_span(tracer_, component, "MERGE_FOLD " + task_tag);
        merger.foldOnce();
        fold_span.arg("segments", std::to_string(merger.segmentCount()));
        fold_span.arg("pending", std::to_string(merger.pendingRuns()));
        charge(merger.heldBytes() - held_before);
      }
    }
    uint32_t fetched = 0;
    bool have_ready = false;
    for (const MapSource& source : sources) {
      fetched += source.fetched ? 1 : 0;
      have_ready = have_ready || (source.known && !source.fetched);
    }
    if (fetched == total_maps) break;
    if (have_ready) continue;
    // Membership incomplete and nothing fetchable: the map phase is ahead
    // of us. One REDUCE_SHUFFLE_WAIT span per wait episode (not per poll)
    // keeps the trace ring small while still attributing the overlap.
    TraceSpan wait_span(tracer_, component,
                        "REDUCE_SHUFFLE_WAIT " + task_tag);
    wait_span.arg("job", std::to_string(assignment.job));
    wait_span.arg("fetched", std::to_string(fetched));
    wait_span.arg("total", std::to_string(total_maps));
    std::unique_lock<std::mutex> lock(state->mutex);
    // The timeout is a backstop for wake-ups with no notifier (e.g. a
    // crash-tracker OOM elsewhere flips running_ without an abort).
    while (state->inbox.empty() && !state->aborted && running_.load()) {
      state->cv.wait_for(lock, std::chrono::milliseconds(20));
    }
  }
  return merger.assemble();
}

void TaskTracker::installRpc() {
  // Shuffle seam (`mapred.shuffle.compression`, a job-level key). The
  // common fast path — map-output codec on, shuffle codec on — ships the
  // STORED frames with no re-encode at all; the reducer decodes at merge
  // input. The off-diagonal cases encode (once, cached) or decode at serve
  // time so each seam stays independently switchable. Serving itself lives
  // in the MapOutputStore; the handler resolves the seam and mirrors the
  // byte accounting into the registry.
  const auto shuffle_for = [this](JobId job) {
    try {
      return codecFromName(registry_->get(job)->conf.get(
          "mapred.shuffle.compression", "none"));
    } catch (const std::exception&) {
      // Unknown job spec (purged mid-serve): serve the bytes as stored.
      return CodecKind::kNone;
    }
  };
  network_->bindBuf(host_, kTaskTrackerPort,
                    [this, shuffle_for](const net::BufRpcRequest& req)
                        -> BufferView {
    if (req.method == "getMapOutput") {
      const auto [job, map_index, partition] =
          unpack<uint32_t, uint32_t, uint32_t>(req.body.view());
      MapOutputStore::ServeStats stats;
      BufferView run = outputs_.serveMapOutput(job, map_index, partition,
                                               shuffle_for(job), &stats);
      shuffle_raw_bytes_->add(stats.raw_bytes);
      shuffle_compressed_bytes_->add(stats.compressed_bytes);
      return run;
    }
    if (req.method == "getNodeOutput") {
      // In-node combining: one reply covers every named map on this node,
      // merged through the job's combiner.
      const auto [job, partition, maps] =
          unpack<uint32_t, uint32_t, std::vector<uint32_t>>(req.body.view());
      MapOutputStore::ServeStats stats;
      BufferView run =
          outputs_.serveNodeOutput(job, partition, maps, shuffle_for(job),
                                   &stats);
      shuffle_raw_bytes_->add(stats.raw_bytes);
      shuffle_compressed_bytes_->add(stats.compressed_bytes);
      return run;
    }
    throw InvalidArgumentError("tasktracker: unknown RPC method " +
                               req.method);
  });
}

}  // namespace mh::mr
