#include "mh/mr/kv_stream.h"

namespace mh::mr {

std::vector<KeyValue> decodeKvRun(std::string_view run) {
  std::vector<KeyValue> records;
  KvReader reader(run);
  std::string_view key;
  std::string_view value;
  while (reader.next(key, value)) {
    records.push_back({Bytes(key), Bytes(value)});
  }
  return records;
}

Bytes encodeKvRun(const std::vector<KeyValue>& records) {
  Bytes out;
  KvWriter writer(out);
  for (const auto& record : records) writer.write(record);
  return out;
}

}  // namespace mh::mr
