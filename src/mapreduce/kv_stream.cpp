#include "mh/mr/kv_stream.h"

namespace mh::mr {

std::vector<KeyValue> decodeKvRun(std::string_view run) {
  std::vector<KeyValue> records;
  KvReader reader(run);
  std::string_view key;
  std::string_view value;
  while (reader.next(key, value)) {
    records.push_back({Bytes(key), Bytes(value)});
  }
  return records;
}

Bytes encodeKvRun(const std::vector<KeyValue>& records) {
  Bytes out;
  KvWriter writer(out);
  for (const auto& record : records) writer.write(record);
  return out;
}

DecodedRunSet::DecodedRunSet(const std::vector<BufferView>& runs,
                             bool allow_decode, MetricsRegistry* metrics,
                             TraceCollector* trace,
                             std::string_view component) {
  owned_.reserve(runs.size());
  views_.reserve(runs.size());
  for (const BufferView& run : runs) {
    if (allow_decode && isEncodedStream(run.view())) {
      Buffer decoded = codecDecode(run.view(), metrics, trace, component);
      encoded_bytes_ += static_cast<int64_t>(run.size());
      raw_bytes_ += static_cast<int64_t>(decoded.size());
      decoded_heap_bytes_ += static_cast<int64_t>(decoded.size());
      owned_.emplace_back(std::move(decoded));
    } else {
      raw_bytes_ += static_cast<int64_t>(run.size());
      owned_.push_back(run);
    }
    views_.push_back(owned_.back().view());
  }
}

}  // namespace mh::mr
