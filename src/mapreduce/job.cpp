#include "mh/mr/job.h"

#include "mh/common/error.h"

namespace mh::mr {

void JobSpec::validateAndDefault() {
  if (!mapper) throw InvalidArgumentError("job needs a mapper");
  if (!reducer) throw InvalidArgumentError("job needs a reducer");
  if (input_paths.empty()) throw InvalidArgumentError("job needs input paths");
  if (output_dir.empty()) throw InvalidArgumentError("job needs an output dir");
  if (num_reducers == 0) throw InvalidArgumentError("job needs >= 1 reducer");
  if (!partitioner) {
    partitioner = [] { return std::make_unique<HashPartitioner>(); };
  }
  if (!input_format) {
    input_format = [] { return std::make_unique<TextInputFormat>(); };
  }
  if (!output_format) {
    output_format = [] { return std::make_unique<TextOutputFormat>(); };
  }
}

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning: return "RUNNING";
    case JobState::kSucceeded: return "SUCCEEDED";
    case JobState::kFailed: return "FAILED";
  }
  return "UNKNOWN";
}

}  // namespace mh::mr
