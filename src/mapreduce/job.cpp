#include "mh/mr/job.h"

#include <algorithm>
#include <sstream>

#include "mh/common/error.h"
#include "mh/common/trace_analysis.h"

namespace mh::mr {

void JobSpec::validateAndDefault() {
  if (!mapper) throw InvalidArgumentError("job needs a mapper");
  if (!reducer) throw InvalidArgumentError("job needs a reducer");
  if (input_paths.empty()) throw InvalidArgumentError("job needs input paths");
  if (output_dir.empty()) throw InvalidArgumentError("job needs an output dir");
  if (num_reducers == 0) throw InvalidArgumentError("job needs >= 1 reducer");
  if (!partitioner) {
    partitioner = [] { return std::make_unique<HashPartitioner>(); };
  }
  if (!input_format) {
    input_format = [] { return std::make_unique<TextInputFormat>(); };
  }
  if (!output_format) {
    output_format = [] { return std::make_unique<TextOutputFormat>(); };
  }
}

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning: return "RUNNING";
    case JobState::kSucceeded: return "SUCCEEDED";
    case JobState::kFailed: return "FAILED";
  }
  return "UNKNOWN";
}

std::string JobHistory::renderTimeline(size_t width) const {
  if (attempts.empty()) return "(no task attempts recorded)\n";
  width = std::max<size_t>(width, 10);
  const int64_t span = std::max<int64_t>(finish_ms, 1);
  const auto column = [&](int64_t t) {
    t = std::clamp<int64_t>(t, 0, span);
    return static_cast<size_t>(static_cast<double>(t) /
                               static_cast<double>(span) *
                               static_cast<double>(width - 1));
  };

  // Stable display order: maps before reduces, then by task, then attempt.
  std::vector<const TaskAttemptRecord*> rows;
  rows.reserve(attempts.size());
  for (const auto& a : attempts) rows.push_back(&a);
  std::stable_sort(rows.begin(), rows.end(),
                   [](const TaskAttemptRecord* a, const TaskAttemptRecord* b) {
                     if (a->is_map != b->is_map) return a->is_map;
                     if (a->task_index != b->task_index) {
                       return a->task_index < b->task_index;
                     }
                     return a->attempt < b->attempt;
                   });

  std::ostringstream out;
  out << "task timeline (0.." << span << " ms, '=' map, '#' reduce, 'x' "
      << "failed):\n";
  for (const TaskAttemptRecord* a : rows) {
    std::ostringstream label;
    label << (a->is_map ? "m" : "r") << a->task_index << "." << a->attempt
          << (a->speculative ? "*" : "") << " @" << a->tracker;
    std::string tag = label.str();
    if (tag.size() < 24) tag.resize(24, ' ');
    const size_t lo = column(a->start_ms);
    const size_t hi =
        a->finished ? std::max(column(a->finish_ms), lo) : width - 1;
    std::string bar(width, ' ');
    const char fill = !a->finished || a->succeeded ? (a->is_map ? '=' : '#')
                                                   : 'x';
    for (size_t i = lo; i <= hi && i < width; ++i) bar[i] = fill;
    out << "  " << tag << " |" << bar << "| ";
    if (a->finished) {
      out << (a->finish_ms - a->start_ms) << "ms"
          << (a->succeeded ? "" : " FAILED");
      if (!a->error.empty()) out << " (" << a->error << ")";
    } else {
      out << "(unfinished)";
    }
    out << "\n";
  }
  return out.str();
}

std::string JobResult::historyReport() const {
  std::ostringstream out;
  out << "job " << jobStateName(state) << " in " << elapsed_millis << " ms"
      << " (map " << map_millis << " ms, reduce " << reduce_millis
      << " ms summed)\n";
  if (!error.empty()) out << "error: " << error << "\n";
  out << history.renderTimeline();
  return out.str();
}

std::string JobResult::criticalPathReport(const TraceCollector& tracer) const {
  if (trace_id == 0) {
    return "critical path: unavailable (tracing was off at submit)\n";
  }
  return computeCriticalPath(tracer.snapshot(), trace_id).renderAscii();
}

}  // namespace mh::mr
