#include "mh/mr/job_tracker.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "mh/common/error.h"
#include "mh/common/log.h"
#include "mh/common/stopwatch.h"
#include "mh/hdfs/dfs_client.h"

namespace mh::mr {

namespace {
constexpr const char* kLog = "jobtracker";

/// Fetch failures are reported with this prefix so the JobTracker can
/// re-execute the source map instead of burning reduce attempts.
constexpr const char* kFetchFailurePrefix = "fetch-failure ";
}  // namespace

JobTracker::JobTracker(Config conf, std::shared_ptr<net::Network> network,
                       std::shared_ptr<JobRegistry> registry,
                       std::string host, std::string namenode_host)
    : conf_(std::move(conf)),
      network_(std::move(network)),
      registry_(std::move(registry)),
      host_(std::move(host)),
      namenode_host_(std::move(namenode_host)) {
  network_->addHost(host_);
  metrics_ = &network_->metrics().child("jobtracker");
  tracer_ = &network_->tracer();
  jobs_submitted_ = &metrics_->counter("jobs.submitted");
  jobs_succeeded_ = &metrics_->counter("jobs.succeeded");
  jobs_failed_ = &metrics_->counter("jobs.failed");
  attempts_failed_ = &metrics_->counter("attempts.failed");
  metrics_->setGauge("trackers.live", [this] {
    std::lock_guard<std::mutex> guard(lock_);
    double live = 0;
    for (const auto& [host, info] : trackers_) {
      if (info.alive) ++live;
    }
    return live;
  });
  metrics_->setGauge("jobs.running", [this] {
    std::lock_guard<std::mutex> guard(lock_);
    double running = 0;
    for (const auto& [id, job] : jobs_) {
      if (job.state == JobState::kRunning) ++running;
    }
    return running;
  });
}

JobTracker::~JobTracker() {
  stop();
  // The registry (and any MetricsSnapshotter sampling it) outlives this
  // daemon; replace `this`-capturing gauges with their final values.
  for (const char* name : {"trackers.live", "jobs.running"}) {
    metrics_->setGauge(name, [v = metrics_->gaugeValue(name)] { return v; });
  }
}

int64_t JobTracker::steadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void JobTracker::start() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (started_) return;
  }
  // Bind before flipping started_ so a failed bind (ghost daemon on the
  // port) leaves stop() a no-op instead of unbinding the ghost.
  installRpc();
  {
    std::lock_guard<std::mutex> guard(lock_);
    started_ = true;
  }
  const auto interval = std::chrono::milliseconds(
      conf_.getInt("mapred.jobtracker.monitor.interval.ms", 50));
  monitor_ = std::jthread([this, interval](std::stop_token token) {
    while (!token.stop_requested()) {
      interruptibleSleep(token, interval);
      if (token.stop_requested()) return;
      runMonitorOnce();
    }
  });
  logInfo(kLog) << "started on " << host_ << ":" << kJobTrackerPort;
}

void JobTracker::stop() {
  {
    std::lock_guard<std::mutex> guard(lock_);
    if (!started_) return;
    started_ = false;
  }
  if (monitor_.joinable()) {
    monitor_.request_stop();
    monitor_.join();
  }
  network_->unbind(host_, kJobTrackerPort);
  job_done_.notify_all();
}

JobId JobTracker::submit(JobSpec spec) {
  spec.validateAndDefault();

  // Mint the job's trace identity up front and make it ambient for the
  // whole submit path, so the split-computation RPCs against the NameNode
  // land inside the job's trace tree. The root JOB span itself is recorded
  // at finish, backdated to trace_start_us.
  uint64_t trace_id = 0, root_span_id = 0;
  int64_t trace_start_us = 0;
  if (tracer_->enabled()) {
    trace_id = tracer_->newId();
    root_span_id = tracer_->newId();
    trace_start_us = tracer_->nowMicros();
  }
  const TraceContextScope trace_scope(
      TraceContext{trace_id, root_span_id, 0});

  // Compute splits against HDFS: these carry the block replica hosts the
  // scheduler will match trackers against.
  hdfs::DfsClient dfs(conf_, network_, host_, namenode_host_);
  HdfsFs fs(std::move(dfs));
  const auto input_format = spec.input_format();
  const auto splits = input_format->getSplits(fs, spec.input_paths);
  if (splits.empty()) {
    throw InvalidArgumentError("job '" + spec.name + "' has no input splits");
  }

  auto shared_spec = std::make_shared<const JobSpec>(std::move(spec));

  std::lock_guard<std::mutex> guard(lock_);
  const JobId id = next_job_id_++;
  registry_->put(id, shared_spec);

  JobInProgress job;
  job.id = id;
  job.spec = shared_spec;
  job.submit_ms = steadyMillis();
  job.trace_id = trace_id;
  job.root_span_id = root_span_id;
  job.trace_start_us = trace_start_us;
  job.maps.resize(splits.size());
  for (size_t i = 0; i < splits.size(); ++i) {
    job.maps[i].split = splits[i];
  }
  job.reduces.resize(shared_spec->num_reducers);
  logInfo(kLog) << "job " << id << " '" << shared_spec->name << "': "
                << job.maps.size() << " maps, " << job.reduces.size()
                << " reduces";
  jobs_submitted_->add();
  tracer_->instant("jobtracker", "SUBMIT job " + std::to_string(id),
                   {{"name", shared_spec->name},
                    {"maps", std::to_string(job.maps.size())},
                    {"reduces", std::to_string(job.reduces.size())}});
  jobs_.emplace(id, std::move(job));
  return id;
}

JobResult JobTracker::wait(JobId id) {
  std::unique_lock<std::mutex> guard(lock_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw NotFoundError("job " + std::to_string(id));
  job_done_.wait(guard, [&] {
    return it->second.state != JobState::kRunning || !started_;
  });
  const JobInProgress& job = it->second;
  JobResult result;
  result.state = job.state;
  result.counters = job.counters;
  result.map_millis = job.map_millis;
  result.reduce_millis = job.reduce_millis;
  result.elapsed_millis =
      (job.finish_ms != 0 ? job.finish_ms : steadyMillis()) - job.submit_ms;
  result.error = job.error;
  result.trace_id = job.trace_id;
  result.history.finish_ms = result.elapsed_millis;
  result.history.attempts = job.attempts;
  return result;
}

JobStatus JobTracker::statusLocked(const JobInProgress& job) const {
  JobStatus status;
  status.id = job.id;
  status.name = job.spec->name;
  status.state = job.state;
  status.maps_total = static_cast<uint32_t>(job.maps.size());
  status.reduces_total = static_cast<uint32_t>(job.reduces.size());
  for (const auto& t : job.maps) {
    if (t.state == TaskState::kSucceeded) ++status.maps_completed;
  }
  for (const auto& t : job.reduces) {
    if (t.state == TaskState::kSucceeded) ++status.reduces_completed;
  }
  status.error = job.error;
  return status;
}

JobStatus JobTracker::status(JobId id) const {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw NotFoundError("job " + std::to_string(id));
  return statusLocked(it->second);
}

std::vector<JobStatus> JobTracker::listJobs() const {
  std::lock_guard<std::mutex> guard(lock_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(statusLocked(job));
  return out;
}

std::string JobTracker::renderJobDetails(JobId id) const {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw NotFoundError("job " + std::to_string(id));
  const JobInProgress& job = it->second;
  const JobStatus status = statusLocked(job);

  std::ostringstream out;
  out << "Job job_" << id << " '" << job.spec->name
      << "'    state: " << jobStateName(job.state) << "\n";
  const auto bar = [](uint32_t done, uint32_t total) {
    const int cells = total == 0 ? 20 : static_cast<int>(20 * done / total);
    std::string s(static_cast<size_t>(cells), '#');
    s.resize(20, '.');
    return s;
  };
  out << "  maps:    [" << bar(status.maps_completed, status.maps_total)
      << "] " << status.maps_completed << "/" << status.maps_total << "\n";
  out << "  reduces: [" << bar(status.reduces_completed, status.reduces_total)
      << "] " << status.reduces_completed << "/" << status.reduces_total
      << "\n";
  out << "  map time: " << job.map_millis
      << " ms total, reduce time: " << job.reduce_millis << " ms total\n";
  out << "  locality: " << job.counters.value(counters::kJobGroup,
                                              counters::kDataLocalMaps)
      << " node-local, " << job.counters.value(counters::kJobGroup,
                                               counters::kRackLocalMaps)
      << " rack-local, " << job.counters.value(counters::kJobGroup,
                                               counters::kRemoteMaps)
      << " remote, " << job.counters.value(counters::kJobGroup,
                                           counters::kSpeculativeMaps)
      << " speculative\n";
  if (!job.error.empty()) out << "  error: " << job.error << "\n";
  out << job.counters.render();

  out << "  tasks:\n";
  for (size_t i = 0; i < job.maps.size(); ++i) {
    const TaskInProgress& task = job.maps[i];
    out << "    m" << i << "  "
        << (task.state == TaskState::kSucceeded   ? "SUCCEEDED"
            : task.state == TaskState::kRunning ? "RUNNING  "
                                                : "PENDING  ")
        << (task.tracker.empty() ? "" : "  on " + task.tracker) << "\n";
  }
  for (size_t i = 0; i < job.reduces.size(); ++i) {
    const TaskInProgress& task = job.reduces[i];
    out << "    r" << i << "  "
        << (task.state == TaskState::kSucceeded   ? "SUCCEEDED"
            : task.state == TaskState::kRunning ? "RUNNING  "
                                                : "PENDING  ")
        << (task.tracker.empty() ? "" : "  on " + task.tracker) << "\n";
  }
  return out.str();
}

// ------------------------------------------------------- tracker protocol

void JobTracker::registerTracker(const std::string& host, uint32_t map_slots,
                                 uint32_t reduce_slots,
                                 const std::string& rack) {
  std::lock_guard<std::mutex> guard(lock_);
  network_->addHost(host);
  TrackerInfo& info = trackers_[host];
  info.rack = rack;
  info.map_slots = map_slots;
  info.reduce_slots = reduce_slots;
  info.last_heartbeat_ms = steadyMillis();
  info.alive = true;
  logInfo(kLog) << "registered tasktracker " << host << " (" << map_slots
                << "M/" << reduce_slots << "R slots)";
}

void JobTracker::failJobLocked(JobInProgress& job, const std::string& error) {
  if (job.state != JobState::kRunning) return;
  job.error = error;
  finishJobLocked(job, JobState::kFailed);
}

void JobTracker::finishJobLocked(JobInProgress& job, JobState state) {
  job.state = state;
  job.finish_ms = steadyMillis();
  logInfo(kLog) << "job " << job.id << " " << jobStateName(state)
                << (job.error.empty() ? "" : (": " + job.error));
  (state == JobState::kSucceeded ? jobs_succeeded_ : jobs_failed_)->add();
  const TraceContext job_ctx{job.trace_id, job.root_span_id, 0};
  tracer_->instant(job_ctx, "jobtracker",
                   "JOB_FINISH job " + std::to_string(job.id),
                   {{"state", jobStateName(state)},
                    {"elapsed_ms",
                     std::to_string(job.finish_ms - job.submit_ms)}});
  if (job.trace_id != 0) {
    // The root JOB span, backdated to submit: every other span in the
    // job's trace is a descendant of this one. record() is unconditional
    // so the root lands even if tracing was disabled mid-job.
    TraceEvent root;
    root.component = "jobtracker";
    root.name = "JOB job " + std::to_string(job.id);
    root.span = true;
    root.ts_us = job.trace_start_us;
    root.dur_us = tracer_->nowMicros() - job.trace_start_us;
    root.trace_id = job.trace_id;
    root.span_id = job.root_span_id;
    root.parent_span_id = 0;
    root.track = "jobs";
    root.args = {{"state", jobStateName(state)}};
    tracer_->record(std::move(root));
  }
  job_done_.notify_all();
}

void JobTracker::openAttemptLocked(JobInProgress& job, bool is_map,
                                   uint32_t task_index, uint32_t attempt,
                                   const std::string& tracker,
                                   bool speculative) {
  TaskAttemptRecord record;
  record.is_map = is_map;
  record.task_index = task_index;
  record.attempt = attempt;
  record.tracker = tracker;
  record.start_ms = steadyMillis() - job.submit_ms;
  record.speculative = speculative;
  job.attempts.push_back(std::move(record));
}

void JobTracker::closeAttemptLocked(JobInProgress& job, bool is_map,
                                    uint32_t task_index, uint32_t attempt,
                                    bool succeeded,
                                    const std::string& error) {
  // Newest-first: the matching attempt is near the back of the journal.
  for (auto it = job.attempts.rbegin(); it != job.attempts.rend(); ++it) {
    if (it->finished || it->is_map != is_map ||
        it->task_index != task_index || it->attempt != attempt) {
      continue;
    }
    it->finished = true;
    it->finish_ms = steadyMillis() - job.submit_ms;
    it->succeeded = succeeded;
    it->error = error;
    return;
  }
}

bool JobTracker::allMapsDoneLocked(const JobInProgress& job) const {
  return std::all_of(job.maps.begin(), job.maps.end(), [](const auto& t) {
    return t.state == TaskState::kSucceeded;
  });
}

bool JobTracker::reduceLaunchableLocked(const JobInProgress& job) const {
  if (job.maps.empty()) return true;  // nothing to wait for
  double slowstart = conf_.getDouble(
      "mapred.reduce.slowstart.completed.maps", 0.05);
  if (job.spec->conf.getRaw("mapred.reduce.slowstart.completed.maps")) {
    slowstart = job.spec->conf.getDouble(
        "mapred.reduce.slowstart.completed.maps", slowstart);
  }
  slowstart = std::clamp(slowstart, 0.0, 1.0);
  size_t completed = 0;
  for (const auto& t : job.maps) {
    if (t.state == TaskState::kSucceeded) ++completed;
  }
  // At least one map must have finished (a reduce with zero known
  // locations would just spin), and slowstart=1.0 restores the blocking
  // all-maps-first schedule exactly.
  const auto threshold = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(slowstart * static_cast<double>(job.maps.size()))));
  return completed >= threshold;
}

void JobTracker::emitMapEventLocked(JobInProgress& job, uint32_t map_index,
                                    bool invalidated) {
  const TaskInProgress& task = job.maps[map_index];
  MapCompletionEvent event;
  event.job = job.id;
  event.event_id = job.next_event_id++;
  event.map_index = map_index;
  event.invalidated = invalidated;
  if (!invalidated) {
    event.host = task.tracker;
    event.map_generation = task.output_generation;
  }
  job.map_events.push_back(std::move(event));
}

void JobTracker::processReportLocked(const std::string& tracker_host,
                                     const TaskStatusReport& report) {
  const auto job_it = jobs_.find(report.job);
  if (job_it == jobs_.end()) return;  // job vanished
  JobInProgress& job = job_it->second;
  if (job.state != JobState::kRunning) return;

  auto& tasks = report.is_map ? job.maps : job.reduces;
  if (report.task_index >= tasks.size()) return;
  TaskInProgress& task = tasks[report.task_index];
  if (task.state == TaskState::kSucceeded) return;  // stale duplicate
  // Only the current attempt — or its speculative backup — may flip state;
  // reports from superseded attempts (tracker expired, task reassigned)
  // have unreliable output locations.
  const bool is_primary = task.state == TaskState::kRunning &&
                          report.attempt == task.running_attempt;
  const bool is_speculative = task.state == TaskState::kRunning &&
                              task.has_speculative &&
                              report.attempt == task.speculative_attempt;
  if (!is_primary && !is_speculative) return;

  closeAttemptLocked(job, report.is_map, report.task_index, report.attempt,
                     report.succeeded, report.error);

  if (report.succeeded) {
    // First success wins; the map output lives on the REPORTING tracker.
    task.state = TaskState::kSucceeded;
    task.tracker = tracker_host;
    task.has_speculative = false;
    // Retract the contribution of a previous success (a map re-executed
    // after its output was lost) so record counts stay exact under
    // re-execution instead of double-counting.
    for (const auto& [group, name, value] : task.contributed.snapshot()) {
      job.counters.increment(group, name, -value);
    }
    task.contributed = Counters::fromSnapshot(report.counters);
    job.counters.merge(task.contributed);
    if (report.is_map) {
      ++task.output_generation;
      emitMapEventLocked(job, report.task_index, /*invalidated=*/false);
      job.map_millis += report.millis;
      const char* locality_counter = counters::kRemoteMaps;
      if (task.locality == Locality::kNodeLocal) {
        locality_counter = counters::kDataLocalMaps;
      } else if (task.locality == Locality::kRackLocal) {
        locality_counter = counters::kRackLocalMaps;
      }
      job.counters.increment(counters::kJobGroup, locality_counter);
    } else {
      job.reduce_millis += report.millis;
    }
    // Job done?
    if (std::all_of(job.reduces.begin(), job.reduces.end(), [](const auto& t) {
          return t.state == TaskState::kSucceeded;
        })) {
      finishJobLocked(job, JobState::kSucceeded);
    }
    return;
  }

  // Failure path.
  logWarn(kLog) << "task " << report.job << (report.is_map ? "/m" : "/r")
                << report.task_index << " attempt " << report.attempt
                << " failed on " << tracker_host << ": " << report.error;
  attempts_failed_->add();
  tracer_->instant(
      TraceContext{job.trace_id, job.root_span_id, 0}, "jobtracker",
      std::string("ATTEMPT_FAIL ") + (report.is_map ? "m" : "r") +
          std::to_string(report.task_index) + " a" +
          std::to_string(report.attempt),
      {{"job", std::to_string(report.job)},
       {"tracker", tracker_host},
       {"error", report.error}});
  if (is_speculative) {
    // The backup died; the primary is still running — nothing else changes.
    task.has_speculative = false;
    task.speculative_tracker.clear();
    return;
  }
  if (task.has_speculative) {
    // The primary died but its backup lives: promote the backup.
    task.running_attempt = task.speculative_attempt;
    task.tracker = task.speculative_tracker;
    task.has_speculative = false;
    task.speculative_tracker.clear();
    ++task.failures;
    job.counters.increment(
        counters::kJobGroup,
        report.is_map ? counters::kFailedMaps : counters::kFailedReduces);
    return;
  }
  task.state = TaskState::kPending;
  task.tracker.clear();

  if (!report.is_map &&
      report.error.find(kFetchFailurePrefix) != std::string::npos) {
    // Shuffle could not pull a map output: re-execute that map rather than
    // charging the reduce with a real failure.
    const std::string& err = report.error;
    const auto host_pos = err.find("host=");
    const auto map_pos = err.find("map=");
    if (host_pos != std::string::npos && map_pos != std::string::npos) {
      const auto host_end = err.find(' ', host_pos);
      const std::string bad_host =
          err.substr(host_pos + 5, host_end - host_pos - 5);
      const auto map_end = err.find_first_of(" :", map_pos);
      const uint32_t map_index = static_cast<uint32_t>(
          std::stoul(err.substr(map_pos + 4, map_end - map_pos - 4)));
      if (map_index < job.maps.size() &&
          job.maps[map_index].state == TaskState::kSucceeded &&
          job.maps[map_index].tracker == bad_host) {
        job.maps[map_index].state = TaskState::kPending;
        job.maps[map_index].tracker.clear();
        emitMapEventLocked(job, map_index, /*invalidated=*/true);
        logWarn(kLog) << "re-executing map " << map_index << " of job "
                      << job.id << " (output lost on " << bad_host << ")";
      }
    }
    return;  // fetch failures don't count toward the reduce's attempts
  }

  ++task.failures;
  job.counters.increment(
      counters::kJobGroup,
      report.is_map ? counters::kFailedMaps : counters::kFailedReduces);
  const auto max_attempts =
      static_cast<uint32_t>(conf_.getInt("mapred.max.attempts", 4));
  if (task.failures >= max_attempts) {
    failJobLocked(job, "task " + std::string(report.is_map ? "map" : "reduce") +
                           std::to_string(report.task_index) + " failed " +
                           std::to_string(task.failures) +
                           " times; last error: " + report.error);
  }
}

void JobTracker::assignTasksLocked(const std::string& tracker_host,
                                   uint32_t free_map_slots,
                                   uint32_t free_reduce_slots,
                                   std::vector<TaskAssignment>& out) {
  // Map tasks: node-local, then rack-local, then remote — the Hadoop
  // scheduler's locality hierarchy. A split host's rack is the rack of the
  // co-located TaskTracker registered under the same host name.
  const auto tracker_it = trackers_.find(tracker_host);
  const std::string& tracker_rack = tracker_it != trackers_.end()
                                        ? tracker_it->second.rack
                                        : std::string("/default-rack");
  const auto localityOf = [&](const InputSplit& split) {
    for (const auto& host : split.hosts) {
      if (host == tracker_host) return Locality::kNodeLocal;
    }
    for (const auto& host : split.hosts) {
      const auto it = trackers_.find(host);
      if (it != trackers_.end() && it->second.rack == tracker_rack) {
        return Locality::kRackLocal;
      }
    }
    return Locality::kRemote;
  };

  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    for (int pass = 0; pass < 3 && free_map_slots > 0; ++pass) {
      const auto want = static_cast<Locality>(pass);
      for (size_t i = 0; i < job.maps.size() && free_map_slots > 0; ++i) {
        TaskInProgress& task = job.maps[i];
        if (task.state != TaskState::kPending) continue;
        const Locality locality = localityOf(task.split);
        if (locality != want) continue;

        task.state = TaskState::kRunning;
        task.tracker = tracker_host;
        task.locality = locality;
        task.running_attempt = task.next_attempt++;
        task.started_ms = steadyMillis();
        openAttemptLocked(job, /*is_map=*/true, static_cast<uint32_t>(i),
                          task.running_attempt, tracker_host,
                          /*speculative=*/false);
        TaskAssignment assignment;
        assignment.kind = AssignmentKind::kMap;
        assignment.job = id;
        assignment.task_index = static_cast<uint32_t>(i);
        assignment.attempt = task.running_attempt;
        assignment.split = task.split;
        assignment.trace_id = job.trace_id;
        assignment.parent_span_id = job.root_span_id;
        out.push_back(std::move(assignment));
        job.counters.increment(counters::kJobGroup, counters::kLaunchedMaps);
        --free_map_slots;
      }
    }
  }

  // Speculative backups for straggler maps.
  if (conf_.getBool("mapred.speculative.execution", false)) {
    assignSpeculativeLocked(tracker_host, free_map_slots, out);
  }

  // Reduce tasks: launched once the job's succeeded-map count reaches the
  // slowstart threshold (mapred.reduce.slowstart.completed.maps, default
  // 0.05). The assignment carries the location list known NOW plus the
  // event-feed cursor it is current through; locations for maps that
  // finish later ride the heartbeat map-completion feed, so the reduce's
  // shuffle overlaps the rest of the map wave.
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    if (!reduceLaunchableLocked(job)) continue;
    for (size_t i = 0; i < job.reduces.size() && free_reduce_slots > 0; ++i) {
      TaskInProgress& task = job.reduces[i];
      if (task.state != TaskState::kPending) continue;
      task.state = TaskState::kRunning;
      task.tracker = tracker_host;
      task.running_attempt = task.next_attempt++;
      task.started_ms = steadyMillis();
      openAttemptLocked(job, /*is_map=*/false, static_cast<uint32_t>(i),
                        task.running_attempt, tracker_host,
                        /*speculative=*/false);
      TaskAssignment assignment;
      assignment.kind = AssignmentKind::kReduce;
      assignment.job = id;
      assignment.task_index = static_cast<uint32_t>(i);
      assignment.attempt = task.running_attempt;
      assignment.trace_id = job.trace_id;
      assignment.parent_span_id = job.root_span_id;
      assignment.total_maps = static_cast<uint32_t>(job.maps.size());
      assignment.event_cursor = job.next_event_id - 1;
      assignment.map_outputs.reserve(job.maps.size());
      for (size_t m = 0; m < job.maps.size(); ++m) {
        if (job.maps[m].state != TaskState::kSucceeded) continue;
        assignment.map_outputs.push_back(
            {static_cast<uint32_t>(m), job.maps[m].tracker});
      }
      out.push_back(std::move(assignment));
      job.counters.increment(counters::kJobGroup, counters::kLaunchedReduces);
      --free_reduce_slots;
    }
  }
}

void JobTracker::assignSpeculativeLocked(const std::string& tracker_host,
                                         uint32_t& free_map_slots,
                                         std::vector<TaskAssignment>& out) {
  const int64_t min_runtime = conf_.getInt("mapred.speculative.min.ms", 500);
  const int64_t now = steadyMillis();
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning || free_map_slots == 0) continue;
    // A straggler is judged against the average of completed maps; need a
    // sample to compare with.
    uint32_t completed = 0;
    for (const auto& t : job.maps) {
      if (t.state == TaskState::kSucceeded) ++completed;
    }
    if (completed == 0) continue;
    const int64_t avg_ms =
        job.map_millis / static_cast<int64_t>(completed);
    const int64_t threshold = std::max(min_runtime, 2 * avg_ms);

    for (size_t i = 0; i < job.maps.size() && free_map_slots > 0; ++i) {
      TaskInProgress& task = job.maps[i];
      if (task.state != TaskState::kRunning || task.has_speculative) continue;
      if (task.tracker == tracker_host) continue;  // back up elsewhere
      if (now - task.started_ms < threshold) continue;

      task.has_speculative = true;
      task.speculative_attempt = task.next_attempt++;
      task.speculative_tracker = tracker_host;
      openAttemptLocked(job, /*is_map=*/true, static_cast<uint32_t>(i),
                        task.speculative_attempt, tracker_host,
                        /*speculative=*/true);
      TaskAssignment assignment;
      assignment.kind = AssignmentKind::kMap;
      assignment.job = id;
      assignment.task_index = static_cast<uint32_t>(i);
      assignment.attempt = task.speculative_attempt;
      assignment.split = task.split;
      assignment.trace_id = job.trace_id;
      assignment.parent_span_id = job.root_span_id;
      out.push_back(std::move(assignment));
      job.counters.increment(counters::kJobGroup,
                             counters::kSpeculativeMaps);
      --free_map_slots;
      logInfo(kLog) << "speculative backup of map " << i << " (job " << id
                    << ", " << (now - task.started_ms) << " ms on "
                    << task.tracker << ") on " << tracker_host;
    }
  }
}

TrackerHeartbeatReply JobTracker::trackerHeartbeat(
    const std::string& host, uint32_t free_map_slots,
    uint32_t free_reduce_slots, const std::vector<TaskStatusReport>& reports,
    const std::vector<ShuffleEventCursor>& cursors) {
  std::lock_guard<std::mutex> guard(lock_);
  TrackerHeartbeatReply reply;
  const auto it = trackers_.find(host);
  if (it == trackers_.end()) {
    reply.reregister = true;
    return reply;
  }
  it->second.last_heartbeat_ms = steadyMillis();
  it->second.alive = true;

  for (const auto& report : reports) {
    processReportLocked(host, report);
  }

  assignTasksLocked(host, free_map_slots, free_reduce_slots,
                    reply.assignments);

  // Answer the tracker's event-feed subscriptions: everything newer than
  // its per-job cursor, replayed from the job's in-memory log (heartbeat
  // loss only delays delivery — the tracker re-presents the same cursor).
  for (const auto& cursor : cursors) {
    const auto job_it = jobs_.find(cursor.job);
    if (job_it == jobs_.end()) continue;
    for (const auto& event : job_it->second.map_events) {
      if (event.event_id > cursor.after) reply.map_events.push_back(event);
    }
  }

  for (const auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) reply.purge_jobs.push_back(id);
  }
  return reply;
}

std::string JobTracker::mapLocation(JobId job, uint32_t map_index) const {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end() || map_index >= it->second.maps.size()) return "";
  const TaskInProgress& task = it->second.maps[map_index];
  return task.state == TaskState::kSucceeded ? task.tracker : "";
}

void JobTracker::runMonitorOnce() {
  std::lock_guard<std::mutex> guard(lock_);
  expireTrackersLocked();
  timeoutTasksLocked();
}

void JobTracker::expireTrackersLocked() {
  const int64_t expiry = conf_.getInt("mapred.tasktracker.expiry.ms", 1000);
  const int64_t now = steadyMillis();
  for (auto& [host, info] : trackers_) {
    if (!info.alive || now - info.last_heartbeat_ms <= expiry) continue;
    info.alive = false;
    logWarn(kLog) << "tasktracker " << host << " lost";
    tracer_->instant("jobtracker", "TRACKER_LOST " + host);
    for (auto& [id, job] : jobs_) {
      if (job.state != JobState::kRunning) continue;
      // Close the journal on every attempt that died with the tracker.
      for (auto& record : job.attempts) {
        if (!record.finished && record.tracker == host) {
          record.finished = true;
          record.finish_ms = now - job.submit_ms;
          record.succeeded = false;
          record.error = "tracker lost";
        }
      }
      for (size_t i = 0; i < job.maps.size(); ++i) {
        TaskInProgress& task = job.maps[i];
        // Running tasks die with the tracker; succeeded maps lose their
        // outputs (they live in the tracker's MapOutputStore).
        if (task.has_speculative && task.speculative_tracker == host) {
          task.has_speculative = false;
          task.speculative_tracker.clear();
        }
        if (task.tracker == host && task.state != TaskState::kPending) {
          if (task.state == TaskState::kRunning && task.has_speculative) {
            // The backup survives the primary's tracker: promote it.
            task.running_attempt = task.speculative_attempt;
            task.tracker = task.speculative_tracker;
            task.has_speculative = false;
            task.speculative_tracker.clear();
          } else {
            const bool was_succeeded = task.state == TaskState::kSucceeded;
            task.state = TaskState::kPending;
            task.tracker.clear();
            if (was_succeeded) {
              // An announced output just vanished: pipelined reducers
              // holding its fetched run must discard and re-fetch.
              emitMapEventLocked(job, static_cast<uint32_t>(i),
                                 /*invalidated=*/true);
            }
          }
        }
      }
      for (auto& task : job.reduces) {
        if (task.tracker == host && task.state == TaskState::kRunning) {
          task.state = TaskState::kPending;
          task.tracker.clear();
        }
      }
    }
  }
}

void JobTracker::timeoutTasksLocked() {
  // A Running attempt can wedge without its tracker expiring: the
  // assignment rode a heartbeat reply that was lost in flight, so the
  // tracker never learned about the task yet keeps heartbeating happily.
  // Failing attempts older than the timeout reschedules them; stale
  // reports from the abandoned attempt are ignored by the attempt-number
  // check in processReportLocked.
  const int64_t timeout = conf_.getInt("mapred.task.timeout.ms", 600'000);
  if (timeout <= 0) return;
  const int64_t now = steadyMillis();
  const auto max_attempts =
      static_cast<uint32_t>(conf_.getInt("mapred.max.attempts", 4));
  for (auto& [id, job] : jobs_) {
    if (job.state != JobState::kRunning) continue;
    const auto sweep = [&](std::vector<TaskInProgress>& tasks, bool is_map) {
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (job.state != JobState::kRunning) return;
        TaskInProgress& task = tasks[i];
        if (task.state != TaskState::kRunning) continue;
        if (now - task.started_ms <= timeout) continue;
        logWarn(kLog) << "task " << id << (is_map ? "/m" : "/r") << i
                      << " attempt " << task.running_attempt << " timed out ("
                      << (now - task.started_ms) << " ms on " << task.tracker
                      << "); rescheduling";
        closeAttemptLocked(job, is_map, static_cast<uint32_t>(i),
                           task.running_attempt, /*succeeded=*/false,
                           "task timeout");
        if (task.has_speculative) {
          closeAttemptLocked(job, is_map, static_cast<uint32_t>(i),
                             task.speculative_attempt, /*succeeded=*/false,
                             "task timeout");
          task.has_speculative = false;
          task.speculative_tracker.clear();
        }
        attempts_failed_->add();
        tracer_->instant(
            TraceContext{job.trace_id, job.root_span_id, 0}, "jobtracker",
            std::string("ATTEMPT_TIMEOUT ") + (is_map ? "m" : "r") +
                std::to_string(i) + " a" + std::to_string(task.running_attempt),
            {{"job", std::to_string(id)}, {"tracker", task.tracker}});
        task.state = TaskState::kPending;
        task.tracker.clear();
        ++task.failures;
        job.counters.increment(
            counters::kJobGroup,
            is_map ? counters::kFailedMaps : counters::kFailedReduces);
        if (task.failures >= max_attempts) {
          failJobLocked(job,
                        "task " + std::string(is_map ? "map" : "reduce") +
                            std::to_string(i) + " failed " +
                            std::to_string(task.failures) +
                            " times; last error: task timeout");
        }
      }
    };
    sweep(job.maps, /*is_map=*/true);
    sweep(job.reduces, /*is_map=*/false);
  }
}

void JobTracker::installRpc() {
  network_->bind(host_, kJobTrackerPort,
                 [this](const net::RpcRequest& req) -> Bytes {
    if (req.method == "registerTracker") {
      const auto [host, map_slots, reduce_slots, rack] =
          unpack<std::string, uint32_t, uint32_t, std::string>(req.body);
      registerTracker(host, map_slots, reduce_slots, rack);
      return {};
    }
    if (req.method == "heartbeat") {
      const auto [host, free_maps, free_reduces, reports, cursors] =
          unpack<std::string, uint32_t, uint32_t,
                 std::vector<TaskStatusReport>,
                 std::vector<ShuffleEventCursor>>(req.body);
      return pack(
          trackerHeartbeat(host, free_maps, free_reduces, reports, cursors));
    }
    throw InvalidArgumentError("jobtracker: unknown RPC method " + req.method);
  });
}

}  // namespace mh::mr
