#include "mh/mr/output_format.h"

#include <cstdio>

#include "mh/common/error.h"
#include "mh/mr/kv_stream.h"

namespace mh::mr {

std::string OutputFormat::partName(uint32_t partition) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "part-%05u", partition);
  return buf;
}

namespace {

/// Buffers records, writes a temporary attempt file, renames on close().
class BufferedWriter : public RecordWriter {
 public:
  BufferedWriter(FileSystemView& fs, std::string output_dir,
                 uint32_t partition, uint32_t attempt)
      : fs_(fs),
        final_path_(output_dir + "/" + OutputFormat::partName(partition)),
        temp_path_(output_dir + "/_temporary_" +
                   OutputFormat::partName(partition) + "_attempt" +
                   std::to_string(attempt)) {
    fs_.mkdirs(output_dir);
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    if (fs_.exists(temp_path_)) fs_.remove(temp_path_);
    fs_.writeFile(temp_path_, buffer_);
    if (fs_.exists(final_path_)) fs_.remove(final_path_);  // retried task
    fs_.rename(temp_path_, final_path_);
  }

 protected:
  FileSystemView& fs_;
  Bytes buffer_;

 private:
  std::string final_path_;
  std::string temp_path_;
  bool closed_ = false;
};

class TextWriter final : public BufferedWriter {
 public:
  using BufferedWriter::BufferedWriter;

  void write(std::string_view key, std::string_view value) override {
    buffer_.append(key);
    if (!value.empty()) {
      buffer_.push_back('\t');
      buffer_.append(value);
    }
    buffer_.push_back('\n');
  }
};

class KvWriterOut final : public BufferedWriter {
 public:
  using BufferedWriter::BufferedWriter;

  void write(std::string_view key, std::string_view value) override {
    KvWriter writer(buffer_);
    writer.write(key, value);
  }
};

}  // namespace

std::unique_ptr<RecordWriter> TextOutputFormat::createWriter(
    FileSystemView& fs, const std::string& output_dir, uint32_t partition,
    uint32_t attempt) {
  return std::make_unique<TextWriter>(fs, output_dir, partition, attempt);
}

std::unique_ptr<RecordWriter> KvOutputFormat::createWriter(
    FileSystemView& fs, const std::string& output_dir, uint32_t partition,
    uint32_t attempt) {
  return std::make_unique<KvWriterOut>(fs, output_dir, partition, attempt);
}

}  // namespace mh::mr
