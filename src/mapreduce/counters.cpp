#include "mh/mr/counters.h"

#include <sstream>

namespace mh::mr {

Counters::Counters(const Counters& other) {
  std::lock_guard<std::mutex> lock(other.mutex_);
  groups_ = other.groups_;
}

Counters& Counters::operator=(const Counters& other) {
  if (this == &other) return *this;
  // Lock ordering by address avoids deadlock on cross-assignment.
  std::scoped_lock lock(mutex_, other.mutex_);
  groups_ = other.groups_;
  return *this;
}

void Counters::increment(std::string_view group, std::string_view name,
                         int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto group_it = groups_.find(group);
  if (group_it == groups_.end()) {
    group_it = groups_.emplace(std::string(group),
                               std::map<std::string, int64_t, std::less<>>{})
                   .first;
  }
  auto& counter_map = group_it->second;
  const auto it = counter_map.find(name);
  if (it == counter_map.end()) {
    counter_map.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t Counters::value(std::string_view group, std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto group_it = groups_.find(group);
  if (group_it == groups_.end()) return 0;
  const auto it = group_it->second.find(name);
  return it == group_it->second.end() ? 0 : it->second;
}

void Counters::merge(const Counters& other) {
  const auto rows = other.snapshot();
  for (const auto& [group, name, value] : rows) {
    increment(group, name, value);
  }
}

std::vector<std::tuple<std::string, std::string, int64_t>>
Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::tuple<std::string, std::string, int64_t>> rows;
  for (const auto& [group, counter_map] : groups_) {
    for (const auto& [name, value] : counter_map) {
      rows.emplace_back(group, name, value);
    }
  }
  return rows;
}

Counters Counters::fromSnapshot(
    const std::vector<std::tuple<std::string, std::string, int64_t>>& rows) {
  Counters counters;
  for (const auto& [group, name, value] : rows) {
    counters.increment(group, name, value);
  }
  return counters;
}

std::string Counters::render() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "Counters:\n";
  for (const auto& [group, counter_map] : groups_) {
    out << "  " << group << "\n";
    for (const auto& [name, value] : counter_map) {
      out << "    " << name << "=" << value << "\n";
    }
  }
  return out.str();
}

}  // namespace mh::mr
