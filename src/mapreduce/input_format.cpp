#include "mh/mr/input_format.h"

#include <algorithm>

#include "mh/common/error.h"
#include "mh/mr/kv_stream.h"

namespace mh::mr {

std::vector<InputSplit> InputFormat::getSplits(
    FileSystemView& fs, const std::vector<std::string>& paths) {
  std::vector<InputSplit> splits;
  for (const auto& path : paths) {
    for (const auto& file : fs.listFiles(path)) {
      // Skip framework artifacts (Hadoop does the same for _logs etc.).
      const auto slash = file.find_last_of('/');
      const std::string name =
          slash == std::string::npos ? file : file.substr(slash + 1);
      if (name.starts_with("_") || name.starts_with(".")) continue;
      for (auto& split : fs.splitsForFile(file)) {
        splits.push_back(std::move(split));
      }
    }
  }
  return splits;
}

namespace {

/// Line reader honoring the split contract, zero-copy over the split's
/// backing buffer: the split itself is held as a refcounted view (for an
/// HDFS split inside one block, the replica's buffer, uncopied) and values
/// are string_views into it. Only the final line's tail — read ahead in
/// chunks of `mapred.linerecordreader.readahead.bytes` past the split end —
/// lands in an owned spill buffer, and only a line straddling the
/// view/spill seam is ever spliced.
class LineRecordReader final : public RecordReader {
 public:
  LineRecordReader(FileSystemView& fs, const InputSplit& split,
                   uint64_t readahead)
      : fs_(fs), split_(split), readahead_(std::max<uint64_t>(1, readahead)) {
    base_ = fs_.readRangeView(split.path, split.offset, split.length);
    read_end_ = split.offset + base_.size();
    if (split.offset > 0) {
      // The previous split owns our leading partial line.
      const size_t nl = base_.view().find('\n');
      if (nl == std::string_view::npos) {
        // The whole split is the middle of one line owned by someone else.
        pos_ = base_.size();
        exhausted_ = true;
      } else {
        pos_ = nl + 1;
      }
    }
  }

  bool next(std::string_view& key, std::string_view& value) override {
    if (exhausted_ && pos_ >= size()) return false;
    // Lines STARTING strictly after the split end belong to a later split.
    // A line starting exactly AT the end boundary is ours: the next split
    // unconditionally skips its leading partial-or-boundary line, so we
    // must read one line "past the end" (Hadoop's `pos <= end` rule).
    if (pos_ > split_.length) return false;

    size_t nl = findNewline(pos_);
    while (nl == kNpos) {
      // Line crosses the end of what we fetched; read ahead.
      const Bytes more = fs_.readRange(split_.path, read_end_, readahead_);
      if (more.empty()) break;  // EOF: last line has no terminator
      read_end_ += more.size();
      tail_ += more;
      nl = findNewline(pos_);
    }

    const size_t line_start = pos_;
    size_t line_end;
    if (nl == kNpos) {
      line_end = size();
      pos_ = size();
      exhausted_ = true;
      if (line_end == line_start) return false;  // empty tail
    } else {
      line_end = nl;
      pos_ = nl + 1;
    }
    if (line_end > line_start && at(line_end - 1) == '\r') --line_end;

    key_ = MrCodec<int64_t>::enc(
        static_cast<int64_t>(split_.offset + line_start));
    key = key_;
    value = lineView(line_start, line_end);
    return true;
  }

 private:
  static constexpr size_t kNpos = std::string_view::npos;

  /// Logical stream length: the split view plus readahead spill.
  size_t size() const { return base_.size() + tail_.size(); }

  char at(size_t i) const {
    return i < base_.size() ? base_.view()[i] : tail_[i - base_.size()];
  }

  size_t findNewline(size_t from) const {
    if (from < base_.size()) {
      const size_t nl = base_.view().find('\n', from);
      if (nl != kNpos) return nl;
    }
    const size_t tail_from = from > base_.size() ? from - base_.size() : 0;
    const size_t nl = tail_.find('\n', tail_from);
    return nl == Bytes::npos ? kNpos : base_.size() + nl;
  }

  std::string_view lineView(size_t start, size_t end) {
    if (end <= base_.size()) return base_.view().substr(start, end - start);
    if (start >= base_.size()) {
      return std::string_view(tail_).substr(start - base_.size(), end - start);
    }
    // Straddles the view/spill seam (at most once, for the final line).
    line_.assign(base_.view().substr(start));
    line_.append(tail_, 0, end - base_.size());
    return line_;
  }

  FileSystemView& fs_;
  InputSplit split_;
  uint64_t readahead_;
  BufferView base_;  // the split's bytes; values alias this buffer
  Bytes tail_;       // readahead past the split end (final-line spillover)
  Bytes key_;        // backing store for the returned key view
  Bytes line_;       // splice buffer for a line straddling base_/tail_
  uint64_t read_end_ = 0;  // absolute file offset of the end of the stream
  size_t pos_ = 0;         // cursor within the stream (0 = split offset)
  bool exhausted_ = false;
};

/// Reads kv_stream frames. Only whole-file splits are supported (binary
/// frames are not boundary-seekable); callers use it for part files written
/// by KvOutputFormat.
class KvRecordReader final : public RecordReader {
 public:
  KvRecordReader(FileSystemView& fs, const InputSplit& split) {
    if (split.offset != 0 || split.length != fs.fileLength(split.path)) {
      throw InvalidArgumentError(
          "KvInputFormat requires whole-file splits: " + split.path);
    }
    data_ = fs.readRangeView(split.path, 0, split.length);
    reader_ = std::make_unique<KvReader>(data_.view());
  }

  bool next(std::string_view& key, std::string_view& value) override {
    return reader_->next(key, value);
  }

 private:
  BufferView data_;  // frames decode as views into this buffer
  std::unique_ptr<KvReader> reader_;
};

}  // namespace

std::unique_ptr<RecordReader> TextInputFormat::createReader(
    FileSystemView& fs, const InputSplit& split, const Config& conf) {
  const uint64_t readahead = static_cast<uint64_t>(std::max<int64_t>(
      1, conf.getInt("mapred.linerecordreader.readahead.bytes", 64 * 1024)));
  return std::make_unique<LineRecordReader>(fs, split, readahead);
}

std::unique_ptr<RecordReader> KvInputFormat::createReader(
    FileSystemView& fs, const InputSplit& split, const Config&) {
  return std::make_unique<KvRecordReader>(fs, split);
}

}  // namespace mh::mr
