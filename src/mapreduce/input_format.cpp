#include "mh/mr/input_format.h"

#include <algorithm>

#include "mh/common/error.h"
#include "mh/mr/kv_stream.h"

namespace mh::mr {

std::vector<InputSplit> InputFormat::getSplits(
    FileSystemView& fs, const std::vector<std::string>& paths) {
  std::vector<InputSplit> splits;
  for (const auto& path : paths) {
    for (const auto& file : fs.listFiles(path)) {
      // Skip framework artifacts (Hadoop does the same for _logs etc.).
      const auto slash = file.find_last_of('/');
      const std::string name =
          slash == std::string::npos ? file : file.substr(slash + 1);
      if (name.starts_with("_") || name.starts_with(".")) continue;
      for (auto& split : fs.splitsForFile(file)) {
        splits.push_back(std::move(split));
      }
    }
  }
  return splits;
}

namespace {

/// Line reader honoring the split contract. Materializes the split plus the
/// tail of its final line (read ahead in chunks of
/// `mapred.linerecordreader.readahead.bytes`).
class LineRecordReader final : public RecordReader {
 public:
  LineRecordReader(FileSystemView& fs, const InputSplit& split,
                   uint64_t readahead)
      : fs_(fs), split_(split), readahead_(std::max<uint64_t>(1, readahead)) {
    data_ = fs_.readRange(split.path, split.offset, split.length);
    read_end_ = split.offset + data_.size();
    if (split.offset > 0) {
      // The previous split owns our leading partial line.
      const size_t nl = data_.find('\n');
      if (nl == Bytes::npos) {
        // The whole split is the middle of one line owned by someone else.
        pos_ = data_.size();
        exhausted_ = true;
      } else {
        pos_ = nl + 1;
      }
    }
  }

  bool next(Bytes& key, Bytes& value) override {
    if (exhausted_ && pos_ >= data_.size()) return false;
    // Lines STARTING strictly after the split end belong to a later split.
    // A line starting exactly AT the end boundary is ours: the next split
    // unconditionally skips its leading partial-or-boundary line, so we
    // must read one line "past the end" (Hadoop's `pos <= end` rule).
    if (pos_ > split_.length) return false;

    size_t nl = data_.find('\n', pos_);
    while (nl == Bytes::npos) {
      // Line crosses the end of what we fetched; read ahead.
      const Bytes more = fs_.readRange(split_.path, read_end_, readahead_);
      if (more.empty()) break;  // EOF: last line has no terminator
      read_end_ += more.size();
      data_ += more;
      nl = data_.find('\n', pos_);
    }

    const size_t line_start = pos_;
    size_t line_end;
    if (nl == Bytes::npos) {
      line_end = data_.size();
      pos_ = data_.size();
      exhausted_ = true;
      if (line_end == line_start) return false;  // empty tail
    } else {
      line_end = nl;
      pos_ = nl + 1;
    }
    if (line_end > line_start && data_[line_end - 1] == '\r') --line_end;

    key = MrCodec<int64_t>::enc(
        static_cast<int64_t>(split_.offset + line_start));
    value.assign(data_, line_start, line_end - line_start);
    return true;
  }

 private:
  FileSystemView& fs_;
  InputSplit split_;
  uint64_t readahead_;
  Bytes data_;
  uint64_t read_end_ = 0;  // absolute file offset of the end of data_
  size_t pos_ = 0;         // cursor within data_ (relative to split offset)
  bool exhausted_ = false;
};

/// Reads kv_stream frames. Only whole-file splits are supported (binary
/// frames are not boundary-seekable); callers use it for part files written
/// by KvOutputFormat.
class KvRecordReader final : public RecordReader {
 public:
  KvRecordReader(FileSystemView& fs, const InputSplit& split) {
    if (split.offset != 0 || split.length != fs.fileLength(split.path)) {
      throw InvalidArgumentError(
          "KvInputFormat requires whole-file splits: " + split.path);
    }
    data_ = fs.readRange(split.path, 0, split.length);
    reader_ = std::make_unique<KvReader>(data_);
  }

  bool next(Bytes& key, Bytes& value) override {
    std::string_view k;
    std::string_view v;
    if (!reader_->next(k, v)) return false;
    key.assign(k);
    value.assign(v);
    return true;
  }

 private:
  Bytes data_;
  std::unique_ptr<KvReader> reader_;
};

}  // namespace

std::unique_ptr<RecordReader> TextInputFormat::createReader(
    FileSystemView& fs, const InputSplit& split, const Config& conf) {
  const uint64_t readahead = static_cast<uint64_t>(std::max<int64_t>(
      1, conf.getInt("mapred.linerecordreader.readahead.bytes", 64 * 1024)));
  return std::make_unique<LineRecordReader>(fs, split, readahead);
}

std::unique_ptr<RecordReader> KvInputFormat::createReader(
    FileSystemView& fs, const InputSplit& split, const Config&) {
  return std::make_unique<KvRecordReader>(fs, split);
}

}  // namespace mh::mr
