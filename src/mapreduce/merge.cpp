#include "mh/mr/merge.h"

#include <limits>

namespace mh::mr {

namespace {
constexpr size_t kUnset = std::numeric_limits<size_t>::max();
}  // namespace

KvRunMerger::KvRunMerger(const std::vector<std::string_view>& runs) {
  cursors_.reserve(runs.size());
  for (const std::string_view run : runs) {
    if (run.empty()) continue;
    Cursor cursor(run);
    // A non-empty run yields at least one record or throws on a torn frame.
    if (cursor.reader.next(cursor.key, cursor.value)) {
      cursors_.push_back(cursor);
    }
  }

  // Single-run fast path: no tree, the one cursor is always the winner.
  const size_t k = cursors_.size();
  if (k <= 1) return;

  // Build the loser tree by replaying every leaf: winners climb, losers
  // park at internal nodes, the last replay deposits the overall winner.
  tree_.assign(k, kUnset);
  for (size_t leaf = 0; leaf < k; ++leaf) replay(leaf);
  winner_ = tree_[0];
}

bool KvRunMerger::beats(size_t a, size_t b) const {
  const Cursor& ca = cursors_[a];
  const Cursor& cb = cursors_[b];
  if (ca.exhausted) return false;
  if (cb.exhausted) return true;
  if (ca.key != cb.key) return ca.key < cb.key;
  return a < b;  // stable: equal keys drain in run order
}

void KvRunMerger::replay(size_t leaf) {
  const size_t k = cursors_.size();
  size_t contender = leaf;
  for (size_t node = (leaf + k) / 2; node > 0; node /= 2) {
    if (tree_[node] == kUnset) {  // initial build: park and wait for a rival
      tree_[node] = contender;
      return;
    }
    if (beats(tree_[node], contender)) std::swap(contender, tree_[node]);
  }
  tree_[0] = contender;
}

void KvRunMerger::advanceCursor(size_t index) {
  Cursor& cursor = cursors_[index];
  if (!cursor.reader.next(cursor.key, cursor.value)) {
    cursor.exhausted = true;
    cursor.key = {};
    cursor.value = {};
  }
  if (cursors_.size() > 1) {
    replay(index);
    winner_ = tree_[0];
  }
}

std::optional<std::string_view> KvRunMerger::nextValueInGroup() {
  if (!in_group_) return std::nullopt;
  const Cursor& cursor = cursors_[winner_];
  if (cursor.exhausted || cursor.key != group_key_) {
    in_group_ = false;
    return std::nullopt;
  }
  const std::string_view value = cursor.value;
  ++records_read_;
  advanceCursor(winner_);
  return value;
}

bool KvRunMerger::nextGroup() {
  while (in_group_) nextValueInGroup();  // skip what the reducer left behind
  if (cursors_.empty() || cursors_[winner_].exhausted) return false;
  group_key_ = cursors_[winner_].key;
  in_group_ = true;
  return true;
}

// ------------------------------------------------------ IncrementalMerger

void IncrementalMerger::addRun(std::vector<uint32_t> maps, BufferView run) {
  if (maps.empty()) {
    throw InvalidArgumentError("IncrementalMerger::addRun: empty cover");
  }
  // A cover intersecting pending runs replaces them (stale-generation
  // delivery); intersecting a folded segment means the caller skipped the
  // invalidate() that should have dissolved it.
  for (auto it = items_.begin(); it != items_.end();) {
    const Item& item = it->second;
    const bool intersects = std::any_of(
        maps.begin(), maps.end(), [&](uint32_t m) {
          return std::binary_search(item.cover.begin(), item.cover.end(), m);
        });
    if (!intersects) {
      ++it;
      continue;
    }
    if (item.segment) {
      throw InvalidArgumentError(
          "IncrementalMerger::addRun: cover intersects folded segment "
          "(invalidate first)");
    }
    held_bytes_ -= static_cast<int64_t>(item.data.size());
    it = items_.erase(it);
  }
  held_bytes_ += static_cast<int64_t>(run.size());
  const uint32_t key = maps.front();
  items_[key] = Item{std::move(maps), std::move(run), /*segment=*/false};
}

bool IncrementalMerger::covers(uint32_t map) const {
  for (const auto& [key, item] : items_) {
    if (std::binary_search(item.cover.begin(), item.cover.end(), map)) {
      return true;
    }
  }
  return false;
}

std::vector<uint32_t> IncrementalMerger::invalidate(uint32_t map) {
  for (auto it = items_.begin(); it != items_.end(); ++it) {
    const Item& item = it->second;
    if (!std::binary_search(item.cover.begin(), item.cover.end(), map)) {
      continue;
    }
    std::vector<uint32_t> collateral;
    collateral.reserve(item.cover.size() - 1);
    for (const uint32_t m : item.cover) {
      if (m != map) collateral.push_back(m);
    }
    held_bytes_ -= static_cast<int64_t>(item.data.size());
    items_.erase(it);
    return collateral;
  }
  return {};
}

bool IncrementalMerger::foldOnce() {
  if (opts_.fold_fanin < 2) return false;
  // Collect maximal foldable chains of pending runs, in canonical order.
  std::vector<std::vector<const Item*>> chains;
  std::vector<const Item*> chain;
  const Item* prev = nullptr;
  const auto flush = [&] {
    if (chain.size() >= opts_.fold_fanin) chains.push_back(chain);
    chain.clear();
  };
  for (const auto& [key, item] : items_) {
    if (item.segment) {
      flush();
      prev = nullptr;
      continue;
    }
    // adjacent_only: the chain must stay a gap-free map-index range — a
    // hole could still be filled by a later-arriving run that canonically
    // sorts inside the block, which would break merge-order identity.
    if (prev != nullptr && opts_.adjacent_only &&
        item.cover.front() != prev->cover.back() + 1) {
      flush();
    }
    chain.push_back(&item);
    prev = &item;
  }
  flush();
  if (chains.empty()) return false;

  struct Folded {
    std::vector<uint32_t> cover;
    Bytes data;
  };
  std::vector<Folded> folded;
  folded.reserve(chains.size());
  for (const auto& block : chains) {
    Folded f;
    for (const Item* item : block) {
      f.cover.insert(f.cover.end(), item->cover.begin(), item->cover.end());
    }
    std::sort(f.cover.begin(), f.cover.end());
    f.data = foldBlock(block);
    folded.push_back(std::move(f));
  }
  for (const auto& block : chains) {
    for (const Item* item : block) {
      held_bytes_ -= static_cast<int64_t>(item->data.size());
      items_.erase(item->cover.front());
    }
  }
  for (Folded& f : folded) {
    const uint32_t key = f.cover.front();
    BufferView segment(Buffer::fromString(std::move(f.data)));
    held_bytes_ += static_cast<int64_t>(segment.size());
    items_[key] = Item{std::move(f.cover), std::move(segment),
                       /*segment=*/true};
  }
  return true;
}

Bytes IncrementalMerger::foldBlock(
    const std::vector<const Item*>& block) const {
  std::vector<BufferView> runs;
  runs.reserve(block.size());
  for (const Item* item : block) runs.push_back(item->data);
  const DecodedRunSet decoded(runs, opts_.allow_decode, opts_.metrics,
                              opts_.trace, opts_.component);
  KvRunMerger merger(decoded.views());
  Bytes out;
  KvWriter writer(out);
  while (merger.nextGroup()) {
    const std::string_view key = merger.key();
    while (const auto value = merger.values().next()) {
      writer.write(key, *value);
    }
  }
  return out;
}

std::vector<BufferView> IncrementalMerger::assemble() const {
  std::vector<BufferView> out;
  out.reserve(items_.size());
  for (const auto& [key, item] : items_) out.push_back(item.data);
  return out;
}

size_t IncrementalMerger::pendingRuns() const {
  size_t n = 0;
  for (const auto& [key, item] : items_) {
    if (!item.segment) ++n;
  }
  return n;
}

size_t IncrementalMerger::segmentCount() const {
  return items_.size() - pendingRuns();
}

}  // namespace mh::mr
