#include "mh/mr/merge.h"

#include <limits>

namespace mh::mr {

namespace {
constexpr size_t kUnset = std::numeric_limits<size_t>::max();
}  // namespace

KvRunMerger::KvRunMerger(const std::vector<std::string_view>& runs) {
  cursors_.reserve(runs.size());
  for (const std::string_view run : runs) {
    if (run.empty()) continue;
    Cursor cursor(run);
    // A non-empty run yields at least one record or throws on a torn frame.
    if (cursor.reader.next(cursor.key, cursor.value)) {
      cursors_.push_back(cursor);
    }
  }

  // Single-run fast path: no tree, the one cursor is always the winner.
  const size_t k = cursors_.size();
  if (k <= 1) return;

  // Build the loser tree by replaying every leaf: winners climb, losers
  // park at internal nodes, the last replay deposits the overall winner.
  tree_.assign(k, kUnset);
  for (size_t leaf = 0; leaf < k; ++leaf) replay(leaf);
  winner_ = tree_[0];
}

bool KvRunMerger::beats(size_t a, size_t b) const {
  const Cursor& ca = cursors_[a];
  const Cursor& cb = cursors_[b];
  if (ca.exhausted) return false;
  if (cb.exhausted) return true;
  if (ca.key != cb.key) return ca.key < cb.key;
  return a < b;  // stable: equal keys drain in run order
}

void KvRunMerger::replay(size_t leaf) {
  const size_t k = cursors_.size();
  size_t contender = leaf;
  for (size_t node = (leaf + k) / 2; node > 0; node /= 2) {
    if (tree_[node] == kUnset) {  // initial build: park and wait for a rival
      tree_[node] = contender;
      return;
    }
    if (beats(tree_[node], contender)) std::swap(contender, tree_[node]);
  }
  tree_[0] = contender;
}

void KvRunMerger::advanceCursor(size_t index) {
  Cursor& cursor = cursors_[index];
  if (!cursor.reader.next(cursor.key, cursor.value)) {
    cursor.exhausted = true;
    cursor.key = {};
    cursor.value = {};
  }
  if (cursors_.size() > 1) {
    replay(index);
    winner_ = tree_[0];
  }
}

std::optional<std::string_view> KvRunMerger::nextValueInGroup() {
  if (!in_group_) return std::nullopt;
  const Cursor& cursor = cursors_[winner_];
  if (cursor.exhausted || cursor.key != group_key_) {
    in_group_ = false;
    return std::nullopt;
  }
  const std::string_view value = cursor.value;
  ++records_read_;
  advanceCursor(winner_);
  return value;
}

bool KvRunMerger::nextGroup() {
  while (in_group_) nextValueInGroup();  // skip what the reducer left behind
  if (cursors_.empty() || cursors_[winner_].exhausted) return false;
  group_key_ = cursors_[winner_].key;
  in_group_ = true;
  return true;
}

}  // namespace mh::mr
