#include "mh/mr/local_runner.h"

#include <future>

#include "mh/common/log.h"
#include "mh/common/stopwatch.h"
#include "mh/common/threadpool.h"

namespace mh::mr {

JobResult LocalJobRunner::run(JobSpec spec) {
  Stopwatch watch;
  JobResult result;
  try {
    spec.validateAndDefault();
    const auto input_format = spec.input_format();
    const auto splits = input_format->getSplits(fs_, spec.input_paths);

    // Map phase.
    std::vector<MapTaskResult> map_results(splits.size());
    const auto threads = static_cast<size_t>(
        spec.conf.getInt("mapred.local.map.threads", 1));
    if (threads <= 1) {
      for (size_t i = 0; i < splits.size(); ++i) {
        map_results[i] = runMapTask(spec, fs_, splits[i]);
      }
    } else {
      ThreadPool pool(threads);
      std::vector<std::future<MapTaskResult>> futures;
      futures.reserve(splits.size());
      for (const auto& split : splits) {
        futures.push_back(pool.submit(
            [this, &spec, split] { return runMapTask(spec, fs_, split); }));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        map_results[i] = futures[i].get();
      }
    }
    for (auto& mr : map_results) {
      result.counters.merge(mr.counters);
      result.map_millis += mr.millis;
    }
    result.counters.increment(counters::kJobGroup, counters::kLaunchedMaps,
                              static_cast<int64_t>(splits.size()));

    // "Shuffle": gather the runs for each partition (all in memory, all
    // local — that is the point of the serial mode). Wrapping adopts each
    // run's storage into a refcounted buffer; the merge reads it in place.
    std::vector<std::vector<BufferView>> partition_runs(spec.num_reducers);
    for (uint32_t p = 0; p < spec.num_reducers; ++p) {
      auto& runs = partition_runs[p];
      runs.reserve(map_results.size());
      for (auto& mr : map_results) {
        if (!mr.partitions[p].empty()) {
          result.counters.increment(
              counters::kShuffleGroup, counters::kShuffleBytes,
              static_cast<int64_t>(mr.partitions[p].size()));
        }
        runs.emplace_back(Buffer::fromString(std::move(mr.partitions[p])));
      }
    }

    // Reduce phase: each partition commits its own part file, so partitions
    // can run in parallel just like map splits do.
    const auto reduce_threads = static_cast<size_t>(
        spec.conf.getInt("mapred.local.reduce.threads", 1));
    if (reduce_threads <= 1) {
      for (uint32_t p = 0; p < spec.num_reducers; ++p) {
        const auto rr = runReduceTask(spec, fs_, p, 0, partition_runs[p]);
        result.counters.merge(rr.counters);
        result.reduce_millis += rr.millis;
      }
    } else {
      ThreadPool pool(reduce_threads);
      std::vector<std::future<ReduceTaskResult>> futures;
      futures.reserve(spec.num_reducers);
      for (uint32_t p = 0; p < spec.num_reducers; ++p) {
        futures.push_back(pool.submit([this, &spec, &partition_runs, p] {
          return runReduceTask(spec, fs_, p, 0, partition_runs[p]);
        }));
      }
      for (auto& future : futures) {
        const auto rr = future.get();
        result.counters.merge(rr.counters);
        result.reduce_millis += rr.millis;
      }
    }
    result.counters.increment(counters::kJobGroup,
                              counters::kLaunchedReduces,
                              spec.num_reducers);
    result.state = JobState::kSucceeded;
  } catch (const std::exception& e) {
    result.state = JobState::kFailed;
    result.error = e.what();
    logWarn("localrunner") << "job '" << spec.name << "' failed: " << e.what();
  }
  result.elapsed_millis = watch.elapsedMillis();
  return result;
}

}  // namespace mh::mr
