#include "mh/mr/task_runner.h"

#include <algorithm>

#include "mh/common/stopwatch.h"
#include "mh/mr/kv_stream.h"
#include "mh/mr/merge.h"

namespace mh::mr {

namespace {

using namespace counters;

/// ValuesIterator over a contiguous, key-sorted slice of records.
class SliceValuesIterator final : public ValuesIterator {
 public:
  SliceValuesIterator(const std::vector<KeyValue>& records, size_t begin,
                      size_t end)
      : records_(records), pos_(begin), end_(end) {}

  std::optional<std::string_view> next() override {
    if (pos_ >= end_) return std::nullopt;
    return std::string_view(records_[pos_++].value);
  }

 private:
  const std::vector<KeyValue>& records_;
  size_t pos_;
  size_t end_;
};

/// Runs `reducer` over key-grouped `records` (must be key-sorted), pushing
/// emissions through `ctx`. Returns the number of groups.
int64_t reduceGroups(Reducer& reducer, const std::vector<KeyValue>& records,
                     TaskContext& ctx) {
  int64_t groups = 0;
  size_t i = 0;
  reducer.setup(ctx);
  while (i < records.size()) {
    size_t j = i + 1;
    while (j < records.size() && records[j].key == records[i].key) ++j;
    SliceValuesIterator values(records, i, j);
    reducer.reduce(records[i].key, values, ctx);
    ++groups;
    i = j;
  }
  reducer.cleanup(ctx);
  return groups;
}

void sortByKey(std::vector<KeyValue>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const KeyValue& a, const KeyValue& b) {
                     return a.key < b.key;
                   });
}

}  // namespace

MapTaskResult runMapTask(const JobSpec& spec, FileSystemView& fs,
                         const InputSplit& split, TaskContext::HeapFn heap,
                         TraceCollector* trace,
                         std::string_view trace_component) {
  Stopwatch watch;
  MapTaskResult result;
  Counters& c = result.counters;

  const auto input_format = spec.input_format();
  const auto partitioner = spec.partitioner();
  const uint32_t parts = spec.num_reducers;

  // Collect map output per partition.
  std::vector<std::vector<KeyValue>> buffers(parts);
  TaskContext map_ctx(
      spec.conf, c,
      [&](Bytes key, Bytes value) {
        c.increment(kTaskGroup, kMapOutputRecords);
        c.increment(kTaskGroup, kMapOutputBytes,
                    static_cast<int64_t>(key.size() + value.size()));
        const uint32_t p = partitioner->partition(key, parts);
        buffers[p].push_back({std::move(key), std::move(value)});
      },
      heap, &fs);

  {
    const auto mapper = spec.mapper();
    const auto reader = input_format->createReader(fs, split);
    mapper->setup(map_ctx);
    Bytes key;
    Bytes value;
    while (reader->next(key, value)) {
      c.increment(kTaskGroup, kMapInputRecords);
      mapper->map(key, value, map_ctx);
    }
    mapper->cleanup(map_ctx);
  }

  // Sort each partition; optionally combine; encode the final runs.
  TraceSpan sort_span(trace, trace_component, "SORT_SPILL");
  result.partitions.resize(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    auto& records = buffers[p];
    sortByKey(records);

    if (spec.combiner && !records.empty()) {
      c.increment(kTaskGroup, kCombineInputRecords,
                  static_cast<int64_t>(records.size()));
      std::vector<KeyValue> combined;
      TaskContext combine_ctx(
          spec.conf, c,
          [&](Bytes key, Bytes value) {
            c.increment(kTaskGroup, kCombineOutputRecords);
            combined.push_back({std::move(key), std::move(value)});
          },
          heap, &fs);
      const auto combiner = spec.combiner();
      reduceGroups(*combiner, records, combine_ctx);
      sortByKey(combined);  // combiners usually keep keys, but don't assume
      records = std::move(combined);
    }

    c.increment(kTaskGroup, kSpilledRecords,
                static_cast<int64_t>(records.size()));
    result.partitions[p] = encodeKvRun(records);
  }

  result.millis = watch.elapsedMillis();
  return result;
}

ReduceTaskResult runReduceTask(const JobSpec& spec, FileSystemView& fs,
                               uint32_t partition, uint32_t attempt,
                               const std::vector<Bytes>& input_runs,
                               TaskContext::HeapFn heap, TraceCollector* trace,
                               std::string_view trace_component) {
  Stopwatch watch;
  ReduceTaskResult result;
  Counters& c = result.counters;

  // Merge phase: each input run is already key-sorted, so stream them
  // through a k-way merge — no run is ever decoded whole, and keys/values
  // reach the reducer as views into the fetched buffers.
  std::vector<std::string_view> views(input_runs.begin(), input_runs.end());
  KvRunMerger merger(views);
  c.increment(kTaskGroup, kMergeSegments,
              static_cast<int64_t>(merger.segmentCount()));
  if (trace != nullptr) {
    trace->instant(trace_component, "MERGE r" + std::to_string(partition),
                   {{"segments", std::to_string(merger.segmentCount())}});
  }

  const auto output_format = spec.output_format();
  const auto writer =
      output_format->createWriter(fs, spec.output_dir, partition, attempt);
  TaskContext reduce_ctx(
      spec.conf, c,
      [&](Bytes key, Bytes value) {
        c.increment(kTaskGroup, kReduceOutputRecords);
        writer->write(key, value);
      },
      heap, &fs);

  const auto reducer = spec.reducer();
  int64_t groups = 0;
  reducer->setup(reduce_ctx);
  while (merger.nextGroup()) {
    reducer->reduce(merger.key(), merger.values(), reduce_ctx);
    ++groups;
  }
  reducer->cleanup(reduce_ctx);
  c.increment(kTaskGroup, kReduceInputGroups, groups);
  c.increment(kTaskGroup, kReduceInputRecords, merger.recordsRead());
  writer->close();

  result.millis = watch.elapsedMillis();
  return result;
}

}  // namespace mh::mr
