#include "mh/mr/task_runner.h"

#include <memory>

#include "mh/common/stopwatch.h"
#include "mh/mr/map_output_buffer.h"
#include "mh/mr/merge.h"

namespace mh::mr {

namespace {

using namespace counters;

}  // namespace

MapTaskResult runMapTask(const JobSpec& spec, FileSystemView& fs,
                         const InputSplit& split, TaskContext::HeapFn heap,
                         TraceCollector* trace,
                         std::string_view trace_component,
                         MetricsRegistry* metrics) {
  Stopwatch watch;
  MapTaskResult result;
  Counters& c = result.counters;

  const auto input_format = spec.input_format();
  const auto partitioner = spec.partitioner();
  const uint32_t parts = spec.num_reducers;

  // Collect into the arena-backed sort/spill buffer: no per-record
  // allocation, bounded working set (io.sort.mb), combiner run per spill.
  MapOutputBuffer buffer(spec, c, heap, &fs, trace, trace_component, metrics);
  TaskContext map_ctx(
      spec.conf, c,
      [&](Bytes key, Bytes value) {
        c.increment(kTaskGroup, kMapOutputRecords);
        c.increment(kTaskGroup, kMapOutputBytes,
                    static_cast<int64_t>(key.size() + value.size()));
        buffer.collect(key, value, partitioner->partition(key, parts));
      },
      heap, &fs);

  {
    const auto mapper = spec.mapper();
    const auto reader = input_format->createReader(fs, split, spec.conf);
    mapper->setup(map_ctx);
    std::string_view key;
    std::string_view value;
    while (reader->next(key, value)) {
      c.increment(kTaskGroup, kMapInputRecords);
      mapper->map(key, value, map_ctx);
    }
    mapper->cleanup(map_ctx);
  }

  result.partitions = buffer.finish();
  result.sort_micros = buffer.sortMicros();
  result.millis = watch.elapsedMillis();
  return result;
}

ReduceTaskResult runReduceTask(const JobSpec& spec, FileSystemView& fs,
                               uint32_t partition, uint32_t attempt,
                               const std::vector<BufferView>& input_runs,
                               TaskContext::HeapFn heap, TraceCollector* trace,
                               std::string_view trace_component,
                               MetricsRegistry* metrics) {
  Stopwatch watch;
  ReduceTaskResult result;
  Counters& c = result.counters;

  // Compression seams deliver whole runs as framed codec streams; unwrap
  // them at the merge input. The conf gate keeps raw bytes that merely
  // resemble a codec header from being misdecoded when both seams are off.
  const bool seams_on =
      codecFromName(spec.conf.get("mapred.map.output.compression.codec",
                                  "none")) != CodecKind::kNone ||
      codecFromName(spec.conf.get("mapred.shuffle.compression", "none")) !=
          CodecKind::kNone;
  // Merge setup — run decode plus loser-tree construction — gets its own
  // span so the critical-path report can attribute it separately from
  // reduce compute (DECOMPRESS spans from the seams nest inside it).
  std::unique_ptr<DecodedRunSet> run_set;
  std::unique_ptr<KvRunMerger> merger;
  {
    TraceSpan merge_span(trace, trace_component,
                         "MERGE r" + std::to_string(partition));
    run_set = std::make_unique<DecodedRunSet>(input_runs, seams_on, metrics,
                                              trace, trace_component);
    // Merge phase: each input run is already key-sorted, so stream them
    // through a k-way merge — no run is ever decoded whole beyond that
    // unwrap, and keys/values reach the reducer as views into the fetched
    // (or freshly decoded) buffers.
    merger = std::make_unique<KvRunMerger>(run_set->views());
    merge_span.arg("segments", std::to_string(merger->segmentCount()));
  }
  if (run_set->encodedBytes() > 0) {
    c.increment(kShuffleGroup, kShuffleCompressedBytes,
                run_set->encodedBytes());
    c.increment(kShuffleGroup, kShuffleRawBytes, run_set->rawBytes());
  }
  // The decoded buffers join the reduce working set for the whole merge;
  // charge them alongside the fetched (encoded) runs the caller charged.
  struct DecodeHeapGuard {
    TaskContext::HeapFn* heap;
    int64_t amount = 0;
    ~DecodeHeapGuard() {
      if (amount != 0 && *heap) (*heap)(-amount);
    }
  } decode_guard{&heap};
  if (heap && run_set->decodedHeapBytes() > 0) {
    decode_guard.amount = run_set->decodedHeapBytes();
    heap(decode_guard.amount);
  }

  c.increment(kTaskGroup, kMergeSegments,
              static_cast<int64_t>(merger->segmentCount()));

  const auto output_format = spec.output_format();
  const auto writer =
      output_format->createWriter(fs, spec.output_dir, partition, attempt);
  TaskContext reduce_ctx(
      spec.conf, c,
      [&](Bytes key, Bytes value) {
        c.increment(kTaskGroup, kReduceOutputRecords);
        writer->write(key, value);
      },
      heap, &fs);

  const auto reducer = spec.reducer();
  int64_t groups = 0;
  reducer->setup(reduce_ctx);
  while (merger->nextGroup()) {
    reducer->reduce(merger->key(), merger->values(), reduce_ctx);
    ++groups;
  }
  reducer->cleanup(reduce_ctx);
  c.increment(kTaskGroup, kReduceInputGroups, groups);
  c.increment(kTaskGroup, kReduceInputRecords, merger->recordsRead());
  writer->close();

  result.millis = watch.elapsedMillis();
  return result;
}

}  // namespace mh::mr
