#pragma once

#include <cstdint>
#include <string>

#include "mh/common/rng.h"
#include "mh/sim/simulation.h"

/// \file cluster_model.h
/// The Figure-1 experiment: the same data-scan MapReduce workload on the
/// two cluster designs the paper contrasts —
///
///  (a) a typical HPC cluster: diskless compute nodes, data on a few
///      parallel-storage servers behind the interconnect; every byte
///      crosses the network and the storage servers' disks are shared;
///  (b) a Hadoop cluster: disks on the compute nodes, most reads local
///      (data locality); only the non-local fraction crosses the network.
///
/// Hardware constants default to the paper's era: 100 MB/s SATA disks,
/// 1 GbE NICs, an oversubscribed core switch.

namespace mh::sim {

inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

struct NodeHardware {
  double disk_bps = 100 * kMB;  ///< one data disk
  double nic_bps = 125 * kMB;   ///< 1 GbE
  int cores = 8;
};

struct ScanWorkload {
  double data_gb = 100.0;
  /// CPU seconds to process one GB on one core (0 = pure I/O scan).
  double compute_secs_per_gb = 2.0;
  uint64_t block_bytes = 256ull * 1024 * 1024;
};

struct ArchitectureResult {
  double seconds = 0;          ///< job completion time
  double aggregate_gbps = 0;   ///< data GB / seconds
  double network_gb = 0;       ///< bytes that crossed the core switch
  double avg_disk_util = 0;    ///< mean busy fraction of data disks
};

/// Hadoop-style cluster: `nodes` compute+storage nodes; `locality_fraction`
/// of blocks are read from the local disk (HDFS placement + JobTracker
/// scheduling typically give >0.9), the rest from a random remote node.
struct HadoopArchSpec {
  int nodes = 8;
  NodeHardware hw;
  double locality_fraction = 0.95;
  /// Core switch oversubscription: backplane = nodes * nic / factor.
  double oversubscription = 4.0;
  uint64_t seed = 1;
};

/// HPC-style cluster: `compute_nodes` diskless workers, data served by
/// `storage_nodes` servers (each with `storage_disks` disks).
struct HpcArchSpec {
  int compute_nodes = 8;
  int storage_nodes = 2;
  int storage_disks = 4;  ///< disks per storage server (RAID-ish)
  NodeHardware hw;
  double oversubscription = 4.0;
};

ArchitectureResult simulateHadoopScan(const HadoopArchSpec& spec,
                                      const ScanWorkload& workload);

ArchitectureResult simulateHpcScan(const HpcArchSpec& spec,
                                   const ScanWorkload& workload);

}  // namespace mh::sim
