#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

/// \file simulation.h
/// A small discrete-event simulation core for the experiments whose
/// published numbers depend on 2014 cluster hardware at 171 GB scale —
/// things a laptop cannot replay natively (DESIGN.md experiments F1, C5,
/// C6, C7). Deterministic: no wall clock, no threads.

namespace mh::sim {

/// Simulated seconds.
using SimTime = double;

class Simulation {
 public:
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now). Events at equal times
  /// run in scheduling order.
  void at(SimTime t, std::function<void()> fn);

  /// Schedules `fn` `dt` seconds from now.
  void after(SimTime dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Runs until the event queue drains. Returns the final time.
  SimTime run();

  /// Runs until the queue drains or `deadline` passes.
  SimTime runUntil(SimTime deadline);

  uint64_t eventsProcessed() const { return events_processed_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

/// A serial FIFO bandwidth resource: a disk, a NIC, a switch backplane, or
/// a metadata CPU. Work is granted in request order; each request occupies
/// the resource for bytes / bandwidth seconds.
class Resource {
 public:
  Resource(Simulation& sim, std::string name, double bytes_per_sec);

  /// Reserves `bytes` of service starting no earlier than now; returns the
  /// completion time (does NOT schedule anything).
  SimTime reserve(uint64_t bytes);

  /// Reserves service time directly in seconds.
  SimTime reserveSeconds(double seconds);

  /// Reserves `bytes` of service starting no earlier than `earliest`
  /// (dependency-ordered pipelines: compute cannot start before its read
  /// finished). Returns the completion time.
  SimTime reserveAfter(SimTime earliest, uint64_t bytes);
  SimTime reserveSecondsAfter(SimTime earliest, double seconds);

  /// Reserves and invokes `done` at completion.
  void transfer(uint64_t bytes, std::function<void()> done);

  const std::string& name() const { return name_; }
  double bandwidth() const { return bytes_per_sec_; }
  /// Total bytes served so far.
  uint64_t totalBytes() const { return total_bytes_; }
  /// Time the resource has spent busy.
  double busySeconds() const { return busy_seconds_; }
  /// When the resource next becomes free.
  SimTime freeAt() const { return free_at_; }

 private:
  Simulation& sim_;
  std::string name_;
  double bytes_per_sec_;
  SimTime free_at_ = 0;
  uint64_t total_bytes_ = 0;
  double busy_seconds_ = 0;
};

/// Moves `bytes` across several resources at once (disk + NICs + switch):
/// each is charged the full byte count (cut-through, bottleneck-paced) and
/// `done` fires when the slowest finishes.
void transferThrough(Simulation& sim, const std::vector<Resource*>& path,
                     uint64_t bytes, std::function<void()> done);

}  // namespace mh::sim
