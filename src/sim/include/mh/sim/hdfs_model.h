#pragma once

#include <cstdint>
#include <vector>

#include "mh/common/rng.h"
#include "mh/sim/cluster_model.h"
#include "mh/sim/simulation.h"

/// \file hdfs_model.h
/// HDFS-operational models at the paper's real scale:
///
///  * **Staging** (experiment C5): `hadoop fs -put` of the course datasets
///    into a freshly provisioned myHadoop cluster — Google trace 171 GB
///    "can take over an hour", Yahoo Music 10 GB "less than five minutes".
///  * **Restart integrity check** (C6): after a cluster restart, every
///    DataNode re-verifies its replicas and reports; the NameNode leaves
///    safe mode only when reports cover the block map — "at least fifteen
///    minutes" on the paper's 8-node cluster.
///  * **Deadline collapse** (C7): the Fall-2012 story — students' buggy
///    jobs crash TaskTracker/DataNode daemons; instant resubmission keeps
///    re-crashing nodes faster than re-replication can heal, until blocks
///    lose every replica and the cluster is corrupt.

namespace mh::sim {

struct StagingSpec {
  double data_gb = 171.0;
  int nodes = 8;
  int replication = 3;
  NodeHardware hw;
  double oversubscription = 4.0;
  uint64_t block_bytes = 64ull * 1024 * 1024;
  /// Client host's uplink (the login/staging node).
  double client_nic_bps = 125 * kMB;
  /// Read rate the shared parallel file system grants one student's
  /// staging job (the true bottleneck on the paper's supercomputer —
  /// calibrated so 171 GB takes "over an hour" as observed; see
  /// EXPERIMENTS.md C5).
  double source_bps = 40 * kMB;
  /// Concurrent writers (hadoop fs -put of a directory uses one stream per
  /// file; the course data is a handful of big files).
  int parallel_streams = 4;
  uint64_t seed = 1;
};

struct StagingResult {
  double seconds = 0;
  double effective_mbps = 0;   ///< payload GB / time
  double replication_gb = 0;   ///< extra bytes moved for replicas
};

StagingResult simulateStaging(const StagingSpec& spec);

struct RestartSpec {
  int nodes = 8;
  /// Bytes of replica data per node to re-verify (the paper's nodes held
  /// the preloaded 171 GB trace at 3x replication over 8 nodes).
  double per_node_gb = 64.0;
  NodeHardware hw;
  uint64_t block_bytes = 64ull * 1024 * 1024;
  /// NameNode metadata processing per reported block.
  double namenode_secs_per_block = 2e-4;
  /// Fraction of blocks that must be reported to leave safe mode.
  double safemode_threshold = 0.999;
};

struct RestartResult {
  double seconds_to_safemode_exit = 0;
  double slowest_scan_seconds = 0;
  uint64_t total_blocks = 0;
};

RestartResult simulateRestart(const RestartSpec& spec);

struct CollapseSpec {
  int nodes = 8;
  int replication = 3;
  /// Blocks in the file system (171 GB / 64 MB * 3 replicas over 8 nodes).
  uint64_t blocks = 2700;
  /// Student job submissions per hour hitting the cluster.
  double submissions_per_hour = 40.0;
  /// Probability a submission carries the heap-leak bug and crashes the
  /// TaskTracker + DataNode of the node it lands on.
  double crash_probability = 0.3;
  /// Seconds for a crashed node's daemons to come back (restart + the
  /// block integrity check delay).
  double node_restart_seconds = 900.0;  // the paper's "at least 15 minutes"
  /// Re-replication bandwidth per healthy node.
  double recovery_bps = 20 * kMB;
  uint64_t block_bytes = 64ull * 1024 * 1024;
  double horizon_hours = 12.0;
  uint64_t seed = 1;
};

struct CollapseResult {
  bool corrupted = false;          ///< some block lost every replica
  double hours_to_corruption = 0;  ///< valid when corrupted
  uint64_t max_under_replicated = 0;
  uint64_t lost_blocks = 0;
  int crashes = 0;
};

CollapseResult simulateDeadlineCollapse(const CollapseSpec& spec);

}  // namespace mh::sim
