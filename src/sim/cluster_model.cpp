#include "mh/sim/cluster_model.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "mh/common/error.h"

namespace mh::sim {

namespace {

uint64_t blockCount(const ScanWorkload& workload) {
  const auto total = static_cast<uint64_t>(workload.data_gb * kGB);
  return std::max<uint64_t>(1, (total + workload.block_bytes - 1) /
                                   workload.block_bytes);
}

double blockGb(const ScanWorkload& workload) {
  return static_cast<double>(workload.block_bytes) / kGB;
}

}  // namespace

ArchitectureResult simulateHadoopScan(const HadoopArchSpec& spec,
                                      const ScanWorkload& workload) {
  if (spec.nodes < 1) throw InvalidArgumentError("need >= 1 node");
  Simulation sim;
  Rng rng(spec.seed);

  std::vector<std::unique_ptr<Resource>> disks;
  std::vector<std::unique_ptr<Resource>> nics;
  std::vector<std::unique_ptr<Resource>> computes;
  for (int n = 0; n < spec.nodes; ++n) {
    disks.push_back(std::make_unique<Resource>(
        sim, "disk" + std::to_string(n), spec.hw.disk_bps));
    nics.push_back(std::make_unique<Resource>(
        sim, "nic" + std::to_string(n), spec.hw.nic_bps));
    // "Compute" serves core-seconds: bandwidth = cores per wall second.
    computes.push_back(std::make_unique<Resource>(
        sim, "cpu" + std::to_string(n), static_cast<double>(spec.hw.cores)));
  }
  Resource core(sim, "core-switch",
                spec.nodes * spec.hw.nic_bps / spec.oversubscription);

  const uint64_t blocks = blockCount(workload);
  const double compute_core_secs =
      blockGb(workload) * workload.compute_secs_per_gb;

  SimTime job_end = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    const int node = static_cast<int>(b % static_cast<uint64_t>(spec.nodes));
    SimTime read_done;
    if (rng.uniform01() < spec.locality_fraction) {
      read_done = disks[node]->reserve(workload.block_bytes);
    } else {
      // Remote read: the replica's disk, both NICs, and the core switch.
      int src = node;
      if (spec.nodes > 1) {
        src = static_cast<int>(rng.uniform(spec.nodes - 1));
        if (src >= node) ++src;
      }
      read_done = disks[src]->reserve(workload.block_bytes);
      read_done = std::max(read_done,
                           nics[src]->reserve(workload.block_bytes));
      read_done = std::max(read_done, core.reserve(workload.block_bytes));
      read_done =
          std::max(read_done, nics[node]->reserve(workload.block_bytes));
    }
    job_end = std::max(
        job_end,
        computes[node]->reserveSecondsAfter(read_done, compute_core_secs));
  }

  ArchitectureResult result;
  result.seconds = job_end;
  result.aggregate_gbps = workload.data_gb / job_end;
  result.network_gb = static_cast<double>(core.totalBytes()) / kGB;
  double util = 0;
  for (const auto& disk : disks) util += disk->busySeconds() / job_end;
  result.avg_disk_util = util / spec.nodes;
  return result;
}

ArchitectureResult simulateHpcScan(const HpcArchSpec& spec,
                                   const ScanWorkload& workload) {
  if (spec.compute_nodes < 1 || spec.storage_nodes < 1) {
    throw InvalidArgumentError("need compute and storage nodes");
  }
  Simulation sim;

  std::vector<std::unique_ptr<Resource>> storage_disks;
  std::vector<std::unique_ptr<Resource>> storage_nics;
  for (int s = 0; s < spec.storage_nodes; ++s) {
    for (int d = 0; d < spec.storage_disks; ++d) {
      storage_disks.push_back(std::make_unique<Resource>(
          sim, "sdisk" + std::to_string(s) + "." + std::to_string(d),
          spec.hw.disk_bps));
    }
    // Storage servers get a fatter pipe (10 GbE), as real parallel file
    // systems do.
    storage_nics.push_back(std::make_unique<Resource>(
        sim, "snic" + std::to_string(s), 10 * spec.hw.nic_bps));
  }
  std::vector<std::unique_ptr<Resource>> compute_nics;
  std::vector<std::unique_ptr<Resource>> computes;
  for (int n = 0; n < spec.compute_nodes; ++n) {
    compute_nics.push_back(std::make_unique<Resource>(
        sim, "cnic" + std::to_string(n), spec.hw.nic_bps));
    computes.push_back(std::make_unique<Resource>(
        sim, "cpu" + std::to_string(n), static_cast<double>(spec.hw.cores)));
  }
  const int total_ports = spec.compute_nodes + spec.storage_nodes;
  Resource core(sim, "core-switch",
                total_ports * spec.hw.nic_bps / spec.oversubscription);

  const uint64_t blocks = blockCount(workload);
  const double compute_core_secs =
      blockGb(workload) * workload.compute_secs_per_gb;

  SimTime job_end = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    const int node =
        static_cast<int>(b % static_cast<uint64_t>(spec.compute_nodes));
    const size_t disk_idx = b % storage_disks.size();
    const size_t server_idx = disk_idx / spec.storage_disks;

    // Every byte crosses: storage disk -> storage NIC -> core -> node NIC.
    SimTime read_done = storage_disks[disk_idx]->reserve(workload.block_bytes);
    read_done = std::max(
        read_done, storage_nics[server_idx]->reserve(workload.block_bytes));
    read_done = std::max(read_done, core.reserve(workload.block_bytes));
    read_done =
        std::max(read_done, compute_nics[node]->reserve(workload.block_bytes));
    job_end = std::max(
        job_end,
        computes[node]->reserveSecondsAfter(read_done, compute_core_secs));
  }

  ArchitectureResult result;
  result.seconds = job_end;
  result.aggregate_gbps = workload.data_gb / job_end;
  result.network_gb = static_cast<double>(core.totalBytes()) / kGB;
  double util = 0;
  for (const auto& disk : storage_disks) {
    util += disk->busySeconds() / job_end;
  }
  result.avg_disk_util = util / static_cast<double>(storage_disks.size());
  return result;
}

}  // namespace mh::sim
