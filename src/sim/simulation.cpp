#include "mh/sim/simulation.h"

#include <algorithm>

#include "mh/common/error.h"

namespace mh::sim {

void Simulation::at(SimTime t, std::function<void()> fn) {
  if (t < now_) {
    throw InvalidArgumentError("cannot schedule event in the past");
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

SimTime Simulation::run() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  return now_;
}

SimTime Simulation::runUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().time <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  now_ = std::max(now_, deadline);
  return now_;
}

Resource::Resource(Simulation& sim, std::string name, double bytes_per_sec)
    : sim_(sim), name_(std::move(name)), bytes_per_sec_(bytes_per_sec) {
  if (bytes_per_sec_ <= 0) {
    throw InvalidArgumentError("resource bandwidth must be positive");
  }
}

SimTime Resource::reserve(uint64_t bytes) {
  return reserveSeconds(static_cast<double>(bytes) / bytes_per_sec_);
}

SimTime Resource::reserveSeconds(double seconds) {
  return reserveSecondsAfter(sim_.now(), seconds);
}

SimTime Resource::reserveAfter(SimTime earliest, uint64_t bytes) {
  return reserveSecondsAfter(earliest,
                             static_cast<double>(bytes) / bytes_per_sec_);
}

SimTime Resource::reserveSecondsAfter(SimTime earliest, double seconds) {
  if (seconds < 0) throw InvalidArgumentError("negative service time");
  const SimTime start = std::max({sim_.now(), earliest, free_at_});
  free_at_ = start + seconds;
  busy_seconds_ += seconds;
  total_bytes_ += static_cast<uint64_t>(seconds * bytes_per_sec_);
  return free_at_;
}

void Resource::transfer(uint64_t bytes, std::function<void()> done) {
  const SimTime finish = reserve(bytes);
  sim_.at(finish, std::move(done));
}

void transferThrough(Simulation& sim, const std::vector<Resource*>& path,
                     uint64_t bytes, std::function<void()> done) {
  SimTime finish = sim.now();
  for (Resource* resource : path) {
    finish = std::max(finish, resource->reserve(bytes));
  }
  sim.at(finish, std::move(done));
}

}  // namespace mh::sim
