#include "mh/sim/hdfs_model.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>

#include "mh/common/error.h"

namespace mh::sim {

StagingResult simulateStaging(const StagingSpec& spec) {
  if (spec.nodes < spec.replication) {
    throw InvalidArgumentError("need nodes >= replication");
  }
  Simulation sim;
  Rng rng(spec.seed);

  Resource source(sim, "parallel-store", spec.source_bps);
  Resource client_nic(sim, "client-nic", spec.client_nic_bps);
  Resource core(sim, "core-switch",
                (spec.nodes + 1) * spec.hw.nic_bps / spec.oversubscription);
  std::vector<std::unique_ptr<Resource>> disks;
  std::vector<std::unique_ptr<Resource>> nics;
  for (int n = 0; n < spec.nodes; ++n) {
    disks.push_back(std::make_unique<Resource>(
        sim, "disk" + std::to_string(n), spec.hw.disk_bps));
    nics.push_back(std::make_unique<Resource>(
        sim, "nic" + std::to_string(n), spec.hw.nic_bps));
  }

  const auto total_bytes = static_cast<uint64_t>(spec.data_gb * kGB);
  const uint64_t blocks =
      std::max<uint64_t>(1, total_bytes / spec.block_bytes);
  const int streams = std::max(1, spec.parallel_streams);
  std::vector<SimTime> stream_ready(static_cast<size_t>(streams), 0.0);

  SimTime job_end = 0;
  for (uint64_t b = 0; b < blocks; ++b) {
    const auto stream = static_cast<size_t>(b % streams);
    const SimTime ready = stream_ready[stream];

    // Choose the replica pipeline: `replication` distinct nodes.
    std::vector<int> targets;
    while (targets.size() < static_cast<size_t>(spec.replication)) {
      const int candidate = static_cast<int>(rng.uniform(spec.nodes));
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }

    // Source store read, client uplink, one core crossing per hop.
    SimTime done = source.reserveAfter(ready, spec.block_bytes);
    done = std::max(done, client_nic.reserveAfter(ready, spec.block_bytes));
    for (int hop = 0; hop < spec.replication; ++hop) {
      done = std::max(done, core.reserveAfter(ready, spec.block_bytes));
    }
    for (size_t i = 0; i < targets.size(); ++i) {
      const int node = targets[i];
      // Receive...
      done = std::max(done, nics[node]->reserveAfter(ready, spec.block_bytes));
      // ...store...
      done = std::max(done, disks[node]->reserveAfter(ready, spec.block_bytes));
      // ...and forward to the next replica (all but the tail).
      if (i + 1 < targets.size()) {
        done = std::max(done,
                        nics[node]->reserveAfter(ready, spec.block_bytes));
      }
    }
    stream_ready[stream] = done;
    job_end = std::max(job_end, done);
  }

  StagingResult result;
  result.seconds = job_end;
  result.effective_mbps = spec.data_gb * 1000.0 / job_end;
  result.replication_gb = spec.data_gb * (spec.replication - 1);
  return result;
}

RestartResult simulateRestart(const RestartSpec& spec) {
  if (spec.nodes < 1) throw InvalidArgumentError("need >= 1 node");
  Simulation sim;
  Resource namenode(sim, "namenode-cpu", 1.0);  // serves seconds

  struct Report {
    SimTime scan_done;
    uint64_t blocks;
  };
  std::vector<Report> reports;
  uint64_t total_blocks = 0;
  double slowest_scan = 0;
  for (int n = 0; n < spec.nodes; ++n) {
    // Slight per-node imbalance, as real block placement produces.
    const double skew =
        spec.nodes > 1
            ? 0.9 + 0.2 * static_cast<double>(n) / (spec.nodes - 1)
            : 1.0;
    const double bytes = spec.per_node_gb * kGB * skew;
    const auto blocks =
        static_cast<uint64_t>(bytes / static_cast<double>(spec.block_bytes));
    // The integrity check re-reads every replica against its checksums.
    const double scan_secs = bytes / spec.hw.disk_bps;
    reports.push_back({scan_secs, blocks});
    total_blocks += blocks;
    slowest_scan = std::max(slowest_scan, scan_secs);
  }

  // Reports are processed by the NameNode in arrival order; safe mode lifts
  // when the threshold fraction of blocks has been reported.
  std::sort(reports.begin(), reports.end(),
            [](const Report& a, const Report& b) {
              return a.scan_done < b.scan_done;
            });
  const auto needed = static_cast<uint64_t>(
      spec.safemode_threshold * static_cast<double>(total_blocks));
  uint64_t reported = 0;
  SimTime exit_time = 0;
  for (const Report& report : reports) {
    const SimTime processed = namenode.reserveSecondsAfter(
        report.scan_done,
        static_cast<double>(report.blocks) * spec.namenode_secs_per_block);
    reported += report.blocks;
    if (reported >= needed && exit_time == 0) exit_time = processed;
  }

  RestartResult result;
  result.seconds_to_safemode_exit = exit_time;
  result.slowest_scan_seconds = slowest_scan;
  result.total_blocks = total_blocks;
  return result;
}

CollapseResult simulateDeadlineCollapse(const CollapseSpec& spec) {
  if (spec.nodes < spec.replication) {
    throw InvalidArgumentError("need nodes >= replication");
  }
  Rng rng(spec.seed);

  struct BlockState {
    std::vector<int> holders;
    int live = 0;
  };
  std::vector<BlockState> blocks(spec.blocks);
  std::vector<std::vector<uint32_t>> node_blocks(
      static_cast<size_t>(spec.nodes));
  for (uint32_t b = 0; b < spec.blocks; ++b) {
    while (blocks[b].holders.size() <
           static_cast<size_t>(spec.replication)) {
      const int node = static_cast<int>(rng.uniform(spec.nodes));
      auto& holders = blocks[b].holders;
      if (std::find(holders.begin(), holders.end(), node) == holders.end()) {
        holders.push_back(node);
        node_blocks[static_cast<size_t>(node)].push_back(b);
      }
    }
    blocks[b].live = spec.replication;
  }

  std::vector<bool> node_up(static_cast<size_t>(spec.nodes), true);
  std::vector<double> node_up_at(static_cast<size_t>(spec.nodes), 0.0);
  std::set<uint32_t> under_replicated;
  std::set<uint32_t> ever_lost;

  CollapseResult result;
  const double horizon = spec.horizon_hours * 3600.0;
  double t = 0;
  double next_submission = rng.exponential(3600.0 / spec.submissions_per_hour);
  double next_repair = -1;  // -1: no repair in flight

  const auto upNodes = [&] {
    int up = 0;
    for (const bool b : node_up) up += b ? 1 : 0;
    return up;
  };
  const auto scheduleRepair = [&](double now) {
    if (under_replicated.empty() || next_repair >= 0) return;
    const int up = upNodes();
    if (up == 0) return;
    const double rate = spec.recovery_bps * up;
    next_repair = now + static_cast<double>(spec.block_bytes) / rate;
  };

  while (t < horizon) {
    // Next event: submission, repair completion, or node recovery.
    double next_event = next_submission;
    if (next_repair >= 0) next_event = std::min(next_event, next_repair);
    int recovering = -1;
    for (int n = 0; n < spec.nodes; ++n) {
      if (!node_up[static_cast<size_t>(n)] &&
          node_up_at[static_cast<size_t>(n)] < next_event) {
        next_event = node_up_at[static_cast<size_t>(n)];
        recovering = n;
      }
    }
    t = next_event;
    if (t >= horizon) break;

    if (recovering >= 0) {
      // Node restart: its surviving replicas re-register unless the block
      // has been healed to full replication meanwhile (the NameNode would
      // invalidate the excess copy).
      const auto node = static_cast<size_t>(recovering);
      node_up[node] = true;
      auto& held = node_blocks[node];
      for (auto it = held.begin(); it != held.end();) {
        BlockState& block = blocks[*it];
        if (block.live >= spec.replication) {
          block.holders.erase(std::find(block.holders.begin(),
                                        block.holders.end(), recovering));
          it = held.erase(it);
          continue;
        }
        ++block.live;
        if (block.live >= spec.replication) under_replicated.erase(*it);
        ++it;
      }
      scheduleRepair(t);
      continue;
    }

    if (next_repair >= 0 && t == next_repair) {
      next_repair = -1;
      // Heal one under-replicated block onto a random up node.
      while (!under_replicated.empty()) {
        const uint32_t b = *under_replicated.begin();
        BlockState& block = blocks[b];
        if (block.live == 0 || block.live >= spec.replication) {
          under_replicated.erase(under_replicated.begin());
          continue;  // unrepairable or already healed
        }
        std::vector<int> candidates;
        for (int n = 0; n < spec.nodes; ++n) {
          if (node_up[static_cast<size_t>(n)] &&
              std::find(block.holders.begin(), block.holders.end(), n) ==
                  block.holders.end()) {
            candidates.push_back(n);
          }
        }
        if (candidates.empty()) break;
        const int target =
            candidates[rng.uniform(candidates.size())];
        block.holders.push_back(target);
        node_blocks[static_cast<size_t>(target)].push_back(b);
        ++block.live;
        if (block.live >= spec.replication) {
          under_replicated.erase(under_replicated.begin());
        }
        break;
      }
      scheduleRepair(t);
      continue;
    }

    // Submission event.
    next_submission =
        t + rng.exponential(3600.0 / spec.submissions_per_hour);
    std::vector<int> up_nodes;
    for (int n = 0; n < spec.nodes; ++n) {
      if (node_up[static_cast<size_t>(n)]) up_nodes.push_back(n);
    }
    if (up_nodes.empty()) continue;
    if (!rng.chance(spec.crash_probability)) continue;

    const int victim = up_nodes[rng.uniform(up_nodes.size())];
    ++result.crashes;
    node_up[static_cast<size_t>(victim)] = false;
    node_up_at[static_cast<size_t>(victim)] = t + spec.node_restart_seconds;
    for (const uint32_t b : node_blocks[static_cast<size_t>(victim)]) {
      BlockState& block = blocks[b];
      --block.live;
      if (block.live < spec.replication) under_replicated.insert(b);
      if (block.live == 0) {
        ever_lost.insert(b);
        if (!result.corrupted) {
          result.corrupted = true;
          result.hours_to_corruption = t / 3600.0;
        }
      }
    }
    result.max_under_replicated =
        std::max(result.max_under_replicated,
                 static_cast<uint64_t>(under_replicated.size()));
    scheduleRepair(t);
  }

  result.lost_blocks = ever_lost.size();
  return result;
}

}  // namespace mh::sim
