#include "mh/net/fault_plan.h"

#include <algorithm>

namespace mh::net {
namespace {

/// Derives the per-rule RNG stream. SplitMix-style odd multiplier keeps
/// streams for adjacent rule indices uncorrelated.
uint64_t ruleSeed(uint64_t plan_seed, size_t rule_index) {
  return plan_seed ^
         (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(rule_index) + 1));
}

bool fieldMatches(const std::string& want, std::string_view got) {
  return want.empty() || want == got;
}

bool groupContains(const std::vector<std::string>& group,
                   std::string_view host) {
  return std::find(group.begin(), group.end(), host) != group.end();
}

}  // namespace

const char* faultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDropResponse:
      return "drop_response";
    case FaultAction::kError:
      return "error";
    case FaultAction::kDelay:
      return "delay";
  }
  return "unknown";
}

bool FaultMatch::matches(std::string_view from_host, std::string_view to_host,
                         std::string_view method_name,
                         std::string_view traffic_tag) const {
  return fieldMatches(method, method_name) && fieldMatches(from, from_host) &&
         fieldMatches(to, to_host) && fieldMatches(tag, traffic_tag);
}

FaultPlan::FaultPlan(uint64_t seed) : seed_(seed) {}

size_t FaultPlan::addRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t index = rules_.size();
  rules_.push_back(RuleState{std::move(rule), Rng(ruleSeed(seed_, index))});
  return index;
}

void FaultPlan::partition(std::vector<std::string> side_a,
                          std::vector<std::string> side_b) {
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_.emplace_back(std::move(side_a), std::move(side_b));
}

void FaultPlan::heal() {
  std::lock_guard<std::mutex> lock(mutex_);
  partitions_.clear();
}

bool FaultPlan::partitioned(std::string_view a, std::string_view b) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [side_a, side_b] : partitions_) {
    if ((groupContains(side_a, a) && groupContains(side_b, b)) ||
        (groupContains(side_a, b) && groupContains(side_b, a))) {
      return true;
    }
  }
  return false;
}

std::optional<FaultDecision> FaultPlan::decide(std::string_view from,
                                               std::string_view to,
                                               std::string_view method,
                                               std::string_view tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Partitions first: a severed link refuses everything, deterministically.
  for (const auto& [side_a, side_b] : partitions_) {
    if ((groupContains(side_a, from) && groupContains(side_b, to)) ||
        (groupContains(side_a, to) && groupContains(side_b, from))) {
      ++injected_;
      return FaultDecision{FaultAction::kDrop, 0, "partition"};
    }
  }
  for (size_t i = 0; i < rules_.size(); ++i) {
    RuleState& state = rules_[i];
    const FaultRule& rule = state.rule;
    if (!rule.match.matches(from, to, method, tag)) continue;
    ++state.seen;
    if (state.fires >= rule.max_fires) continue;
    bool fire;
    if (rule.nth > 0) {
      fire = state.seen == rule.nth;
    } else {
      // One draw per matching call while the budget lasts, so the verdict
      // for the nth match is a pure function of (seed, rule index, n).
      fire = state.rng.chance(rule.probability);
    }
    if (!fire) continue;
    ++state.fires;
    ++injected_;
    return FaultDecision{rule.action, rule.delay_micros,
                         "rule " + std::to_string(i)};
  }
  return std::nullopt;
}

uint64_t FaultPlan::injectedFaults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

uint64_t FaultPlan::ruleFires(size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index < rules_.size() ? rules_[index].fires : 0;
}

}  // namespace mh::net
