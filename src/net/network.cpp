#include "mh/net/network.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "mh/common/error.h"

namespace mh::net {

namespace {

bool envTruthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s(v);
  return !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
}

int64_t envInt(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace

Network::Network() {
  // Truncated traces are self-describing: the export headers carry the
  // drop count, and so does the metrics tree.
  net_metrics_->setGauge("trace.dropped.events", [this] {
    return static_cast<double>(tracer_.droppedEvents());
  });
  if (envTruthy("MH_TRACE")) tracer_.setEnabled(true);
  if (const int64_t ms = envInt("MH_METRICS_SNAPSHOT_MS"); ms > 0) {
    startSnapshotter({.interval_ms = ms});
  }
}

void Network::addHost(const std::string& host) {
  std::lock_guard<std::mutex> lock(mutex_);
  host_up_.try_emplace(host, true);
}

std::vector<std::string> Network::hosts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(host_up_.size());
  for (const auto& [host, up] : host_up_) out.push_back(host);
  return out;
}

void Network::bind(const std::string& host, int port, RpcHandler handler) {
  bindEndpoint(host, port, std::move(handler), nullptr);
}

void Network::bindBuf(const std::string& host, int port,
                      BufRpcHandler handler) {
  bindEndpoint(host, port, nullptr, std::move(handler));
}

void Network::bindEndpoint(const std::string& host, int port,
                           RpcHandler legacy, BufRpcHandler buf) {
  auto endpoint = std::make_shared<Endpoint>();
  endpoint->legacy = std::move(legacy);
  endpoint->buf = std::move(buf);
  std::lock_guard<std::mutex> lock(mutex_);
  host_up_.try_emplace(host, true);
  const auto key = std::make_pair(host, port);
  if (endpoints_.contains(key)) {
    throw AlreadyExistsError("port " + std::to_string(port) +
                             " already bound on " + host);
  }
  endpoints_.emplace(key, std::move(endpoint));
}

Network::Pin::~Pin() {
  if (endpoint_->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last invocation out: wake any unbind() draining this endpoint.
    // Notifying under the lock closes the window where the waiter checks
    // the count, sees us still here, and goes to sleep after our notify.
    std::lock_guard<std::mutex> lock(net_->mutex_);
    net_->drain_cv_.notify_all();
  }
}

void Network::unbind(const std::string& host, int port) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = endpoints_.find(std::make_pair(host, port));
  if (it == endpoints_.end()) return;
  const std::shared_ptr<Endpoint> victim = std::move(it->second);
  endpoints_.erase(it);
  // Drain barrier: the port is free (rebinding may proceed — the wait
  // releases mutex_), but do not return until every in-flight handler
  // invocation has left. Whatever the handler captured is typically
  // destroyed right after this returns.
  drain_cv_.wait(lock, [&] {
    return victim->inflight.load(std::memory_order_acquire) == 0;
  });
}

size_t Network::unbindAll(const std::string& host) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<Endpoint>> victims;
  for (auto it = endpoints_.begin(); it != endpoints_.end();) {
    if (it->first.first == host) {
      victims.push_back(std::move(it->second));
      it = endpoints_.erase(it);
    } else {
      ++it;
    }
  }
  drain_cv_.wait(lock, [&] {
    for (const auto& victim : victims) {
      if (victim->inflight.load(std::memory_order_acquire) != 0) return false;
    }
    return true;
  });
  return victims.size();
}

bool Network::isBound(const std::string& host, int port) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return endpoints_.contains(std::make_pair(host, port));
}

void Network::setHostUp(const std::string& host, bool up) {
  std::lock_guard<std::mutex> lock(mutex_);
  host_up_[host] = up;
}

bool Network::hostUp(const std::string& host) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = host_up_.find(host);
  return it != host_up_.end() && it->second;
}

void Network::checkHostUpLocked(const std::string& host) const {
  const auto it = host_up_.find(host);
  if (it == host_up_.end()) {
    throw NetworkError("unknown host " + host);
  }
  if (!it->second) {
    throw NetworkError("host " + host + " is down");
  }
}

Network::Pin Network::route(const std::string& from, const std::string& to,
                            int port) {
  std::lock_guard<std::mutex> lock(mutex_);
  checkHostUpLocked(from);
  checkHostUpLocked(to);
  const auto it = endpoints_.find(std::make_pair(to, port));
  if (it == endpoints_.end()) {
    throw NetworkError("connection refused: " + to + ":" +
                       std::to_string(port));
  }
  // Raised under the lock, so an unbind() that finds the endpoint gone has
  // already seen this invocation and will wait for the Pin to release it.
  it->second->inflight.fetch_add(1, std::memory_order_relaxed);
  return Pin{this, it->second};
}

Bytes Network::call(const std::string& from, const std::string& to, int port,
                    std::string method, Bytes body, std::string_view tag) {
  const Pin endpoint = route(from, to, port);
  // Zero-fault fast path: one relaxed load, no lock, no RNG draw.
  bool drop_response = false;
  if (faults_enabled_.load(std::memory_order_relaxed)) {
    drop_response = applyFault(from, to, method, tag);
  }
  meter(from, to, body.size() + method.size(), tag);
  pace(from, to, body.size());
  const auto started = std::chrono::steady_clock::now();
  std::string method_name;
  Bytes response;
  // Carried on every call when tracing is on: spans recorded inside the
  // handler (which runs on this thread) become children of the caller's
  // active span via the ambient context; the request field is the explicit
  // copy for handlers that defer work to another thread.
  const TraceContext trace_ctx =
      tracer_.enabled() ? currentTraceContext() : TraceContext{};
  if (endpoint->legacy) {
    RpcRequest request{std::move(method), std::move(body), from, trace_ctx};
    response = endpoint->legacy(request);
    method_name = std::move(request.method);
  } else {
    // Legacy caller, buffer endpoint: the body moves in without a copy; the
    // reply view is materialized once for the Bytes-shaped return.
    BufRpcRequest request{std::move(method),
                          BufferView(Buffer::fromString(std::move(body))),
                          from, trace_ctx};
    response = endpoint->buf(request).str();
    method_name = std::move(request.method);
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  net_metrics_->histogram("rpc." + method_name + ".micros").record(micros);
  if (drop_response) {
    // The handler's side effects stand; only the reply is lost.
    throw NetworkError("injected fault: response lost for " + method_name +
                       " " + to + " -> " + from);
  }
  meter(to, from, response.size(), tag);
  pace(to, from, response.size());
  return response;
}

BufferView Network::callBuf(const std::string& from, const std::string& to,
                            int port, std::string method, BufferView body,
                            std::string_view tag) {
  const Pin endpoint = route(from, to, port);
  bool drop_response = false;
  if (faults_enabled_.load(std::memory_order_relaxed)) {
    drop_response = applyFault(from, to, method, tag);
  }
  // Accounting mirrors call() exactly: the request leg is charged
  // body+method bytes and the response leg its own size — a view crossing
  // the fabric costs the bandwidth model the same as a copy would.
  meter(from, to, body.size() + method.size(), tag);
  pace(from, to, body.size());
  const auto started = std::chrono::steady_clock::now();
  std::string method_name;
  BufferView reply;
  const TraceContext trace_ctx =
      tracer_.enabled() ? currentTraceContext() : TraceContext{};
  if (endpoint->buf) {
    BufRpcRequest request{std::move(method), std::move(body), from, trace_ctx};
    reply = endpoint->buf(request);
    method_name = std::move(request.method);
  } else {
    // Buffer caller, legacy endpoint: the handler needs owned Bytes, so the
    // body is copied in; the reply is adopted without a copy.
    RpcRequest request{std::move(method), body.str(), from, trace_ctx};
    reply = BufferView(Buffer::fromString(endpoint->legacy(request)));
    method_name = std::move(request.method);
  }
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  net_metrics_->histogram("rpc." + method_name + ".micros").record(micros);
  if (drop_response) {
    throw NetworkError("injected fault: response lost for " + method_name +
                       " " + to + " -> " + from);
  }
  meter(to, from, reply.size(), tag);
  pace(to, from, reply.size());
  return reply;
}

void Network::transfer(const std::string& from, const std::string& to,
                       uint64_t bytes, std::string_view tag) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    checkHostUpLocked(from);
    checkHostUpLocked(to);
  }
  if (faults_enabled_.load(std::memory_order_relaxed)) {
    // A bulk move has no separate response leg: losing either direction
    // loses the transfer.
    if (applyFault(from, to, "transfer", tag)) {
      throw NetworkError("injected fault: transfer lost " + from + " -> " +
                         to);
    }
  }
  meter(from, to, bytes, tag);
  pace(from, to, bytes);
}

void Network::setFaultPlan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_plan_ = std::move(plan);
  faults_enabled_.store(fault_plan_ != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<FaultPlan> Network::faultPlan() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return fault_plan_;
}

MetricsSnapshotter& Network::startSnapshotter(
    MetricsSnapshotter::Options options) {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (snapshotter_ == nullptr) {
    snapshotter_ = std::make_unique<MetricsSnapshotter>(&metrics_, options);
  }
  snapshotter_->start();
  return *snapshotter_;
}

void Network::stopSnapshotter() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  if (snapshotter_ != nullptr) snapshotter_->stop();
}

MetricsSnapshotter* Network::snapshotter() {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshotter_.get();
}

bool Network::applyFault(const std::string& from, const std::string& to,
                         std::string_view method, std::string_view tag) {
  const auto plan = faultPlan();
  if (!plan) return false;  // raced with a concurrent clear
  const auto decision = plan->decide(from, to, method, tag);
  if (!decision) return false;
  const bool is_partition = decision->detail == "partition";
  net_metrics_->counter("faults.injected").add();
  if (is_partition) {
    net_metrics_->counter("faults.partitioned").add();
  } else {
    switch (decision->action) {
      case FaultAction::kDrop:
        net_metrics_->counter("faults.dropped").add();
        break;
      case FaultAction::kDropResponse:
        net_metrics_->counter("faults.response_dropped").add();
        break;
      case FaultAction::kError:
        net_metrics_->counter("faults.errored").add();
        break;
      case FaultAction::kDelay:
        net_metrics_->counter("faults.delayed").add();
        break;
    }
  }
  tracer_.instant("network",
                  std::string("FAULT_INJECT ") +
                      (is_partition ? "partition"
                                    : faultActionName(decision->action)) +
                      " " + std::string(method),
                  {{"from", from},
                   {"to", to},
                   {"tag", std::string(tag)},
                   {"cause", decision->detail}});
  switch (decision->action) {
    case FaultAction::kDrop:
      throw NetworkError("injected fault: " + std::string(method) + " " +
                         from + " -> " + to + " dropped (" + decision->detail +
                         ")");
    case FaultAction::kError:
      throw NetworkError("injected fault: connection reset " + from + " -> " +
                         to + " (" + decision->detail + ")");
    case FaultAction::kDelay:
      if (decision->delay_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(decision->delay_micros));
      }
      return false;
    case FaultAction::kDropResponse:
      return true;
  }
  return false;
}

void Network::meter(const std::string& from, const std::string& to,
                    uint64_t bytes, std::string_view tag) {
  bool first_sighting = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = traffic_.find(tag);
    if (it == traffic_.end()) {
      it = traffic_.emplace(std::string(tag), TrafficStats{}).first;
      first_sighting = true;
    }
    TrafficStats& stats = it->second;
    if (from == to) {
      stats.local_bytes += bytes;
    } else {
      stats.remote_bytes += bytes;
    }
    ++stats.messages;
  }
  if (first_sighting) {
    // Registered outside mutex_: gauge callbacks re-take mutex_ at export
    // time, so registering under it would invert the lock order.
    const std::string name(tag);
    net_metrics_->setGauge("traffic." + name + ".remote_bytes", [this, name] {
      return static_cast<double>(remoteBytes(name));
    });
    net_metrics_->setGauge("traffic." + name + ".local_bytes", [this, name] {
      return static_cast<double>(localBytes(name));
    });
    net_metrics_->setGauge("traffic." + name + ".messages", [this, name] {
      return static_cast<double>(messages(name));
    });
  }
}

void Network::pace(const std::string& from, const std::string& to,
                   uint64_t bytes) const {
  if (from == to) return;  // loopback: free
  int64_t delay_micros = latency_micros_;
  if (bandwidth_bps_ > 0) {
    delay_micros += static_cast<int64_t>(
        static_cast<double>(bytes) / static_cast<double>(bandwidth_bps_) * 1e6);
  }
  if (delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));
  }
}

std::map<std::string, TrafficStats> Network::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {traffic_.begin(), traffic_.end()};
}

uint64_t Network::remoteBytes(std::string_view tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traffic_.find(tag);
  return it == traffic_.end() ? 0 : it->second.remote_bytes;
}

uint64_t Network::localBytes(std::string_view tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traffic_.find(tag);
  return it == traffic_.end() ? 0 : it->second.local_bytes;
}

uint64_t Network::messages(std::string_view tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traffic_.find(tag);
  return it == traffic_.end() ? 0 : it->second.messages;
}

void Network::resetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  traffic_.clear();
}

}  // namespace mh::net
