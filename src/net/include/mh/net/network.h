#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/metrics.h"
#include "mh/common/trace.h"
#include "mh/net/fault_plan.h"

/// \file network.h
/// In-process cluster network fabric.
///
/// Every daemon in the live layer (NameNode, DataNode, JobTracker,
/// TaskTracker) binds a (host, port) endpoint on a shared Network and talks
/// to peers through it. The fabric provides the semantics the course's
/// platform war stories depend on:
///
///  * **Port exclusivity** — binding an already-bound port throws, which is
///    how leftover "ghost" Hadoop daemons break the next student's cluster
///    (paper §II-B).
///  * **Host liveness** — a crashed host stops answering; callers see a
///    NetworkError, heartbeat listeners see staleness.
///  * **Byte metering** — control-plane RPCs and bulk data transfers are
///    counted per traffic tag ("shuffle", "replication", "staging", ...) and
///    split into local (loopback) vs remote bytes, which is what the
///    combiner and locality experiments report.
///  * **Optional throttling** — a configurable per-link bandwidth and
///    latency turn byte counts into realistic wall-clock costs when an
///    experiment needs them (defaults are free/instant so unit tests fly).
///  * **Fault injection** — an optional FaultPlan (fault_plan.h) can drop,
///    delay, or error individual calls and sever host groups. With no plan
///    installed the fast path costs exactly one relaxed atomic load per
///    call — no lock, no RNG draw.

namespace mh::net {

/// A control-plane message delivered to a bound endpoint.
struct RpcRequest {
  std::string method;     ///< e.g. "heartbeat", "getBlockLocations"
  Bytes body;             ///< serialized arguments
  std::string from_host;  ///< caller's host name
};

/// Endpoint handler: receives a request, returns a serialized response.
/// Handlers run synchronously on the caller's thread; they may throw, and
/// the exception propagates to the caller (mimicking an RPC fault).
using RpcHandler = std::function<Bytes(const RpcRequest&)>;

/// Accumulated traffic for one tag.
struct TrafficStats {
  uint64_t remote_bytes = 0;  ///< bytes that crossed between two hosts
  uint64_t local_bytes = 0;   ///< loopback bytes (same host)
  uint64_t messages = 0;      ///< RPC calls + bulk transfers
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host (idempotent). Hosts start up.
  void addHost(const std::string& host);

  /// Returns all registered host names, sorted.
  std::vector<std::string> hosts() const;

  /// Binds a handler to (host, port). Throws AlreadyExistsError if the port
  /// is taken — the ghost-daemon failure mode.
  void bind(const std::string& host, int port, RpcHandler handler);

  /// Releases a port. Unknown endpoints are ignored (idempotent teardown).
  void unbind(const std::string& host, int port);

  /// Releases every port on a host — the batch scheduler's node-cleanup
  /// epilogue that kills leftover ghost daemons. Returns how many ports
  /// were freed.
  size_t unbindAll(const std::string& host);

  /// True if something is bound at (host, port).
  bool isBound(const std::string& host, int port) const;

  /// Marks a host down (crash) or back up. A down host keeps its bindings —
  /// like a hung JVM — but refuses all traffic.
  void setHostUp(const std::string& host, bool up);
  bool hostUp(const std::string& host) const;

  /// Synchronous RPC. Throws NetworkError when the destination host is down
  /// or nothing is bound at the port. Request and response bytes are metered
  /// under `tag` (control traffic defaults to "rpc"; data-plane calls pass
  /// "read" / "pipeline" / "replication" / "shuffle" so experiments can
  /// attribute traffic).
  Bytes call(const std::string& from, const std::string& to, int port,
             std::string method, Bytes body, std::string_view tag = "rpc");

  /// Meters (and, if bandwidth is configured, throttles) a bulk data
  /// movement of `bytes` between two hosts under `tag`. Throws NetworkError
  /// when either end is down. The payload itself moves through direct
  /// memory; only accounting and pacing happen here.
  void transfer(const std::string& from, const std::string& to,
                uint64_t bytes, std::string_view tag);

  /// One-way propagation delay applied to every remote call/transfer.
  void setLatencyMicros(int64_t micros) { latency_micros_ = micros; }

  /// Per-link bandwidth in bytes/second; 0 disables pacing.
  void setBandwidthBytesPerSec(uint64_t bps) { bandwidth_bps_ = bps; }

  /// Snapshot of traffic per tag.
  std::map<std::string, TrafficStats> stats() const;

  /// Total remote bytes for one tag (0 if the tag never appeared).
  uint64_t remoteBytes(std::string_view tag) const;
  uint64_t localBytes(std::string_view tag) const;
  uint64_t messages(std::string_view tag) const;

  void resetStats();

  /// The cluster-wide metrics root. Daemons sharing this fabric claim
  /// child registries ("namenode", "tasktracker.<host>", ...); the fabric
  /// itself reports per-method RPC latency histograms and per-tag traffic
  /// gauges under "network".
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The cluster-wide trace journal (disabled by default).
  TraceCollector& tracer() { return tracer_; }
  const TraceCollector& tracer() const { return tracer_; }

  /// Installs (or, with nullptr, removes) a fault plan. Every subsequent
  /// call/transfer consults it; injected faults surface as NetworkError to
  /// the caller, `network.faults.*` counters, and FAULT_INJECT trace
  /// instants. Passing nullptr restores the fault-free fast path.
  void setFaultPlan(std::shared_ptr<FaultPlan> plan);
  std::shared_ptr<FaultPlan> faultPlan() const;

 private:
  void meter(const std::string& from, const std::string& to, uint64_t bytes,
             std::string_view tag);
  void pace(const std::string& from, const std::string& to,
            uint64_t bytes) const;
  void checkHostUpLocked(const std::string& host) const;

  /// Slow path, entered only when a plan is installed: asks the plan for a
  /// verdict and carries it out. Throws NetworkError for drop/error faults,
  /// sleeps for delay faults, and returns true when the *response* must be
  /// discarded after the handler runs.
  bool applyFault(const std::string& from, const std::string& to,
                  std::string_view method, std::string_view tag);

  mutable std::mutex mutex_;
  std::map<std::string, bool> host_up_;
  std::map<std::pair<std::string, int>, RpcHandler> endpoints_;
  std::map<std::string, TrafficStats, std::less<>> traffic_;
  int64_t latency_micros_ = 0;
  uint64_t bandwidth_bps_ = 0;

  // Fault injection. faults_enabled_ is the only thing the zero-fault path
  // reads (one relaxed load per call); the plan pointer lives behind its
  // own mutex so installing a plan mid-run is safe without touching the
  // endpoint lock.
  mutable std::mutex fault_mutex_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::atomic<bool> faults_enabled_{false};

  // Declared after mutex_/traffic_ so gauge callbacks registered against
  // net_metrics_ can safely read traffic during destruction ordering.
  MetricsRegistry metrics_;
  TraceCollector tracer_;
  MetricsRegistry* net_metrics_ = &metrics_.child("network");
};

}  // namespace mh::net
