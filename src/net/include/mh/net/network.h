#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mh/common/buffer.h"
#include "mh/common/bytes.h"
#include "mh/common/metrics.h"
#include "mh/common/metrics_snapshot.h"
#include "mh/common/trace.h"
#include "mh/net/fault_plan.h"

/// \file network.h
/// In-process cluster network fabric.
///
/// Every daemon in the live layer (NameNode, DataNode, JobTracker,
/// TaskTracker) binds a (host, port) endpoint on a shared Network and talks
/// to peers through it. The fabric provides the semantics the course's
/// platform war stories depend on:
///
///  * **Port exclusivity** — binding an already-bound port throws, which is
///    how leftover "ghost" Hadoop daemons break the next student's cluster
///    (paper §II-B).
///  * **Host liveness** — a crashed host stops answering; callers see a
///    NetworkError, heartbeat listeners see staleness.
///  * **Byte metering** — control-plane RPCs and bulk data transfers are
///    counted per traffic tag ("shuffle", "replication", "staging", ...) and
///    split into local (loopback) vs remote bytes, which is what the
///    combiner and locality experiments report.
///  * **Optional throttling** — a configurable per-link bandwidth and
///    latency turn byte counts into realistic wall-clock costs when an
///    experiment needs them (defaults are free/instant so unit tests fly).
///  * **Fault injection** — an optional FaultPlan (fault_plan.h) can drop,
///    delay, or error individual calls and sever host groups. With no plan
///    installed the fast path costs exactly one relaxed atomic load per
///    call — no lock, no RNG draw.

namespace mh::net {

/// A control-plane message delivered to a bound endpoint.
struct RpcRequest {
  std::string method;     ///< e.g. "heartbeat", "getBlockLocations"
  Bytes body;             ///< serialized arguments
  std::string from_host;  ///< caller's host name
  /// The caller's causal trace context at call time (zero when tracing is
  /// off). Handlers run on the caller's thread, so the ambient context is
  /// already installed for them — this field is the explicit copy for
  /// handlers that hand work to another thread.
  TraceContext trace;
};

/// Endpoint handler: receives a request, returns a serialized response.
/// Handlers run synchronously on the caller's thread; they may throw, and
/// the exception propagates to the caller (mimicking an RPC fault).
using RpcHandler = std::function<Bytes(const RpcRequest&)>;

/// A message delivered to a buffer endpoint: same shape as RpcRequest but
/// the body is a refcounted view, so bulk payloads cross the fabric without
/// being copied.
struct BufRpcRequest {
  std::string method;
  BufferView body;
  std::string from_host;
  TraceContext trace;  ///< Same contract as RpcRequest::trace.
};

/// Buffer endpoint handler: the zero-copy sibling of RpcHandler. The
/// returned view is handed to the caller uncopied; the handler must return
/// a view whose backing buffer outlives the handler frame (i.e. owned by a
/// store or freshly built — never a view of handler-local bytes).
using BufRpcHandler = std::function<BufferView(const BufRpcRequest&)>;

/// Accumulated traffic for one tag.
struct TrafficStats {
  uint64_t remote_bytes = 0;  ///< bytes that crossed between two hosts
  uint64_t local_bytes = 0;   ///< loopback bytes (same host)
  uint64_t messages = 0;      ///< RPC calls + bulk transfers
};

class Network {
 public:
  /// Honors `MH_TRACE` (truthy value enables the tracer) and
  /// `MH_METRICS_SNAPSHOT_MS` (> 0 starts the metrics snapshotter at that
  /// interval), mirroring `MH_LOG_LEVEL` — quickstarts and examples can
  /// turn observability on without code edits.
  Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a host (idempotent). Hosts start up.
  void addHost(const std::string& host);

  /// Returns all registered host names, sorted.
  std::vector<std::string> hosts() const;

  /// Binds a handler to (host, port). Throws AlreadyExistsError if the port
  /// is taken — the ghost-daemon failure mode.
  void bind(const std::string& host, int port, RpcHandler handler);

  /// Binds a zero-copy handler to (host, port). Same port-exclusivity rules
  /// as bind(). A buffer endpoint is reachable through BOTH call() (the
  /// reply is copied into a Bytes for the legacy caller) and callBuf() (the
  /// reply view is moved through untouched).
  void bindBuf(const std::string& host, int port, BufRpcHandler handler);

  /// Releases a port. Unknown endpoints are ignored (idempotent teardown).
  /// Blocks until every in-flight invocation of the endpoint's handler has
  /// returned — the caller is usually a daemon about to destroy the state
  /// those handlers touch, so returning early would hand a concurrent RPC a
  /// dangling `this`. Must not be called from inside the endpoint's own
  /// handler (it would wait for itself).
  void unbind(const std::string& host, int port);

  /// Releases every port on a host — the batch scheduler's node-cleanup
  /// epilogue that kills leftover ghost daemons. Returns how many ports
  /// were freed. Same drain barrier as unbind(): in-flight handlers finish
  /// before this returns.
  size_t unbindAll(const std::string& host);

  /// True if something is bound at (host, port).
  bool isBound(const std::string& host, int port) const;

  /// Marks a host down (crash) or back up. A down host keeps its bindings —
  /// like a hung JVM — but refuses all traffic.
  void setHostUp(const std::string& host, bool up);
  bool hostUp(const std::string& host) const;

  /// Synchronous RPC. Throws NetworkError when the destination host is down
  /// or nothing is bound at the port. Request and response bytes are metered
  /// under `tag` (control traffic defaults to "rpc"; data-plane calls pass
  /// "read" / "pipeline" / "replication" / "shuffle" so experiments can
  /// attribute traffic).
  Bytes call(const std::string& from, const std::string& to, int port,
             std::string method, Bytes body, std::string_view tag = "rpc");

  /// Zero-copy sibling of call(): the body and reply move as refcounted
  /// views instead of owned Bytes, so a loopback fetch of a 64 MB payload
  /// bumps a refcount instead of copying. Fault injection, host-liveness
  /// checks, traffic-tag byte accounting, bandwidth pacing, and the
  /// per-method latency histogram are charged IDENTICALLY to call() —
  /// zero-copy changes who owns the bytes, never what the bytes cost.
  /// Calling a legacy (bind()) endpoint through callBuf copies the body in
  /// and wraps the reply without a copy.
  BufferView callBuf(const std::string& from, const std::string& to, int port,
                     std::string method, BufferView body,
                     std::string_view tag = "rpc");

  /// Meters (and, if bandwidth is configured, throttles) a bulk data
  /// movement of `bytes` between two hosts under `tag`. Throws NetworkError
  /// when either end is down. The payload itself moves through direct
  /// memory; only accounting and pacing happen here.
  void transfer(const std::string& from, const std::string& to,
                uint64_t bytes, std::string_view tag);

  /// One-way propagation delay applied to every remote call/transfer.
  void setLatencyMicros(int64_t micros) { latency_micros_ = micros; }

  /// Per-link bandwidth in bytes/second; 0 disables pacing.
  void setBandwidthBytesPerSec(uint64_t bps) { bandwidth_bps_ = bps; }

  /// Snapshot of traffic per tag.
  std::map<std::string, TrafficStats> stats() const;

  /// Total remote bytes for one tag (0 if the tag never appeared).
  uint64_t remoteBytes(std::string_view tag) const;
  uint64_t localBytes(std::string_view tag) const;
  uint64_t messages(std::string_view tag) const;

  void resetStats();

  /// The cluster-wide metrics root. Daemons sharing this fabric claim
  /// child registries ("namenode", "tasktracker.<host>", ...); the fabric
  /// itself reports per-method RPC latency histograms and per-tag traffic
  /// gauges under "network".
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The cluster-wide trace journal (disabled by default).
  TraceCollector& tracer() { return tracer_; }
  const TraceCollector& tracer() const { return tracer_; }

  /// Starts (creating on first use) the background metrics snapshotter
  /// sampling `metrics()` — a time series over every counter/gauge/
  /// histogram on the cluster. Options are honored on first call only.
  MetricsSnapshotter& startSnapshotter(MetricsSnapshotter::Options options = {});
  /// Stops the snapshotter's thread, keeping captured snapshots readable.
  /// Callers owning daemons MUST stop the snapshotter before destroying
  /// them: gauge callbacks capture daemon state.
  void stopSnapshotter();
  /// Null until startSnapshotter() has been called.
  MetricsSnapshotter* snapshotter();

  /// Installs (or, with nullptr, removes) a fault plan. Every subsequent
  /// call/transfer consults it; injected faults surface as NetworkError to
  /// the caller, `network.faults.*` counters, and FAULT_INJECT trace
  /// instants. Passing nullptr restores the fault-free fast path.
  void setFaultPlan(std::shared_ptr<FaultPlan> plan);
  std::shared_ptr<FaultPlan> faultPlan() const;

 private:
  /// One bound endpoint: exactly one of the two handler kinds is set, plus
  /// a count of handler invocations currently executing. The count is what
  /// makes unbind() a barrier: once it drains to zero, no thread is inside
  /// the handler and whatever the handler captured may be destroyed.
  struct Endpoint {
    RpcHandler legacy;
    BufRpcHandler buf;
    std::atomic<uint64_t> inflight{0};
  };

  /// Pins an endpoint for one handler invocation: holds a strong reference
  /// (the std::function outlives a concurrent unbind) and keeps `inflight`
  /// raised until destruction, at which point a draining unbind() is woken.
  class Pin {
   public:
    Pin(Network* net, std::shared_ptr<Endpoint> endpoint)
        : net_(net), endpoint_(std::move(endpoint)) {}
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin();
    const Endpoint* operator->() const { return endpoint_.get(); }

   private:
    Network* net_;
    std::shared_ptr<Endpoint> endpoint_;
  };

  /// Resolves (to, port) under the lock: host-liveness checks plus a pin on
  /// the endpoint so the handler runs without holding the lock while a
  /// concurrent unbind() waits for it. Shared by call() and callBuf() so
  /// the two paths cannot drift.
  Pin route(const std::string& from, const std::string& to, int port);
  void bindEndpoint(const std::string& host, int port, RpcHandler legacy,
                    BufRpcHandler buf);

  void meter(const std::string& from, const std::string& to, uint64_t bytes,
             std::string_view tag);
  void pace(const std::string& from, const std::string& to,
            uint64_t bytes) const;
  void checkHostUpLocked(const std::string& host) const;

  /// Slow path, entered only when a plan is installed: asks the plan for a
  /// verdict and carries it out. Throws NetworkError for drop/error faults,
  /// sleeps for delay faults, and returns true when the *response* must be
  /// discarded after the handler runs.
  bool applyFault(const std::string& from, const std::string& to,
                  std::string_view method, std::string_view tag);

  mutable std::mutex mutex_;
  /// Signaled when an endpoint's inflight count drops to zero; unbind()
  /// waits here for its victim to drain.
  std::condition_variable drain_cv_;
  std::map<std::string, bool> host_up_;
  std::map<std::pair<std::string, int>, std::shared_ptr<Endpoint>> endpoints_;
  std::map<std::string, TrafficStats, std::less<>> traffic_;
  int64_t latency_micros_ = 0;
  uint64_t bandwidth_bps_ = 0;

  // Fault injection. faults_enabled_ is the only thing the zero-fault path
  // reads (one relaxed load per call); the plan pointer lives behind its
  // own mutex so installing a plan mid-run is safe without touching the
  // endpoint lock.
  mutable std::mutex fault_mutex_;
  std::shared_ptr<FaultPlan> fault_plan_;
  std::atomic<bool> faults_enabled_{false};

  // Declared after mutex_/traffic_ so gauge callbacks registered against
  // net_metrics_ can safely read traffic during destruction ordering.
  MetricsRegistry metrics_;
  TraceCollector tracer_;
  MetricsRegistry* net_metrics_ = &metrics_.child("network");

  // Declared last so the sampling thread is stopped before the registries
  // (and everything gauges reference) are torn down.
  mutable std::mutex snapshot_mutex_;
  std::unique_ptr<MetricsSnapshotter> snapshotter_;
};

}  // namespace mh::net
