#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mh/common/rng.h"

/// \file fault_plan.h
/// Deterministic fault injection for the in-process network fabric.
///
/// A FaultPlan is a list of rules plus a set of host partitions that a
/// Network consults (when one is installed) for every RPC and bulk
/// transfer. Rules can drop a request before delivery, drop the response
/// after the handler ran (the at-least-once hazard), inject a connection
/// error, or add latency — each either probabilistically from a seeded
/// RNG or scripted to fire on exactly the Nth matching call.
///
/// Determinism contract: each rule owns its own RNG stream derived from
/// (plan seed, rule index), and draws once per matching call while its
/// injection budget lasts. Feed two same-seed plans the same sequence of
/// calls and they inject the identical fault sequence — which is what
/// lets a chaos test replay a failing seed bit-for-bit.

namespace mh::net {

/// What an injected fault does to a matched call.
enum class FaultAction : uint8_t {
  kDrop,          ///< request lost in flight: the handler never runs and the
                  ///< caller sees a NetworkError, like an unacked send.
  kDropResponse,  ///< the handler runs — side effects land! — but the
                  ///< response is lost and the caller sees a NetworkError.
                  ///< Exercises at-least-once delivery and idempotency.
  kError,         ///< connection reset before delivery; handler never runs.
  kDelay,         ///< the call proceeds after an extra delay_micros sleep.
};

const char* faultActionName(FaultAction action);

/// Selects the calls a rule applies to. Empty fields are wildcards.
/// Bulk transfers match as method "transfer".
struct FaultMatch {
  std::string method;  ///< exact RPC method name ("heartbeat", ...)
  std::string from;    ///< caller host
  std::string to;      ///< callee host
  std::string tag;     ///< traffic tag ("rpc", "shuffle", "read", ...)

  bool matches(std::string_view from_host, std::string_view to_host,
               std::string_view method_name,
               std::string_view traffic_tag) const;
};

/// One injection rule. Probabilistic by default; set `nth` to script a
/// one-shot fault ("fail the 3rd matching call").
struct FaultRule {
  FaultMatch match;
  FaultAction action = FaultAction::kDrop;
  /// Chance of firing per matching call. Ignored when nth > 0.
  double probability = 1.0;
  /// Extra latency for kDelay.
  int64_t delay_micros = 0;
  /// When > 0, fire on exactly the nth matching call (1-based) and never
  /// again — a scripted fault instead of a probabilistic one.
  uint64_t nth = 0;
  /// Injection budget. A finite cap makes probabilistic chaos dry up, so a
  /// retrying job is guaranteed to eventually get through.
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
};

/// The fate the plan hands back to the fabric for one call.
struct FaultDecision {
  FaultAction action;
  int64_t delay_micros = 0;
  std::string detail;  ///< human-readable cause ("rule 2", "partition")
};

class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed = 0);

  /// Appends a rule and returns its index. Rules are consulted in order;
  /// the first one that fires decides the call.
  size_t addRule(FaultRule rule);

  /// Severs every (a, b) host pair across the two groups, both directions.
  /// Partitions stack; heal() removes them all. Deterministic — no RNG.
  void partition(std::vector<std::string> side_a,
                 std::vector<std::string> side_b);
  void heal();
  bool partitioned(std::string_view a, std::string_view b) const;

  /// Decides the fate of one call (or transfer, method = "transfer").
  /// Partitions are consulted first, then rules in insertion order.
  std::optional<FaultDecision> decide(std::string_view from,
                                      std::string_view to,
                                      std::string_view method,
                                      std::string_view tag);

  /// Total faults injected so far (rules + partition refusals).
  uint64_t injectedFaults() const;
  /// Faults injected by one rule.
  uint64_t ruleFires(size_t index) const;

  uint64_t seed() const { return seed_; }

 private:
  struct RuleState {
    FaultRule rule;
    Rng rng;             ///< per-rule stream: independent of other rules
    uint64_t seen = 0;   ///< matching calls so far
    uint64_t fires = 0;  ///< faults injected so far
  };

  mutable std::mutex mutex_;
  uint64_t seed_;
  std::vector<RuleState> rules_;
  std::vector<std::pair<std::vector<std::string>, std::vector<std::string>>>
      partitions_;
  uint64_t injected_ = 0;
};

}  // namespace mh::net
