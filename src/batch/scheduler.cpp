#include "mh/batch/scheduler.h"

#include <algorithm>
#include <limits>

#include "mh/common/error.h"
#include "mh/common/log.h"

namespace mh::batch {

namespace {
constexpr const char* kLog = "batch";
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

const char* batchJobStateName(BatchJobState state) {
  switch (state) {
    case BatchJobState::kQueued: return "QUEUED";
    case BatchJobState::kRunning: return "RUNNING";
    case BatchJobState::kCompleted: return "COMPLETED";
    case BatchJobState::kTimedOut: return "TIMEDOUT";
    case BatchJobState::kPreempted: return "PREEMPTED";
  }
  return "?";
}

BatchScheduler::BatchScheduler(int total_nodes, Config conf,
                               BatchCallbacks callbacks)
    : conf_(std::move(conf)), callbacks_(std::move(callbacks)) {
  if (total_nodes < 1) throw InvalidArgumentError("need >= 1 node");
  nodes_.resize(static_cast<size_t>(total_nodes));
  for (int n = 0; n < total_nodes; ++n) {
    char name[16];
    std::snprintf(name, sizeof(name), "node%02d", n + 1);
    nodes_[static_cast<size_t>(n)].name = name;
  }
}

BatchJobId BatchScheduler::submit(BatchJobSpec spec) {
  if (spec.nodes < 1 || spec.nodes > static_cast<int>(nodes_.size())) {
    throw InvalidArgumentError("job asks for an impossible node count");
  }
  const BatchJobId id = next_id_++;
  Job job;
  job.spec = std::move(spec);
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  trySchedule();
  return id;
}

int BatchScheduler::freeNodes() const {
  int free = 0;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kFree) ++free;
  }
  return free;
}

std::vector<std::string> BatchScheduler::dirtyNodes() const {
  std::vector<std::string> out;
  for (const Node& node : nodes_) {
    if (node.dirty) out.push_back(node.name);
  }
  return out;
}

BatchJobState BatchScheduler::state(BatchJobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw NotFoundError("job " + std::to_string(id));
  return it->second.state;
}

std::vector<std::string> BatchScheduler::allocatedNodes(BatchJobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) throw NotFoundError("job " + std::to_string(id));
  std::vector<std::string> out;
  for (const int idx : it->second.node_indices) {
    out.push_back(nodes_[static_cast<size_t>(idx)].name);
  }
  return out;
}

bool BatchScheduler::startJobNow(BatchJobId id) {
  Job& job = jobs_.at(id);
  std::vector<int> chosen;
  for (size_t n = 0; n < nodes_.size() &&
                     chosen.size() < static_cast<size_t>(job.spec.nodes);
       ++n) {
    if (nodes_[n].state == NodeState::kFree) {
      chosen.push_back(static_cast<int>(n));
    }
  }
  if (chosen.size() < static_cast<size_t>(job.spec.nodes)) return false;

  job.node_indices = std::move(chosen);
  job.state = BatchJobState::kRunning;
  job.start_time = now_;
  job.end_time =
      now_ + std::min(job.spec.runtime_secs, job.spec.walltime_secs);
  std::vector<std::string> names;
  for (const int idx : job.node_indices) {
    Node& node = nodes_[static_cast<size_t>(idx)];
    node.state = NodeState::kBusy;
    node.job = id;
    names.push_back(node.name);
  }
  logInfo(kLog) << "job " << id << " (" << job.spec.user << ") starts on "
                << names.size() << " nodes at t=" << now_;
  if (callbacks_.on_start) callbacks_.on_start(id, names);
  return true;
}

void BatchScheduler::vacate(BatchJobId id, EndReason reason) {
  Job& job = jobs_.at(id);
  std::vector<std::string> names;
  const double cleanup_delay =
      conf_.getDouble("batch.cleanup.delay.secs", 900.0);
  const bool reassign_early =
      conf_.getBool("batch.reassign.before.cleanup", true);

  for (const int idx : job.node_indices) {
    Node& node = nodes_[static_cast<size_t>(idx)];
    names.push_back(node.name);
    node.job = 0;
    if (job.spec.clean_shutdown && reason == EndReason::kCompleted) {
      // Clean exit: this job leaves nothing behind. Dirt left by a
      // *previous* occupant stays pending — its epilogue has not run yet.
      node.state = NodeState::kFree;
    } else {
      // Ghost daemons possible; the epilogue will scrub them later.
      node.dirty = true;
      node.cleanup_at = now_ + cleanup_delay;
      node.state = reassign_early ? NodeState::kFree : NodeState::kCleanup;
    }
  }
  switch (reason) {
    case EndReason::kCompleted: job.state = BatchJobState::kCompleted; break;
    case EndReason::kTimedOut: job.state = BatchJobState::kTimedOut; break;
    case EndReason::kPreempted: job.state = BatchJobState::kPreempted; break;
  }
  logInfo(kLog) << "job " << id << " " << batchJobStateName(job.state)
                << " at t=" << now_;
  if (callbacks_.on_end) callbacks_.on_end(id, names, reason);
  if (reason == EndReason::kPreempted && job.spec.resubmit_on_preempt) {
    submit(job.spec);
  }
}

void BatchScheduler::trySchedule() {
  // Highest priority first; FIFO within a priority.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [this](BatchJobId a, BatchJobId b) {
                     return jobs_.at(a).spec.priority >
                            jobs_.at(b).spec.priority;
                   });
  bool progressed = true;
  while (progressed && !queue_.empty()) {
    progressed = false;
    const BatchJobId id = queue_.front();
    Job& job = jobs_.at(id);
    if (startJobNow(id)) {
      queue_.pop_front();
      progressed = true;
      continue;
    }
    // Preemption: a job may evict strictly lower-priority running jobs.
    std::vector<BatchJobId> victims;
    int reclaimable = freeNodes();
    for (const auto& [running_id, running] : jobs_) {
      if (running.state == BatchJobState::kRunning &&
          running.spec.priority < job.spec.priority) {
        victims.push_back(running_id);
        reclaimable += running.spec.nodes;
      }
    }
    if (reclaimable < job.spec.nodes) break;  // head-of-line blocks
    // Evict lowest-priority victims first until the job fits. Preempted
    // nodes skip the epilogue wait here only if reassignment-before-cleanup
    // is on (vacate handles the policy).
    std::sort(victims.begin(), victims.end(),
              [this](BatchJobId a, BatchJobId b) {
                return jobs_.at(a).spec.priority < jobs_.at(b).spec.priority;
              });
    for (const BatchJobId victim : victims) {
      if (freeNodes() >= job.spec.nodes) break;
      vacate(victim, EndReason::kPreempted);
    }
    if (startJobNow(id)) {
      queue_.pop_front();
      progressed = true;
    } else {
      break;  // cleanup holds the nodes; wait for the epilogue
    }
  }
}

double BatchScheduler::nextEventTime() const {
  double next = kNever;
  for (const auto& [id, job] : jobs_) {
    if (job.state == BatchJobState::kRunning) {
      next = std::min(next, job.end_time);
    }
  }
  for (const Node& node : nodes_) {
    if (node.dirty) next = std::min(next, node.cleanup_at);
  }
  return next;
}

void BatchScheduler::processEventsAt(double t) {
  // Job endings.
  std::vector<BatchJobId> ending;
  for (const auto& [id, job] : jobs_) {
    if (job.state == BatchJobState::kRunning && job.end_time <= t) {
      ending.push_back(id);
    }
  }
  for (const BatchJobId id : ending) {
    const Job& job = jobs_.at(id);
    const bool timed_out = job.spec.runtime_secs > job.spec.walltime_secs;
    vacate(id, timed_out ? EndReason::kTimedOut : EndReason::kCompleted);
  }
  // Epilogue cleanups. A busy node's cleanup is deferred — the script must
  // not kill the current occupant's daemons.
  const double cleanup_delay =
      conf_.getDouble("batch.cleanup.delay.secs", 900.0);
  for (Node& node : nodes_) {
    if (node.dirty && node.cleanup_at <= t) {
      if (node.state == NodeState::kBusy) {
        node.cleanup_at = t + cleanup_delay;
        continue;
      }
      node.dirty = false;
      if (node.state == NodeState::kCleanup) node.state = NodeState::kFree;
      if (callbacks_.on_cleanup) callbacks_.on_cleanup(node.name);
    }
  }
}

void BatchScheduler::advanceTo(double t) {
  if (t < now_) throw InvalidArgumentError("cannot rewind the clock");
  while (true) {
    const double next = nextEventTime();
    if (next > t) break;
    now_ = next;
    processEventsAt(now_);
    trySchedule();
  }
  now_ = t;
  trySchedule();
}

}  // namespace mh::batch
