#include "mh/batch/myhadoop.h"

#include "mh/common/error.h"
#include "mh/common/log.h"

namespace mh::batch {

namespace {
constexpr const char* kLog = "myhadoop";
}  // namespace

MyHadoopSession::MyHadoopSession(Config conf,
                                 std::shared_ptr<net::Network> network,
                                 std::vector<std::string> hosts,
                                 std::string user)
    : conf_(std::move(conf)),
      network_(std::move(network)),
      hosts_(std::move(hosts)),
      user_(std::move(user)) {
  if (hosts_.empty()) throw InvalidArgumentError("need >= 1 host");
  registry_ = std::make_shared<mr::JobRegistry>();
}

MyHadoopSession::~MyHadoopSession() {
  if (running_) stop();
}

void MyHadoopSession::start() {
  if (running_) return;
  logInfo(kLog) << user_ << " booting Hadoop on " << hosts_.size()
                << " nodes (head " << hosts_[0] << ")";
  try {
    namenode_ =
        std::make_unique<hdfs::NameNode>(conf_, network_, hosts_[0]);
    namenode_->start();  // binds hosts[0]:8020
    job_tracker_ = std::make_unique<mr::JobTracker>(
        conf_, network_, registry_, hosts_[0], hosts_[0]);
    job_tracker_->start();  // binds hosts[0]:50030
    for (const auto& host : hosts_) {
      auto store_it = stores_.find(host);
      if (store_it == stores_.end()) {
        store_it =
            stores_.emplace(host, std::make_shared<hdfs::MemBlockStore>())
                .first;
      }
      auto dn = std::make_unique<hdfs::DataNode>(
          conf_, network_, host, store_it->second, hosts_[0]);
      dn->start();  // binds host:50010
      datanodes_.emplace(host, std::move(dn));
      auto tt = std::make_unique<mr::TaskTracker>(
          conf_, network_, host, registry_, hosts_[0], hosts_[0]);
      tt->start();  // binds host:50060
      task_trackers_.emplace(host, std::move(tt));
    }
  } catch (...) {
    rollback();
    throw;
  }
  running_ = true;
}

void MyHadoopSession::rollback() {
  for (auto& [host, tt] : task_trackers_) tt->stop();
  task_trackers_.clear();
  for (auto& [host, dn] : datanodes_) dn->stop();
  datanodes_.clear();
  if (job_tracker_) {
    job_tracker_->stop();
    job_tracker_.reset();
  }
  if (namenode_) {
    namenode_->stop();
    namenode_.reset();
  }
}

void MyHadoopSession::stop() {
  if (!running_ && !namenode_) return;
  rollback();
  running_ = false;
  logInfo(kLog) << user_ << " stopped Hadoop cleanly";
}

void MyHadoopSession::abandon() {
  // Daemon threads stop (the session object is going away) but every port
  // stays bound: the ghost-daemon exit.
  for (auto& [host, tt] : task_trackers_) tt->abandon();
  for (auto& [host, dn] : datanodes_) dn->abandon();
  // NameNode/JobTracker: stop their threads without unbinding. Their stop()
  // unbinds, so emulate the hung JVM by leaving a tombstone handler bound.
  if (job_tracker_) {
    job_tracker_->stop();
    network_->bind(hosts_[0], mr::kJobTrackerPort,
                   [](const net::RpcRequest&) -> Bytes {
                     throw NetworkError("ghost jobtracker");
                   });
  }
  if (namenode_) {
    namenode_->stop();
    network_->bind(hosts_[0], hdfs::kNameNodePort,
                   [](const net::RpcRequest&) -> Bytes {
                     throw NetworkError("ghost namenode");
                   });
  }
  task_trackers_.clear();
  datanodes_.clear();
  job_tracker_.reset();
  namenode_.reset();
  running_ = false;
  logWarn(kLog) << user_ << " abandoned the session; ghost daemons remain on "
                << hosts_.size() << " nodes";
}

hdfs::DfsClient MyHadoopSession::client() {
  if (!running_) throw IllegalStateError("session is not running");
  return hdfs::DfsClient(conf_, network_, user_ + "-login", hosts_[0]);
}

mr::JobTracker& MyHadoopSession::jobTracker() {
  if (!running_) throw IllegalStateError("session is not running");
  return *job_tracker_;
}

mr::JobResult MyHadoopSession::runJob(mr::JobSpec spec) {
  const mr::JobId id = jobTracker().submit(std::move(spec));
  return jobTracker().wait(id);
}

void MyHadoopSession::stageIn(const std::string& dfs_path,
                              std::string_view data) {
  client().writeFile(dfs_path, data);
}

Bytes MyHadoopSession::stageOut(const std::string& dfs_path) {
  return client().readFile(dfs_path);
}

}  // namespace mh::batch
