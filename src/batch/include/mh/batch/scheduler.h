#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mh/common/config.h"

/// \file scheduler.h
/// A miniature PBS-style batch scheduler for the paper's shared academic
/// supercomputer — the substrate myHadoop provisions clusters on. Virtual
/// time (the caller advances the clock), which keeps every platform war
/// story deterministic:
///
///  * **priority preemption** — "their jobs can be preempted from the
///    system by higher priority research jobs";
///  * **walltime enforcement** — reservations expire mid-session;
///  * **epilogue cleanup delay** — the clean-up script that kills leftover
///    daemons runs *after* a node is vacated; with the paper's
///    configuration nodes could be reassigned before it ran, so "myHadoop
///    scripts would not be able to start a new Hadoop cluster due to
///    required ports being blocked off ... the student would have to wait
///    15 minutes for the scheduler to clean up these daemons."
///
/// Config keys (defaults):
///   batch.cleanup.delay.secs        900
///   batch.reassign.before.cleanup   true   (the paper's failure mode)

namespace mh::batch {

using BatchJobId = uint64_t;

enum class BatchJobState : uint8_t {
  kQueued,
  kRunning,
  kCompleted,   ///< finished within walltime
  kTimedOut,    ///< killed at walltime
  kPreempted,   ///< evicted by a higher-priority job (requeued copy exists
                ///< only if resubmit_on_preempt)
};

const char* batchJobStateName(BatchJobState state);

struct BatchJobSpec {
  std::string user = "student";
  int nodes = 1;
  double walltime_secs = 3600;
  /// How long the job actually needs; it completes at
  /// start + min(runtime, walltime).
  double runtime_secs = 600;
  int priority = 0;  ///< higher wins; research jobs outrank course work
  /// Whether the job's teardown is clean. False = it leaves ghost daemons
  /// behind (ports stay dirty until the epilogue runs on each node).
  bool clean_shutdown = true;
  bool resubmit_on_preempt = false;
};

/// End-of-occupancy reasons passed to the callbacks.
enum class EndReason : uint8_t { kCompleted, kTimedOut, kPreempted };

struct BatchCallbacks {
  /// Job got its nodes and starts now.
  std::function<void(BatchJobId, const std::vector<std::string>& nodes)>
      on_start;
  /// Job vacated its nodes (any reason).
  std::function<void(BatchJobId, const std::vector<std::string>& nodes,
                     EndReason)>
      on_end;
  /// Epilogue cleanup script runs on one node (kill leftover daemons).
  std::function<void(const std::string& node)> on_cleanup;
};

class BatchScheduler {
 public:
  BatchScheduler(int total_nodes, Config conf = {},
                 BatchCallbacks callbacks = {});

  double now() const { return now_; }

  /// Submits a job; it may start immediately (callbacks fire inside).
  BatchJobId submit(BatchJobSpec spec);

  /// Advances virtual time, firing completions/kills/cleanups/starts.
  void advanceTo(double t);
  void advanceBy(double dt) { advanceTo(now_ + dt); }

  BatchJobState state(BatchJobId id) const;
  std::vector<std::string> allocatedNodes(BatchJobId id) const;
  /// Number of nodes currently free for scheduling.
  int freeNodes() const;
  /// Nodes whose epilogue has not yet run (dirty: ghost daemons may lurk).
  std::vector<std::string> dirtyNodes() const;
  size_t queuedJobs() const { return queue_.size(); }

 private:
  enum class NodeState : uint8_t { kFree, kBusy, kCleanup };

  struct Node {
    std::string name;
    NodeState state = NodeState::kFree;
    bool dirty = false;         ///< vacated uncleanly, epilogue pending
    double cleanup_at = 0;      ///< when the epilogue runs
    BatchJobId job = 0;
  };

  struct Job {
    BatchJobSpec spec;
    BatchJobState state = BatchJobState::kQueued;
    double start_time = 0;
    double end_time = 0;  ///< scheduled end while running
    std::vector<int> node_indices;
  };

  void trySchedule();
  bool startJobNow(BatchJobId id);
  void vacate(BatchJobId id, EndReason reason);
  double nextEventTime() const;
  void processEventsAt(double t);

  Config conf_;
  BatchCallbacks callbacks_;
  std::vector<Node> nodes_;
  std::map<BatchJobId, Job> jobs_;
  std::deque<BatchJobId> queue_;
  BatchJobId next_id_ = 1;
  double now_ = 0;
};

}  // namespace mh::batch
