#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mh/hdfs/datanode.h"
#include "mh/hdfs/dfs_client.h"
#include "mh/hdfs/namenode.h"
#include "mh/mr/job_tracker.h"
#include "mh/mr/task_tracker.h"
#include "mh/net/network.h"

/// \file myhadoop.h
/// The myHadoop pattern from the San Diego Supercomputer Center scripts the
/// course settled on (§II-B): provision a *personal, transient* Hadoop
/// cluster on a set of nodes allocated by the shared batch scheduler, run
/// the assignment's jobs, export the output, and tear everything down when
/// the reservation ends.
///
/// The first allocated host runs the NameNode and JobTracker; every host
/// runs a DataNode and TaskTracker, all on the standard ports — which is
/// exactly why a previous student's abandoned ("ghost") daemons on the same
/// nodes make start() fail with AlreadyExistsError.

namespace mh::batch {

class MyHadoopSession {
 public:
  /// `hosts` is the batch allocation (>= 1). Daemons are not started yet.
  MyHadoopSession(Config conf, std::shared_ptr<net::Network> network,
                  std::vector<std::string> hosts, std::string user);
  ~MyHadoopSession();
  MyHadoopSession(const MyHadoopSession&) = delete;
  MyHadoopSession& operator=(const MyHadoopSession&) = delete;

  /// Boots NameNode + JobTracker on hosts[0] and DataNode + TaskTracker on
  /// every host. Throws AlreadyExistsError when a ghost daemon holds a
  /// port; partially started daemons are rolled back.
  void start();

  /// Clean teardown (the well-behaved student): all ports released.
  void stop();

  /// Walks away without stopping Hadoop (the paper's failure mode): daemon
  /// threads die with the session object but every port stays bound until
  /// the batch epilogue scrubs the node.
  void abandon();

  bool running() const { return running_; }
  const std::vector<std::string>& hosts() const { return hosts_; }

  /// HDFS client from the session's login host.
  hdfs::DfsClient client();
  mr::JobTracker& jobTracker();
  const std::shared_ptr<mr::JobRegistry>& registry() const {
    return registry_;
  }

  /// Submit-and-wait convenience mirroring `hadoop jar`.
  mr::JobResult runJob(mr::JobSpec spec);

  /// The session cluster's metrics tree / trace journal (on the shared
  /// network fabric, so they survive daemon restarts within the session).
  MetricsRegistry& metrics() { return network_->metrics(); }
  TraceCollector& tracer() { return network_->tracer(); }

  /// Stages local bytes into the session's HDFS (`hadoop fs -put` step of
  /// the submission script).
  void stageIn(const std::string& dfs_path, std::string_view data);

  /// Copies a DFS file back out (`hadoop fs -copyToLocal` step).
  Bytes stageOut(const std::string& dfs_path);

 private:
  void rollback();

  Config conf_;
  std::shared_ptr<net::Network> network_;
  std::vector<std::string> hosts_;
  std::string user_;
  bool running_ = false;

  std::unique_ptr<hdfs::NameNode> namenode_;
  std::shared_ptr<mr::JobRegistry> registry_;
  std::unique_ptr<mr::JobTracker> job_tracker_;
  std::map<std::string, std::shared_ptr<hdfs::BlockStore>> stores_;
  std::map<std::string, std::unique_ptr<hdfs::DataNode>> datanodes_;
  std::map<std::string, std::unique_ptr<mr::TaskTracker>> task_trackers_;
};

}  // namespace mh::batch
