#include "mh/apps/gtrace.h"

#include <set>

#include "mh/common/strings.h"

namespace mh::apps {

bool parseSubmitEvent(std::string_view line, uint64_t& job, uint64_t& task) {
  const auto fields = splitString(line, ',');
  if (fields.size() < 6) return false;
  if (fields[4] != "SUBMIT") return false;
  if (!isDigits(fields[1]) || !isDigits(fields[2])) return false;
  job = std::stoull(fields[1]);
  task = std::stoull(fields[2]);
  return true;
}

namespace {

class SubmitMapper : public mr::Mapper {
 public:
  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    uint64_t job = 0;
    uint64_t task = 0;
    if (parseSubmitEvent(value, job, task)) {
      ctx.emitTyped<std::string, int64_t>(std::to_string(job),
                                          static_cast<int64_t>(task));
    }
  }
};

/// resubmissions = submits − distinct tasks. Needs the raw task indices,
/// so no combiner (a set-union monoid would work but the course version
/// keeps it simple).
class ResubmissionReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    int64_t submits = 0;
    std::set<int64_t> tasks;
    while (const auto v = values.nextTyped<int64_t>()) {
      ++submits;
      tasks.insert(*v);
    }
    const int64_t resubmissions =
        submits - static_cast<int64_t>(tasks.size());
    ctx.emitTyped<std::string, std::string>(std::string(key),
                                            std::to_string(resubmissions));
  }
};

}  // namespace

mr::JobSpec makeResubmissionJob(std::vector<std::string> inputs,
                                std::string output, uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = "gtrace-resubmissions";
  spec.input_paths = std::move(inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = num_reducers;
  spec.mapper = [] { return std::make_unique<SubmitMapper>(); };
  spec.reducer = [] { return std::make_unique<ResubmissionReducer>(); };
  return spec;
}

}  // namespace mh::apps
