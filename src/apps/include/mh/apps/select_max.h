#pragma once

#include <string>
#include <vector>

#include "mh/mr/job.h"

/// \file select_max.h
/// Generic second-stage job: given "key<TAB>numeric-value" lines (the
/// output shape of TextOutputFormat), select the key with the largest
/// value. Chained after WordCount it answers the Fall-2012 assignment
/// ("the word with highest count in the complete Shakespeare collection");
/// after the resubmission counter it answers "the job with the largest
/// number of task resubmissions".

namespace mh::apps {

/// Parses "key\tvalue" and re-keys everything to a single bucket so one
/// reducer sees all candidates. The map-side combiner keeps only each map's
/// local maximum, so the shuffle carries one record per split.
class MaxCandidateMapper : public mr::Mapper {
 public:
  void map(std::string_view key, std::string_view value,
           mr::TaskContext& ctx) override;
};

/// Keeps the max (by value, ties broken by smaller key); emits
/// "key<TAB>value". Works as both combiner and reducer.
class MaxSelectReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override;
};

/// num_reducers is forced to 1 (global maximum needs a single group).
mr::JobSpec makeSelectMaxJob(std::vector<std::string> inputs,
                             std::string output);

}  // namespace mh::apps
