#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/apps/airline.h"  // DelaySum: the reusable (sum, count) monoid
#include "mh/mr/job.h"

/// \file music.h
/// Assignment 2 part 2 (§III-B): "identify the album that has the highest
/// average rating" over Yahoo-Music-style data on HDFS. Songs map to albums
/// via the songs.tsv side table (config key "music.songs.path"); the
/// average is computed with the DelaySum monoid and the winner selected by
/// chaining the generic select-max job over this job's output.

namespace mh::apps {

/// Parsed songs.tsv: songId -> albumId.
class SongTable {
 public:
  static SongTable load(mr::FileSystemView& fs, const std::string& path);
  /// 0 when the song is unknown.
  uint32_t album(uint32_t song_id) const;
  size_t size() const { return album_.size(); }
  int64_t approxBytes() const { return static_cast<int64_t>(album_.size()) * 16; }

 private:
  std::map<uint32_t, uint32_t> album_;
};

/// Parses "userId<TAB>songId<TAB>rating"; false on malformed rows.
bool parseMusicRating(std::string_view line, uint32_t& user, uint32_t& song,
                      double& rating);

/// Album-average job. Output: "albumId<TAB>mean" (3 decimals).
mr::JobSpec makeAlbumAverageJob(std::vector<std::string> ratings_inputs,
                                std::string songs_side_path,
                                std::string output,
                                uint32_t num_reducers = 1);

}  // namespace mh::apps
