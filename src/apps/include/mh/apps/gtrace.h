#pragma once

#include <string>
#include <vector>

#include "mh/mr/job.h"

/// \file gtrace.h
/// The Fall-2012 second assignment: over Google-cluster-trace task events,
/// count task resubmissions per job. A task's SUBMIT appears once per
/// attempt, so resubmissions(job) = #SUBMIT rows − #distinct task indices.
/// Chain makeSelectMaxJob over this job's output for "the computing job
/// with the largest number of task resubmissions".

namespace mh::apps {

/// Parses "timestamp,jobId,taskIndex,machineId,eventType,priority"; true
/// only for SUBMIT events (sets job and task).
bool parseSubmitEvent(std::string_view line, uint64_t& job, uint64_t& task);

/// Output: "jobId<TAB>resubmissions", one line per job.
mr::JobSpec makeResubmissionJob(std::vector<std::string> inputs,
                                std::string output,
                                uint32_t num_reducers = 1);

}  // namespace mh::apps
