#pragma once

#include <string>
#include <vector>

#include "mh/mr/job.h"

/// \file wordcount.h
/// The canonical first example from the course: count word occurrences.
/// Two configurations, exactly as taught in §III-A:
///  * plain — every (word, 1) pair crosses the shuffle;
///  * combiner — the reducer logic also runs map-side, so each map emits at
///    most one record per distinct word (more map CPU, far less traffic —
///    the trade-off students observe in the job report).

namespace mh::apps {

/// Tokenizes on whitespace, lower-cases ASCII, strips leading/trailing
/// punctuation; emits (word, 1).
class WordCountMapper : public mr::Mapper {
 public:
  void map(std::string_view key, std::string_view value,
           mr::TaskContext& ctx) override;
};

/// Sums counts, re-emitting the binary int64 (usable as a combiner).
class WordCountCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override;
};

/// Sums counts, emitting the decimal string (final output form).
class WordCountReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override;
};

mr::JobSpec makeWordCountJob(std::vector<std::string> inputs,
                             std::string output, bool with_combiner = true,
                             uint32_t num_reducers = 1);

}  // namespace mh::apps
