#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/mr/job.h"

/// \file airline.h
/// The §III-A lab: average arrival delay per airline, implemented three
/// ways following Lin's "Monoidify!" progression the course teaches:
///
///  V1 kPlain          — mapper emits (carrier, delay); one reducer call
///                       averages. No combiner is possible: the mean is not
///                       associative, which is the first lesson.
///  V2 kCombiner       — mapper emits (carrier, DelaySum{sum,count}); the
///                       monoid combines map-side. Requires the custom
///                       value class (a hand-written Serde, Hadoop's custom
///                       Writable exercise).
///  V3 kInMapper       — in-mapper combining: a hash map inside the mapper
///                       aggregates across *all* records of the split and
///                       flushes at cleanup(). Least traffic, most task
///                       memory — the memory/network trade-off, made
///                       visible through TaskContext::allocateHeap.

namespace mh::apps {

/// The custom "Writable": an associative partial aggregate of delays.
struct DelaySum {
  double sum = 0.0;
  int64_t count = 0;

  void add(double delay) {
    sum += delay;
    ++count;
  }
  void merge(const DelaySum& other) {
    sum += other.sum;
    count += other.count;
  }
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  bool operator==(const DelaySum&) const = default;
};

enum class AirlineVariant { kPlain = 1, kCombiner = 2, kInMapper = 3 };

const char* airlineVariantName(AirlineVariant variant);

/// Parses one on-time CSV row; returns false for the header, cancelled
/// flights ("NA" delay), or malformed rows. On success sets carrier/delay.
bool parseAirlineRow(std::string_view line, std::string& carrier,
                     double& delay);

/// Builds the job for the chosen variant. Output lines: "CARRIER<TAB>mean"
/// with mean printed to 3 decimals.
mr::JobSpec makeAirlineDelayJob(AirlineVariant variant,
                                std::vector<std::string> inputs,
                                std::string output,
                                uint32_t num_reducers = 1);

/// Parses the job's output part files into carrier -> mean.
std::map<std::string, double> parseAirlineOutput(mr::FileSystemView& fs,
                                                 const std::string& dir);

}  // namespace mh::apps

namespace mh {

/// The hand-written Serde that makes DelaySum a legal MapReduce value —
/// this is the "customized Hadoop Value class" students implement.
template <>
struct Serde<apps::DelaySum> {
  static void encode(ByteWriter& w, const apps::DelaySum& v) {
    w.writeDouble(v.sum);
    w.writeVarI64(v.count);
  }
  static apps::DelaySum decode(ByteReader& r) {
    apps::DelaySum v;
    v.sum = r.readDouble();
    v.count = r.readVarI64();
    return v;
  }
};

}  // namespace mh
