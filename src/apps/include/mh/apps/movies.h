#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/mr/job.h"

/// \file movies.h
/// Assignment 1 (§III-B): descriptive statistics per movie genre, and the
/// most active rater with their favorite genre — over the MovieLens-style
/// two-file dataset. The ratings reference movies; genres live in a
/// separate movies.csv the map tasks must join against (SIDE DATA).
///
/// Side-data strategy is the assignment's big lesson:
///  * kNaive  — "read the additional file from inside each mapper": the
///    movies table is re-read and re-parsed on EVERY map() call. Runs an
///    order of magnitude slower ("a little over half an hour" vs minutes).
///  * kCached — "a Java object that reads the additional file once and
///    stores the content in memory": loaded in setup(), reused.
///
/// Config key "movies.side.path" carries the movies.csv location.

namespace mh::apps {

enum class SideDataMode { kNaive = 0, kCached = 1 };

const char* sideDataModeName(SideDataMode mode);

/// Parsed movies.csv: movieId -> genres.
class MovieTable {
 public:
  static MovieTable load(mr::FileSystemView& fs, const std::string& path);

  /// nullptr when the movie is unknown.
  const std::vector<std::string>* genres(uint32_t movie_id) const;
  size_t size() const { return genres_.size(); }
  /// Approximate in-memory footprint, for heap accounting.
  int64_t approxBytes() const;

 private:
  std::map<uint32_t, std::vector<std::string>> genres_;
};

/// Monoid of descriptive statistics (count/sum/sum²/min/max) — the richer
/// custom value class the genre-statistics question needs.
struct StatSummary {
  int64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double x);
  void merge(const StatSummary& other);
  double mean() const;
  double stddev() const;

  bool operator==(const StatSummary&) const = default;
};

/// Per-user activity monoid for the top-rater question: total ratings plus
/// per-genre tallies — "several values for each key", hence the custom
/// output value class.
struct UserActivity {
  int64_t ratings = 0;
  std::map<std::string, int64_t> genre_counts;

  void merge(const UserActivity& other);
  std::string favoriteGenre() const;

  bool operator==(const UserActivity&) const = default;
};

/// Parses "userId,movieId,rating,timestamp"; false on malformed rows.
bool parseRatingRow(std::string_view line, uint32_t& user, uint32_t& movie,
                    double& rating);

/// Genre statistics job. Output: "genre<TAB>count mean stddev min max".
mr::JobSpec makeGenreStatsJob(std::vector<std::string> ratings_inputs,
                              std::string movies_side_path,
                              std::string output, SideDataMode mode,
                              uint32_t num_reducers = 1);

/// Top-rater job (single reducer). Output: one line
/// "userId<TAB>ratings<TAB>favoriteGenre".
mr::JobSpec makeTopRaterJob(std::vector<std::string> ratings_inputs,
                            std::string movies_side_path, std::string output);

}  // namespace mh::apps

namespace mh {

template <>
struct Serde<apps::StatSummary> {
  static void encode(ByteWriter& w, const apps::StatSummary& v) {
    w.writeVarI64(v.count);
    w.writeDouble(v.sum);
    w.writeDouble(v.sum_sq);
    w.writeDouble(v.min);
    w.writeDouble(v.max);
  }
  static apps::StatSummary decode(ByteReader& r) {
    apps::StatSummary v;
    v.count = r.readVarI64();
    v.sum = r.readDouble();
    v.sum_sq = r.readDouble();
    v.min = r.readDouble();
    v.max = r.readDouble();
    return v;
  }
};

template <>
struct Serde<apps::UserActivity> {
  static void encode(ByteWriter& w, const apps::UserActivity& v) {
    w.writeVarI64(v.ratings);
    w.writeVarU64(v.genre_counts.size());
    for (const auto& [genre, count] : v.genre_counts) {
      w.writeBytes(genre);
      w.writeVarI64(count);
    }
  }
  static apps::UserActivity decode(ByteReader& r) {
    apps::UserActivity v;
    v.ratings = r.readVarI64();
    const uint64_t n = r.readVarU64();
    for (uint64_t i = 0; i < n; ++i) {
      std::string genre = r.readString();
      v.genre_counts.emplace(std::move(genre), r.readVarI64());
    }
    return v;
  }
};

}  // namespace mh
