#include "mh/apps/music.h"

#include <cstdio>
#include <sstream>

#include "mh/common/error.h"
#include "mh/common/strings.h"
#include "mh/mr/fs_view.h"

namespace mh::apps {

SongTable SongTable::load(mr::FileSystemView& fs, const std::string& path) {
  SongTable table;
  const Bytes body = fs.readRange(path, 0, fs.fileLength(path));
  std::istringstream lines{body};
  std::string line;
  while (std::getline(lines, line)) {
    const auto fields = splitString(line, '\t');
    if (fields.size() < 2 || !isDigits(fields[0]) || !isDigits(fields[1])) {
      continue;
    }
    table.album_[static_cast<uint32_t>(std::stoul(fields[0]))] =
        static_cast<uint32_t>(std::stoul(fields[1]));
  }
  return table;
}

uint32_t SongTable::album(uint32_t song_id) const {
  const auto it = album_.find(song_id);
  return it == album_.end() ? 0 : it->second;
}

bool parseMusicRating(std::string_view line, uint32_t& user, uint32_t& song,
                      double& rating) {
  const auto fields = splitString(line, '\t');
  if (fields.size() < 3 || !isDigits(fields[0]) || !isDigits(fields[1])) {
    return false;
  }
  try {
    user = static_cast<uint32_t>(std::stoul(fields[0]));
    song = static_cast<uint32_t>(std::stoul(fields[1]));
    rating = std::stod(fields[2]);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

namespace {

class AlbumRatingMapper : public mr::Mapper {
 public:
  void setup(mr::TaskContext& ctx) override {
    const std::string path = ctx.conf().get("music.songs.path");
    if (path.empty()) {
      throw InvalidArgumentError("music.songs.path is not configured");
    }
    songs_ = SongTable::load(ctx.fs(), path);
    ctx.allocateHeap(songs_.approxBytes());
  }

  void cleanup(mr::TaskContext& ctx) override {
    ctx.allocateHeap(-songs_.approxBytes());
  }

  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    uint32_t user = 0;
    uint32_t song = 0;
    double rating = 0;
    if (!parseMusicRating(value, user, song, rating)) return;
    const uint32_t album = songs_.album(song);
    if (album == 0) return;
    DelaySum one;
    one.add(rating);
    ctx.emitTyped<std::string, DelaySum>(std::to_string(album), one);
  }

 private:
  SongTable songs_;
};

class AlbumSumCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    DelaySum agg;
    while (const auto v = values.nextTyped<DelaySum>()) agg.merge(*v);
    ctx.emitTyped<std::string, DelaySum>(std::string(key), agg);
  }
};

class AlbumMeanReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    DelaySum agg;
    while (const auto v = values.nextTyped<DelaySum>()) agg.merge(*v);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", agg.mean());
    ctx.emitTyped<std::string, std::string>(std::string(key), buf);
  }
};

}  // namespace

mr::JobSpec makeAlbumAverageJob(std::vector<std::string> ratings_inputs,
                                std::string songs_side_path,
                                std::string output, uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = "album-average";
  spec.input_paths = std::move(ratings_inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = num_reducers;
  spec.conf.set("music.songs.path", std::move(songs_side_path));
  spec.mapper = [] { return std::make_unique<AlbumRatingMapper>(); };
  spec.combiner = [] { return std::make_unique<AlbumSumCombiner>(); };
  spec.reducer = [] { return std::make_unique<AlbumMeanReducer>(); };
  return spec;
}

}  // namespace mh::apps
