#include "mh/apps/wordcount.h"

#include <cctype>

#include "mh/common/strings.h"

namespace mh::apps {

namespace {

std::string normalizeToken(std::string_view token) {
  size_t begin = 0;
  size_t end = token.size();
  const auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '\'';
  };
  while (begin < end && !is_word_char(token[begin])) ++begin;
  while (end > begin && !is_word_char(token[end - 1])) --end;
  return toLowerAscii(token.substr(begin, end - begin));
}

}  // namespace

void WordCountMapper::map(std::string_view, std::string_view value,
                          mr::TaskContext& ctx) {
  for (const auto& token : splitWhitespace(value)) {
    const std::string word = normalizeToken(token);
    if (!word.empty()) {
      ctx.emitTyped<std::string, int64_t>(word, 1);
    }
  }
}

void WordCountCombiner::reduce(std::string_view key,
                               mr::ValuesIterator& values,
                               mr::TaskContext& ctx) {
  int64_t sum = 0;
  while (const auto v = values.nextTyped<int64_t>()) sum += *v;
  ctx.emitTyped<std::string, int64_t>(std::string(key), sum);
}

void WordCountReducer::reduce(std::string_view key,
                              mr::ValuesIterator& values,
                              mr::TaskContext& ctx) {
  int64_t sum = 0;
  while (const auto v = values.nextTyped<int64_t>()) sum += *v;
  ctx.emitTyped<std::string, std::string>(std::string(key),
                                          std::to_string(sum));
}

mr::JobSpec makeWordCountJob(std::vector<std::string> inputs,
                             std::string output, bool with_combiner,
                             uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = with_combiner ? "wordcount+combiner" : "wordcount";
  spec.input_paths = std::move(inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = num_reducers;
  spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
  spec.reducer = [] { return std::make_unique<WordCountReducer>(); };
  if (with_combiner) {
    spec.combiner = [] { return std::make_unique<WordCountCombiner>(); };
  }
  return spec;
}

}  // namespace mh::apps
