#include "mh/apps/airline.h"

#include <cstdio>
#include <sstream>

#include "mh/common/csv.h"
#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh::apps {

namespace {

std::string formatMean(double mean) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", mean);
  return buf;
}

// Column indices in the on-time CSV.
constexpr size_t kCarrierCol = 5;
constexpr size_t kArrDelayCol = 9;
constexpr size_t kCancelledCol = 12;

}  // namespace

const char* airlineVariantName(AirlineVariant variant) {
  switch (variant) {
    case AirlineVariant::kPlain: return "plain";
    case AirlineVariant::kCombiner: return "combiner+custom-value";
    case AirlineVariant::kInMapper: return "in-mapper-combining";
  }
  return "?";
}

bool parseAirlineRow(std::string_view line, std::string& carrier,
                     double& delay) {
  if (line.empty() || line.starts_with("Year")) return false;  // header
  const auto fields = parseCsvLine(line);
  if (fields.size() <= kCancelledCol) return false;
  if (fields[kCancelledCol] == "1") return false;  // cancelled
  const std::string& raw_delay = fields[kArrDelayCol];
  if (raw_delay.empty() || raw_delay == "NA") return false;
  try {
    delay = std::stod(raw_delay);
  } catch (const std::exception&) {
    return false;
  }
  carrier = fields[kCarrierCol];
  return !carrier.empty();
}

namespace {

// ------------------------------------------------------------ V1: plain

class PlainDelayMapper : public mr::Mapper {
 public:
  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    std::string carrier;
    double delay = 0;
    if (parseAirlineRow(value, carrier, delay)) {
      ctx.emitTyped<std::string, double>(carrier, delay);
    }
  }
};

class PlainAverageReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    DelaySum agg;
    while (const auto v = values.nextTyped<double>()) agg.add(*v);
    ctx.emitTyped<std::string, std::string>(std::string(key),
                                            formatMean(agg.mean()));
  }
};

// --------------------------------------- V2: combiner + custom value class

class SumDelayMapper : public mr::Mapper {
 public:
  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    std::string carrier;
    double delay = 0;
    if (parseAirlineRow(value, carrier, delay)) {
      DelaySum one;
      one.add(delay);
      ctx.emitTyped<std::string, DelaySum>(carrier, one);
    }
  }
};

class DelaySumCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    DelaySum agg;
    while (const auto v = values.nextTyped<DelaySum>()) agg.merge(*v);
    ctx.emitTyped<std::string, DelaySum>(std::string(key), agg);
  }
};

class DelaySumReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    DelaySum agg;
    while (const auto v = values.nextTyped<DelaySum>()) agg.merge(*v);
    ctx.emitTyped<std::string, std::string>(std::string(key),
                                            formatMean(agg.mean()));
  }
};

// --------------------------------------------- V3: in-mapper combining

class InMapperDelayMapper : public mr::Mapper {
 public:
  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    std::string carrier;
    double delay = 0;
    if (!parseAirlineRow(value, carrier, delay)) return;
    auto [it, inserted] = table_.try_emplace(std::move(carrier));
    it->second.add(delay);
    if (inserted) {
      // Charge the in-memory table against the tracker's heap budget —
      // this is exactly the memory the variant trades for traffic.
      ctx.allocateHeap(kEntryBytes);
    }
  }

  void cleanup(mr::TaskContext& ctx) override {
    for (const auto& [carrier, agg] : table_) {
      ctx.emitTyped<std::string, DelaySum>(carrier, agg);
    }
    ctx.allocateHeap(-kEntryBytes * static_cast<int64_t>(table_.size()));
    table_.clear();
  }

 private:
  static constexpr int64_t kEntryBytes = 64;  // approx per-entry footprint

  std::map<std::string, DelaySum> table_;
};

}  // namespace

mr::JobSpec makeAirlineDelayJob(AirlineVariant variant,
                                std::vector<std::string> inputs,
                                std::string output, uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = std::string("airline-delay-") + airlineVariantName(variant);
  spec.input_paths = std::move(inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = num_reducers;
  switch (variant) {
    case AirlineVariant::kPlain:
      spec.mapper = [] { return std::make_unique<PlainDelayMapper>(); };
      spec.reducer = [] { return std::make_unique<PlainAverageReducer>(); };
      break;
    case AirlineVariant::kCombiner:
      spec.mapper = [] { return std::make_unique<SumDelayMapper>(); };
      spec.combiner = [] { return std::make_unique<DelaySumCombiner>(); };
      spec.reducer = [] { return std::make_unique<DelaySumReducer>(); };
      break;
    case AirlineVariant::kInMapper:
      spec.mapper = [] { return std::make_unique<InMapperDelayMapper>(); };
      spec.reducer = [] { return std::make_unique<DelaySumReducer>(); };
      break;
  }
  return spec;
}

std::map<std::string, double> parseAirlineOutput(mr::FileSystemView& fs,
                                                 const std::string& dir) {
  std::map<std::string, double> means;
  for (const auto& file : fs.listFiles(dir)) {
    const auto slash = file.find_last_of('/');
    if (file.substr(slash + 1).rfind("part-", 0) != 0) continue;
    const Bytes body = fs.readRange(file, 0, fs.fileLength(file));
    std::istringstream lines{body};
    std::string line;
    while (std::getline(lines, line)) {
      const auto tab = line.find('\t');
      if (tab == std::string::npos) continue;
      means[line.substr(0, tab)] = std::stod(line.substr(tab + 1));
    }
  }
  return means;
}

}  // namespace mh::apps
