#include "mh/apps/movies.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "mh/common/csv.h"
#include "mh/common/error.h"
#include "mh/common/strings.h"
#include "mh/mr/fs_view.h"

namespace mh::apps {

const char* sideDataModeName(SideDataMode mode) {
  return mode == SideDataMode::kNaive ? "naive-reread" : "cached-object";
}

MovieTable MovieTable::load(mr::FileSystemView& fs, const std::string& path) {
  MovieTable table;
  const Bytes body = fs.readRange(path, 0, fs.fileLength(path));
  std::istringstream lines{body};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const auto fields = parseCsvLine(line);
    if (fields.size() < 3 || !isDigits(fields[0])) continue;
    const auto movie = static_cast<uint32_t>(std::stoul(fields[0]));
    table.genres_[movie] = splitString(fields[2], '|');
  }
  return table;
}

const std::vector<std::string>* MovieTable::genres(uint32_t movie_id) const {
  const auto it = genres_.find(movie_id);
  return it == genres_.end() ? nullptr : &it->second;
}

int64_t MovieTable::approxBytes() const {
  int64_t bytes = 0;
  for (const auto& [movie, genres] : genres_) {
    bytes += 48;
    for (const auto& genre : genres) {
      bytes += 32 + static_cast<int64_t>(genre.size());
    }
  }
  return bytes;
}

void StatSummary::add(double x) {
  if (count == 0) {
    min = max = x;
  } else {
    min = std::min(min, x);
    max = std::max(max, x);
  }
  ++count;
  sum += x;
  sum_sq += x * x;
}

void StatSummary::merge(const StatSummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  sum_sq += other.sum_sq;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

double StatSummary::mean() const {
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double StatSummary::stddev() const {
  if (count < 2) return 0.0;
  const double m = mean();
  const double var =
      (sum_sq - static_cast<double>(count) * m * m) /
      static_cast<double>(count - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

void UserActivity::merge(const UserActivity& other) {
  ratings += other.ratings;
  for (const auto& [genre, count] : other.genre_counts) {
    genre_counts[genre] += count;
  }
}

std::string UserActivity::favoriteGenre() const {
  std::string best;
  int64_t best_count = -1;
  for (const auto& [genre, count] : genre_counts) {
    if (count > best_count) {
      best_count = count;
      best = genre;
    }
  }
  return best;
}

bool parseRatingRow(std::string_view line, uint32_t& user, uint32_t& movie,
                    double& rating) {
  const auto fields = parseCsvLine(line);
  if (fields.size() < 3 || !isDigits(fields[0]) || !isDigits(fields[1])) {
    return false;
  }
  try {
    user = static_cast<uint32_t>(std::stoul(fields[0]));
    movie = static_cast<uint32_t>(std::stoul(fields[1]));
    rating = std::stod(fields[2]);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

namespace {

/// Base for mappers joining ratings against the movies side table under
/// either side-data strategy.
class JoiningMapper : public mr::Mapper {
 public:
  explicit JoiningMapper(SideDataMode mode) : mode_(mode) {}

  void setup(mr::TaskContext& ctx) override {
    side_path_ = ctx.conf().get("movies.side.path");
    if (side_path_.empty()) {
      throw InvalidArgumentError("movies.side.path is not configured");
    }
    if (mode_ == SideDataMode::kCached) {
      table_ = MovieTable::load(ctx.fs(), side_path_);
      ctx.allocateHeap(table_.approxBytes());
    }
  }

  void cleanup(mr::TaskContext& ctx) override {
    if (mode_ == SideDataMode::kCached) {
      ctx.allocateHeap(-table_.approxBytes());
    }
  }

 protected:
  /// Looks up genres, re-reading the whole table per call in naive mode.
  const std::vector<std::string>* lookupGenres(mr::TaskContext& ctx,
                                               uint32_t movie) {
    if (mode_ == SideDataMode::kNaive) {
      table_ = MovieTable::load(ctx.fs(), side_path_);  // every record!
    }
    return table_.genres(movie);
  }

 private:
  SideDataMode mode_;
  std::string side_path_;
  MovieTable table_;
};

class GenreStatsMapper final : public JoiningMapper {
 public:
  using JoiningMapper::JoiningMapper;

  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    uint32_t user = 0;
    uint32_t movie = 0;
    double rating = 0;
    if (!parseRatingRow(value, user, movie, rating)) return;
    const auto* genres = lookupGenres(ctx, movie);
    if (genres == nullptr) return;
    for (const auto& genre : *genres) {
      StatSummary one;
      one.add(rating);
      ctx.emitTyped<std::string, StatSummary>(genre, one);
    }
  }
};

class StatSummaryCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    StatSummary agg;
    while (const auto v = values.nextTyped<StatSummary>()) agg.merge(*v);
    ctx.emitTyped<std::string, StatSummary>(std::string(key), agg);
  }
};

class GenreStatsReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    StatSummary agg;
    while (const auto v = values.nextTyped<StatSummary>()) agg.merge(*v);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%lld %.3f %.3f %.1f %.1f",
                  static_cast<long long>(agg.count), agg.mean(), agg.stddev(),
                  agg.min, agg.max);
    ctx.emitTyped<std::string, std::string>(std::string(key), buf);
  }
};

class TopRaterMapper final : public JoiningMapper {
 public:
  using JoiningMapper::JoiningMapper;

  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    uint32_t user = 0;
    uint32_t movie = 0;
    double rating = 0;
    if (!parseRatingRow(value, user, movie, rating)) return;
    const auto* genres = lookupGenres(ctx, movie);
    if (genres == nullptr) return;
    UserActivity activity;
    activity.ratings = 1;
    for (const auto& genre : *genres) activity.genre_counts[genre] = 1;
    ctx.emitTyped<std::string, UserActivity>(std::to_string(user), activity);
  }
};

class UserActivityCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    UserActivity agg;
    while (const auto v = values.nextTyped<UserActivity>()) agg.merge(*v);
    ctx.emitTyped<std::string, UserActivity>(std::string(key), agg);
  }
};

/// Single reducer: folds each user's activity, tracks the global best, and
/// emits exactly one line at cleanup().
class TopRaterReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext&) override {
    UserActivity agg;
    while (const auto v = values.nextTyped<UserActivity>()) agg.merge(*v);
    const uint64_t user = std::stoull(std::string(key));
    if (agg.ratings > best_.ratings ||
        (agg.ratings == best_.ratings && user < best_user_)) {
      best_ = std::move(agg);
      best_user_ = user;
    }
  }

  void cleanup(mr::TaskContext& ctx) override {
    if (best_user_ == 0) return;
    ctx.emitTyped<std::string, std::string>(
        std::to_string(best_user_), std::to_string(best_.ratings) + "\t" +
                                        best_.favoriteGenre());
  }

 private:
  UserActivity best_;
  uint64_t best_user_ = 0;
};

}  // namespace

mr::JobSpec makeGenreStatsJob(std::vector<std::string> ratings_inputs,
                              std::string movies_side_path,
                              std::string output, SideDataMode mode,
                              uint32_t num_reducers) {
  mr::JobSpec spec;
  spec.name = std::string("genre-stats-") + sideDataModeName(mode);
  spec.input_paths = std::move(ratings_inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = num_reducers;
  spec.conf.set("movies.side.path", std::move(movies_side_path));
  spec.mapper = [mode] { return std::make_unique<GenreStatsMapper>(mode); };
  spec.combiner = [] { return std::make_unique<StatSummaryCombiner>(); };
  spec.reducer = [] { return std::make_unique<GenreStatsReducer>(); };
  return spec;
}

mr::JobSpec makeTopRaterJob(std::vector<std::string> ratings_inputs,
                            std::string movies_side_path,
                            std::string output) {
  mr::JobSpec spec;
  spec.name = "top-rater";
  spec.input_paths = std::move(ratings_inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = 1;  // the global maximum needs one reducer
  spec.conf.set("movies.side.path", std::move(movies_side_path));
  spec.mapper = [] {
    return std::make_unique<TopRaterMapper>(SideDataMode::kCached);
  };
  spec.combiner = [] { return std::make_unique<UserActivityCombiner>(); };
  spec.reducer = [] { return std::make_unique<TopRaterReducer>(); };
  return spec;
}

}  // namespace mh::apps
