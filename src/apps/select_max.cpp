#include "mh/apps/select_max.h"

#include "mh/common/strings.h"

namespace mh::apps {

namespace {

/// (key, value) candidate, serialized as a pair.
using Candidate = std::pair<std::string, double>;

bool parseLine(std::string_view line, Candidate& out) {
  const auto tab = line.find('\t');
  if (tab == std::string_view::npos) return false;
  const std::string_view key = line.substr(0, tab);
  const std::string_view value = trim(line.substr(tab + 1));
  double parsed = 0;
  try {
    parsed = std::stod(std::string(value));
  } catch (const std::exception&) {
    return false;
  }
  out = {std::string(key), parsed};
  return true;
}

}  // namespace

void MaxCandidateMapper::map(std::string_view, std::string_view value,
                             mr::TaskContext& ctx) {
  Candidate candidate;
  if (parseLine(value, candidate)) {
    ctx.emitTyped<std::string, Candidate>("max", candidate);
  }
}

void MaxSelectReducer::reduce(std::string_view key,
                              mr::ValuesIterator& values,
                              mr::TaskContext& ctx) {
  bool have = false;
  Candidate best;
  while (const auto v = values.nextTyped<Candidate>()) {
    if (!have || v->second > best.second ||
        (v->second == best.second && v->first < best.first)) {
      best = *v;
      have = true;
    }
  }
  if (have) {
    // Emits the binary candidate so further combine/reduce rounds can keep
    // folding; MaxFinalReducer renders the terminal text form.
    ctx.emitTyped<std::string, Candidate>(std::string(key), best);
  }
}

namespace {

/// Final reducer: selects the max then emits readable text.
class MaxFinalReducer : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    (void)key;
    bool have = false;
    Candidate best;
    while (const auto v = values.nextTyped<Candidate>()) {
      if (!have || v->second > best.second ||
          (v->second == best.second && v->first < best.first)) {
        best = *v;
        have = true;
      }
    }
    if (have) {
      // Integral values print without a trailing ".000000".
      std::string value_text;
      if (best.second == static_cast<double>(static_cast<int64_t>(best.second))) {
        value_text = std::to_string(static_cast<int64_t>(best.second));
      } else {
        value_text = std::to_string(best.second);
      }
      ctx.emitTyped<std::string, std::string>(best.first, value_text);
    }
  }
};

}  // namespace

mr::JobSpec makeSelectMaxJob(std::vector<std::string> inputs,
                             std::string output) {
  mr::JobSpec spec;
  spec.name = "select-max";
  spec.input_paths = std::move(inputs);
  spec.output_dir = std::move(output);
  spec.num_reducers = 1;
  spec.mapper = [] { return std::make_unique<MaxCandidateMapper>(); };
  spec.combiner = [] { return std::make_unique<MaxSelectReducer>(); };
  spec.reducer = [] { return std::make_unique<MaxFinalReducer>(); };
  return spec;
}

}  // namespace mh::apps
