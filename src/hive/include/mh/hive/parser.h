#pragma once

#include <string>
#include <string_view>

#include "mh/hive/ast.h"
#include "mh/hive/schema.h"

/// \file parser.h
/// Hand-written tokenizer + recursive-descent parser for the mini-HiveQL
/// subset (SELECT queries and CREATE EXTERNAL TABLE DDL). Errors throw
/// InvalidArgumentError with a what() naming the offending token.

namespace mh::hive {

/// Parses a SELECT statement. A trailing ';' is allowed.
Query parseQuery(std::string_view sql);

/// Parses
///   CREATE EXTERNAL TABLE <name> (<col> <TYPE> [, ...])
///   [ROW FORMAT DELIMITED FIELDS TERMINATED BY '<c>']
///   LOCATION '<path>'
/// TYPE ∈ {STRING, INT, BIGINT, DOUBLE, FLOAT}.
TableDef parseCreateTable(std::string_view sql);

/// True when the statement starts with CREATE (case-insensitive).
bool isCreateStatement(std::string_view sql);

}  // namespace mh::hive
