#pragma once

#include <optional>
#include <string>
#include <vector>

/// \file ast.h
/// Parsed form of the supported HiveQL subset:
///
///   SELECT <item> [, <item>...]
///   FROM <table>
///   [WHERE <col> <op> <literal> [AND ...]]
///   [GROUP BY <col> [, <col>...]]
///   [ORDER BY <position|alias> [ASC|DESC]]
///   [LIMIT <n>]
///
/// items: column references (must appear in GROUP BY) and the aggregates
/// COUNT(*), COUNT(col), SUM(col), AVG(col), MIN(col), MAX(col).

namespace mh::hive {

enum class AggFn { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* aggFnName(AggFn fn);

struct SelectItem {
  AggFn agg = AggFn::kNone;
  std::string column;  ///< empty for COUNT(*)
  std::string alias;   ///< display name (defaults to a rendered form)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* compareOpName(CompareOp op);

struct Predicate {
  std::string column;
  CompareOp op = CompareOp::kEq;
  std::string literal;  ///< raw text; compared numerically for numeric cols
};

struct OrderBy {
  size_t select_index = 0;  ///< 0-based position in the select list
  bool descending = false;
};

struct Query {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<Predicate> where;  ///< conjunction
  std::vector<std::string> group_by;
  std::optional<OrderBy> order_by;
  std::optional<uint64_t> limit;
};

}  // namespace mh::hive
