#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

/// \file schema.h
/// The mini-Hive metastore: external tables over delimited text files, the
/// way the course's Hive lecture frames it — "a schema on top of the files
/// you already loaded into HDFS".

namespace mh::hive {

enum class ColumnType { kString, kInt, kDouble };

const char* columnTypeName(ColumnType type);

struct Column {
  std::string name;  ///< stored lower-case; lookups are case-insensitive
  ColumnType type = ColumnType::kString;

  bool operator==(const Column&) const = default;
};

/// An external table: a directory (or file) of delimited rows.
struct TableDef {
  std::string name;
  std::vector<Column> columns;
  char delimiter = ',';
  std::string location;  ///< path on the execution file system
  /// Rows whose first field equals a column name are treated as headers
  /// and skipped (the airline CSV ships one).
  bool skip_header = true;

  /// Index of a column by (case-insensitive) name; nullopt when absent.
  std::optional<size_t> columnIndex(const std::string& name) const;
};

/// Named tables (CREATE EXTERNAL TABLE registers here).
class Catalog {
 public:
  /// Throws AlreadyExistsError on duplicate names.
  void add(TableDef table);

  /// Throws NotFoundError for unknown tables.
  const TableDef& get(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::vector<std::string> tableNames() const;
  void drop(const std::string& name);

 private:
  std::map<std::string, TableDef> tables_;
};

}  // namespace mh::hive
