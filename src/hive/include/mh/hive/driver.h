#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mh/hive/ast.h"
#include "mh/hive/parser.h"
#include "mh/hive/schema.h"
#include "mh/mr/job.h"

/// \file driver.h
/// The mini-Hive execution engine: compiles a parsed query into ONE
/// MapReduce job (map: parse + filter + project; combine/reduce: fold the
/// aggregate monoids; reduce also finalizes AVG), runs it through a
/// caller-supplied job runner (serial LocalJobRunner or a live cluster),
/// then applies ORDER BY / LIMIT driver-side — the same plan shape the
/// course's Hive lecture sketches for "SELECT carrier, AVG(delay) ...".

namespace mh::hive {

struct QueryResult {
  std::vector<std::string> header;             ///< select-list aliases
  std::vector<std::vector<std::string>> rows;  ///< rendered cells
  mr::Counters counters;                       ///< the underlying job's

  /// Tab-separated rendering, header first.
  std::string render() const;
};

class Driver {
 public:
  /// `run_job` executes one MapReduce job and returns its result (wrap a
  /// LocalJobRunner or MiniMrCluster::runJob). `fs` reads job output back.
  using JobRunner = std::function<mr::JobResult(mr::JobSpec)>;

  Driver(Catalog catalog, mr::FileSystemView& fs, JobRunner run_job,
         std::string scratch_dir = "/tmp/hive");

  /// Executes one statement: CREATE EXTERNAL TABLE mutates the catalog and
  /// returns an empty result; SELECT compiles and runs a job.
  QueryResult execute(const std::string& sql);

  Catalog& catalog() { return catalog_; }

  /// Compiles a SELECT into the JobSpec the driver would run (exposed for
  /// tests and for the lecture demo to show the generated plan).
  mr::JobSpec compile(const Query& query, const std::string& output_dir);

 private:
  QueryResult runSelect(const Query& query);

  Catalog catalog_;
  mr::FileSystemView& fs_;
  JobRunner run_job_;
  std::string scratch_dir_;
  uint64_t next_query_id_ = 1;
};

}  // namespace mh::hive
