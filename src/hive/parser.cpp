#include "mh/hive/parser.h"

#include <cctype>

#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh::hive {

namespace {

enum class TokenKind { kWord, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  ///< words upper-cased; strings unquoted
  std::string raw;   ///< original spelling
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token token = current_;
    advance();
    return token;
  }

  /// Consumes a word token equal to `keyword` (case-insensitive); throws
  /// otherwise.
  void expectKeyword(const char* keyword) {
    if (!tryKeyword(keyword)) {
      throw InvalidArgumentError(std::string("expected ") + keyword +
                                 " near '" + current_.raw + "'");
    }
  }

  bool tryKeyword(const char* keyword) {
    if (current_.kind == TokenKind::kWord && current_.text == keyword) {
      advance();
      return true;
    }
    return false;
  }

  bool trySymbol(const char* symbol) {
    if (current_.kind == TokenKind::kSymbol && current_.text == symbol) {
      advance();
      return true;
    }
    return false;
  }

  void expectSymbol(const char* symbol) {
    if (!trySymbol(symbol)) {
      throw InvalidArgumentError(std::string("expected '") + symbol +
                                 "' near '" + current_.raw + "'");
    }
  }

  /// A word used as an identifier: returned lower-case.
  std::string expectIdentifier() {
    if (current_.kind != TokenKind::kWord) {
      throw InvalidArgumentError("expected identifier near '" + current_.raw +
                                 "'");
    }
    return toLowerAscii(take().raw);
  }

  bool atEnd() const { return current_.kind == TokenKind::kEnd; }

 private:
  void advance() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      current_ = {TokenKind::kEnd, "", ""};
      return;
    }
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_')) {
        ++pos_;
      }
      const std::string raw(sql_.substr(start, pos_ - start));
      std::string upper = raw;
      for (auto& ch : upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      current_ = {TokenKind::kWord, upper, raw};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      const size_t start = pos_;
      ++pos_;
      while (pos_ < sql_.size() &&
             (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '.')) {
        ++pos_;
      }
      const std::string raw(sql_.substr(start, pos_ - start));
      current_ = {TokenKind::kNumber, raw, raw};
      return;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++pos_;
      std::string body;
      while (pos_ < sql_.size() && sql_[pos_] != quote) {
        body.push_back(sql_[pos_++]);
      }
      if (pos_ >= sql_.size()) {
        throw InvalidArgumentError("unterminated string literal");
      }
      ++pos_;  // closing quote
      current_ = {TokenKind::kString, body, body};
      return;
    }
    // Symbols; two-char comparators first.
    for (const char* sym : {"<=", ">=", "!=", "<>"}) {
      if (sql_.substr(pos_, 2) == sym) {
        pos_ += 2;
        current_ = {TokenKind::kSymbol, sym, sym};
        return;
      }
    }
    pos_ += 1;
    const std::string sym(1, c);
    current_ = {TokenKind::kSymbol, sym, sym};
  }

  std::string_view sql_;
  size_t pos_ = 0;
  Token current_;
};

AggFn aggFromKeyword(const std::string& word) {
  if (word == "COUNT") return AggFn::kCount;
  if (word == "SUM") return AggFn::kSum;
  if (word == "AVG") return AggFn::kAvg;
  if (word == "MIN") return AggFn::kMin;
  if (word == "MAX") return AggFn::kMax;
  return AggFn::kNone;
}

SelectItem parseSelectItem(Lexer& lexer) {
  SelectItem item;
  const Token head = lexer.take();
  if (head.kind != TokenKind::kWord) {
    throw InvalidArgumentError("expected select item near '" + head.raw + "'");
  }
  const AggFn agg = aggFromKeyword(head.text);
  if (agg != AggFn::kNone && lexer.trySymbol("(")) {
    item.agg = agg;
    if (lexer.trySymbol("*")) {
      if (agg != AggFn::kCount) {
        throw InvalidArgumentError("only COUNT accepts *");
      }
      item.column.clear();
    } else {
      item.column = lexer.expectIdentifier();
    }
    lexer.expectSymbol(")");
    item.alias = std::string(aggFnName(agg)) + "(" +
                 (item.column.empty() ? "*" : item.column) + ")";
  } else {
    item.agg = AggFn::kNone;
    item.column = toLowerAscii(head.raw);
    item.alias = item.column;
  }
  if (lexer.tryKeyword("AS")) {
    item.alias = lexer.expectIdentifier();
  }
  return item;
}

CompareOp parseOp(Lexer& lexer) {
  const Token token = lexer.take();
  if (token.kind != TokenKind::kSymbol) {
    throw InvalidArgumentError("expected comparison near '" + token.raw + "'");
  }
  if (token.text == "=") return CompareOp::kEq;
  if (token.text == "!=" || token.text == "<>") return CompareOp::kNe;
  if (token.text == "<") return CompareOp::kLt;
  if (token.text == "<=") return CompareOp::kLe;
  if (token.text == ">") return CompareOp::kGt;
  if (token.text == ">=") return CompareOp::kGe;
  throw InvalidArgumentError("unknown comparison '" + token.raw + "'");
}

}  // namespace

Query parseQuery(std::string_view sql) {
  Lexer lexer(sql);
  Query query;
  lexer.expectKeyword("SELECT");
  query.items.push_back(parseSelectItem(lexer));
  while (lexer.trySymbol(",")) {
    query.items.push_back(parseSelectItem(lexer));
  }
  lexer.expectKeyword("FROM");
  query.table = lexer.expectIdentifier();

  if (lexer.tryKeyword("WHERE")) {
    do {
      Predicate predicate;
      predicate.column = lexer.expectIdentifier();
      predicate.op = parseOp(lexer);
      const Token literal = lexer.take();
      if (literal.kind != TokenKind::kNumber &&
          literal.kind != TokenKind::kString &&
          literal.kind != TokenKind::kWord) {
        throw InvalidArgumentError("expected literal near '" + literal.raw +
                                   "'");
      }
      predicate.literal = literal.kind == TokenKind::kString ? literal.text
                                                             : literal.raw;
      query.where.push_back(std::move(predicate));
    } while (lexer.tryKeyword("AND"));
  }

  if (lexer.tryKeyword("GROUP")) {
    lexer.expectKeyword("BY");
    do {
      query.group_by.push_back(lexer.expectIdentifier());
    } while (lexer.trySymbol(","));
  }

  if (lexer.tryKeyword("ORDER")) {
    lexer.expectKeyword("BY");
    const Token token = lexer.take();
    OrderBy order;
    if (token.kind == TokenKind::kNumber) {
      const auto position = std::stoul(token.raw);
      if (position == 0 || position > query.items.size()) {
        throw InvalidArgumentError("ORDER BY position out of range");
      }
      order.select_index = position - 1;
    } else if (token.kind == TokenKind::kWord) {
      const std::string name = toLowerAscii(token.raw);
      bool found = false;
      for (size_t i = 0; i < query.items.size(); ++i) {
        if (query.items[i].alias == name || query.items[i].column == name) {
          order.select_index = i;
          found = true;
          break;
        }
      }
      if (!found) {
        throw InvalidArgumentError("ORDER BY references unknown item '" +
                                   token.raw + "'");
      }
    } else {
      throw InvalidArgumentError("expected ORDER BY item");
    }
    if (lexer.tryKeyword("DESC")) {
      order.descending = true;
    } else {
      lexer.tryKeyword("ASC");
    }
    query.order_by = order;
  }

  if (lexer.tryKeyword("LIMIT")) {
    const Token token = lexer.take();
    if (token.kind != TokenKind::kNumber) {
      throw InvalidArgumentError("expected LIMIT count");
    }
    query.limit = std::stoull(token.raw);
  }

  lexer.trySymbol(";");
  if (!lexer.atEnd()) {
    throw InvalidArgumentError("trailing input near '" + lexer.peek().raw +
                               "'");
  }
  return query;
}

bool isCreateStatement(std::string_view sql) {
  Lexer lexer(sql);
  return lexer.peek().kind == TokenKind::kWord &&
         lexer.peek().text == "CREATE";
}

TableDef parseCreateTable(std::string_view sql) {
  Lexer lexer(sql);
  lexer.expectKeyword("CREATE");
  lexer.tryKeyword("EXTERNAL");
  lexer.expectKeyword("TABLE");
  TableDef table;
  table.name = lexer.expectIdentifier();
  lexer.expectSymbol("(");
  do {
    Column column;
    column.name = lexer.expectIdentifier();
    const Token type = lexer.take();
    if (type.kind != TokenKind::kWord) {
      throw InvalidArgumentError("expected column type");
    }
    if (type.text == "STRING") {
      column.type = ColumnType::kString;
    } else if (type.text == "INT" || type.text == "BIGINT") {
      column.type = ColumnType::kInt;
    } else if (type.text == "DOUBLE" || type.text == "FLOAT") {
      column.type = ColumnType::kDouble;
    } else {
      throw InvalidArgumentError("unknown column type '" + type.raw + "'");
    }
    table.columns.push_back(std::move(column));
  } while (lexer.trySymbol(","));
  lexer.expectSymbol(")");

  if (lexer.tryKeyword("ROW")) {
    lexer.expectKeyword("FORMAT");
    lexer.expectKeyword("DELIMITED");
    lexer.expectKeyword("FIELDS");
    lexer.expectKeyword("TERMINATED");
    lexer.expectKeyword("BY");
    const Token delim = lexer.take();
    if (delim.kind != TokenKind::kString || delim.text.size() != 1) {
      // Support the common escape for tab.
      if (delim.text == "\\t") {
        table.delimiter = '\t';
      } else {
        throw InvalidArgumentError("delimiter must be one character");
      }
    } else {
      table.delimiter = delim.text[0];
    }
  }
  lexer.expectKeyword("LOCATION");
  const Token location = lexer.take();
  if (location.kind != TokenKind::kString) {
    throw InvalidArgumentError("LOCATION needs a quoted path");
  }
  table.location = location.text;
  lexer.trySymbol(";");
  if (!lexer.atEnd()) {
    throw InvalidArgumentError("trailing input near '" + lexer.peek().raw +
                               "'");
  }
  return table;
}

}  // namespace mh::hive
