#include "mh/hive/ast.h"

namespace mh::hive {

const char* aggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kNone: return "";
    case AggFn::kCount: return "COUNT";
    case AggFn::kSum: return "SUM";
    case AggFn::kAvg: return "AVG";
    case AggFn::kMin: return "MIN";
    case AggFn::kMax: return "MAX";
  }
  return "?";
}

const char* compareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace mh::hive
