#include "mh/hive/schema.h"

#include "mh/common/error.h"
#include "mh/common/strings.h"

namespace mh::hive {

const char* columnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kString: return "STRING";
    case ColumnType::kInt: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
  }
  return "?";
}

std::optional<size_t> TableDef::columnIndex(const std::string& name) const {
  const std::string lowered = toLowerAscii(name);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == lowered) return i;
  }
  return std::nullopt;
}

void Catalog::add(TableDef table) {
  if (tables_.contains(table.name)) {
    throw AlreadyExistsError("table exists: " + table.name);
  }
  const std::string name = table.name;
  tables_.emplace(name, std::move(table));
}

const TableDef& Catalog::get(const std::string& name) const {
  const auto it = tables_.find(toLowerAscii(name));
  if (it == tables_.end()) throw NotFoundError("no such table: " + name);
  return it->second;
}

bool Catalog::contains(const std::string& name) const {
  return tables_.contains(toLowerAscii(name));
}

std::vector<std::string> Catalog::tableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

void Catalog::drop(const std::string& name) {
  tables_.erase(toLowerAscii(name));
}

}  // namespace mh::hive
