#include "mh/hive/driver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "mh/common/error.h"
#include "mh/common/strings.h"
#include "mh/mr/fs_view.h"

namespace mh::hive {

namespace {

/// The per-select-item aggregate monoid.
struct AggState {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void addValue(double x) {
    if (count == 0) {
      min = max = x;
    } else {
      min = std::min(min, x);
      max = std::max(max, x);
    }
    ++count;
    sum += x;
  }

  void addRow() { ++count; }  // COUNT(*)

  void merge(const AggState& other) {
    if (other.count == 0) return;
    if (count == 0) {
      *this = other;
      return;
    }
    count += other.count;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
};

/// Fully resolved execution plan (column names -> indices), shared by the
/// generated mapper/combiner/reducer instances.
struct Plan {
  TableDef table;
  Query query;
  std::vector<size_t> group_col;            // per GROUP BY entry
  std::vector<size_t> pred_col;             // per predicate
  std::vector<bool> pred_numeric;           // numeric comparison?
  std::vector<int> item_group_index;        // non-agg: index into group_by
  std::vector<std::optional<size_t>> item_col;  // agg: source column
};

constexpr char kKeySep = '\x01';

bool isNull(const std::string& field) {
  return field.empty() || field == "NA" || field == "\\N";
}

bool numericParse(const std::string& text, double& out) {
  try {
    size_t used = 0;
    out = std::stod(text, &used);
    return used == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool evalPredicate(const Plan& plan, size_t i,
                   const std::vector<std::string>& fields) {
  const Predicate& predicate = plan.query.where[i];
  const std::string& field = fields[plan.pred_col[i]];
  if (isNull(field)) return false;  // NULL comparisons are false
  int cmp;
  if (plan.pred_numeric[i]) {
    double lhs = 0;
    double rhs = 0;
    if (!numericParse(field, lhs) || !numericParse(predicate.literal, rhs)) {
      return false;
    }
    cmp = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  } else {
    cmp = field.compare(predicate.literal);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (predicate.op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

Bytes encodeStates(const std::vector<AggState>& states) {
  Bytes out;
  ByteWriter w(out);
  w.writeVarU64(states.size());
  for (const AggState& s : states) {
    w.writeVarI64(s.count);
    w.writeDouble(s.sum);
    w.writeDouble(s.min);
    w.writeDouble(s.max);
  }
  return out;
}

std::vector<AggState> decodeStates(std::string_view buf) {
  ByteReader r(buf);
  const uint64_t n = r.readVarU64();
  std::vector<AggState> states(n);
  for (auto& s : states) {
    s.count = r.readVarI64();
    s.sum = r.readDouble();
    s.min = r.readDouble();
    s.max = r.readDouble();
  }
  return states;
}

std::string renderNumber(double value) {
  char buf[48];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

class HiveMapper : public mr::Mapper {
 public:
  explicit HiveMapper(std::shared_ptr<const Plan> plan)
      : plan_(std::move(plan)) {}

  void map(std::string_view, std::string_view value,
           mr::TaskContext& ctx) override {
    const Plan& plan = *plan_;
    const auto fields =
        splitString(value, plan.table.delimiter);
    if (fields.size() < plan.table.columns.size()) return;  // malformed
    if (plan.table.skip_header &&
        toLowerAscii(fields[0]) == plan.table.columns[0].name) {
      return;
    }
    for (size_t i = 0; i < plan.query.where.size(); ++i) {
      if (!evalPredicate(plan, i, fields)) return;
    }
    // Group key.
    std::string key;
    for (size_t g = 0; g < plan.group_col.size(); ++g) {
      if (g > 0) key.push_back(kKeySep);
      key += fields[plan.group_col[g]];
    }
    // Partial aggregates.
    std::vector<AggState> states(plan.query.items.size());
    for (size_t i = 0; i < plan.query.items.size(); ++i) {
      const SelectItem& item = plan.query.items[i];
      if (item.agg == AggFn::kNone) continue;
      if (item.agg == AggFn::kCount && !plan.item_col[i].has_value()) {
        states[i].addRow();  // COUNT(*)
        continue;
      }
      const std::string& field = fields[*plan.item_col[i]];
      if (isNull(field)) continue;  // aggregates skip NULLs
      if (item.agg == AggFn::kCount) {
        states[i].addRow();
        continue;
      }
      double x = 0;
      if (numericParse(field, x)) states[i].addValue(x);
    }
    ctx.emit(std::move(key), encodeStates(states));
  }

  void cleanup(mr::TaskContext& ctx) override {
    // Global aggregation (no GROUP BY) must produce a row even when no
    // input rows match — SELECT COUNT(*) over an empty match set is 0, not
    // an empty result. Emitting a zeroed partial guarantees the single
    // group exists.
    if (plan_->query.group_by.empty()) {
      ctx.emit("", encodeStates(
                       std::vector<AggState>(plan_->query.items.size())));
    }
  }

 private:
  std::shared_ptr<const Plan> plan_;
};

/// Folds partials; usable as the combiner.
class HiveCombiner : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    std::vector<AggState> total;
    while (const auto v = values.next()) {
      auto states = decodeStates(*v);
      if (total.empty()) {
        total = std::move(states);
      } else {
        for (size_t i = 0; i < total.size(); ++i) total[i].merge(states[i]);
      }
    }
    ctx.emit(Bytes(key), encodeStates(total));
  }
};

/// Finalizes each group into a rendered text row.
class HiveReducer : public mr::Reducer {
 public:
  explicit HiveReducer(std::shared_ptr<const Plan> plan)
      : plan_(std::move(plan)) {}

  void reduce(std::string_view key, mr::ValuesIterator& values,
              mr::TaskContext& ctx) override {
    const Plan& plan = *plan_;
    std::vector<AggState> total(plan.query.items.size());
    while (const auto v = values.next()) {
      const auto states = decodeStates(*v);
      for (size_t i = 0; i < total.size(); ++i) total[i].merge(states[i]);
    }
    const auto key_parts = splitString(key, kKeySep);

    std::string row;
    for (size_t i = 0; i < plan.query.items.size(); ++i) {
      if (i > 0) row.push_back('\t');
      const SelectItem& item = plan.query.items[i];
      const AggState& s = total[i];
      switch (item.agg) {
        case AggFn::kNone:
          row += key_parts.at(
              static_cast<size_t>(plan.item_group_index[i]));
          break;
        case AggFn::kCount:
          row += renderNumber(static_cast<double>(s.count));
          break;
        case AggFn::kSum:
          row += renderNumber(s.sum);
          break;
        case AggFn::kAvg:
          row += s.count > 0
                     ? renderNumber(s.sum / static_cast<double>(s.count))
                     : "NULL";
          break;
        case AggFn::kMin:
          row += s.count > 0 ? renderNumber(s.min) : "NULL";
          break;
        case AggFn::kMax:
          row += s.count > 0 ? renderNumber(s.max) : "NULL";
          break;
      }
    }
    ctx.emit(std::move(row), "");
  }

 private:
  std::shared_ptr<const Plan> plan_;
};

}  // namespace

std::string QueryResult::render() const {
  std::ostringstream out;
  out << joinStrings(header, "\t") << "\n";
  for (const auto& row : rows) {
    out << joinStrings(row, "\t") << "\n";
  }
  return out.str();
}

Driver::Driver(Catalog catalog, mr::FileSystemView& fs, JobRunner run_job,
               std::string scratch_dir)
    : catalog_(std::move(catalog)),
      fs_(fs),
      run_job_(std::move(run_job)),
      scratch_dir_(std::move(scratch_dir)) {}

mr::JobSpec Driver::compile(const Query& query,
                            const std::string& output_dir) {
  const TableDef& table = catalog_.get(query.table);
  auto plan = std::make_shared<Plan>();
  plan->table = table;
  plan->query = query;

  for (const auto& column : query.group_by) {
    const auto idx = table.columnIndex(column);
    if (!idx) {
      throw InvalidArgumentError("GROUP BY column '" + column +
                                 "' not in table " + table.name);
    }
    plan->group_col.push_back(*idx);
  }
  for (const auto& predicate : query.where) {
    const auto idx = table.columnIndex(predicate.column);
    if (!idx) {
      throw InvalidArgumentError("WHERE column '" + predicate.column +
                                 "' not in table " + table.name);
    }
    plan->pred_col.push_back(*idx);
    plan->pred_numeric.push_back(table.columns[*idx].type !=
                                 ColumnType::kString);
  }
  for (const auto& item : query.items) {
    if (item.agg == AggFn::kNone) {
      const auto group_it =
          std::find(query.group_by.begin(), query.group_by.end(),
                    item.column);
      if (group_it == query.group_by.end()) {
        throw InvalidArgumentError("column '" + item.column +
                                   "' must appear in GROUP BY");
      }
      plan->item_group_index.push_back(
          static_cast<int>(group_it - query.group_by.begin()));
      plan->item_col.emplace_back();
    } else {
      plan->item_group_index.push_back(-1);
      if (item.column.empty()) {
        plan->item_col.emplace_back();  // COUNT(*)
      } else {
        const auto idx = table.columnIndex(item.column);
        if (!idx) {
          throw InvalidArgumentError("column '" + item.column +
                                     "' not in table " + table.name);
        }
        plan->item_col.emplace_back(*idx);
      }
    }
  }

  mr::JobSpec spec;
  spec.name = "hive:" + query.table;
  spec.input_paths = {table.location};
  spec.output_dir = output_dir;
  spec.num_reducers = query.group_by.empty() ? 1 : 2;
  spec.mapper = [plan] { return std::make_unique<HiveMapper>(plan); };
  spec.combiner = [] { return std::make_unique<HiveCombiner>(); };
  spec.reducer = [plan] { return std::make_unique<HiveReducer>(plan); };
  return spec;
}

QueryResult Driver::runSelect(const Query& query) {
  const std::string output_dir =
      scratch_dir_ + "/q" + std::to_string(next_query_id_++);
  const auto result = run_job_(compile(query, output_dir));
  if (!result.succeeded()) {
    throw IoError("hive job failed: " + result.error);
  }

  QueryResult out;
  out.counters = result.counters;
  for (const auto& item : query.items) out.header.push_back(item.alias);

  for (const auto& file : fs_.listFiles(output_dir)) {
    const auto slash = file.find_last_of('/');
    if (file.substr(slash + 1).rfind("part-", 0) != 0) continue;
    const Bytes body = fs_.readRange(file, 0, fs_.fileLength(file));
    std::istringstream lines{body};
    std::string line;
    while (std::getline(lines, line)) {
      out.rows.push_back(splitString(line, '\t'));
    }
  }
  fs_.remove(output_dir);

  if (query.order_by) {
    const size_t index = query.order_by->select_index;
    const bool desc = query.order_by->descending;
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [&](const auto& a, const auto& b) {
                       double x = 0;
                       double y = 0;
                       if (numericParse(a.at(index), x) &&
                           numericParse(b.at(index), y)) {
                         return desc ? y < x : x < y;
                       }
                       return desc ? b.at(index) < a.at(index)
                                   : a.at(index) < b.at(index);
                     });
  }
  if (query.limit && out.rows.size() > *query.limit) {
    out.rows.resize(*query.limit);
  }
  return out;
}

QueryResult Driver::execute(const std::string& sql) {
  if (isCreateStatement(sql)) {
    catalog_.add(parseCreateTable(sql));
    return {};
  }
  return runSelect(parseQuery(sql));
}

}  // namespace mh::hive
