#include "mh/survey/paper_tables.h"

#include <cstdio>
#include <sstream>

namespace mh::survey {

const std::vector<ProficiencyRow>& paperTable1() {
  static const std::vector<ProficiencyRow> kRows{
      {"Java", {"Java/before", 6.6, 1.2}, {"Java/after", 7.3, 1.1}},
      {"Linux", {"Linux/before", 5.86, 1.7}, {"Linux/after", 7.1, 1.7}},
      {"Networking",
       {"Networking/before", 4.38, 1.6},
       {"Networking/after", 6.29, 1.5}},
      {"Hadoop MapReduce",
       {"Hadoop/before", 0.03, 0.2},
       {"Hadoop/after", 4.53, 1.16}},
  };
  return kRows;
}

const std::vector<AggregateRow>& paperTable2() {
  static const std::vector<AggregateRow> kRows{
      {"First Assignment", 3.5, 0.7},
      {"Second Assignment", 3.1, 0.9},
      {"Set up Hadoop cluster", 2.5, 1.1},
  };
  return kRows;
}

const std::vector<AggregateRow>& paperTable3() {
  static const std::vector<AggregateRow> kRows{
      {"Lecture", 3.0, 0.9},
      {"In-class lab", 3.6, 0.7},
      {"Hadoop cluster tutorial", 2.9, 0.82},
  };
  return kRows;
}

const std::vector<LevelCount>& paperTable4() {
  static const std::vector<LevelCount> kRows{
      {"Senior", 7},
      {"Junior", 14},
      {"Sophomore", 6},
      {"Freshman", 2},
  };
  return kRows;
}

const std::vector<OutcomeRow>& paperTable5() {
  static const std::vector<OutcomeRow> kRows{
      {"Familiarity", "Parallel & Distributed Computing",
       "Parallelism Fundamentals",
       "Distinguishing using computational resources for a faster answer "
       "from managing efficient access to a shared resource",
       "bench_fig1_architecture: HPC vs Hadoop scan on mh::sim"},
      {"Familiarity", "Parallel & Distributed Computing",
       "Parallel Architecture",
       "Describe the key performance challenges in different memory and "
       "distributed system topologies",
       "mh::sim cluster models; net::Network byte metering"},
      {"Familiarity/Usage", "Parallel & Distributed Computing",
       "Parallel Performance", "Explain performance impacts of data locality",
       "DATA_LOCAL_MAPS counters; bench_serial_vs_hdfs; local-read tests"},
      {"Familiarity", "Information Management", "Distributed Databases",
       "Explain the techniques used for data fragmentation, replication, "
       "and allocation during the distributed database design process",
       "mh::hdfs block placement, replication monitor, fsck"},
      {"Usage/Assessment", "Parallel & Distributed Computing",
       "Parallel Algorithms, Analysis, and Programming",
       "Decompose a problem via map and reduce operations",
       "mh::apps jobs (wordcount, airline, movies, music, gtrace)"},
      {"Usage", "Parallel & Distributed Computing", "Parallel Performance",
       "Observe how data distribution/layout can affect an algorithm's "
       "communication costs",
       "bench_combiner_tradeoff; bench_airline_variants shuffle bytes"},
  };
  return kRows;
}

RegeneratedRow regenerateRow(const AggregateRow& row, const LikertSpec& scale,
                             uint64_t seed) {
  Rng rng(seed);
  const auto responses = synthesizeResponses(kRespondents, row.paper_mean,
                                             row.paper_std, scale, rng);
  const RunningStat stat = summarize(responses);
  return RegeneratedRow{row.label,    row.paper_mean, row.paper_std,
                        stat.mean(),  stat.stddev(),
                        responses.size()};
}

std::string renderRegeneratedTable(const std::string& title,
                                   const std::vector<RegeneratedRow>& rows) {
  std::ostringstream out;
  out << title << " (N=" << kRespondents << ")\n";
  char line[160];
  std::snprintf(line, sizeof(line), "  %-28s %14s %16s\n", "Row",
                "paper", "regenerated");
  out << line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "  %-28s %8.2f±%-5.2f %8.2f±%-5.2f\n",
                  row.label.c_str(), row.paper_mean, row.paper_std,
                  row.regen_mean, row.regen_std);
    out << line;
  }
  return out.str();
}

}  // namespace mh::survey
