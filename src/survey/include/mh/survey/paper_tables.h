#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mh/survey/likert.h"

/// \file paper_tables.h
/// The published values of the paper's evaluation tables (I–V) and the
/// machinery to regenerate each one from synthesized responses. N = 29
/// returned surveys out of 39 students (§II-D).

namespace mh::survey {

inline constexpr size_t kRespondents = 29;

/// One row of a mean±std table.
struct AggregateRow {
  std::string label;
  double paper_mean;
  double paper_std;
};

/// Table I — proficiency 0..10, before and after the module.
struct ProficiencyRow {
  std::string topic;
  AggregateRow before;
  AggregateRow after;
};
const std::vector<ProficiencyRow>& paperTable1();

/// Table II — time to complete (1..4 banded scale).
const std::vector<AggregateRow>& paperTable2();

/// Table III — helpfulness of materials (1..4).
const std::vector<AggregateRow>& paperTable3();

/// Table IV — lowest level to teach: counts per category.
struct LevelCount {
  std::string level;
  uint64_t count;
};
const std::vector<LevelCount>& paperTable4();

/// Table V — ACM/IEEE PDC learning-outcome mapping (qualitative), extended
/// with the artifact in THIS repository exercising each outcome.
struct OutcomeRow {
  std::string level;
  std::string knowledge_area;
  std::string knowledge_unit;
  std::string outcome;
  std::string repo_artifact;
};
const std::vector<OutcomeRow>& paperTable5();

/// A regenerated mean±std row: paper value vs statistics recomputed over
/// the synthesized responses.
struct RegeneratedRow {
  std::string label;
  double paper_mean;
  double paper_std;
  double regen_mean;
  double regen_std;
  size_t n;
};

/// Synthesizes a response set for one aggregate row and recomputes it.
RegeneratedRow regenerateRow(const AggregateRow& row, const LikertSpec& scale,
                             uint64_t seed);

/// Renders a paper-vs-regenerated table; `header` names the value column.
std::string renderRegeneratedTable(const std::string& title,
                                   const std::vector<RegeneratedRow>& rows);

}  // namespace mh::survey
