#pragma once

#include <cstdint>
#include <vector>

#include "mh/common/rng.h"
#include "mh/common/stats.h"

/// \file likert.h
/// Calibrated Likert-response synthesis. The paper publishes only aggregate
/// survey statistics (mean ± std over 29 returned forms); the raw responses
/// are unavailable, so each table is reproduced by synthesizing a discrete
/// response set whose statistics match the published aggregates and then
/// re-running the identical estimator over it (DESIGN.md substitutions).

namespace mh::survey {

struct LikertSpec {
  double lo = 0;    ///< smallest legal response
  double hi = 10;   ///< largest legal response
  double step = 1;  ///< response granularity (1 for integers)
};

/// Synthesizes `n` responses on the scale whose sample mean/stddev match
/// the targets as closely as the discrete grid permits. Deterministic for
/// a given rng state. Uses randomized initialization plus greedy
/// coordinate moves minimizing (Δmean² + Δstd²).
std::vector<double> synthesizeResponses(size_t n, double target_mean,
                                        double target_std,
                                        const LikertSpec& scale, Rng& rng);

/// Mean/stddev of a response set (sample stddev, n-1), as the paper's
/// tables report.
RunningStat summarize(const std::vector<double>& responses);

/// Synthesizes categorical choices with exact per-category counts, in a
/// deterministically shuffled order (Table IV's 7/14/6/2 of 29).
std::vector<size_t> synthesizeCategorical(const std::vector<uint64_t>& counts,
                                          Rng& rng);

}  // namespace mh::survey
