#include "mh/survey/likert.h"

#include <algorithm>
#include <cmath>

#include "mh/common/error.h"

namespace mh::survey {

namespace {

double objective(const std::vector<double>& responses, double target_mean,
                 double target_std) {
  RunningStat stat;
  for (const double r : responses) stat.add(r);
  const double dm = stat.mean() - target_mean;
  const double ds = stat.stddev() - target_std;
  return dm * dm + ds * ds;
}

double clampToGrid(double x, const LikertSpec& scale) {
  const double snapped =
      scale.lo + std::round((x - scale.lo) / scale.step) * scale.step;
  return std::clamp(snapped, scale.lo, scale.hi);
}

}  // namespace

std::vector<double> synthesizeResponses(size_t n, double target_mean,
                                        double target_std,
                                        const LikertSpec& scale, Rng& rng) {
  if (n == 0) throw InvalidArgumentError("need >= 1 response");
  if (!(scale.hi > scale.lo) || scale.step <= 0) {
    throw InvalidArgumentError("bad Likert scale");
  }
  if (target_mean < scale.lo || target_mean > scale.hi) {
    throw InvalidArgumentError("target mean outside the scale");
  }

  // Initialize near the target distribution.
  std::vector<double> responses(n);
  for (auto& r : responses) {
    r = clampToGrid(rng.normal(target_mean, std::max(target_std, 1e-6)),
                    scale);
  }

  // Greedy refinement: try moving single responses one step up/down.
  double best = objective(responses, target_mean, target_std);
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 200) {
    improved = false;
    ++rounds;
    for (size_t i = 0; i < n; ++i) {
      for (const double delta : {scale.step, -scale.step}) {
        const double original = responses[i];
        const double candidate = clampToGrid(original + delta, scale);
        if (candidate == original) continue;
        responses[i] = candidate;
        const double score = objective(responses, target_mean, target_std);
        if (score + 1e-12 < best) {
          best = score;
          improved = true;
        } else {
          responses[i] = original;
        }
      }
    }
  }
  return responses;
}

RunningStat summarize(const std::vector<double>& responses) {
  RunningStat stat;
  for (const double r : responses) stat.add(r);
  return stat;
}

std::vector<size_t> synthesizeCategorical(const std::vector<uint64_t>& counts,
                                          Rng& rng) {
  std::vector<size_t> out;
  for (size_t category = 0; category < counts.size(); ++category) {
    for (uint64_t i = 0; i < counts[category]; ++i) out.push_back(category);
  }
  // Fisher–Yates with the deterministic rng.
  for (size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.uniform(i)]);
  }
  return out;
}

}  // namespace mh::survey
