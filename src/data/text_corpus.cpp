#include "mh/data/text_corpus.h"

#include <algorithm>

#include "mh/common/error.h"

namespace mh::data {

std::string pseudoWord(uint64_t index) {
  static const char* kConsonants = "bcdfghjklmnprstvwz";
  static const char* kVowels = "aeiou";
  const size_t nc = 18;
  const size_t nv = 5;
  // Base-(nc*nv) expansion into CV syllables; at least two syllables so
  // words look word-like.
  std::string out;
  uint64_t x = index;
  do {
    const uint64_t syllable = x % (nc * nv);
    out.push_back(kConsonants[syllable / nv]);
    out.push_back(kVowels[syllable % nv]);
    x /= nc * nv;
  } while (x > 0);
  if (out.size() < 4) out += "ta";
  return out;
}

TextCorpusGenerator::TextCorpusGenerator(TextCorpusOptions options)
    : options_(options) {
  if (options_.vocabulary_size == 0) {
    throw InvalidArgumentError("vocabulary must be non-empty");
  }
  if (options_.min_words_per_line < 1 ||
      options_.max_words_per_line < options_.min_words_per_line) {
    throw InvalidArgumentError("bad words-per-line range");
  }
  vocabulary_.reserve(options_.vocabulary_size);
  for (size_t i = 0; i < options_.vocabulary_size; ++i) {
    vocabulary_.push_back(pseudoWord(i));
  }
}

Bytes TextCorpusGenerator::generate() {
  Rng rng(options_.seed);
  ZipfSampler zipf(options_.vocabulary_size, options_.zipf_exponent);
  counts_.assign(options_.vocabulary_size, 0);

  Bytes out;
  out.reserve(options_.target_bytes + 128);
  while (out.size() < options_.target_bytes) {
    const int words = static_cast<int>(
        rng.range(options_.min_words_per_line, options_.max_words_per_line));
    for (int w = 0; w < words; ++w) {
      const uint64_t rank = zipf.sample(rng);
      ++counts_[rank];
      out += vocabulary_[rank];
      out.push_back(w + 1 == words ? '\n' : ' ');
    }
  }
  return out;
}

std::pair<std::string, uint64_t> TextCorpusGenerator::topWord() const {
  if (counts_.empty()) {
    throw IllegalStateError("generate() has not been called");
  }
  const auto it = std::max_element(counts_.begin(), counts_.end());
  const auto rank = static_cast<size_t>(it - counts_.begin());
  return {vocabulary_[rank], *it};
}

}  // namespace mh::data
