#include "mh/data/movies.h"

#include <algorithm>
#include <cstdio>

#include "mh/common/error.h"
#include "mh/common/rng.h"

namespace mh::data {

const std::vector<std::string>& movieGenres() {
  static const std::vector<std::string> kGenres{
      "Action",    "Adventure", "Animation", "Children", "Comedy",
      "Crime",     "Documentary", "Drama",   "Fantasy",  "FilmNoir",
      "Horror",    "Musical",   "Mystery",  "Romance",  "SciFi",
      "Thriller",  "War",       "Western"};
  return kGenres;
}

MoviesGenerator::MoviesGenerator(MoviesOptions options) : options_(options) {
  if (options_.num_users == 0 || options_.num_movies == 0) {
    throw InvalidArgumentError("need users and movies");
  }
  Rng rng(options_.seed ^ 0x5157ull);
  const auto& genres = movieGenres();
  movie_genres_.resize(options_.num_movies);
  for (auto& assigned : movie_genres_) {
    const auto n = 1 + rng.uniform(3);
    std::vector<size_t> picks;
    while (picks.size() < n) {
      const auto g = static_cast<size_t>(rng.uniform(genres.size()));
      if (std::find(picks.begin(), picks.end(), g) == picks.end()) {
        picks.push_back(g);
      }
    }
    std::sort(picks.begin(), picks.end());
    for (const auto g : picks) assigned.push_back(genres[g]);
  }
}

Bytes MoviesGenerator::generateMoviesCsv() const {
  Bytes out;
  out.reserve(options_.num_movies * 48);
  for (uint32_t m = 0; m < options_.num_movies; ++m) {
    out += std::to_string(m + 1);
    out += ",Movie #";
    out += std::to_string(m + 1);
    out += " (19";
    out += std::to_string(50 + m % 50);
    out += "),";
    const auto& genres = movie_genres_[m];
    for (size_t g = 0; g < genres.size(); ++g) {
      if (g > 0) out.push_back('|');
      out += genres[g];
    }
    out.push_back('\n');
  }
  return out;
}

Bytes MoviesGenerator::generateRatingsCsv() {
  Rng rng(options_.seed);
  ZipfSampler user_zipf(options_.num_users, options_.user_zipf);
  ZipfSampler movie_zipf(options_.num_movies, options_.movie_zipf);

  std::vector<uint64_t> per_user(options_.num_users, 0);
  std::map<std::pair<uint32_t, std::string>, uint64_t> user_genre;
  truth_ = MoviesGroundTruth{};

  Bytes out;
  out.reserve(options_.num_ratings * 28);
  char row[64];
  for (uint64_t i = 0; i < options_.num_ratings; ++i) {
    const auto user = static_cast<uint32_t>(user_zipf.sample(rng)) + 1;
    const auto movie = static_cast<uint32_t>(movie_zipf.sample(rng)) + 1;
    // Ratings in half-star steps 0.5..5.0, biased upward like real data.
    const double raw = rng.normal(3.6, 1.0);
    const double rating =
        std::clamp(std::round(raw * 2.0) / 2.0, 0.5, 5.0);
    const int64_t ts = 1'000'000'000 + static_cast<int64_t>(rng.uniform(300'000'000));
    std::snprintf(row, sizeof(row), "%u,%u,%.1f,%lld\n", user, movie, rating,
                  static_cast<long long>(ts));
    out += row;

    ++per_user[user - 1];
    for (const auto& genre : movie_genres_[movie - 1]) {
      truth_.genre_stats[genre].add(rating);
      ++user_genre[{user, genre}];
    }
  }

  const auto top_it = std::max_element(per_user.begin(), per_user.end());
  truth_.top_user = static_cast<uint32_t>(top_it - per_user.begin()) + 1;
  truth_.top_user_ratings = *top_it;
  uint64_t best = 0;
  for (const auto& [key, count] : user_genre) {
    if (key.first == truth_.top_user && count > best) {
      best = count;
      truth_.top_user_favorite_genre = key.second;
    }
  }
  generated_ = true;
  return out;
}

const MoviesGroundTruth& MoviesGenerator::truth() const {
  if (!generated_) {
    throw IllegalStateError("generateRatingsCsv() has not been called");
  }
  return truth_;
}

const std::vector<std::string>& MoviesGenerator::genresOf(
    uint32_t movie_id) const {
  return movie_genres_.at(movie_id - 1);
}

}  // namespace mh::data
