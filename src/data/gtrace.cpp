#include "mh/data/gtrace.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "mh/common/error.h"
#include "mh/common/rng.h"

namespace mh::data {

namespace {

struct Event {
  uint64_t timestamp;
  uint64_t job;
  uint32_t task;
  uint32_t machine;
  const char* type;
  int priority;
};

}  // namespace

GTraceGenerator::GTraceGenerator(GTraceOptions options) : options_(options) {
  if (options_.num_jobs == 0 ||
      options_.max_tasks_per_job < options_.min_tasks_per_job) {
    throw InvalidArgumentError("bad gtrace options");
  }
}

Bytes GTraceGenerator::generateCsv() {
  Rng rng(options_.seed);
  truth_ = GTraceGroundTruth{};
  std::vector<Event> events;

  for (uint32_t j = 0; j < options_.num_jobs; ++j) {
    const uint64_t job_id = 6'000'000'000ull + j * 1'000 + rng.uniform(1000);
    const auto tasks = static_cast<uint32_t>(rng.range(
        options_.min_tasks_per_job, options_.max_tasks_per_job));
    const int priority = static_cast<int>(rng.range(0, 11));
    uint64_t job_resubmits = 0;
    uint64_t t0 = rng.uniform(1'000'000'000);

    for (uint32_t task = 0; task < tasks; ++task) {
      uint64_t t = t0 + rng.uniform(10'000'000);
      uint32_t attempts = 0;
      while (true) {
        const auto machine =
            static_cast<uint32_t>(rng.uniform(options_.num_machines)) + 1;
        events.push_back({t, job_id, task, 0, "SUBMIT", priority});
        events.push_back({t + rng.uniform(50'000), job_id, task, machine,
                          "SCHEDULE", priority});
        t += 100'000 + rng.uniform(5'000'000);
        const bool resubmit = attempts < options_.max_resubmits_per_task &&
                              rng.chance(options_.resubmit_probability);
        if (resubmit) {
          events.push_back({t, job_id, task, machine,
                            rng.chance(0.5) ? "EVICT" : "FAIL", priority});
          ++attempts;
          ++job_resubmits;
          t += rng.uniform(1'000'000);
          continue;
        }
        events.push_back({t, job_id, task, machine,
                          rng.chance(0.95) ? "FINISH" : "KILL", priority});
        break;
      }
    }
    truth_.resubmissions_per_job[job_id] = job_resubmits;
    if (job_resubmits > truth_.worst_job_resubmissions) {
      truth_.worst_job_resubmissions = job_resubmits;
      truth_.worst_job = job_id;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return std::tie(a.timestamp, a.job, a.task) <
                     std::tie(b.timestamp, b.job, b.task);
            });

  Bytes out;
  out.reserve(events.size() * 48);
  char row[96];
  for (const Event& e : events) {
    std::snprintf(row, sizeof(row), "%llu,%llu,%u,%u,%s,%d\n",
                  static_cast<unsigned long long>(e.timestamp),
                  static_cast<unsigned long long>(e.job), e.task, e.machine,
                  e.type, e.priority);
    out += row;
  }
  truth_.total_events = events.size();
  generated_ = true;
  return out;
}

const GTraceGroundTruth& GTraceGenerator::truth() const {
  if (!generated_) {
    throw IllegalStateError("generateCsv() has not been called");
  }
  return truth_;
}

}  // namespace mh::data
