#include "mh/data/music.h"

#include <algorithm>
#include <cstdio>

#include "mh/common/error.h"
#include "mh/common/rng.h"

namespace mh::data {

MusicGenerator::MusicGenerator(MusicOptions options) : options_(options) {
  if (options_.num_songs == 0 || options_.num_albums == 0 ||
      options_.num_artists == 0) {
    throw InvalidArgumentError("need songs, albums, artists");
  }
  Rng rng(options_.seed ^ 0xBEEFull);
  song_album_.resize(options_.num_songs);
  for (auto& album : song_album_) {
    album = static_cast<uint32_t>(rng.uniform(options_.num_albums)) + 1;
  }
  album_artist_.resize(options_.num_albums);
  for (auto& artist : album_artist_) {
    artist = static_cast<uint32_t>(rng.uniform(options_.num_artists)) + 1;
  }
  album_quality_.resize(options_.num_albums);
  for (auto& quality : album_quality_) {
    quality = 30.0 + 55.0 * rng.uniform01();  // designed mean in [30, 85]
  }
}

Bytes MusicGenerator::generateSongsTsv() const {
  Bytes out;
  out.reserve(options_.num_songs * 16);
  char row[48];
  for (uint32_t s = 0; s < options_.num_songs; ++s) {
    std::snprintf(row, sizeof(row), "%u\t%u\t%u\n", s + 1, song_album_[s],
                  album_artist_[song_album_[s] - 1]);
    out += row;
  }
  return out;
}

Bytes MusicGenerator::generateRatingsTsv() {
  Rng rng(options_.seed);
  ZipfSampler song_zipf(options_.num_songs, options_.song_zipf);
  truth_ = MusicGroundTruth{};

  Bytes out;
  out.reserve(options_.num_ratings * 16);
  char row[48];
  for (uint64_t i = 0; i < options_.num_ratings; ++i) {
    const auto user =
        static_cast<uint32_t>(rng.uniform(options_.num_users)) + 1;
    const auto song = static_cast<uint32_t>(song_zipf.sample(rng)) + 1;
    const uint32_t album = song_album_[song - 1];
    const double raw = rng.normal(album_quality_[album - 1], 18.0);
    const int rating = static_cast<int>(std::clamp(raw, 0.0, 100.0));
    std::snprintf(row, sizeof(row), "%u\t%u\t%d\n", user, song, rating);
    out += row;
    truth_.album_stats[album].add(rating);
  }

  double best = -1.0;
  for (const auto& [album, stat] : truth_.album_stats) {
    if (stat.mean() > best) {
      best = stat.mean();
      truth_.best_album = album;
      truth_.best_album_mean = stat.mean();
    }
  }
  generated_ = true;
  return out;
}

const MusicGroundTruth& MusicGenerator::truth() const {
  if (!generated_) {
    throw IllegalStateError("generateRatingsTsv() has not been called");
  }
  return truth_;
}

}  // namespace mh::data
