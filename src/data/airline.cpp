#include "mh/data/airline.h"

#include <cstdio>

#include "mh/common/error.h"
#include "mh/common/rng.h"
#include "mh/common/stats.h"

namespace mh::data {

namespace {

std::string twoLetterCode(int index) {
  std::string code;
  code.push_back(static_cast<char>('A' + index / 26 % 26));
  code.push_back(static_cast<char>('A' + index % 26));
  return code;
}

std::string threeLetterCode(int index) {
  std::string code;
  code.push_back(static_cast<char>('A' + index / 676 % 26));
  code.push_back(static_cast<char>('A' + index / 26 % 26));
  code.push_back(static_cast<char>('A' + index % 26));
  return code;
}

}  // namespace

AirlineGenerator::AirlineGenerator(AirlineOptions options)
    : options_(options) {
  if (options_.num_carriers < 1 || options_.num_airports < 2) {
    throw InvalidArgumentError("need >= 1 carrier and >= 2 airports");
  }
  Rng rng(options_.seed ^ 0xA1B2C3D4ull);
  for (int i = 0; i < options_.num_carriers; ++i) {
    carriers_.push_back(twoLetterCode(i));
    // Designed mean delay between -2 and +25 minutes; each carrier distinct.
    carrier_mean_.push_back(-2.0 + 27.0 * rng.uniform01());
  }
  for (int i = 0; i < options_.num_airports; ++i) {
    airports_.push_back(threeLetterCode(i * 7 + 1));
  }
}

Bytes AirlineGenerator::generateCsv() {
  Rng rng(options_.seed);
  std::map<std::string, RunningStat> stats;

  Bytes out;
  out.reserve(options_.rows * 64);
  if (options_.header) {
    out +=
        "Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,FlightNum,"
        "Origin,Dest,ArrDelay,DepDelay,Distance,Cancelled\n";
  }

  char row[160];
  for (uint64_t i = 0; i < options_.rows; ++i) {
    const auto carrier_idx =
        static_cast<size_t>(rng.uniform(carriers_.size()));
    const std::string& carrier = carriers_[carrier_idx];
    const int month = static_cast<int>(rng.range(1, 12));
    const int day = static_cast<int>(rng.range(1, 28));
    const int dow = static_cast<int>(rng.range(1, 7));
    const int dep_time = static_cast<int>(rng.range(0, 23)) * 100 +
                         static_cast<int>(rng.range(0, 59));
    const int flight = static_cast<int>(rng.range(1, 7999));
    const auto origin = static_cast<size_t>(rng.uniform(airports_.size()));
    auto dest = static_cast<size_t>(rng.uniform(airports_.size() - 1));
    if (dest >= origin) ++dest;
    const int distance = static_cast<int>(rng.range(90, 2700));
    const bool cancelled = rng.chance(options_.cancelled_fraction);

    if (cancelled) {
      std::snprintf(row, sizeof(row),
                    "2008,%d,%d,%d,NA,%s,%d,%s,%s,NA,NA,%d,1\n", month, day,
                    dow, carrier.c_str(), flight, airports_[origin].c_str(),
                    airports_[dest].c_str(), distance);
    } else {
      // Delay = carrier's designed mean + noise; occasional big spikes.
      double delay = rng.normal(carrier_mean_[carrier_idx], 12.0);
      if (rng.chance(0.03)) delay += rng.exponential(60.0);
      const int arr_delay = static_cast<int>(delay);
      const int dep_delay =
          arr_delay + static_cast<int>(rng.normal(0.0, 4.0));
      std::snprintf(row, sizeof(row),
                    "2008,%d,%d,%d,%d,%s,%d,%s,%s,%d,%d,%d,0\n", month, day,
                    dow, dep_time, carrier.c_str(), flight,
                    airports_[origin].c_str(), airports_[dest].c_str(),
                    arr_delay, dep_delay, distance);
      stats[carrier].add(arr_delay);
    }
    out += row;
  }

  truth_ = AirlineGroundTruth{};
  double worst = -1e300;
  for (const auto& [carrier, stat] : stats) {
    truth_.mean_arr_delay[carrier] = stat.mean();
    truth_.flights[carrier] = static_cast<uint64_t>(stat.count());
    if (stat.mean() > worst) {
      worst = stat.mean();
      truth_.worst_carrier = carrier;
    }
  }
  generated_ = true;
  return out;
}

const AirlineGroundTruth& AirlineGenerator::truth() const {
  if (!generated_) {
    throw IllegalStateError("generateCsv() has not been called");
  }
  return truth_;
}

}  // namespace mh::data
