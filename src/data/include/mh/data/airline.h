#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/common/bytes.h"

/// \file airline.h
/// Synthetic Airline On-Time Performance data (the ASA Data Expo 2009 set
/// the course uses for the §III-A lab: "average delay time for each
/// individual airline"). Schema follows the real single-table CSV; each
/// carrier has its own delay distribution so the lab's answer is a known
/// ground truth.
///
/// Columns: Year,Month,DayofMonth,DayOfWeek,DepTime,UniqueCarrier,
/// FlightNum,Origin,Dest,ArrDelay,DepDelay,Distance,Cancelled

namespace mh::data {

struct AirlineOptions {
  uint64_t seed = 1;
  uint64_t rows = 100'000;
  int num_carriers = 14;
  int num_airports = 120;
  /// Fraction of cancelled flights (ArrDelay empty — "NA"-style rows the
  /// students must handle).
  double cancelled_fraction = 0.02;
  bool header = true;
};

struct AirlineGroundTruth {
  /// Mean ArrDelay per carrier over non-cancelled flights.
  std::map<std::string, double> mean_arr_delay;
  /// Flights per carrier (non-cancelled).
  std::map<std::string, uint64_t> flights;
  /// Carrier with the worst (largest) mean arrival delay.
  std::string worst_carrier;
};

class AirlineGenerator {
 public:
  explicit AirlineGenerator(AirlineOptions options = {});

  /// Generates the CSV; repeatable for the same options. Ground truth is
  /// computed on the fly and readable afterwards via truth().
  Bytes generateCsv();

  const AirlineGroundTruth& truth() const;

  /// Carrier codes in use ("AA"-style two-letter codes).
  const std::vector<std::string>& carriers() const { return carriers_; }

 private:
  AirlineOptions options_;
  std::vector<std::string> carriers_;
  std::vector<std::string> airports_;
  std::vector<double> carrier_mean_;  ///< designed distribution mean
  AirlineGroundTruth truth_;
  bool generated_ = false;
};

}  // namespace mh::data
