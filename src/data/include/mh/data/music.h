#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/stats.h"

/// \file music.h
/// Synthetic Yahoo! Music-style data for the course's second assignment:
/// "identify the album that has the highest average rating using MapReduce
/// and HDFS". Like the real Webscope set, ratings reference songs and a
/// separate table maps songs to albums — side data again, this time at
/// HDFS scale.
///
///   ratings.tsv  userId<TAB>songId<TAB>rating        (rating 0..100)
///   songs.tsv    songId<TAB>albumId<TAB>artistId

namespace mh::data {

struct MusicOptions {
  uint64_t seed = 1;
  uint32_t num_users = 5'000;
  uint32_t num_songs = 2'000;
  uint32_t num_albums = 300;
  uint32_t num_artists = 150;
  uint64_t num_ratings = 200'000;
  double song_zipf = 0.9;
};

struct MusicGroundTruth {
  std::map<uint32_t, RunningStat> album_stats;
  uint32_t best_album = 0;       ///< highest mean rating
  double best_album_mean = 0.0;
};

class MusicGenerator {
 public:
  explicit MusicGenerator(MusicOptions options = {});

  /// "songId\talbumId\tartistId" lines.
  Bytes generateSongsTsv() const;

  /// "userId\tsongId\trating" lines; computes ground truth.
  Bytes generateRatingsTsv();

  const MusicGroundTruth& truth() const;

  uint32_t albumOf(uint32_t song_id) const { return song_album_.at(song_id - 1); }

 private:
  MusicOptions options_;
  std::vector<uint32_t> song_album_;   // by song index
  std::vector<uint32_t> album_artist_; // by album index
  std::vector<double> album_quality_;  // designed mean by album index
  MusicGroundTruth truth_;
  bool generated_ = false;
};

}  // namespace mh::data
