#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mh/common/bytes.h"

/// \file gtrace.h
/// Synthetic Google cluster trace (Wilkes 2011) for the Fall-2012 second
/// assignment: "find the computing job with the largest number of task
/// resubmissions". Task-event rows follow the public trace's shape:
///
///   timestamp,jobId,taskIndex,machineId,eventType,priority
///
/// Event types (a subset of the real trace's): SUBMIT, SCHEDULE, EVICT,
/// FAIL, FINISH, KILL. A task that is EVICTed or FAILs is resubmitted
/// (another SUBMIT+SCHEDULE pair), so
///   resubmissions(job) = #SUBMIT(job) - #distinct tasks(job).

namespace mh::data {

struct GTraceOptions {
  uint64_t seed = 1;
  uint32_t num_jobs = 400;
  uint32_t num_machines = 1'000;
  uint32_t min_tasks_per_job = 1;
  uint32_t max_tasks_per_job = 60;
  /// Per-attempt probability the task is evicted/fails and is resubmitted.
  double resubmit_probability = 0.12;
  uint32_t max_resubmits_per_task = 8;
};

struct GTraceGroundTruth {
  std::map<uint64_t, uint64_t> resubmissions_per_job;
  uint64_t worst_job = 0;
  uint64_t worst_job_resubmissions = 0;
  uint64_t total_events = 0;
};

class GTraceGenerator {
 public:
  explicit GTraceGenerator(GTraceOptions options = {});

  /// Event rows in timestamp order; computes ground truth.
  Bytes generateCsv();

  const GTraceGroundTruth& truth() const;

 private:
  GTraceOptions options_;
  GTraceGroundTruth truth_;
  bool generated_ = false;
};

}  // namespace mh::data
