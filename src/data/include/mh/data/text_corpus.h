#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/rng.h"

/// \file text_corpus.h
/// Synthetic natural-language-shaped corpus ("the complete Shakespeare
/// collection" stand-in from the course's first WordCount assignment).
/// Words are drawn from a generated pseudo-word vocabulary with Zipfian
/// frequencies, which is what makes combiners effective (few hot keys) and
/// gives "find the word with the highest count" a deterministic answer.

namespace mh::data {

struct TextCorpusOptions {
  uint64_t seed = 1;
  size_t vocabulary_size = 5000;
  double zipf_exponent = 1.0;
  int min_words_per_line = 4;
  int max_words_per_line = 12;
  uint64_t target_bytes = 1 << 20;
};

class TextCorpusGenerator {
 public:
  explicit TextCorpusGenerator(TextCorpusOptions options = {});

  /// Generates ~target_bytes of newline-delimited text (always ends
  /// at a line boundary). Repeatable for the same options.
  Bytes generate();

  /// The word at Zipf rank `r` (rank 0 = most frequent).
  const std::string& word(size_t rank) const { return vocabulary_.at(rank); }
  size_t vocabularySize() const { return vocabulary_.size(); }

  /// Exact per-word counts of the last generate() call.
  const std::vector<uint64_t>& lastCounts() const { return counts_; }

  /// The most frequent word of the last generate() (the assignment's
  /// question), with its count.
  std::pair<std::string, uint64_t> topWord() const;

 private:
  TextCorpusOptions options_;
  std::vector<std::string> vocabulary_;
  std::vector<uint64_t> counts_;
};

/// Deterministic pronounceable pseudo-word for an index (CV syllables).
std::string pseudoWord(uint64_t index);

}  // namespace mh::data
