#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mh/common/bytes.h"
#include "mh/common/stats.h"

/// \file movies.h
/// Synthetic MovieLens-style data for the course's first assignment:
/// per-genre descriptive statistics on ratings, plus "the user who provides
/// the most ratings and that user's favorite movie genre". Two files, like
/// the real dataset:
///   ratings.csv  userId,movieId,rating,timestamp      (rating 0.5..5.0)
///   movies.csv   movieId,title,genre1|genre2|...      (the SIDE DATA the
///                mappers must join against — the order-of-magnitude lesson)

namespace mh::data {

/// The 18 MovieLens genres.
const std::vector<std::string>& movieGenres();

struct MoviesOptions {
  uint64_t seed = 1;
  uint32_t num_users = 2'000;
  uint32_t num_movies = 800;
  uint64_t num_ratings = 100'000;
  /// User activity skew (Zipf exponent): a few users rate a lot.
  double user_zipf = 1.1;
  /// Movie popularity skew.
  double movie_zipf = 0.9;
};

struct MoviesGroundTruth {
  /// Per-genre rating statistics (a rating counts once per genre of the
  /// movie, as the assignment requires).
  std::map<std::string, RunningStat> genre_stats;
  /// The most active rater and their rating count.
  uint32_t top_user = 0;
  uint64_t top_user_ratings = 0;
  /// The top user's most-rated genre.
  std::string top_user_favorite_genre;
};

class MoviesGenerator {
 public:
  explicit MoviesGenerator(MoviesOptions options = {});

  /// "movieId,title,genres" lines.
  Bytes generateMoviesCsv() const;

  /// "userId,movieId,rating,timestamp" lines. Computes the ground truth.
  Bytes generateRatingsCsv();

  const MoviesGroundTruth& truth() const;

  /// Genres of one movie (1..3 of the 18).
  const std::vector<std::string>& genresOf(uint32_t movie_id) const;

 private:
  MoviesOptions options_;
  std::vector<std::vector<std::string>> movie_genres_;  // by movie index
  MoviesGroundTruth truth_;
  bool generated_ = false;
};

}  // namespace mh::data
