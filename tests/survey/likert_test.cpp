#include "mh/survey/likert.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "mh/common/error.h"

namespace mh::survey {
namespace {

TEST(LikertTest, ResponsesStayOnGrid) {
  Rng rng(1);
  const LikertSpec scale{1, 4, 1};
  const auto responses = synthesizeResponses(29, 3.1, 0.9, scale, rng);
  ASSERT_EQ(responses.size(), 29u);
  for (const double r : responses) {
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 4.0);
    EXPECT_DOUBLE_EQ(r, std::round(r));
  }
}

TEST(LikertTest, StatisticsMatchTargets) {
  Rng rng(2);
  const LikertSpec scale{0, 10, 1};
  const auto responses = synthesizeResponses(29, 6.6, 1.2, scale, rng);
  const auto stat = summarize(responses);
  EXPECT_NEAR(stat.mean(), 6.6, 0.05);
  EXPECT_NEAR(stat.stddev(), 1.2, 0.1);
}

// Every aggregate row the paper publishes must be reachable — sweep them.
struct Target {
  double mean;
  double std;
  double lo;
  double hi;
};

class LikertTargetTest : public ::testing::TestWithParam<Target> {};

TEST_P(LikertTargetTest, PaperTargetsAreSynthesizable) {
  const auto& t = GetParam();
  Rng rng(42);
  const LikertSpec scale{t.lo, t.hi, 1};
  const auto responses = synthesizeResponses(29, t.mean, t.std, scale, rng);
  const auto stat = summarize(responses);
  EXPECT_NEAR(stat.mean(), t.mean, 0.05) << "mean target " << t.mean;
  EXPECT_NEAR(stat.stddev(), t.std, 0.12) << "std target " << t.std;
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, LikertTargetTest,
    ::testing::Values(
        // Table I proficiency rows (0..10), before and after.
        Target{6.6, 1.2, 0, 10}, Target{7.3, 1.1, 0, 10},
        Target{5.86, 1.7, 0, 10}, Target{7.1, 1.7, 0, 10},
        Target{4.38, 1.6, 0, 10}, Target{6.29, 1.5, 0, 10},
        Target{0.03, 0.2, 0, 10}, Target{4.53, 1.16, 0, 10},
        // Table II time-to-complete rows (1..4 bands).
        Target{3.5, 0.7, 1, 4}, Target{3.1, 0.9, 1, 4},
        Target{2.5, 1.1, 1, 4},
        // Table III helpfulness rows (1..4).
        Target{3.0, 0.9, 1, 4}, Target{3.6, 0.7, 1, 4},
        Target{2.9, 0.82, 1, 4}));

TEST(LikertTest, BadInputsThrow) {
  Rng rng(3);
  const LikertSpec scale{0, 10, 1};
  EXPECT_THROW(synthesizeResponses(0, 5, 1, scale, rng),
               InvalidArgumentError);
  EXPECT_THROW(synthesizeResponses(10, 99, 1, scale, rng),
               InvalidArgumentError);
  EXPECT_THROW(synthesizeResponses(10, 5, 1, {5, 5, 1}, rng),
               InvalidArgumentError);
  EXPECT_THROW(synthesizeResponses(10, 5, 1, {0, 10, 0}, rng),
               InvalidArgumentError);
}

TEST(LikertTest, CategoricalCountsAreExact) {
  Rng rng(4);
  const auto labels = synthesizeCategorical({7, 14, 6, 2}, rng);
  ASSERT_EQ(labels.size(), 29u);
  std::vector<int> counts(4, 0);
  for (const size_t label : labels) ++counts.at(label);
  EXPECT_EQ(counts, (std::vector<int>{7, 14, 6, 2}));
  // Shuffled, not sorted (very likely for any real shuffle).
  EXPECT_FALSE(std::is_sorted(labels.begin(), labels.end()));
}

TEST(LikertTest, DeterministicForRngState) {
  Rng a(5), b(5);
  const LikertSpec scale{1, 4, 1};
  EXPECT_EQ(synthesizeResponses(29, 2.5, 1.1, scale, a),
            synthesizeResponses(29, 2.5, 1.1, scale, b));
}

}  // namespace
}  // namespace mh::survey
