#include "mh/survey/paper_tables.h"

#include <gtest/gtest.h>

namespace mh::survey {
namespace {

TEST(PaperTablesTest, PublishedValuesPresent) {
  ASSERT_EQ(paperTable1().size(), 4u);
  EXPECT_EQ(paperTable1()[0].topic, "Java");
  EXPECT_DOUBLE_EQ(paperTable1()[0].before.paper_mean, 6.6);
  EXPECT_DOUBLE_EQ(paperTable1()[3].after.paper_mean, 4.53);

  ASSERT_EQ(paperTable2().size(), 3u);
  EXPECT_DOUBLE_EQ(paperTable2()[0].paper_mean, 3.5);

  ASSERT_EQ(paperTable3().size(), 3u);
  EXPECT_DOUBLE_EQ(paperTable3()[1].paper_mean, 3.6);

  ASSERT_EQ(paperTable4().size(), 4u);
  uint64_t total = 0;
  for (const auto& row : paperTable4()) total += row.count;
  EXPECT_EQ(total, kRespondents);

  ASSERT_EQ(paperTable5().size(), 6u);
  for (const auto& row : paperTable5()) {
    EXPECT_FALSE(row.outcome.empty());
    EXPECT_FALSE(row.repo_artifact.empty());
  }
}

TEST(PaperTablesTest, RegenerationMatchesEveryTable1Row) {
  const LikertSpec scale{0, 10, 1};
  uint64_t seed = 100;
  for (const auto& row : paperTable1()) {
    for (const auto* agg : {&row.before, &row.after}) {
      const auto regen = regenerateRow(*agg, scale, seed++);
      EXPECT_NEAR(regen.regen_mean, agg->paper_mean, 0.05) << agg->label;
      EXPECT_NEAR(regen.regen_std, agg->paper_std, 0.12) << agg->label;
      EXPECT_EQ(regen.n, kRespondents);
    }
  }
}

TEST(PaperTablesTest, RegenerationMatchesTables2And3) {
  const LikertSpec scale{1, 4, 1};
  uint64_t seed = 200;
  for (const auto* table : {&paperTable2(), &paperTable3()}) {
    for (const auto& row : *table) {
      const auto regen = regenerateRow(row, scale, seed++);
      EXPECT_NEAR(regen.regen_mean, row.paper_mean, 0.05) << row.label;
      EXPECT_NEAR(regen.regen_std, row.paper_std, 0.12) << row.label;
    }
  }
}

TEST(PaperTablesTest, RenderShowsPaperAndRegeneratedColumns) {
  const LikertSpec scale{1, 4, 1};
  std::vector<RegeneratedRow> rows;
  for (const auto& row : paperTable2()) {
    rows.push_back(regenerateRow(row, scale, 7));
  }
  const std::string text = renderRegeneratedTable("Table II", rows);
  EXPECT_NE(text.find("Table II"), std::string::npos);
  EXPECT_NE(text.find("paper"), std::string::npos);
  EXPECT_NE(text.find("regenerated"), std::string::npos);
  EXPECT_NE(text.find("First Assignment"), std::string::npos);
  EXPECT_NE(text.find("3.5"), std::string::npos);
}

TEST(PaperTablesTest, MajorityChoseJuniorOrHigher) {
  // The observation the paper draws from Table IV.
  uint64_t junior_plus = 0;
  uint64_t total = 0;
  for (const auto& row : paperTable4()) {
    total += row.count;
    if (row.level == "Junior" || row.level == "Senior") {
      junior_plus += row.count;
    }
  }
  EXPECT_GT(junior_plus * 2, total);                   // majority
  EXPECT_GT((total - junior_plus) * 4, total);         // >25% lower levels
}

}  // namespace
}  // namespace mh::survey
