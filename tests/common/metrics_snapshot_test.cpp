#include "mh/common/metrics_snapshot.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mh {
namespace {

MetricsSnapshotter::Options fastOptions(size_t capacity = 8) {
  MetricsSnapshotter::Options options;
  options.interval_ms = 1;
  options.capacity = capacity;
  return options;
}

TEST(MetricsRegistryTest, FlattenValuesWalksTheTree) {
  MetricsRegistry root;
  root.counter("rpcs").add(3);
  root.setGauge("load", [] { return 1.5; });
  root.histogram("latency").record(100);
  root.histogram("latency").record(300);
  root.child("datanode.node01").counter("blocks.read").add(7);

  const auto values = root.flattenValues();
  const auto find = [&](const std::string& name) -> double {
    for (const auto& [n, v] : values) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing flattened metric: " << name;
    return -1;
  };
  EXPECT_EQ(find("rpcs"), 3.0);
  EXPECT_EQ(find("load"), 1.5);
  EXPECT_EQ(find("latency.count"), 2.0);
  EXPECT_EQ(find("latency.sum_us"), 400.0);
  // Child names keep their literal dots; path segments join with '/'.
  EXPECT_EQ(find("datanode.node01/blocks.read"), 7.0);
}

TEST(MetricsSnapshotterTest, SampleOnceCapturesTimestampedValues) {
  MetricsRegistry root;
  Counter& work = root.counter("work");
  MetricsSnapshotter snapshotter(&root, fastOptions());
  work.add(5);
  snapshotter.sampleOnce();
  work.add(5);
  snapshotter.sampleOnce();

  ASSERT_EQ(snapshotter.size(), 2u);
  const auto snaps = snapshotter.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_LE(snaps[0].ts_ms, snaps[1].ts_ms);
  ASSERT_EQ(snaps[0].values.size(), 1u);
  EXPECT_EQ(snaps[0].values[0].first, "work");
  EXPECT_EQ(snaps[0].values[0].second, 5.0);
  EXPECT_EQ(snaps[1].values[0].second, 10.0);
}

TEST(MetricsSnapshotterTest, RingStaysBoundedAndCountsDrops) {
  MetricsRegistry root;
  root.counter("c");
  MetricsSnapshotter snapshotter(&root, fastOptions(/*capacity=*/2));
  for (int i = 0; i < 5; ++i) snapshotter.sampleOnce();
  EXPECT_EQ(snapshotter.size(), 2u);
  EXPECT_EQ(snapshotter.droppedSnapshots(), 3u);
}

TEST(MetricsSnapshotterTest, BackgroundThreadSamplesUntilStopped) {
  MetricsRegistry root;
  root.counter("c").add(1);
  MetricsSnapshotter snapshotter(&root, fastOptions(/*capacity=*/1024));
  EXPECT_FALSE(snapshotter.running());
  snapshotter.start();
  EXPECT_TRUE(snapshotter.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (snapshotter.size() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  snapshotter.stop();
  EXPECT_FALSE(snapshotter.running());
  EXPECT_GE(snapshotter.size(), 3u);
  const size_t after_stop = snapshotter.size();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(snapshotter.size(), after_stop);  // sampler really quiesced
  snapshotter.stop();                         // idempotent
}

TEST(MetricsSnapshotterTest, ExportJsonlIsSelfDescribing) {
  MetricsRegistry root;
  root.counter("ops").add(2);
  root.setGauge("temp", [] { return 0.25; });
  MetricsSnapshotter snapshotter(&root, fastOptions());
  snapshotter.sampleOnce();
  const std::string jsonl = snapshotter.exportJsonl();
  size_t lines = 0;
  for (const char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);  // header + one snapshot
  EXPECT_EQ(jsonl.find("{\"type\":\"header\""), 0u);
  EXPECT_NE(jsonl.find("\"interval_ms\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"snapshot_count\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dropped_snapshots\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ops\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"temp\":0.250"), std::string::npos);
}

}  // namespace
}  // namespace mh
