#include "mh/common/serde.h"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(SerdeTest, PrimitiveRoundTrips) {
  EXPECT_EQ(deserialize<int64_t>(serialize<int64_t>(-123456789)), -123456789);
  EXPECT_EQ(deserialize<int32_t>(serialize<int32_t>(-7)), -7);
  EXPECT_EQ(deserialize<uint64_t>(serialize<uint64_t>(1ull << 63)), 1ull << 63);
  EXPECT_DOUBLE_EQ(deserialize<double>(serialize<double>(-2.5e300)), -2.5e300);
  EXPECT_EQ(deserialize<bool>(serialize<bool>(true)), true);
  EXPECT_EQ(deserialize<std::string>(serialize<std::string>("shuffle")),
            "shuffle");
}

TEST(SerdeTest, PairRoundTrip) {
  using P = std::pair<std::string, int64_t>;
  const P in{"DL", 42};
  EXPECT_EQ((deserialize<P>(serialize<P>(in))), in);
}

TEST(SerdeTest, NestedPairRoundTrip) {
  using P = std::pair<std::pair<int64_t, int64_t>, std::string>;
  const P in{{5, -5}, "x"};
  EXPECT_EQ((deserialize<P>(serialize<P>(in))), in);
}

TEST(SerdeTest, TrailingBytesRejected) {
  Bytes buf = serialize<int64_t>(9);
  buf.push_back('x');
  EXPECT_THROW(deserialize<int64_t>(buf), InvalidArgumentError);
}

// This mirrors the course's "write a custom Hadoop Value class" exercise:
// a struct with its own Serde used as a combiner-friendly partial aggregate.
struct DelaySum {
  double sum = 0;
  int64_t count = 0;
  bool operator==(const DelaySum&) const = default;
};

}  // namespace

template <>
struct Serde<DelaySum> {
  static void encode(ByteWriter& w, const DelaySum& v) {
    w.writeDouble(v.sum);
    w.writeVarI64(v.count);
  }
  static DelaySum decode(ByteReader& r) {
    DelaySum v;
    v.sum = r.readDouble();
    v.count = r.readVarI64();
    return v;
  }
};

namespace {

TEST(SerdeTest, CustomValueClassRoundTrip) {
  const DelaySum in{123.5, 42};
  EXPECT_EQ(deserialize<DelaySum>(serialize<DelaySum>(in)), in);
}

TEST(SerdeTest, StreamOfHeterogeneousValues) {
  Bytes buf;
  ByteWriter w(buf);
  Serde<std::string>::encode(w, "key");
  Serde<DelaySum>::encode(w, DelaySum{1.0, 1});
  Serde<int64_t>::encode(w, -9);

  ByteReader r(buf);
  EXPECT_EQ(deserializeFrom<std::string>(r), "key");
  EXPECT_EQ(deserializeFrom<DelaySum>(r), (DelaySum{1.0, 1}));
  EXPECT_EQ(deserializeFrom<int64_t>(r), -9);
  EXPECT_TRUE(r.atEnd());
}

}  // namespace
}  // namespace mh
