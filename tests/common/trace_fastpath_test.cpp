// The disabled-tracing contract, CI-gated: instrumentation left compiled
// into every hot path (RPC dispatch, task loops, DFS reads) must cost one
// relaxed atomic load per would-be event when tracing is off — no heap
// allocation, no span-id allocation, and (by construction, asserted
// indirectly here) no clock read. This file overrides global operator new
// to count allocations, so it builds as its own test binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "mh/common/trace.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mh {
namespace {

TEST(TraceFastPathTest, DisabledTracingAllocatesNothing) {
  TraceCollector tc;
  ASSERT_FALSE(tc.enabled());

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    tc.instant("tasktracker.node01", "MAP m0 a0");
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
    span.arg("job", "1");
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "disabled tracing must not allocate";
  EXPECT_EQ(tc.idsAllocated(), 0u)
      << "disabled tracing must not allocate span ids";
  EXPECT_EQ(tc.size(), 0u);
}

TEST(TraceFastPathTest, AmbientContextReadIsAllocationFree) {
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  uint64_t sink = 0;
  for (int i = 0; i < 10'000; ++i) sink += currentTraceContext().trace_id;
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(sink, 0u);
  EXPECT_EQ(after - before, 0u);
}

TEST(TraceFastPathTest, EnabledTracingDoesAllocate) {
  // Sanity check that the counter actually observes the traced path, so
  // the zero deltas above are meaningful.
  TraceCollector tc;
  tc.setEnabled(true);
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  tc.instant("c", "event");
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(after - before, 0u);
  EXPECT_EQ(tc.size(), 1u);
}

}  // namespace
}  // namespace mh
