#include "mh/common/strings.h"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = splitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoDelimiterYieldsWhole) {
  const auto parts = splitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  const auto parts = splitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespaceTest, EmptyAndAllSpace) {
  EXPECT_TRUE(splitWhitespace("").empty());
  EXPECT_TRUE(splitWhitespace(" \t\n").empty());
}

TEST(TrimTest, Basics) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(JoinStringsTest, Basics) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ","), "");
  EXPECT_EQ(joinStrings({"only"}, ","), "only");
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(formatBytes(0), "0.00 B");
  EXPECT_EQ(formatBytes(1024), "1.00 KiB");
  EXPECT_EQ(formatBytes(1536), "1.50 KiB");
  EXPECT_EQ(formatBytes(64ull * 1024 * 1024 * 1024), "64.0 GiB");
}

TEST(FormatMillisTest, Scales) {
  EXPECT_EQ(formatMillis(1500), "1.500s");
  EXPECT_EQ(formatMillis(61'000), "1m 1s");
  EXPECT_EQ(formatMillis(3'661'000), "1h 1m 1s");
}

TEST(ToLowerAsciiTest, OnlyAscii) {
  EXPECT_EQ(toLowerAscii("WordCount"), "wordcount");
  EXPECT_EQ(toLowerAscii("123-XYZ"), "123-xyz");
}

TEST(IsDigitsTest, Basics) {
  EXPECT_TRUE(isDigits("12345"));
  EXPECT_FALSE(isDigits(""));
  EXPECT_FALSE(isDigits("12a"));
  EXPECT_FALSE(isDigits("-1"));
}

}  // namespace
}  // namespace mh
