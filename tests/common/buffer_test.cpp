#include "mh/common/buffer.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh {
namespace {

TEST(BufferTest, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.view(), "");
  EXPECT_EQ(b.useCount(), 0);
}

TEST(BufferTest, FromStringAdoptsWithoutCopying) {
  Bytes payload = "hello zero-copy world";
  const char* raw = payload.data();
  Buffer b = Buffer::fromString(std::move(payload));
  EXPECT_EQ(b.view(), "hello zero-copy world");
  // Moved, not copied: the buffer serves the original allocation.
  EXPECT_EQ(b.data(), raw);
}

TEST(BufferTest, CopyOfCopies) {
  const Bytes payload = "abc";
  Buffer b = Buffer::copyOf(payload);
  EXPECT_EQ(b.view(), "abc");
  EXPECT_NE(b.data(), payload.data());
}

TEST(BufferTest, WrapAliasesSharedPayload) {
  auto run = std::make_shared<const Bytes>("map-output-run");
  Buffer b = Buffer::wrap(run);
  EXPECT_EQ(b.data(), run->data());
  EXPECT_EQ(b.useCount(), 2);  // `run` + the buffer
}

TEST(BufferTest, CopyBumpsRefcountOnly) {
  Buffer a = Buffer::fromString("shared");
  Buffer b = a;
  EXPECT_EQ(a.useCount(), 2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(BufferViewTest, DefaultIsEmpty) {
  BufferView v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v, "");
}

TEST(BufferViewTest, WholeBufferView) {
  Buffer b = Buffer::fromString("0123456789");
  BufferView v(b);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v, "0123456789");
  EXPECT_EQ(v.data(), b.data());  // zero copy
}

TEST(BufferViewTest, SubRangeView) {
  Buffer b = Buffer::fromString("0123456789");
  BufferView v(b, 2, 5);
  EXPECT_EQ(v, "23456");
  EXPECT_EQ(v.data(), b.data() + 2);
}

TEST(BufferViewTest, OutOfRangeConstructionThrows) {
  Buffer b = Buffer::fromString("0123456789");
  EXPECT_THROW(BufferView(b, 11, 0), InvalidArgumentError);
  EXPECT_THROW(BufferView(b, 0, 11), InvalidArgumentError);
  EXPECT_THROW(BufferView(b, 6, 5), InvalidArgumentError);
  EXPECT_NO_THROW(BufferView(b, 10, 0));  // empty view at the end is fine
}

TEST(BufferViewTest, SliceClampsLengthButChecksOffset) {
  Buffer b = Buffer::fromString("0123456789");
  BufferView v(b, 2, 6);  // "234567"
  EXPECT_EQ(v.slice(1, 3), "345");
  EXPECT_EQ(v.slice(4, 100), "67");  // substr semantics: length clamps
  EXPECT_EQ(v.slice(6, 1), "");     // offset == size: empty
  EXPECT_THROW(v.slice(7, 0), InvalidArgumentError);
  // Slices share the backing buffer — still zero copy.
  EXPECT_EQ(v.slice(1, 3).data(), b.data() + 3);
}

TEST(BufferViewTest, ViewKeepsBufferAlive) {
  BufferView v;
  {
    Buffer b = Buffer::fromString("does not dangle");
    v = BufferView(b, 5, 3);
  }  // `b` gone; the view still owns a reference
  EXPECT_EQ(v, "not");
  EXPECT_EQ(v.buffer().useCount(), 1);
}

TEST(BufferViewTest, CopyIsCheapAndShared) {
  Buffer b = Buffer::fromString("payload");
  BufferView v1(b);
  BufferView v2 = v1;
  EXPECT_EQ(b.useCount(), 3);  // buffer + two views
  EXPECT_EQ(v1.data(), v2.data());
}

TEST(BufferViewTest, StrIsTheExplicitCopyPoint) {
  Buffer b = Buffer::fromString("copy me");
  BufferView v(b);
  Bytes owned = v.str();
  EXPECT_EQ(owned, "copy me");
  EXPECT_NE(owned.data(), v.data());
}

TEST(BufferViewTest, ImplicitStringViewConversion) {
  Buffer b = Buffer::fromString("via string_view");
  BufferView v(b, 4, 11);
  std::string_view sv = v;
  EXPECT_EQ(sv, "string_view");
  EXPECT_EQ(sv.data(), b.data() + 4);
}

TEST(BufferViewTest, EqualityComparesContentNotIdentity) {
  Buffer b1 = Buffer::fromString("same");
  Buffer b2 = Buffer::fromString("same");
  EXPECT_EQ(BufferView(b1), BufferView(b2));
  EXPECT_EQ(BufferView(b1), "same");
  EXPECT_EQ("same", BufferView(b2));
  EXPECT_FALSE(BufferView(b1) == "different");
}

}  // namespace
}  // namespace mh
