#include "mh/common/trace_analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mh {
namespace {

TraceEvent makeSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent,
                    std::string component, std::string name, int64_t ts_us,
                    int64_t dur_us) {
  TraceEvent e;
  e.component = std::move(component);
  e.name = std::move(name);
  e.span = true;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_span_id = parent;
  return e;
}

TraceEvent makeInstant(uint64_t trace_id, uint64_t parent,
                       std::string component, std::string name,
                       int64_t ts_us) {
  TraceEvent e;
  e.component = std::move(component);
  e.name = std::move(name);
  e.ts_us = ts_us;
  e.trace_id = trace_id;
  e.parent_span_id = parent;
  return e;
}

/// A small but complete job trace: JOB root [0, 100ms], one map
/// [10ms, 40ms], one reduce [50ms, 95ms] with shuffle [50, 70] and merge
/// [70, 75] children. Gaps: 0-10, 40-50, 95-100 (25 ms of scheduling).
std::vector<TraceEvent> syntheticJob(uint64_t trace_id) {
  std::vector<TraceEvent> events;
  events.push_back(
      makeSpan(trace_id, 2, 0, "jobtracker", "JOB job 1", 0, 100'000));
  events.push_back(makeSpan(trace_id, 3, 2, "tasktracker.node01", "MAP m0 a0",
                            10'000, 30'000));
  events.push_back(makeSpan(trace_id, 4, 2, "tasktracker.node02",
                            "REDUCE r0 a0", 50'000, 45'000));
  events.push_back(makeSpan(trace_id, 5, 4, "tasktracker.node02",
                            "SHUFFLE_FETCH r0 m0", 50'000, 20'000));
  events.push_back(makeSpan(trace_id, 6, 4, "tasktracker.node02", "MERGE r0",
                            70'000, 5'000));
  events.push_back(
      makeInstant(trace_id, 2, "jobtracker", "JOB_FINISH job 1", 100'000));
  return events;
}

TEST(TracePhaseTest, ClassifiesSpanNamesByPrefix) {
  EXPECT_EQ(classifyTracePhase("MAP m3 a0"), "map");
  EXPECT_EQ(classifyTracePhase("REDUCE r1 a2"), "reduce");
  EXPECT_EQ(classifyTracePhase("SHUFFLE_FETCH r0 m2"), "shuffle");
  EXPECT_EQ(classifyTracePhase("SORT_SPILL m0"), "spill");
  EXPECT_EQ(classifyTracePhase("MERGE r0"), "merge");
  EXPECT_EQ(classifyTracePhase("DFS_READ blk_7"), "dfs");
  EXPECT_EQ(classifyTracePhase("DFS_WRITE /user/x"), "dfs");
  EXPECT_EQ(classifyTracePhase("READ_BLOCK blk_7"), "dfs");
  EXPECT_EQ(classifyTracePhase("WRITE_BLOCK blk_7"), "dfs");
  EXPECT_EQ(classifyTracePhase("REPLICATE"), "dfs");
  EXPECT_EQ(classifyTracePhase("SHORT_CIRCUIT_READ blk_1"), "dfs");
  // Container / infrastructure spans are transparent.
  EXPECT_EQ(classifyTracePhase("JOB job 1"), "");
  EXPECT_EQ(classifyTracePhase("COMPRESS"), "");
  EXPECT_EQ(classifyTracePhase("DECOMPRESS"), "");
}

TEST(TraceTreeTest, ConnectedTreeHasOneRootAndNoMissingParents) {
  const auto events = syntheticJob(1);
  const TraceTreeStats stats = analyzeTraceTree(events, 1);
  EXPECT_EQ(stats.span_count, 5u);
  EXPECT_EQ(stats.instant_count, 1u);
  EXPECT_EQ(stats.missing_parents, 0u);
  ASSERT_EQ(stats.root_span_ids.size(), 1u);
  EXPECT_EQ(stats.root_span_ids[0], 2u);
  EXPECT_TRUE(stats.connected());
  ASSERT_EQ(stats.daemon_kinds.size(), 2u);
  EXPECT_EQ(stats.daemon_kinds[0], "jobtracker");
  EXPECT_EQ(stats.daemon_kinds[1], "tasktracker");
}

TEST(TraceTreeTest, DetectsMissingParentsAndIgnoresOtherTraces) {
  auto events = syntheticJob(1);
  // An orphan: parent span 99 was never recorded.
  events.push_back(makeSpan(1, 7, 99, "tasktracker.node01", "MAP m1 a0",
                            20'000, 1'000));
  // A different trace entirely: must not count toward trace 1.
  events.push_back(makeSpan(8, 10, 0, "jobtracker", "JOB job 2", 0, 50'000));
  const TraceTreeStats stats = analyzeTraceTree(events, 1);
  EXPECT_EQ(stats.span_count, 6u);
  EXPECT_EQ(stats.missing_parents, 1u);
  EXPECT_FALSE(stats.connected());
}

TEST(CriticalPathTest, AttributesEveryMicrosecondOfTheRoot) {
  const auto events = syntheticJob(1);
  const CriticalPathReport report = computeCriticalPath(events, 1);
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.total_us, 100'000);

  // root, gap, map, gap, reduce, trailing gap.
  ASSERT_EQ(report.steps.size(), 6u);
  EXPECT_EQ(report.steps[0].name, "JOB job 1");
  EXPECT_EQ(report.steps[1].name, "(scheduling gap)");
  EXPECT_EQ(report.steps[1].dur_us, 10'000);
  EXPECT_EQ(report.steps[2].name, "MAP m0 a0");
  EXPECT_EQ(report.steps[3].dur_us, 10'000);
  EXPECT_EQ(report.steps[4].name, "REDUCE r0 a0");
  EXPECT_EQ(report.steps[5].dur_us, 5'000);

  EXPECT_EQ(report.phaseMicros("map"), 30'000);
  EXPECT_EQ(report.phaseMicros("shuffle"), 20'000);
  EXPECT_EQ(report.phaseMicros("merge"), 5'000);
  // Reduce keeps its duration minus its classified children (45 - 25 ms).
  EXPECT_EQ(report.phaseMicros("reduce"), 20'000);
  EXPECT_EQ(report.phaseMicros("scheduling"), 25'000);
  EXPECT_EQ(report.phaseMicros("spill"), 0);
  EXPECT_EQ(report.phaseMicros("dfs"), 0);
  EXPECT_EQ(report.dominantPhase(), "map");

  // The buckets partition the whole wall clock.
  int64_t sum = 0;
  for (const auto& p : report.phases) sum += p.micros;
  EXPECT_EQ(sum, report.total_us);
}

TEST(CriticalPathTest, OverlappingChildrenAreNotDoubleSubtracted) {
  std::vector<TraceEvent> events;
  events.push_back(makeSpan(1, 2, 0, "jobtracker", "JOB job 1", 0, 50'000));
  events.push_back(makeSpan(1, 3, 2, "tasktracker.node01", "REDUCE r0 a0", 0,
                            50'000));
  // Two parallel fetches covering [0, 30] between them (overlap 10-20).
  events.push_back(makeSpan(1, 4, 3, "tasktracker.node01",
                            "SHUFFLE_FETCH r0 m0", 0, 20'000));
  events.push_back(makeSpan(1, 5, 3, "tasktracker.node01",
                            "SHUFFLE_FETCH r0 m1", 10'000, 20'000));
  const CriticalPathReport report = computeCriticalPath(events, 1);
  ASSERT_TRUE(report.found);
  EXPECT_EQ(report.phaseMicros("shuffle"), 40'000);  // both spans' own time
  // Reduce self time subtracts the UNION [0, 30] once, not 40 ms.
  EXPECT_EQ(report.phaseMicros("reduce"), 20'000);
}

TEST(CriticalPathTest, UnclassifiedSpansAreTransparent) {
  std::vector<TraceEvent> events;
  events.push_back(makeSpan(1, 2, 0, "jobtracker", "JOB job 1", 0, 40'000));
  events.push_back(
      makeSpan(1, 3, 2, "tasktracker.node01", "MAP m0 a0", 0, 40'000));
  // COMPRESS under MAP is unclassified; the DFS_WRITE under it must still
  // surface as dfs time, seen through the transparent layer.
  events.push_back(
      makeSpan(1, 4, 3, "tasktracker.node01", "COMPRESS", 10'000, 20'000));
  events.push_back(makeSpan(1, 5, 4, "dfsclient.node01", "DFS_WRITE /spill",
                            15'000, 5'000));
  const CriticalPathReport report = computeCriticalPath(events, 1);
  EXPECT_EQ(report.phaseMicros("dfs"), 5'000);
  EXPECT_EQ(report.phaseMicros("map"), 35'000);
}

TEST(CriticalPathTest, MissingRootReportsNotFound) {
  std::vector<TraceEvent> events;
  events.push_back(
      makeSpan(1, 3, 2, "tasktracker.node01", "MAP m0 a0", 0, 1'000));
  const CriticalPathReport report = computeCriticalPath(events, 7);
  EXPECT_FALSE(report.found);
  EXPECT_EQ(report.dominantPhase(), "");
  EXPECT_NE(report.renderAscii().find("no root span"), std::string::npos);
}

TEST(CriticalPathTest, RendersAsciiAndJson) {
  const CriticalPathReport report = computeCriticalPath(syntheticJob(9), 9);
  const std::string ascii = report.renderAscii();
  EXPECT_NE(ascii.find("critical path (trace 9, total 100.0 ms):"),
            std::string::npos);
  EXPECT_NE(ascii.find("where the time went:"), std::string::npos);
  EXPECT_NE(ascii.find("map"), std::string::npos);
  EXPECT_NE(ascii.find("(scheduling gap)"), std::string::npos);
  const std::string json = report.exportJson();
  EXPECT_NE(json.find("\"trace_id\":9"), std::string::npos);
  EXPECT_NE(json.find("\"found\":true"), std::string::npos);
  EXPECT_NE(json.find("\"map\":30000"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\":["), std::string::npos);
}

}  // namespace
}  // namespace mh
