#include "mh/common/codec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mh/common/error.h"
#include "mh/common/rng.h"

namespace mh {
namespace {

std::string incompressibleBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (char& c : out) c = static_cast<char>(rng.next() & 0xff);
  return out;
}

std::string repetitiveText(size_t approx) {
  std::string out;
  while (out.size() < approx) {
    out += "the quick brown fox jumps over the lazy dog -- ";
    out += "hadoop hadoop hadoop mapreduce mapreduce shuffle ";
  }
  out.resize(approx);
  return out;
}

const CodecKind kCodecs[] = {CodecKind::kMhLz, CodecKind::kVarRle};

TEST(CodecTest, NameAndIdRoundTrip) {
  EXPECT_EQ(codecFromName("none"), CodecKind::kNone);
  EXPECT_EQ(codecFromName("mh-lz"), CodecKind::kMhLz);
  EXPECT_EQ(codecFromName("var-rle"), CodecKind::kVarRle);
  EXPECT_EQ(codecName(CodecKind::kMhLz), "mh-lz");
  EXPECT_EQ(codecFromId(2), CodecKind::kVarRle);
  EXPECT_THROW(codecFromName("gzip"), InvalidArgumentError);
  EXPECT_THROW(codecFromId(7), InvalidArgumentError);
}

TEST(CodecTest, EncodeRejectsNone) {
  EXPECT_THROW(codecEncode(CodecKind::kNone, "abc"), InvalidArgumentError);
}

TEST(CodecTest, RoundTripEmptyAndTiny) {
  for (CodecKind kind : kCodecs) {
    for (std::string_view raw : {std::string_view(""), std::string_view("x"),
                                 std::string_view("ab"),
                                 std::string_view("\0\0\0\0", 4)}) {
      const Bytes stream = codecEncode(kind, raw);
      ASSERT_TRUE(isEncodedStream(stream));
      const Buffer back = codecDecode(stream);
      EXPECT_EQ(back.view(), raw) << codecName(kind);
    }
  }
}

TEST(CodecTest, RoundTripFrameBoundaries) {
  // One byte under, exactly at, and one byte over the 64 KiB frame size —
  // the over case must produce a second frame.
  for (CodecKind kind : kCodecs) {
    for (size_t n : {kCodecFrameRawBytes - 1, kCodecFrameRawBytes,
                     kCodecFrameRawBytes + 1, 3 * kCodecFrameRawBytes + 17}) {
      const std::string raw = repetitiveText(n);
      const Bytes stream = codecEncode(kind, raw);
      const EncodedStreamInfo info = encodedStreamInfo(stream);
      EXPECT_EQ(info.codec, kind);
      EXPECT_EQ(info.raw_size, n);
      EXPECT_EQ(info.frame_count,
                (n + kCodecFrameRawBytes - 1) / kCodecFrameRawBytes);
      EXPECT_EQ(codecDecode(stream).view(), raw) << codecName(kind);
    }
  }
}

TEST(CodecTest, RepetitiveInputShrinks) {
  const std::string raw = repetitiveText(256 * 1024);
  for (CodecKind kind : kCodecs) {
    const Bytes stream = codecEncode(kind, raw);
    if (kind == CodecKind::kMhLz) {
      EXPECT_LT(stream.size(), raw.size() / 2) << codecName(kind);
    }
    EXPECT_EQ(codecDecode(stream).view(), raw);
  }
  // A long single-byte run is VarRle's best case.
  const std::string run(100 * 1000, 'z');
  const Bytes rle = codecEncode(CodecKind::kVarRle, run);
  EXPECT_LT(rle.size(), run.size() / 100);
  EXPECT_EQ(codecDecode(rle).view(), run);
}

TEST(CodecTest, IncompressibleInputStoredWithBoundedExpansion) {
  const std::string raw = incompressibleBytes(200 * 1000, 99);
  for (CodecKind kind : kCodecs) {
    const Bytes stream = codecEncode(kind, raw);
    // Stored frames cost only the stream header plus per-frame headers.
    EXPECT_LT(stream.size(), raw.size() + 64) << codecName(kind);
    EXPECT_EQ(codecDecode(stream).view(), raw);
  }
}

TEST(CodecTest, DecodeRangeMatchesFullDecode) {
  const std::string raw = repetitiveText(5 * kCodecFrameRawBytes + 123);
  for (CodecKind kind : kCodecs) {
    const Bytes stream = codecEncode(kind, raw);
    const size_t offsets[] = {0, 1, kCodecFrameRawBytes - 1,
                              kCodecFrameRawBytes, 2 * kCodecFrameRawBytes + 7,
                              raw.size() - 1};
    for (size_t off : offsets) {
      for (size_t len : {size_t{1}, size_t{100}, kCodecFrameRawBytes + 5,
                         raw.size()}) {
        const BufferView got = codecDecodeRange(stream, off, len);
        const size_t want = std::min(len, raw.size() - off);
        ASSERT_EQ(got.size(), want) << codecName(kind) << " off=" << off;
        EXPECT_EQ(got.str(), raw.substr(off, want));
      }
    }
    // Reading at exactly the end yields an empty view; past it throws.
    EXPECT_EQ(codecDecodeRange(stream, raw.size(), 10).size(), 0u);
    EXPECT_THROW(codecDecodeRange(stream, raw.size() + 1, 1),
                 InvalidArgumentError);
  }
}

TEST(CodecTest, TruncatedStreamRejectedNeverWrongBytes) {
  const std::string raw = repetitiveText(kCodecFrameRawBytes + 500);
  for (CodecKind kind : kCodecs) {
    const Bytes stream = codecEncode(kind, raw);
    // Cut at a spread of points: inside the header, inside a frame header,
    // mid-payload, and one byte short of complete.
    for (size_t keep : {size_t{0}, size_t{3}, kCodecHeaderBytes + 2,
                        stream.size() / 2, stream.size() - 1}) {
      const std::string cut = stream.substr(0, keep);
      EXPECT_THROW(codecDecode(cut), Error) << codecName(kind) << " keep="
                                            << keep;
    }
    // A cut at exactly the header boundary is indistinguishable from an
    // encoding of empty input (frames are self-describing; there is no
    // stream footer). It decodes to zero bytes — never to wrong bytes —
    // and the seams catch the shortfall against their out-of-band raw
    // size (block meta, run length).
    EXPECT_EQ(codecDecode(stream.substr(0, kCodecHeaderBytes)).view(), "");
  }
}

TEST(CodecTest, BitFlipsRejectedNeverWrongBytes) {
  const std::string raw = repetitiveText(2 * kCodecFrameRawBytes);
  for (CodecKind kind : kCodecs) {
    const Bytes stream = codecEncode(kind, raw);
    Rng rng(7);
    int checksum_errors = 0;
    for (int trial = 0; trial < 200; ++trial) {
      std::string bad = stream;
      const size_t pos = kCodecHeaderBytes +
                         rng.next() % (bad.size() - kCodecHeaderBytes);
      bad[pos] = static_cast<char>(bad[pos] ^ (1u << (trial % 8)));
      // Every corruption must surface as an error: structural damage as
      // InvalidArgumentError, wrong-but-decodable payloads as ChecksumError.
      // It must never silently return different bytes.
      try {
        const Buffer out = codecDecode(bad);
        EXPECT_EQ(out.view(), raw)
            << codecName(kind) << " silent corruption at " << pos;
      } catch (const ChecksumError&) {
        ++checksum_errors;
      } catch (const InvalidArgumentError&) {
      }
    }
    // The frame CRC (not just structural luck) must be doing real work.
    EXPECT_GT(checksum_errors, 0) << codecName(kind);
  }
}

TEST(CodecTest, FlippedPayloadByteIsChecksumError) {
  // Deterministic version of the property above: corrupt a known literal
  // byte deep inside the payload of a stored (incompressible) frame, where
  // decode always succeeds structurally and only the CRC can object.
  const std::string raw = incompressibleBytes(1000, 5);
  const Bytes stream = codecEncode(CodecKind::kMhLz, raw);
  std::string bad = stream;
  bad[bad.size() - 10] = static_cast<char>(bad[bad.size() - 10] ^ 0x40);
  EXPECT_THROW(codecDecode(bad), ChecksumError);
}

TEST(CodecTest, IsEncodedStreamGates) {
  EXPECT_FALSE(isEncodedStream(""));
  EXPECT_FALSE(isEncodedStream("plain text"));
  EXPECT_FALSE(isEncodedStream("MHC1"));  // magic but no codec id
  EXPECT_TRUE(isEncodedStream(codecEncode(CodecKind::kVarRle, "abc")));
  EXPECT_THROW(encodedStreamInfo("plain text"), InvalidArgumentError);
}

TEST(CodecTest, MetricsHistogramsRecord) {
  MetricsRegistry metrics;
  const std::string raw = repetitiveText(64 * 1024);
  const Bytes stream = codecEncode(CodecKind::kMhLz, raw, &metrics);
  codecDecode(stream, &metrics);
  MetricsRegistry& codec = metrics.child("codec.mh-lz");
  EXPECT_EQ(codec.histogram("encode.micros").count(), 1u);
  EXPECT_EQ(codec.histogram("decode.micros").count(), 1u);
}

TEST(CodecTest, OverlappingMatchesDecodeCorrectly) {
  // RLE-like input makes mh-lz emit offset-1 overlapping copies, the
  // classic LZ decoder edge case.
  std::string raw = "a";
  raw += std::string(70000, 'a');
  raw += "abababababababab";
  const Bytes stream = codecEncode(CodecKind::kMhLz, raw);
  EXPECT_LT(stream.size(), 2000u);
  EXPECT_EQ(codecDecode(stream).view(), raw);
}

TEST(CodecTest, RandomizedRoundTripSweep) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t n = rng.next() % 20000;
    std::string raw(n, '\0');
    // Mix runs, repeats, and noise so both codecs see both branch shapes.
    size_t i = 0;
    while (i < n) {
      const uint64_t pick = rng.next();
      const size_t len = std::min<size_t>(n - i, 1 + pick % 97);
      const char c = static_cast<char>('a' + pick % 17);
      if (pick % 3 == 0) {
        for (size_t k = 0; k < len; ++k) raw[i + k] = c;
      } else {
        for (size_t k = 0; k < len; ++k) {
          raw[i + k] = static_cast<char>(rng.next() & 0xff);
        }
      }
      i += len;
    }
    for (CodecKind kind : kCodecs) {
      const Bytes stream = codecEncode(kind, raw);
      ASSERT_EQ(codecDecode(stream).view(), raw)
          << codecName(kind) << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace mh
