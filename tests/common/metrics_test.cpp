#include "mh/common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mh {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, ConcurrentAddsDontLoseUpdates) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
}

TEST(LatencyHistogramTest, EmptyReportsZeroEverywhere) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0);
  EXPECT_EQ(h.percentile(99), 0);
}

TEST(LatencyHistogramTest, SingleSampleIsExactEverywhere) {
  LatencyHistogram h;
  h.record(777);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 777);
  EXPECT_EQ(h.min(), 777);
  EXPECT_EQ(h.max(), 777);
  EXPECT_DOUBLE_EQ(h.mean(), 777.0);
  // Percentiles clamp to the observed [min, max], so one sample is exact.
  EXPECT_EQ(h.percentile(0), 777);
  EXPECT_EQ(h.percentile(50), 777);
  EXPECT_EQ(h.percentile(100), 777);
}

TEST(LatencyHistogramTest, PercentilesAreMonotonic) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.record(v);
  const int64_t p50 = h.percentile(50);
  const int64_t p95 = h.percentile(95);
  const int64_t p99 = h.percentile(99);
  EXPECT_LE(h.min(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Log2 buckets are coarse but the median of 1..1000 must land in the
  // right power-of-two neighborhood.
  EXPECT_GE(p50, 256);
  EXPECT_LE(p50, 1000);
}

TEST(LatencyHistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::bucketLow(0), 0);
  EXPECT_EQ(LatencyHistogram::bucketHigh(0), 1);
  EXPECT_EQ(LatencyHistogram::bucketLow(1), 1);
  EXPECT_EQ(LatencyHistogram::bucketHigh(1), 2);
  EXPECT_EQ(LatencyHistogram::bucketLow(5), 16);
  EXPECT_EQ(LatencyHistogram::bucketHigh(5), 32);

  LatencyHistogram h;
  h.record(0);   // bucket 0: [0, 1)
  h.record(1);   // bucket 1: [1, 2)
  h.record(16);  // bucket 5: [16, 32)
  h.record(31);  // bucket 5
  EXPECT_EQ(h.bucketCount(0), 1u);
  EXPECT_EQ(h.bucketCount(1), 1u);
  EXPECT_EQ(h.bucketCount(5), 2u);
}

TEST(LatencyHistogramTest, NegativeSamplesClampToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucketCount(0), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(LatencyHistogramTest, SummaryMentionsCountAndUnits) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.record(500);
  const std::string s = h.summary();
  EXPECT_NE(s.find("count=10"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

TEST(FormatMicrosTest, PicksReadableUnits) {
  EXPECT_EQ(formatMicros(0), "0us");
  EXPECT_EQ(formatMicros(999), "999us");
  EXPECT_NE(formatMicros(1500).find("ms"), std::string::npos);
  EXPECT_NE(formatMicros(2500000).find("s"), std::string::npos);
}

TEST(MetricsRegistryTest, ChildAndInstrumentReferencesAreStable) {
  MetricsRegistry root;
  MetricsRegistry& a = root.child("datanode.node01");
  Counter& c = a.counter("blocks.read");
  c.add(3);
  // Creating more children/instruments must not invalidate earlier refs.
  for (int i = 0; i < 100; ++i) {
    root.child("datanode.node" + std::to_string(i)).counter("blocks.read");
  }
  EXPECT_EQ(&root.child("datanode.node01"), &a);
  EXPECT_EQ(&a.counter("blocks.read"), &c);
  EXPECT_EQ(c.value(), 3);
}

TEST(MetricsRegistryTest, ChildNamesAreSorted) {
  MetricsRegistry root;
  root.child("jobtracker");
  root.child("datanode.b");
  root.child("datanode.a");
  const auto names = root.childNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "datanode.a");
  EXPECT_EQ(names[1], "datanode.b");
  EXPECT_EQ(names[2], "jobtracker");
}

TEST(MetricsRegistryTest, UnknownLookupsReturnZero) {
  MetricsRegistry root;
  EXPECT_EQ(root.counterValue("no.such.counter"), 0);
  EXPECT_DOUBLE_EQ(root.gaugeValue("no.such.gauge"), 0.0);
  EXPECT_FALSE(root.hasHistogram("no.such.histogram"));
}

TEST(MetricsRegistryTest, GaugesSampleTheCallbackAtReadTime) {
  MetricsRegistry root;
  double live = 1.0;
  root.setGauge("heap.used_bytes", [&live] { return live; });
  EXPECT_DOUBLE_EQ(root.gaugeValue("heap.used_bytes"), 1.0);
  live = 42.0;
  EXPECT_DOUBLE_EQ(root.gaugeValue("heap.used_bytes"), 42.0);
  // Replacement wins.
  root.setGauge("heap.used_bytes", [] { return 7.0; });
  EXPECT_DOUBLE_EQ(root.gaugeValue("heap.used_bytes"), 7.0);
}

MetricsRegistry& populated(MetricsRegistry& root) {
  auto& nn = root.child("namenode");
  nn.counter("ops.heartbeat").add(5);
  nn.setGauge("blocks.total", [] { return 12.0; });
  auto& net = root.child("network");
  net.histogram("rpc.heartbeat.micros").record(250);
  net.histogram("rpc.heartbeat.micros").record(750);
  return root;
}

TEST(MetricsRegistryTest, RenderShowsChildrenAndInstruments) {
  MetricsRegistry root;
  const std::string text = populated(root).render();
  EXPECT_NE(text.find("namenode"), std::string::npos);
  EXPECT_NE(text.find("ops.heartbeat"), std::string::npos);
  EXPECT_NE(text.find("5"), std::string::npos);
  EXPECT_NE(text.find("blocks.total"), std::string::npos);
  EXPECT_NE(text.find("rpc.heartbeat.micros"), std::string::npos);
  EXPECT_NE(text.find("count=2"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportIsWellFormed) {
  MetricsRegistry root;
  const std::string text = populated(root).exportPrometheus();
  // Dots sanitized to underscores, counters suffixed _total.
  EXPECT_NE(text.find("mh_namenode_ops_heartbeat_total 5"), std::string::npos);
  EXPECT_NE(text.find("mh_namenode_blocks_total"), std::string::npos);
  EXPECT_NE(text.find("mh_network_rpc_heartbeat_micros_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportNestsChildren) {
  MetricsRegistry root;
  const std::string text = populated(root).exportJson();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"namenode\""), std::string::npos);
  EXPECT_NE(text.find("\"ops.heartbeat\": 5"), std::string::npos);
  EXPECT_NE(text.find("\"rpc.heartbeat.micros\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 2"), std::string::npos);
}

TEST(MetricsRegistryTest, HasHistogramAfterFirstUse) {
  MetricsRegistry root;
  EXPECT_FALSE(root.hasHistogram("rpc.read.micros"));
  root.histogram("rpc.read.micros");
  EXPECT_TRUE(root.hasHistogram("rpc.read.micros"));
}

}  // namespace
}  // namespace mh
