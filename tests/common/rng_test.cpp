#include "mh/common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace mh {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(13), 13u);
}

TEST(RngTest, UniformZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), InvalidArgumentError);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01HalfOpen) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(19);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMatchesMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child must not replay parent's sequence.
  Rng parent2(5);
  parent2.next();  // fork consumed one parent draw
  EXPECT_NE(child.next(), parent2.next());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  Rng rng(31);
  ZipfSampler zipf(1000, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(rng)];
  // Zipf(1.0): rank 0 should dominate and counts should decay with rank.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[0], 100000 / 10);  // harmonic share of rank 1 is ~13%
}

TEST(ZipfTest, SamplesStayInDomain) {
  Rng rng(37);
  ZipfSampler zipf(5, 1.2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.sample(rng), 5u);
}

TEST(ZipfTest, EmptyDomainThrows) {
  EXPECT_THROW(ZipfSampler(0, 1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace mh
