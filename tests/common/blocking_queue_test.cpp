#include "mh/common/blocking_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mh {
namespace {

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueueTest, TryPopOnEmpty) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.tryPop().has_value());
  q.push(5);
  EXPECT_EQ(q.tryPop(), 5);
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.push(99);
  });
  EXPECT_EQ(q.pop(), 99);
  producer.join();
}

TEST(BlockingQueueTest, CloseWakesWaiters) {
  BlockingQueue<int> q;
  std::thread closer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.close();
  });
  EXPECT_FALSE(q.pop().has_value());
  closer.join();
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_TRUE(q.closed());
}

TEST(BlockingQueueTest, DrainsRemainingAfterClose) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kPerProducer * (kPerProducer + 1) / 2);
}

}  // namespace
}  // namespace mh
