#include "mh/common/csv.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh {
namespace {

TEST(CsvTest, SimpleFields) {
  const auto f = parseCsvLine("2008,1,3,WN,810.0");
  ASSERT_EQ(f.size(), 5u);
  EXPECT_EQ(f[0], "2008");
  EXPECT_EQ(f[3], "WN");
}

TEST(CsvTest, QuotedCommaAndQuote) {
  const auto f =
      parseCsvLine(R"csv(1,"Toy Story (1995)","Adventure|""Kids""")csv");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "Toy Story (1995)");
  EXPECT_EQ(f[2], "Adventure|\"Kids\"");
}

TEST(CsvTest, EmptyFields) {
  const auto f = parseCsvLine(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& x : f) EXPECT_TRUE(x.empty());
}

TEST(CsvTest, UnbalancedQuoteThrows) {
  EXPECT_THROW(parseCsvLine("a,\"unterminated"), InvalidArgumentError);
}

TEST(CsvTest, FormatQuotesOnlyWhenNeeded) {
  EXPECT_EQ(formatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(formatCsvLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(formatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, RoundTripPreservesFields) {
  const std::vector<std::string> in{"plain", "with,comma", "with\"quote",
                                    "", "multi\nline"};
  EXPECT_EQ(parseCsvLine(formatCsvLine(in)), in);
}

}  // namespace
}  // namespace mh
