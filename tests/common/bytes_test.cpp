#include "mh/common/bytes.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace mh {
namespace {

TEST(ByteWriterTest, FixedWidthRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.writeU8(0xAB);
  w.writeU32(0xDEADBEEF);
  w.writeU64(0x0123456789ABCDEFull);
  w.writeI32(-42);
  w.writeI64(std::numeric_limits<int64_t>::min());
  w.writeDouble(3.141592653589793);
  w.writeBool(true);

  ByteReader r(buf);
  EXPECT_EQ(r.readU8(), 0xAB);
  EXPECT_EQ(r.readU32(), 0xDEADBEEF);
  EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.readI32(), -42);
  EXPECT_EQ(r.readI64(), std::numeric_limits<int64_t>::min());
  EXPECT_DOUBLE_EQ(r.readDouble(), 3.141592653589793);
  EXPECT_TRUE(r.readBool());
  EXPECT_TRUE(r.atEnd());
}

TEST(ByteWriterTest, BigEndianLayout) {
  Bytes buf;
  ByteWriter w(buf);
  w.writeU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x04);
}

TEST(VarintTest, SmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 100ull, 127ull}) {
    Bytes buf;
    ByteWriter w(buf);
    w.writeVarU64(v);
    EXPECT_EQ(buf.size(), 1u) << v;
    ByteReader r(buf);
    EXPECT_EQ(r.readVarU64(), v);
  }
}

TEST(VarintTest, BoundaryValuesRoundTrip) {
  for (const uint64_t v : std::vector<uint64_t>{
           127, 128, 16383, 16384, 0xFFFFFFFF,
           std::numeric_limits<uint64_t>::max()}) {
    Bytes buf;
    ByteWriter w(buf);
    w.writeVarU64(v);
    ByteReader r(buf);
    EXPECT_EQ(r.readVarU64(), v);
    EXPECT_TRUE(r.atEnd());
  }
}

TEST(VarintTest, SignedZigZagRoundTrip) {
  for (const int64_t v : std::vector<int64_t>{
           0, -1, 1, -64, 63, std::numeric_limits<int64_t>::min(),
           std::numeric_limits<int64_t>::max()}) {
    Bytes buf;
    ByteWriter w(buf);
    w.writeVarI64(v);
    ByteReader r(buf);
    EXPECT_EQ(r.readVarI64(), v);
  }
}

TEST(VarintTest, NegativeOneIsCompact) {
  Bytes buf;
  ByteWriter w(buf);
  w.writeVarI64(-1);
  EXPECT_EQ(buf.size(), 1u);  // zig-zag maps -1 -> 1
}

TEST(ByteReaderTest, TruncatedInputThrows) {
  Bytes buf;
  ByteWriter w(buf);
  w.writeU32(7);
  ByteReader r(std::string_view(buf).substr(0, 2));
  EXPECT_THROW(r.readU32(), InvalidArgumentError);
}

TEST(ByteReaderTest, MalformedVarintThrows) {
  // Eleven continuation bytes: longer than any valid 64-bit varint.
  Bytes buf(11, static_cast<char>(0x80));
  ByteReader r(buf);
  EXPECT_THROW(r.readVarU64(), InvalidArgumentError);
}

TEST(ByteReaderTest, BytesWithEmbeddedNulRoundTrip) {
  const std::string payload("a\0b\0c", 5);
  Bytes buf;
  ByteWriter w(buf);
  w.writeBytes(payload);
  ByteReader r(buf);
  EXPECT_EQ(r.readString(), payload);
}

TEST(ByteReaderTest, LengthPrefixedBytesPastEndThrows) {
  Bytes buf;
  ByteWriter w(buf);
  w.writeVarU64(1000);  // claims 1000 bytes follow
  buf += "short";
  ByteReader r(buf);
  EXPECT_THROW(r.readBytes(), InvalidArgumentError);
}

TEST(ByteReaderTest, RawReadTracksPosition) {
  Bytes buf = "hello world";
  ByteReader r(buf);
  EXPECT_EQ(r.readRaw(5), "hello");
  EXPECT_EQ(r.position(), 5u);
  EXPECT_EQ(r.remaining(), 6u);
}

}  // namespace
}  // namespace mh
