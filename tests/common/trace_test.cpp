#include "mh/common/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace mh {
namespace {

TEST(TraceCollectorTest, DisabledByDefaultAndRecordsNothing) {
  TraceCollector tc;
  EXPECT_FALSE(tc.enabled());
  tc.instant("jobtracker", "SUBMIT");
  {
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
    EXPECT_FALSE(span.active());
    span.arg("job", "1");  // must be a harmless no-op
  }
  TraceSpan null_span(nullptr, "x", "y");
  EXPECT_FALSE(null_span.active());
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.droppedEvents(), 0u);
}

TEST(TraceCollectorTest, InstantAndSpanLandWithArgs) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("jobtracker", "SUBMIT", {{"name", "wordcount"}, {"maps", "4"}});
  {
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
    EXPECT_TRUE(span.active());
    span.arg("job", "1");
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].component, "jobtracker");
  EXPECT_EQ(events[0].name, "SUBMIT");
  EXPECT_FALSE(events[0].span);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "name");
  EXPECT_EQ(events[0].args[0].second, "wordcount");
  EXPECT_EQ(events[1].component, "tasktracker.node01");
  EXPECT_TRUE(events[1].span);
  EXPECT_GE(events[1].dur_us, 0);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].second, "1");
}

TEST(TraceCollectorTest, SnapshotIsChronological) {
  TraceCollector tc;
  tc.setEnabled(true);
  for (int i = 0; i < 20; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    tc.instant("c", name);
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 20u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(TraceCollectorTest, RingStaysBoundedAndCountsDrops) {
  TraceCollector tc(8);
  tc.setEnabled(true);
  EXPECT_EQ(tc.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    tc.instant("c", name);
  }
  EXPECT_EQ(tc.size(), 8u);
  EXPECT_EQ(tc.droppedEvents(), 12u);
  // Survivors are the newest 8 events, oldest first.
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().name, "e12");
  EXPECT_EQ(events.back().name, "e19");
}

TEST(TraceCollectorTest, ClearResetsEverything) {
  TraceCollector tc(4);
  tc.setEnabled(true);
  for (int i = 0; i < 10; ++i) tc.instant("c", "e");
  tc.clear();
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.droppedEvents(), 0u);
  tc.instant("c", "after");
  EXPECT_EQ(tc.size(), 1u);
  EXPECT_EQ(tc.snapshot().front().name, "after");
}

TEST(TraceCollectorTest, SpanStartedWhileEnabledLandsAfterDisable) {
  TraceCollector tc;
  tc.setEnabled(true);
  {
    TraceSpan span(&tc, "tasktracker.node01", "REDUCE r0 a0");
    ASSERT_TRUE(span.active());
    tc.setEnabled(false);  // the in-flight span must still land
  }
  tc.instant("c", "late");  // but new instants must not
  ASSERT_EQ(tc.size(), 1u);
  EXPECT_EQ(tc.snapshot().front().name, "REDUCE r0 a0");
}

TEST(TraceCollectorTest, ChromeJsonHasLanesSpansAndInstants) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("jobtracker", "SUBMIT", {{"name", "wc"}});
  { TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0"); }
  const std::string json = tc.exportChromeJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  // One process_name metadata record per component.
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"process_name\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"jobtracker\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"tasktracker.node01\"}"),
            std::string::npos);
  // The span exports as a complete event with a duration, the instant as
  // ph "i" with scope "p".
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"MAP m0 a0\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"name\":\"SUBMIT\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"p\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wc\""), std::string::npos);
}

TEST(TraceCollectorTest, JsonlEmitsHeaderPlusOneLinePerEvent) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("a", "one");
  tc.instant("b", "two");
  const std::string jsonl = tc.exportJsonl();
  size_t lines = 0;
  for (const char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);  // self-describing header + one line per event
  EXPECT_EQ(jsonl.find("{\"type\":\"header\""), 0u);
  EXPECT_NE(jsonl.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"event_count\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"instant\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"component\":\"a\""), std::string::npos);
}

TEST(TraceContextTest, AmbientIsZeroOutsideAnySpan) {
  const TraceContext ctx = currentTraceContext();
  EXPECT_FALSE(ctx.valid());
  EXPECT_EQ(ctx.trace_id, 0u);
  EXPECT_EQ(ctx.span_id, 0u);
}

TEST(TraceContextTest, ScopeInstallsAndRestores) {
  const TraceContext before = currentTraceContext();
  {
    TraceContextScope scope(TraceContext{7, 8, 0});
    EXPECT_EQ(currentTraceContext().trace_id, 7u);
    EXPECT_EQ(currentTraceContext().span_id, 8u);
    {
      TraceContextScope inner(TraceContext{7, 9, 8});
      EXPECT_EQ(currentTraceContext().span_id, 9u);
    }
    EXPECT_EQ(currentTraceContext().span_id, 8u);
  }
  EXPECT_EQ(currentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(currentTraceContext().span_id, before.span_id);
}

TEST(TraceContextTest, SpansFormCausalTreeViaAmbientContext) {
  TraceCollector tc;
  tc.setEnabled(true);
  const uint64_t trace_id = tc.newId();
  const TraceContextScope root(TraceContext{trace_id, 0, 0});
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer(&tc, "jobtracker", "JOB job 1");
    outer_id = outer.context().span_id;
    ASSERT_NE(outer_id, 0u);
    {
      TraceSpan inner(&tc, "tasktracker.node01", "MAP m0 a0");
      inner_id = inner.context().span_id;
      tc.instant("dfsclient.node01", "SHORT_CIRCUIT_READ blk_1");
    }
  }
  // Spans record at destruction, the instant immediately; snapshot()
  // orders by start time, so look events up by name rather than index.
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 3u);
  const auto byName = [&](const char* prefix) -> const TraceEvent& {
    for (const auto& e : events) {
      if (e.name.rfind(prefix, 0) == 0) return e;
    }
    ADD_FAILURE() << "no event named " << prefix;
    return events.front();
  };
  const TraceEvent& instant = byName("SHORT_CIRCUIT_READ");
  const TraceEvent& inner = byName("MAP");
  const TraceEvent& outer = byName("JOB");
  EXPECT_EQ(outer.trace_id, trace_id);
  EXPECT_EQ(outer.parent_span_id, 0u);
  EXPECT_EQ(inner.trace_id, trace_id);
  EXPECT_EQ(inner.parent_span_id, outer_id);
  EXPECT_EQ(inner.span_id, inner_id);
  EXPECT_EQ(instant.trace_id, trace_id);
  EXPECT_EQ(instant.parent_span_id, inner_id);
  EXPECT_EQ(instant.span_id, 0u);  // instants are points, not spans
}

TEST(TraceContextTest, ExplicitContextInstantTargetsGivenTree) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant(TraceContext{42, 43, 0}, "jobtracker", "ATTEMPT_TIMEOUT");
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 42u);
  EXPECT_EQ(events[0].parent_span_id, 43u);
}

TEST(TraceContextTest, DisabledCollectorAllocatesNoIds) {
  TraceCollector tc;
  ASSERT_FALSE(tc.enabled());
  for (int i = 0; i < 100; ++i) {
    tc.instant("c", "e");
    TraceSpan span(&tc, "c", "s");
  }
  EXPECT_EQ(tc.idsAllocated(), 0u);
  tc.setEnabled(true);
  { TraceSpan span(&tc, "c", "s"); }
  EXPECT_EQ(tc.idsAllocated(), 1u);
}

TEST(TraceCollectorTest, ChromeJsonNamesTracksAndReportsDrops) {
  TraceCollector tc(3);
  tc.setEnabled(true);
  tc.instant("jobtracker", "e1");  // will be overwritten below
  {
    TraceContextScope scope(TraceContext{1, 0, 0}, "m0 a0");
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
  }
  tc.instant("jobtracker", "e2");
  tc.instant("jobtracker", "e3");  // capacity 3: drops e1
  const std::string json = tc.exportChromeJson();
  // Named thread track for the task attempt; anonymous events fall back
  // to a per-thread tid track.
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"m0 a0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"tid "), std::string::npos);
  EXPECT_NE(json.find("\"droppedEvents\":1"), std::string::npos);
}

TEST(TraceCollectorTest, ChromeJsonCarriesCausalIdsInArgs) {
  TraceCollector tc;
  tc.setEnabled(true);
  {
    TraceContextScope scope(TraceContext{5, 0, 0});
    TraceSpan span(&tc, "c", "s");
  }
  const std::string json = tc.exportChromeJson();
  EXPECT_NE(json.find("\"trace_id\":5"), std::string::npos);
  EXPECT_NE(json.find("\"span_id\":"), std::string::npos);
}

TEST(TraceCollectorTest, JsonEscapesSpecialCharacters) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("c", "quote\"back\\slash", {{"k", "line\nbreak"}});
  const std::string json = tc.exportChromeJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace mh
