#include "mh/common/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace mh {
namespace {

TEST(TraceCollectorTest, DisabledByDefaultAndRecordsNothing) {
  TraceCollector tc;
  EXPECT_FALSE(tc.enabled());
  tc.instant("jobtracker", "SUBMIT");
  {
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
    EXPECT_FALSE(span.active());
    span.arg("job", "1");  // must be a harmless no-op
  }
  TraceSpan null_span(nullptr, "x", "y");
  EXPECT_FALSE(null_span.active());
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.droppedEvents(), 0u);
}

TEST(TraceCollectorTest, InstantAndSpanLandWithArgs) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("jobtracker", "SUBMIT", {{"name", "wordcount"}, {"maps", "4"}});
  {
    TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0");
    EXPECT_TRUE(span.active());
    span.arg("job", "1");
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].component, "jobtracker");
  EXPECT_EQ(events[0].name, "SUBMIT");
  EXPECT_FALSE(events[0].span);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].first, "name");
  EXPECT_EQ(events[0].args[0].second, "wordcount");
  EXPECT_EQ(events[1].component, "tasktracker.node01");
  EXPECT_TRUE(events[1].span);
  EXPECT_GE(events[1].dur_us, 0);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].second, "1");
}

TEST(TraceCollectorTest, SnapshotIsChronological) {
  TraceCollector tc;
  tc.setEnabled(true);
  for (int i = 0; i < 20; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    tc.instant("c", name);
  }
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 20u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(TraceCollectorTest, RingStaysBoundedAndCountsDrops) {
  TraceCollector tc(8);
  tc.setEnabled(true);
  EXPECT_EQ(tc.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    std::string name = "e";
    name += std::to_string(i);
    tc.instant("c", name);
  }
  EXPECT_EQ(tc.size(), 8u);
  EXPECT_EQ(tc.droppedEvents(), 12u);
  // Survivors are the newest 8 events, oldest first.
  const auto events = tc.snapshot();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().name, "e12");
  EXPECT_EQ(events.back().name, "e19");
}

TEST(TraceCollectorTest, ClearResetsEverything) {
  TraceCollector tc(4);
  tc.setEnabled(true);
  for (int i = 0; i < 10; ++i) tc.instant("c", "e");
  tc.clear();
  EXPECT_EQ(tc.size(), 0u);
  EXPECT_EQ(tc.droppedEvents(), 0u);
  tc.instant("c", "after");
  EXPECT_EQ(tc.size(), 1u);
  EXPECT_EQ(tc.snapshot().front().name, "after");
}

TEST(TraceCollectorTest, SpanStartedWhileEnabledLandsAfterDisable) {
  TraceCollector tc;
  tc.setEnabled(true);
  {
    TraceSpan span(&tc, "tasktracker.node01", "REDUCE r0 a0");
    ASSERT_TRUE(span.active());
    tc.setEnabled(false);  // the in-flight span must still land
  }
  tc.instant("c", "late");  // but new instants must not
  ASSERT_EQ(tc.size(), 1u);
  EXPECT_EQ(tc.snapshot().front().name, "REDUCE r0 a0");
}

TEST(TraceCollectorTest, ChromeJsonHasLanesSpansAndInstants) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("jobtracker", "SUBMIT", {{"name", "wc"}});
  { TraceSpan span(&tc, "tasktracker.node01", "MAP m0 a0"); }
  const std::string json = tc.exportChromeJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  // One process_name metadata record per component.
  EXPECT_NE(json.find("\"ph\":\"M\",\"name\":\"process_name\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"jobtracker\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"tasktracker.node01\"}"),
            std::string::npos);
  // The span exports as a complete event with a duration, the instant as
  // ph "i" with scope "p".
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"MAP m0 a0\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"name\":\"SUBMIT\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"p\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wc\""), std::string::npos);
}

TEST(TraceCollectorTest, JsonlEmitsOneLinePerEvent) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("a", "one");
  tc.instant("b", "two");
  const std::string jsonl = tc.exportJsonl();
  size_t lines = 0;
  for (const char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"type\":\"instant\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"component\":\"a\""), std::string::npos);
}

TEST(TraceCollectorTest, JsonEscapesSpecialCharacters) {
  TraceCollector tc;
  tc.setEnabled(true);
  tc.instant("c", "quote\"back\\slash", {{"k", "line\nbreak"}});
  const std::string json = tc.exportChromeJson();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

}  // namespace
}  // namespace mh
