#include "mh/common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace mh {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors for CRC-32C.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string data = "hello, distributed world";
  const uint32_t whole = crc32c(data);
  const uint32_t part1 = crc32c(data.substr(0, 7));
  const uint32_t chained = crc32c(data.substr(7), part1);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(4096, 'a');
  const uint32_t clean = crc32c(data);
  for (size_t pos : {0u, 511u, 512u, 4095u}) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    EXPECT_NE(crc32c(corrupt), clean) << "flip at " << pos;
  }
}

TEST(Crc32cTest, OrderMatters) {
  EXPECT_NE(crc32c("ab"), crc32c("ba"));
}

}  // namespace
}  // namespace mh
