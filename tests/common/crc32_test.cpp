#include "mh/common/crc32.h"

#include <gtest/gtest.h>

#include <string>

#include "mh/common/rng.h"

namespace mh {
namespace {

/// Straightforward table-free bytewise CRC-32C — the oracle the slice-by-8
/// production implementation must match bit-for-bit on every input.
uint32_t referenceCrc32c(std::string_view data, uint32_t seed = 0) {
  uint32_t crc = ~seed;
  for (const char c : data) {
    crc ^= static_cast<uint8_t>(c);
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) test vectors for CRC-32C.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  const std::string data = "hello, distributed world";
  const uint32_t whole = crc32c(data);
  const uint32_t part1 = crc32c(data.substr(0, 7));
  const uint32_t chained = crc32c(data.substr(7), part1);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32cTest, SingleBitFlipDetected) {
  std::string data(4096, 'a');
  const uint32_t clean = crc32c(data);
  for (size_t pos : {0u, 511u, 512u, 4095u}) {
    std::string corrupt = data;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    EXPECT_NE(crc32c(corrupt), clean) << "flip at " << pos;
  }
}

TEST(Crc32cTest, OrderMatters) {
  EXPECT_NE(crc32c("ab"), crc32c("ba"));
}

TEST(Crc32cTest, MatchesBytewiseReferenceOnAllLengthsAndAlignments) {
  // Slice-by-8 processes 8 bytes per iteration with a bytewise tail; sweep
  // every length 0..64 at every start alignment 0..7 so each head/body/tail
  // combination is exercised against the bytewise oracle.
  Rng rng(42);
  std::string blob(64 + 8, '\0');
  for (auto& c : blob) c = static_cast<char>(rng.uniform(256));
  for (size_t align = 0; align < 8; ++align) {
    for (size_t len = 0; len + align <= blob.size(); ++len) {
      const std::string_view chunk(blob.data() + align, len);
      ASSERT_EQ(crc32c(chunk), referenceCrc32c(chunk))
          << "align " << align << " len " << len;
    }
  }
}

TEST(Crc32cTest, MatchesReferenceOnLargeRandomInputs) {
  Rng rng(7);
  for (const size_t size : {1000u, 4096u, 65537u}) {
    std::string data(size, '\0');
    for (auto& c : data) c = static_cast<char>(rng.uniform(256));
    ASSERT_EQ(crc32c(data), referenceCrc32c(data)) << "size " << size;
  }
}

TEST(Crc32cTest, SeededChainingMatchesReferenceAtRandomCuts) {
  Rng rng(99);
  std::string data(10000, '\0');
  for (auto& c : data) c = static_cast<char>(rng.uniform(256));
  const uint32_t whole = crc32c(data);
  EXPECT_EQ(whole, referenceCrc32c(data));
  for (int trial = 0; trial < 20; ++trial) {
    const size_t cut = rng.uniform(data.size() + 1);
    const uint32_t head = crc32c(std::string_view(data).substr(0, cut));
    EXPECT_EQ(crc32c(std::string_view(data).substr(cut), head), whole)
        << "cut " << cut;
    // The reference chains the same way — seeds are interchangeable.
    const uint32_t ref_head =
        referenceCrc32c(std::string_view(data).substr(0, cut));
    EXPECT_EQ(ref_head, head);
  }
}

}  // namespace
}  // namespace mh
