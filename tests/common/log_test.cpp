#include "mh/common/log.h"

#include <gtest/gtest.h>

namespace mh {
namespace {

TEST(LogLevelFromNameTest, ParsesEveryLevelCaseInsensitively) {
  EXPECT_EQ(logLevelFromName("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(logLevelFromName("INFO", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(logLevelFromName("Warn", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(logLevelFromName("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(logLevelFromName("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(logLevelFromName("off", LogLevel::kWarn), LogLevel::kOff);
  EXPECT_EQ(logLevelFromName("NONE", LogLevel::kWarn), LogLevel::kOff);
}

TEST(LogLevelFromNameTest, UnknownNamesFallBack) {
  EXPECT_EQ(logLevelFromName("", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(logLevelFromName("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(logLevelFromName("2", LogLevel::kError), LogLevel::kError);
}

TEST(LogLevelTest, SetterWinsAndSticks) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
  setLogLevel(before);
  EXPECT_EQ(logLevel(), before);
}

}  // namespace
}  // namespace mh
