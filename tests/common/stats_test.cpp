#include "mh/common/stats.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"
#include "mh/common/rng.h"

namespace mh {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, KnownSmallSample) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddevPopulation(), 2.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(101);
  RunningStat whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10, 3);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(HistogramTest, BucketBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  EXPECT_EQ(h.bucketCount(0), 2);
  EXPECT_EQ(h.bucketCount(1), 1);
  EXPECT_EQ(h.bucketCount(4), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(HistogramTest, OutOfRangeClamps) {
  Histogram h(0.0, 1.0, 2);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bucketCount(0), 1);
  EXPECT_EQ(h.bucketCount(1), 1);
}

TEST(HistogramTest, ExactBoundariesClampIntoEdgeBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);  // exactly hi: clamps into the last bucket, not past it
  h.add(0.0);   // exactly lo: first bucket
  EXPECT_EQ(h.bucketCount(4), 1);
  EXPECT_EQ(h.bucketCount(0), 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvalidArgumentError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgumentError);
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.7);
  const std::string text = h.render(10);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(percentile({3, 1, 2}, 50), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, Extremes) {
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100), 9.0);
}

TEST(PercentileTest, EmptyReturnsZero) {
  // An empty sample has no percentiles; defined to be 0.0 (not a throw),
  // matching the metrics-layer histograms.
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100), 7.0);
}

TEST(FormatMeanStdTest, MatchesPaperStyle) {
  EXPECT_EQ(formatMeanStd(6.6, 1.2, 1), "6.6±1.2");
  EXPECT_EQ(formatMeanStd(0.03, 0.2, 2), "0.03±0.20");
}

}  // namespace
}  // namespace mh
