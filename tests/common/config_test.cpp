#include "mh/common/config.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh {
namespace {

TEST(ConfigTest, GetWithDefault) {
  Config c;
  EXPECT_EQ(c.get("dfs.name", "fallback"), "fallback");
  c.set("dfs.name", "value");
  EXPECT_EQ(c.get("dfs.name", "fallback"), "value");
}

TEST(ConfigTest, LaterSetWins) {
  Config c;
  c.set("k", "1");
  c.set("k", "2");
  EXPECT_EQ(c.get("k"), "2");
}

TEST(ConfigTest, TypedGetters) {
  Config c;
  c.setInt("dfs.replication", 3);
  c.setDouble("ratio", 0.75);
  c.setBool("flag", true);
  EXPECT_EQ(c.getInt("dfs.replication", 1), 3);
  EXPECT_DOUBLE_EQ(c.getDouble("ratio", 0.0), 0.75);
  EXPECT_TRUE(c.getBool("flag", false));
}

TEST(ConfigTest, TypedDefaults) {
  Config c;
  EXPECT_EQ(c.getInt("absent", 64), 64);
  EXPECT_DOUBLE_EQ(c.getDouble("absent", 1.5), 1.5);
  EXPECT_FALSE(c.getBool("absent", false));
}

TEST(ConfigTest, BoolAcceptsVariants) {
  Config c;
  c.set("a", "YES");
  c.set("b", "0");
  c.set("c", "True");
  EXPECT_TRUE(c.getBool("a", false));
  EXPECT_FALSE(c.getBool("b", true));
  EXPECT_TRUE(c.getBool("c", false));
}

TEST(ConfigTest, MalformedValuesThrow) {
  Config c;
  c.set("n", "12x");
  c.set("d", "one.five");
  c.set("b", "maybe");
  EXPECT_THROW(c.getInt("n", 0), InvalidArgumentError);
  EXPECT_THROW(c.getDouble("d", 0), InvalidArgumentError);
  EXPECT_THROW(c.getBool("b", false), InvalidArgumentError);
}

TEST(ConfigTest, MergeOverwrites) {
  Config a, b;
  a.set("x", "1");
  a.set("y", "1");
  b.set("y", "2");
  b.set("z", "2");
  a.merge(b);
  EXPECT_EQ(a.get("x"), "1");
  EXPECT_EQ(a.get("y"), "2");
  EXPECT_EQ(a.get("z"), "2");
}

TEST(ConfigTest, ContainsAndRaw) {
  Config c;
  EXPECT_FALSE(c.contains("k"));
  c.set("k", "");
  EXPECT_TRUE(c.contains("k"));
  EXPECT_TRUE(c.getRaw("k").has_value());
  EXPECT_FALSE(c.getRaw("missing").has_value());
}

}  // namespace
}  // namespace mh
