#include "mh/common/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "mh/common/error.h"

namespace mh {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw IoError("disk gone"); });
  EXPECT_THROW(f.get(), IoError);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  pool.waitIdle();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), IllegalStateError);
}

TEST(ThreadPoolTest, ZeroThreadsRejected) {
  EXPECT_THROW(ThreadPool(0), InvalidArgumentError);
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      --concurrent;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace mh
