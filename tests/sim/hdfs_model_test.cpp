#include "mh/sim/hdfs_model.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh::sim {
namespace {

TEST(StagingTest, PaperScaleShapes) {
  // C5: "it can take over an hour" to stage the 171 GB Google trace…
  StagingSpec google;
  google.data_gb = 171.0;
  const auto google_result = simulateStaging(google);
  EXPECT_GT(google_result.seconds, 3600.0);

  // …while the 10 GB Yahoo data loads "in less than five minutes".
  StagingSpec yahoo = google;
  yahoo.data_gb = 10.0;
  const auto yahoo_result = simulateStaging(yahoo);
  EXPECT_LT(yahoo_result.seconds, 300.0);
}

TEST(StagingTest, TimeScalesWithData) {
  StagingSpec spec;
  spec.data_gb = 20.0;
  const double t20 = simulateStaging(spec).seconds;
  spec.data_gb = 40.0;
  const double t40 = simulateStaging(spec).seconds;
  EXPECT_NEAR(t40 / t20, 2.0, 0.2);
}

TEST(StagingTest, SourceStoreIsTheBottleneck) {
  // The shared parallel file system's per-job read rate dominates staging;
  // a faster client NIC alone changes nothing.
  StagingSpec spec;
  spec.data_gb = 10.0;
  const double base = simulateStaging(spec).seconds;
  StagingSpec fat_nic = spec;
  fat_nic.client_nic_bps *= 10;
  EXPECT_NEAR(simulateStaging(fat_nic).seconds, base, base * 0.05);
  StagingSpec fast_source = spec;
  fast_source.source_bps *= 10;
  EXPECT_GT(base / simulateStaging(fast_source).seconds, 2.0);
}

TEST(StagingTest, ReplicationAddsClusterTrafficNotClientTime) {
  StagingSpec r1;
  r1.data_gb = 10.0;
  r1.replication = 1;
  StagingSpec r3 = r1;
  r3.replication = 3;
  const auto result1 = simulateStaging(r1);
  const auto result3 = simulateStaging(r3);
  EXPECT_DOUBLE_EQ(result1.replication_gb, 0.0);
  EXPECT_DOUBLE_EQ(result3.replication_gb, 20.0);
  // Pipelining hides most replica cost from the client.
  EXPECT_LT(result3.seconds, result1.seconds * 2.0);
}

TEST(StagingTest, InvalidSpecThrows) {
  StagingSpec spec;
  spec.nodes = 2;
  spec.replication = 3;
  EXPECT_THROW(simulateStaging(spec), InvalidArgumentError);
}

TEST(RestartTest, PaperClusterTakesAboutFifteenMinutes) {
  // C6: 8 nodes × 850 GB disks holding 171 GB at 3x replication
  // (~64 GB/node). The paper observed >= 15 minutes to verify and report.
  RestartSpec spec;
  spec.nodes = 8;
  spec.per_node_gb = 64.0;
  const auto result = simulateRestart(spec);
  EXPECT_GT(result.seconds_to_safemode_exit, 600.0);   // > 10 min
  EXPECT_LT(result.seconds_to_safemode_exit, 1800.0);  // < 30 min
  EXPECT_GT(result.total_blocks, 5000u);
}

TEST(RestartTest, ScanTimeScalesWithPerNodeData) {
  RestartSpec small;
  small.per_node_gb = 10.0;
  RestartSpec large;
  large.per_node_gb = 100.0;
  EXPECT_GT(simulateRestart(large).seconds_to_safemode_exit,
            simulateRestart(small).seconds_to_safemode_exit * 5);
}

TEST(RestartTest, SafemodeExitAfterSlowestNeededReport) {
  RestartSpec spec;
  spec.per_node_gb = 32.0;
  const auto result = simulateRestart(spec);
  EXPECT_GE(result.seconds_to_safemode_exit, result.slowest_scan_seconds);
}

TEST(CollapseTest, DeadlineStormCorruptsTheCluster) {
  // C7: deadline night — frequent buggy submissions crash daemons faster
  // than re-replication heals. One third of the class finished; the
  // cluster ended corrupt.
  CollapseSpec storm;
  storm.submissions_per_hour = 60.0;
  storm.crash_probability = 0.5;
  const auto result = simulateDeadlineCollapse(storm);
  EXPECT_TRUE(result.corrupted);
  EXPECT_GT(result.crashes, 0);
  EXPECT_GT(result.max_under_replicated, 0u);
}

TEST(CollapseTest, GentleLoadSurvives) {
  CollapseSpec calm;
  calm.submissions_per_hour = 2.0;
  calm.crash_probability = 0.05;
  calm.node_restart_seconds = 120.0;
  const auto result = simulateDeadlineCollapse(calm);
  EXPECT_FALSE(result.corrupted);
  EXPECT_EQ(result.lost_blocks, 0u);
}

TEST(CollapseTest, FasterRecoveryRaisesSurvival) {
  CollapseSpec slow_heal;
  slow_heal.submissions_per_hour = 30.0;
  slow_heal.crash_probability = 0.4;
  slow_heal.recovery_bps = 1 * kMB;
  CollapseSpec fast_heal = slow_heal;
  fast_heal.recovery_bps = 400 * kMB;
  fast_heal.node_restart_seconds = 60.0;

  int slow_corrupt = 0;
  int fast_corrupt = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    slow_heal.seed = seed;
    fast_heal.seed = seed;
    slow_corrupt += simulateDeadlineCollapse(slow_heal).corrupted ? 1 : 0;
    fast_corrupt += simulateDeadlineCollapse(fast_heal).corrupted ? 1 : 0;
  }
  EXPECT_GT(slow_corrupt, fast_corrupt);
}

TEST(CollapseTest, DeterministicForSeed) {
  CollapseSpec spec;
  const auto a = simulateDeadlineCollapse(spec);
  const auto b = simulateDeadlineCollapse(spec);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.lost_blocks, b.lost_blocks);
}

}  // namespace
}  // namespace mh::sim
