#include "mh/sim/simulation.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh::sim {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, EqualTimesRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(1.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.after(1.0, [&] { ++fired; });
  });
  EXPECT_DOUBLE_EQ(sim.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, PastSchedulingThrows) {
  Simulation sim;
  sim.at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.at(1.0, [] {}), InvalidArgumentError);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(ResourceTest, SerialReservationsQueue) {
  Simulation sim;
  Resource disk(sim, "disk", 100.0);  // 100 B/s
  EXPECT_DOUBLE_EQ(disk.reserve(100), 1.0);
  EXPECT_DOUBLE_EQ(disk.reserve(100), 2.0);  // queued behind the first
  EXPECT_DOUBLE_EQ(disk.busySeconds(), 2.0);
}

TEST(ResourceTest, ReserveAfterHonorsDependency) {
  Simulation sim;
  Resource cpu(sim, "cpu", 1.0);
  EXPECT_DOUBLE_EQ(cpu.reserveSecondsAfter(5.0, 2.0), 7.0);
  // Next reservation queues behind it even with an earlier dependency.
  EXPECT_DOUBLE_EQ(cpu.reserveSecondsAfter(0.0, 1.0), 8.0);
}

TEST(ResourceTest, TransferSchedulesCompletion) {
  Simulation sim;
  Resource nic(sim, "nic", 1000.0);
  double completed_at = -1;
  nic.transfer(500, [&] { completed_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(completed_at, 0.5);
}

TEST(ResourceTest, InvalidBandwidthThrows) {
  Simulation sim;
  EXPECT_THROW(Resource(sim, "x", 0.0), InvalidArgumentError);
  EXPECT_THROW(Resource(sim, "x", -1.0), InvalidArgumentError);
}

TEST(ResourceTest, TransferThroughPacedByBottleneck) {
  Simulation sim;
  Resource fast(sim, "fast", 1000.0);
  Resource slow(sim, "slow", 100.0);
  double completed_at = -1;
  transferThrough(sim, {&fast, &slow}, 100, [&] { completed_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(completed_at, 1.0);  // the slow hop dominates
}

}  // namespace
}  // namespace mh::sim
