#include "mh/sim/cluster_model.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh::sim {
namespace {

TEST(HadoopScanTest, PerfectLocalityHitsDiskBound) {
  HadoopArchSpec spec;
  spec.nodes = 8;
  spec.locality_fraction = 1.0;
  ScanWorkload workload;
  workload.data_gb = 80.0;
  workload.compute_secs_per_gb = 0.0;  // pure I/O
  const auto result = simulateHadoopScan(spec, workload);
  // 10 GB per node at 100 MB/s = ~100 seconds (± block-granularity skew:
  // 299 blocks don't divide evenly over 8 nodes).
  EXPECT_NEAR(result.seconds, 100.0, 4.0);
  EXPECT_GT(result.avg_disk_util, 0.95);
  EXPECT_DOUBLE_EQ(result.network_gb, 0.0);
}

TEST(HadoopScanTest, LocalityFractionControlsNetworkBytes) {
  ScanWorkload workload;
  workload.data_gb = 50.0;
  HadoopArchSpec local;
  local.locality_fraction = 0.95;
  HadoopArchSpec remote;
  remote.locality_fraction = 0.25;
  const auto local_result = simulateHadoopScan(local, workload);
  const auto remote_result = simulateHadoopScan(remote, workload);
  EXPECT_LT(local_result.network_gb, remote_result.network_gb / 5);
  EXPECT_LE(local_result.seconds, remote_result.seconds);
}

TEST(HadoopScanTest, ScalesOutWithNodes) {
  ScanWorkload workload;
  workload.data_gb = 100.0;
  HadoopArchSpec small;
  small.nodes = 4;
  HadoopArchSpec big;
  big.nodes = 16;
  const auto small_result = simulateHadoopScan(small, workload);
  const auto big_result = simulateHadoopScan(big, workload);
  // Near-linear scaling on a data-local scan.
  EXPECT_GT(small_result.seconds / big_result.seconds, 3.0);
}

TEST(HpcScanTest, StorageServersBottleneckDataIntensiveScan) {
  ScanWorkload workload;
  workload.data_gb = 80.0;
  workload.compute_secs_per_gb = 0.0;

  HpcArchSpec hpc;
  hpc.compute_nodes = 8;
  hpc.storage_nodes = 2;
  hpc.storage_disks = 4;
  const auto hpc_result = simulateHpcScan(hpc, workload);

  HadoopArchSpec hadoop;
  hadoop.nodes = 8;
  hadoop.locality_fraction = 0.95;
  const auto hadoop_result = simulateHadoopScan(hadoop, workload);

  // Figure 1's point: on data-intensive work the Hadoop layout wins.
  EXPECT_LT(hadoop_result.seconds, hpc_result.seconds);
  // And every byte crossed the HPC core switch.
  EXPECT_NEAR(hpc_result.network_gb, workload.data_gb, 1.0);
}

TEST(HpcScanTest, ComputeBoundWorkEqualizesArchitectures) {
  // When compute dominates, the storage layout stops mattering — the flip
  // side of Figure 1 ("sometimes fails to support data-intensive
  // computing" implies compute-intensive is fine).
  ScanWorkload workload;
  workload.data_gb = 10.0;
  workload.compute_secs_per_gb = 400.0;  // heavy CPU per GB

  HpcArchSpec hpc;
  const auto hpc_result = simulateHpcScan(hpc, workload);
  HadoopArchSpec hadoop;
  const auto hadoop_result = simulateHadoopScan(hadoop, workload);
  const double ratio = hpc_result.seconds / hadoop_result.seconds;
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(HpcScanTest, MoreStorageServersHelp) {
  // With a non-blocking core (oversubscription 1) the storage servers'
  // disks are the bottleneck, so tripling them should show clearly.
  ScanWorkload workload;
  workload.data_gb = 80.0;
  workload.compute_secs_per_gb = 0.0;
  HpcArchSpec two;
  two.storage_nodes = 2;
  two.storage_disks = 2;
  two.oversubscription = 1.0;
  HpcArchSpec six = two;
  six.storage_nodes = 6;
  EXPECT_GT(simulateHpcScan(two, workload).seconds,
            simulateHpcScan(six, workload).seconds * 1.5);
}

TEST(HpcScanTest, CoreOversubscriptionCapsThroughput) {
  // With the default 4:1 oversubscribed core, adding storage servers
  // barely helps — the fabric is the ceiling (why HPC sites buy fat
  // interconnects, and why Hadoop avoids needing one).
  ScanWorkload workload;
  workload.data_gb = 80.0;
  workload.compute_secs_per_gb = 0.0;
  HpcArchSpec two;
  two.storage_nodes = 2;
  HpcArchSpec six;
  six.storage_nodes = 6;
  const double ratio = simulateHpcScan(two, workload).seconds /
                       simulateHpcScan(six, workload).seconds;
  EXPECT_LT(ratio, 1.5);
}

TEST(ArchSpecTest, InvalidSpecsThrow) {
  ScanWorkload workload;
  HadoopArchSpec bad_hadoop;
  bad_hadoop.nodes = 0;
  EXPECT_THROW(simulateHadoopScan(bad_hadoop, workload),
               InvalidArgumentError);
  HpcArchSpec bad_hpc;
  bad_hpc.storage_nodes = 0;
  EXPECT_THROW(simulateHpcScan(bad_hpc, workload), InvalidArgumentError);
}

TEST(ArchSpecTest, DeterministicForSeed) {
  ScanWorkload workload;
  workload.data_gb = 30.0;
  HadoopArchSpec spec;
  spec.locality_fraction = 0.7;
  const auto a = simulateHadoopScan(spec, workload);
  const auto b = simulateHadoopScan(spec, workload);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.network_gb, b.network_gb);
}

}  // namespace
}  // namespace mh::sim
