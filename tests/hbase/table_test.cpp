#include "mh/hbase/table.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "mh/common/rng.h"
#include "mh/hdfs/mini_cluster.h"

namespace mh::hbase {
namespace {

namespace fs = std::filesystem;

// Runs the table contract over LocalFs and over real HDFS.
class TableTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "hdfs") {
      Config conf;
      conf.setInt("dfs.replication", 2);
      conf.setInt("dfs.blocksize", 64 * 1024);
      cluster_ = std::make_unique<hdfs::MiniDfsCluster>(
          hdfs::MiniDfsOptions{.num_datanodes = 2, .conf = conf});
      view_ = std::make_unique<mr::HdfsFs>(cluster_->client());
      root_ = "/hbase";
    } else {
      local_root_ = fs::temp_directory_path() /
                    ("mh_table_" + std::to_string(::getpid()) + "_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
      fs::remove_all(local_root_);
      view_ = std::make_unique<mr::LocalFs>();
      root_ = (local_root_ / "hbase").string();
      view_->mkdirs(root_);
    }
    table_ = Table::open(*view_, root_, "t");
  }

  void TearDown() override {
    table_.reset();
    view_.reset();
    cluster_.reset();
    if (!local_root_.empty()) fs::remove_all(local_root_);
  }

  void reopen() { table_ = Table::open(*view_, root_, "t"); }

  std::unique_ptr<hdfs::MiniDfsCluster> cluster_;
  std::unique_ptr<mr::FileSystemView> view_;
  std::string root_;
  fs::path local_root_;
  std::unique_ptr<Table> table_;
};

TEST_P(TableTest, PutGetRoundTrip) {
  table_->put("user1", "name", "alice");
  table_->put("user1", "dept", "cs");
  EXPECT_EQ(table_->get("user1", "name"), "alice");
  EXPECT_EQ(table_->get("user1", "dept"), "cs");
  EXPECT_FALSE(table_->get("user1", "missing").has_value());
  EXPECT_FALSE(table_->get("nobody", "name").has_value());
}

TEST_P(TableTest, OverwriteNewestWins) {
  table_->put("r", "c", "v1");
  table_->put("r", "c", "v2");
  EXPECT_EQ(table_->get("r", "c"), "v2");
}

TEST_P(TableTest, DeleteHidesValue) {
  table_->put("r", "c", "v");
  table_->remove("r", "c");
  EXPECT_FALSE(table_->get("r", "c").has_value());
  table_->put("r", "c", "reborn");
  EXPECT_EQ(table_->get("r", "c"), "reborn");
}

TEST_P(TableTest, FlushPreservesReads) {
  table_->put("r1", "a", "1");
  table_->put("r2", "a", "2");
  table_->flush();
  EXPECT_EQ(table_->memstoreCells(), 0u);
  EXPECT_EQ(table_->hfileCount(), 1u);
  EXPECT_EQ(table_->get("r1", "a"), "1");
  // New write over flushed data: memstore shadows the HFile.
  table_->put("r1", "a", "updated");
  EXPECT_EQ(table_->get("r1", "a"), "updated");
}

TEST_P(TableTest, DeleteAcrossFlushBoundary) {
  table_->put("r", "c", "old");
  table_->flush();
  table_->remove("r", "c");
  EXPECT_FALSE(table_->get("r", "c").has_value());
  table_->flush();  // tombstone now in its own HFile, shadowing the put
  EXPECT_FALSE(table_->get("r", "c").has_value());
}

TEST_P(TableTest, ScanMergesAndOrders) {
  table_->put("b", "x", "bx");
  table_->flush();
  table_->put("a", "x", "ax");
  table_->put("c", "x", "cx");
  table_->put("b", "y", "by");
  const auto rows = table_->scan();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].row, "a");
  EXPECT_EQ(rows[1].row, "b");
  EXPECT_EQ(rows[1].columns.size(), 2u);
  EXPECT_EQ(rows[1].columns.at("y"), "by");
  EXPECT_EQ(rows[2].row, "c");
}

TEST_P(TableTest, ScanRangeIsHalfOpen) {
  for (const char* row : {"a", "b", "c", "d"}) {
    table_->put(row, "c", row);
  }
  const auto rows = table_->scan("b", "d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].row, "b");
  EXPECT_EQ(rows[1].row, "c");
}

TEST_P(TableTest, GetRowCollectsColumns) {
  table_->put("u", "a", "1");
  table_->put("u", "b", "2");
  table_->remove("u", "a");
  const auto row = table_->getRow("u");
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->columns.size(), 1u);
  EXPECT_EQ(row->columns.at("b"), "2");
  EXPECT_FALSE(table_->getRow("ghost").has_value());
}

TEST_P(TableTest, CompactionDropsTombstonesAndOldVersions) {
  table_->put("r1", "c", "v1");
  table_->flush();
  table_->put("r1", "c", "v2");
  table_->put("r2", "c", "gone");
  table_->flush();
  table_->remove("r2", "c");
  table_->compact();
  EXPECT_EQ(table_->hfileCount(), 1u);
  EXPECT_EQ(table_->get("r1", "c"), "v2");
  EXPECT_FALSE(table_->get("r2", "c").has_value());
  // After compaction a reopened table sees the same state.
  reopen();
  EXPECT_EQ(table_->get("r1", "c"), "v2");
  EXPECT_FALSE(table_->get("r2", "c").has_value());
}

TEST_P(TableTest, CrashRecoveryViaWal) {
  table_->put("durable", "c", "yes");
  table_->syncWal();
  table_->put("lost", "c", "unsynced");  // in the buffer only
  // Simulated crash: drop the Table object without flush.
  reopen();
  EXPECT_EQ(table_->get("durable", "c"), "yes");
  // The unsynced tail is legitimately lost (async-WAL semantics).
  EXPECT_FALSE(table_->get("lost", "c").has_value());
}

TEST_P(TableTest, WalSegmentsAutoSyncEveryN) {
  Config conf;
  conf.setInt("hbase.wal.segment.ops", 4);
  table_ = Table::open(*view_, root_, "auto", conf);
  for (int i = 0; i < 10; ++i) {
    table_->put("r" + std::to_string(i), "c", "v");
  }
  // 10 ops with segment size 4 -> 2 segments on disk, 2 ops buffered.
  table_ = Table::open(*view_, root_, "auto", conf);  // crash + reopen
  int recovered = 0;
  for (int i = 0; i < 10; ++i) {
    if (table_->get("r" + std::to_string(i), "c").has_value()) ++recovered;
  }
  EXPECT_EQ(recovered, 8);
}

TEST_P(TableTest, RecoveryAfterFlushUsesHFilesNotWal) {
  table_->put("r", "c", "v");
  table_->flush();
  reopen();
  EXPECT_EQ(table_->get("r", "c"), "v");
  EXPECT_EQ(table_->memstoreCells(), 0u);
  EXPECT_EQ(table_->hfileCount(), 1u);
}

TEST_P(TableTest, SequenceNumbersSurviveReopen) {
  table_->put("r", "c", "old");
  table_->flush();
  reopen();
  table_->put("r", "c", "new");  // must get a HIGHER seq than the flushed put
  EXPECT_EQ(table_->get("r", "c"), "new");
}

TEST_P(TableTest, RandomizedModelCheck) {
  // Property test: the table must agree with a plain map reference model
  // under a random mix of put/remove/flush/compact/reopen.
  Rng rng(99);
  std::map<std::pair<std::string, std::string>, Bytes> model;
  for (int step = 0; step < 300; ++step) {
    const std::string row = "r" + std::to_string(rng.uniform(8));
    const std::string col = "c" + std::to_string(rng.uniform(3));
    const auto action = rng.uniform(100);
    if (action < 60) {
      const Bytes value = "v" + std::to_string(step);
      table_->put(row, col, value);
      model[{row, col}] = value;
    } else if (action < 80) {
      table_->remove(row, col);
      model.erase({row, col});
    } else if (action < 90) {
      table_->flush();
    } else if (action < 95) {
      table_->compact();
    } else {
      table_->syncWal();
      reopen();
    }
  }
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 3; ++c) {
      const std::string row = "r" + std::to_string(r);
      const std::string col = "c" + std::to_string(c);
      const auto it = model.find({row, col});
      const auto got = table_->get(row, col);
      if (it == model.end()) {
        EXPECT_FALSE(got.has_value()) << row << "/" << col;
      } else {
        ASSERT_TRUE(got.has_value()) << row << "/" << col;
        EXPECT_EQ(*got, it->second) << row << "/" << col;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TableTest,
                         ::testing::Values("local", "hdfs"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace mh::hbase
