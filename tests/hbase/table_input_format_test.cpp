#include "mh/hbase/table_input_format.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "mh/mr/mini_mr_cluster.h"
#include "testutil/aggressive_timers.h"

namespace mh::hbase {
namespace {

TEST(RowColumnsCodecTest, RoundTrip) {
  RowResult row;
  row.row = "user1";
  row.columns = {{"a", "1"}, {"bin", std::string("\0\xff", 2)}};
  EXPECT_EQ(decodeRowColumns(encodeRowColumns(row)), row.columns);
  EXPECT_TRUE(decodeRowColumns("").empty());
}

class TableInputFormatTest : public ::testing::Test {
 protected:
  TableInputFormatTest() {
    root_ = std::filesystem::temp_directory_path() /
            ("mh_tif_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    local_ = std::make_unique<mr::LocalFs>();
    local_->mkdirs((root_ / "hbase").string());
  }
  ~TableInputFormatTest() override { std::filesystem::remove_all(root_); }

  std::filesystem::path root_;
  std::unique_ptr<mr::LocalFs> local_;
};

TEST_F(TableInputFormatTest, SplitsPartitionRowsExactly) {
  auto table = Table::open(*local_, (root_ / "hbase").string(), "t");
  std::set<std::string> expected;
  for (int i = 0; i < 23; ++i) {
    const std::string row = "row" + std::to_string(100 + i);
    table->put(row, "c", "v");
    expected.insert(row);
  }
  table->flush();

  TableInputFormat format((root_ / "hbase").string(), "t", 4);
  const auto splits = format.getSplits(*local_, {});
  EXPECT_EQ(splits.size(), 4u);

  std::set<std::string> seen;
  for (const auto& split : splits) {
    const auto reader = format.createReader(*local_, split, Config{});
    std::string_view key;
    std::string_view value;
    while (reader->next(key, value)) {
      EXPECT_TRUE(seen.insert(Bytes(key)).second) << "duplicate row " << key;
      EXPECT_EQ(decodeRowColumns(value).at("c"), "v");
    }
  }
  EXPECT_EQ(seen, expected);
}

TEST_F(TableInputFormatTest, EmptyTableYieldsNoSplits) {
  Table::open(*local_, (root_ / "hbase").string(), "empty");
  TableInputFormat format((root_ / "hbase").string(), "empty", 4);
  EXPECT_TRUE(format.getSplits(*local_, {}).empty());
}

TEST_F(TableInputFormatTest, FewRowsFewerSplits) {
  auto table = Table::open(*local_, (root_ / "hbase").string(), "tiny");
  table->put("only", "c", "v");
  table->syncWal();
  TableInputFormat format((root_ / "hbase").string(), "tiny", 8);
  const auto splits = format.getSplits(*local_, {});
  EXPECT_EQ(splits.size(), 1u);
}

TEST_F(TableInputFormatTest, BinaryRowKeysSurviveTheDescriptor) {
  auto table = Table::open(*local_, (root_ / "hbase").string(), "bin");
  const std::string weird1("a\n\0b", 4);
  const std::string weird2("z\xffq", 3);
  table->put(weird1, "c", "1");
  table->put(weird2, "c", "2");
  table->put("middle", "c", "3");
  table->flush();
  TableInputFormat format((root_ / "hbase").string(), "bin", 3);
  const auto splits = format.getSplits(*local_, {});
  std::set<std::string> seen;
  for (const auto& split : splits) {
    const auto reader = format.createReader(*local_, split, Config{});
    std::string_view key;
    std::string_view value;
    while (reader->next(key, value)) seen.insert(Bytes(key));
  }
  EXPECT_EQ(seen, (std::set<std::string>{weird1, "middle", weird2}));
}

TEST(TableMapReduceTest, JobScansTableOnCluster) {
  // End-to-end: a MapReduce job whose input is an HBase table on HDFS.
  Config conf = testutil::aggressiveTimers();
  conf.setInt("dfs.replication", 2);
  conf.setInt("dfs.blocksize", 16 * 1024);
  mr::MiniMrCluster cluster({.num_nodes = 3, .conf = conf});
  mr::HdfsFs hdfs(cluster.client());

  // Rows: user<i>; columns: one per rated movie.
  auto table = Table::open(hdfs, "/hbase", "ratings");
  std::map<std::string, int64_t> expected;
  for (int user = 0; user < 12; ++user) {
    const std::string row = "user" + std::to_string(user);
    for (int m = 0; m <= user % 5; ++m) {
      table->put(row, "movie" + std::to_string(m), "4.0");
      ++expected[row];
    }
  }
  table->flush();

  // Job: count rated movies per user from table scans.
  mr::JobSpec spec;
  spec.name = "table-scan-count";
  spec.input_paths = {"/hbase/ratings"};  // placeholder for validation
  spec.output_dir = "/out";
  spec.num_reducers = 2;
  spec.input_format = TableInputFormat::factory("/hbase", "ratings", 3);
  spec.mapper = mr::mapperFromLambda(
      [](std::string_view row, std::string_view value, mr::TaskContext& ctx) {
        const auto columns = decodeRowColumns(value);
        ctx.emitTyped<std::string, int64_t>(
            std::string(row), static_cast<int64_t>(columns.size()));
      });
  spec.reducer = mr::reducerFromLambda(
      [](std::string_view key, mr::ValuesIterator& values,
         mr::TaskContext& ctx) {
        int64_t total = 0;
        while (const auto v = values.nextTyped<int64_t>()) total += *v;
        ctx.emitTyped<std::string, std::string>(std::string(key),
                                                std::to_string(total));
      });
  const auto result = cluster.runJob(std::move(spec));
  ASSERT_TRUE(result.succeeded()) << result.error;

  std::map<std::string, int64_t> got;
  for (const auto& file : hdfs.listFiles("/out")) {
    if (file.find("part-") == std::string::npos) continue;
    const Bytes body = hdfs.readRange(file, 0, hdfs.fileLength(file));
    size_t pos = 0;
    while (pos < body.size()) {
      const size_t nl = body.find('\n', pos);
      const std::string line = body.substr(pos, nl - pos);
      pos = nl + 1;
      const auto tab = line.find('\t');
      got[line.substr(0, tab)] = std::stoll(line.substr(tab + 1));
    }
  }
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace mh::hbase
