#include "mh/hbase/hfile.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "mh/common/error.h"

namespace mh::hbase {
namespace {

std::vector<Cell> sampleCells() {
  std::vector<Cell> cells{
      {"row1", "a", 3, CellType::kPut, "v3"},
      {"row1", "a", 1, CellType::kPut, "v1"},
      {"row1", "b", 2, CellType::kDelete, ""},
      {"row2", "a", 4, CellType::kPut, std::string("bin\0ary", 7)},
  };
  std::sort(cells.begin(), cells.end());
  return cells;
}

TEST(CellTest, OrderingIsRowColumnThenNewestFirst) {
  const Cell old_cell{"r", "c", 1, CellType::kPut, ""};
  const Cell new_cell{"r", "c", 9, CellType::kPut, ""};
  EXPECT_LT(new_cell, old_cell);  // newest first within a coordinate
  const Cell other_col{"r", "d", 1, CellType::kPut, ""};
  EXPECT_LT(new_cell, other_col);
  EXPECT_LT(old_cell, other_col);
  const Cell other_row{"s", "a", 1, CellType::kPut, ""};
  EXPECT_LT(other_col, other_row);
}

TEST(CellTest, SerdeRoundTrip) {
  const Cell cell{"row", "col", 42, CellType::kDelete,
                  std::string("x\0y", 3)};
  EXPECT_EQ(deserialize<Cell>(serialize(cell)), cell);
}

TEST(HFileTest, EncodeDecodeRoundTrip) {
  const auto cells = sampleCells();
  EXPECT_EQ(decodeHFile(encodeHFile(cells)), cells);
}

TEST(HFileTest, EmptyFileRoundTrip) {
  EXPECT_TRUE(decodeHFile(encodeHFile({})).empty());
}

TEST(HFileTest, UnsortedCellsRejected) {
  std::vector<Cell> cells{
      {"z", "a", 1, CellType::kPut, ""},
      {"a", "a", 2, CellType::kPut, ""},
  };
  EXPECT_THROW(encodeHFile(cells), InvalidArgumentError);
}

TEST(HFileTest, CorruptionDetected) {
  Bytes data = encodeHFile(sampleCells());
  data[10] = static_cast<char>(data[10] ^ 0x40);
  EXPECT_THROW(decodeHFile(data), ChecksumError);
}

TEST(HFileTest, TruncationDetected) {
  Bytes data = encodeHFile(sampleCells());
  data.resize(data.size() - 3);
  EXPECT_THROW(decodeHFile(data), Error);
}

TEST(HFileTest, BadMagicRejected) {
  Bytes data = encodeHFile(sampleCells());
  data[0] = 'X';
  EXPECT_THROW(decodeHFile(data), Error);
}

TEST(HFileTest, WriteReadThroughFileSystem) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("mh_hfile_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  mr::LocalFs local;
  const auto cells = sampleCells();
  writeHFile(local, (root / "hfile-1").string(), cells);
  EXPECT_EQ(readHFile(local, (root / "hfile-1").string()), cells);
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace mh::hbase
