#include "mh/hdfs/mini_cluster.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"
#include "mh/common/rng.h"
#include "testutil/aggressive_timers.h"

namespace mh::hdfs {
namespace {

Config fastConf() {
  Config conf = testutil::aggressiveTimers();
  conf.setInt("dfs.replication", 2);
  conf.setInt("dfs.blocksize", 1024);
  return conf;
}

Bytes randomPayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + rng.uniform(26)));
  }
  return out;
}

TEST(MiniDfsClusterTest, WriteReadRoundTripAcrossBlocks) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  const Bytes payload = randomPayload(10'000, 7);  // ~10 blocks of 1 KiB
  client.writeFile("/data/big.txt", payload);
  EXPECT_EQ(client.readFile("/data/big.txt"), payload);
  const auto located = client.getBlockLocations("/data/big.txt");
  EXPECT_EQ(located.size(), 10u);
  for (const auto& lb : located) EXPECT_EQ(lb.hosts.size(), 2u);
}

TEST(MiniDfsClusterTest, ParallelReadWidthsAgree) {
  // readFile fetches blocks with up to dfs.client.parallel.reads in
  // flight; every width (serial included) must assemble identical bytes.
  Config conf = fastConf();
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = conf});
  const Bytes payload = randomPayload(9'000, 21);  // 9 blocks of 1 KiB
  cluster.client().writeFile("/wide.txt", payload);
  for (const int width : {1, 2, 16}) {
    Config read_conf = conf;
    read_conf.setInt("dfs.client.parallel.reads", width);
    DfsClient client(read_conf, cluster.network(), "client", "namenode");
    EXPECT_EQ(client.readFile("/wide.txt"), payload) << "width " << width;
  }
}

TEST(MiniDfsClusterTest, EmptyFile) {
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/empty", "");
  EXPECT_EQ(client.readFile("/empty"), "");
  EXPECT_EQ(client.getFileStatus("/empty").length, 0u);
}

TEST(MiniDfsClusterTest, ReplicationIsObservableOnDataNodes) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(3000, 1));
  // 3 blocks x 2 replicas = 6 replicas across all stores.
  size_t replicas = 0;
  for (const auto& host : cluster.dataNodeHosts()) {
    replicas += cluster.dataNode(host).store().listBlocks().size();
  }
  EXPECT_EQ(replicas, 6u);
  EXPECT_TRUE(cluster.waitHealthy());
}

TEST(MiniDfsClusterTest, LocalReadStaysLocal) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  // Writing from a datanode host puts the first replica there...
  auto writer = cluster.client("node01");
  writer.writeFile("/local.txt", randomPayload(2048, 2));
  cluster.network()->resetStats();
  // ...so reading from the same host should move zero remote "read" bytes.
  auto reader = cluster.client("node01");
  reader.readFile("/local.txt");
  EXPECT_EQ(cluster.network()->remoteBytes("read"), 0u);
  EXPECT_GT(cluster.network()->localBytes("read"), 2048u);
}

TEST(MiniDfsClusterTest, RemoteClientReadIsRemote) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = fastConf()});
  auto client = cluster.client();  // off-cluster host
  client.writeFile("/remote.txt", randomPayload(2048, 3));
  cluster.network()->resetStats();
  client.readFile("/remote.txt");
  EXPECT_GT(cluster.network()->remoteBytes("read"), 2048u);
}

TEST(MiniDfsClusterTest, PipelineWritesMeterReplicationTraffic) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  cluster.network()->resetStats();
  client.writeFile("/f", randomPayload(4096, 4));
  // Client->head plus head->second hop: at least 2x the payload crosses.
  EXPECT_GE(cluster.network()->remoteBytes("pipeline"), 2 * 4096u);
}

TEST(MiniDfsClusterTest, DataNodeCrashTriggersReReplication) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(4096, 5));
  ASSERT_TRUE(cluster.waitHealthy());

  // Kill a replica holder.
  const auto located = client.getBlockLocations("/f");
  cluster.killDataNode(located[0].hosts[0]);

  // Wait for the NameNode to notice the death (heartbeat expiry)...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cluster.nameNode().liveDataNodes() == 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_EQ(cluster.nameNode().liveDataNodes(), 2u);

  // ...then it must restore full replication using the remaining nodes.
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  for (const auto& lb : client.getBlockLocations("/f")) {
    EXPECT_EQ(lb.hosts.size(), 2u);
    for (const auto& host : lb.hosts) {
      EXPECT_NE(host, located[0].hosts[0]);
    }
  }
  // Data still fully readable.
  EXPECT_EQ(client.readFile("/f").size(), 4096u);
}

TEST(MiniDfsClusterTest, CorruptReplicaIsRepairedFromGoodCopy) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  const Bytes payload = randomPayload(2048, 6);
  client.writeFile("/f", payload);
  ASSERT_TRUE(cluster.waitHealthy());

  const auto located = client.getBlockLocations("/f");
  const std::string victim = located[0].hosts[0];
  cluster.dataNode(victim).store().corruptBlock(located[0].block.id, 100);

  // The scanner finds it and reports; the cluster heals.
  cluster.dataNode(victim).runBlockScanner();
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  EXPECT_EQ(client.readFile("/f"), payload);
}

TEST(MiniDfsClusterTest, ClientReadFallsOverOnCorruptReplica) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = fastConf()});
  // Read from the replica holder itself so the corrupt local copy is tried
  // first — the fall-over path must kick in.
  auto writer = cluster.client("node01");
  const Bytes payload = randomPayload(1000, 8);
  writer.writeFile("/f", payload);
  const auto located = writer.getBlockLocations("/f");
  cluster.dataNode("node01").store().corruptBlock(located[0].block.id, 5);
  EXPECT_EQ(cluster.client("node01").readFile("/f"), payload);
  // And the bad replica got reported.
  EXPECT_TRUE(cluster.nameNode()
                  .fsck()
                  .corrupt_blocks > 0 ||
              cluster.waitHealthy(15'000));
}

TEST(MiniDfsClusterTest, FrameCrcMismatchSweepsReplicaLikeChecksumError) {
  // Compressed at-rest replicas have two integrity layers: chunk CRCs over
  // the stored bytes and per-frame CRCs over the raw bytes. Poison one
  // replica so only the frame CRC can object (adoptStored recomputes chunk
  // CRCs over the bytes it is given — the transit-corruption shape), and
  // the read path must fall over to the good replica and report the bad
  // one exactly as a chunk-checksum failure would.
  Config conf = fastConf();
  conf.set("dfs.block.compression.codec", "mh-lz");
  conf.setInt("dfs.blocksize", 4096);
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = conf});
  auto writer = cluster.client("node01");
  Bytes payload;
  while (payload.size() < 3000) payload += "frame crc sweeps the replica ";
  writer.writeFile("/f", payload);
  ASSERT_TRUE(cluster.waitHealthy());
  const auto located = writer.getBlockLocations("/f");

  // Find a single-bit corruption the frame CRC (not frame structure)
  // rejects, and adopt it on the local replica holder.
  const Bytes stream = codecEncode(CodecKind::kMhLz, payload);
  Bytes bad;
  for (size_t pos = kCodecHeaderBytes; pos < stream.size() && bad.empty();
       ++pos) {
    Bytes candidate = stream;
    candidate[pos] = static_cast<char>(candidate[pos] ^ 0x01);
    try {
      codecDecode(candidate);
    } catch (const ChecksumError&) {
      bad = candidate;
    } catch (const InvalidArgumentError&) {
    }
  }
  ASSERT_FALSE(bad.empty());
  cluster.dataNode("node01").store().adoptStored(located[0].block.id, bad);

  // Local-first read hits the poisoned frame, falls over, still decodes.
  EXPECT_EQ(cluster.client("node01").readFile("/f"), payload);
  EXPECT_TRUE(cluster.nameNode().fsck().corrupt_blocks > 0 ||
              cluster.waitHealthy(15'000));
  // After the sweep converges the cluster is healthy and byte-exact.
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  EXPECT_EQ(cluster.client().readFile("/f"), payload);
}

TEST(MiniDfsClusterTest, NameNodeRestartSafeModeLifecycle) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  const Bytes payload = randomPayload(5000, 9);
  client.writeFile("/f", payload);
  ASSERT_TRUE(cluster.waitHealthy());

  cluster.restartNameNode();
  // Right after restart the NameNode is in safe mode (blocks known, no
  // locations); DataNode heartbeats re-register + re-report, lifting it.
  ASSERT_TRUE(cluster.waitOutOfSafeMode(15'000));
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  EXPECT_EQ(cluster.client().readFile("/f"), payload);
}

TEST(MiniDfsClusterTest, GhostDaemonBlocksPort) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = fastConf()});
  // A student exits without stopping the daemon: the port stays bound.
  cluster.dataNode("node01").abandon();
  auto store = std::make_shared<MemBlockStore>();
  DataNode fresh(cluster.conf(), cluster.network(), "node01", store,
                 "namenode");
  EXPECT_THROW(fresh.start(), AlreadyExistsError);
  // After the "scheduler cleanup" (stop() releases the port) it boots fine.
  cluster.dataNode("node01").stop();
  fresh.start();
  fresh.stop();
}

TEST(MiniDfsClusterTest, StoppedDataNodeCanRejoin) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(2048, 10));
  ASSERT_TRUE(cluster.waitHealthy());
  cluster.killDataNode("node02");
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  cluster.restartDataNode("node02");
  // The rejoined node re-registers; extra replicas (if its old copies
  // resurface) are trimmed by the over-replication handler.
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  EXPECT_EQ(cluster.nameNode().liveDataNodes(), 3u);
}

TEST(MiniDfsClusterTest, AddDataNodeGrowsCluster) {
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = fastConf()});
  const std::string fresh = cluster.addDataNode();
  EXPECT_EQ(fresh, "node02");
  EXPECT_EQ(cluster.nameNode().liveDataNodes(), 2u);
}

TEST(MiniDfsClusterTest, DeleteReclaimsReplicas) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(4096, 11));
  ASSERT_TRUE(cluster.waitHealthy());
  client.remove("/f", false);
  // Invalidation commands ride heartbeats; replicas disappear shortly.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t replicas = 1;
  while (replicas > 0 && std::chrono::steady_clock::now() < deadline) {
    replicas = 0;
    for (const auto& host : cluster.dataNodeHosts()) {
      replicas += cluster.dataNode(host).store().listBlocks().size();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(replicas, 0u);
}

TEST(MiniDfsClusterTest, TwoRackClusterSpansRacksPerBlock) {
  Config conf = fastConf();
  conf.setInt("dfs.replication", 3);
  MiniDfsCluster cluster(
      {.num_datanodes = 6, .racks = 2, .conf = conf});
  // Write from a datanode host so the first replica is node-local.
  auto client = cluster.client("node01");
  client.writeFile("/f", randomPayload(8192, 17));
  ASSERT_TRUE(cluster.waitHealthy());
  for (const auto& lb : client.getBlockLocations("/f")) {
    ASSERT_EQ(lb.hosts.size(), 3u);
    std::set<std::string> racks;
    for (const auto& host : lb.hosts) racks.insert(cluster.rackOf(host));
    // The default policy: replicas span exactly two racks.
    EXPECT_EQ(racks.size(), 2u) << lb.block.id;
  }
  // The report shows the rack assignment.
  bool saw_rack = false;
  for (const auto& dn : cluster.nameNode().datanodeReport()) {
    saw_rack = saw_rack || dn.rack == "/rack1";
  }
  EXPECT_TRUE(saw_rack);
}

TEST(MiniDfsClusterTest, SetrepUpTriggersReplication) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(2048, 13));  // replication 2
  ASSERT_TRUE(cluster.waitHealthy());
  client.setReplication("/f", 3);
  // Under-replicated now; the monitor raises every block to 3 copies.
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  for (const auto& lb : client.getBlockLocations("/f")) {
    EXPECT_EQ(lb.hosts.size(), 3u);
  }
  EXPECT_EQ(client.getFileStatus("/f").replication, 3u);
}

TEST(MiniDfsClusterTest, SetrepDownTrimsExcessReplicas) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = fastConf()});
  auto client = cluster.client();
  client.writeFile("/f", randomPayload(2048, 14));  // replication 2
  ASSERT_TRUE(cluster.waitHealthy());
  client.setReplication("/f", 1);
  ASSERT_TRUE(cluster.waitHealthy(15'000));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool trimmed = false;
  while (!trimmed && std::chrono::steady_clock::now() < deadline) {
    trimmed = true;
    for (const auto& lb : client.getBlockLocations("/f")) {
      trimmed = trimmed && lb.hosts.size() == 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(trimmed);
  EXPECT_EQ(client.readFile("/f").size(), 2048u);
}

TEST(MiniDfsClusterTest, FileStoreClusterPersistsAcrossDataNodeRestart) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("mh_cluster_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    MiniDfsCluster cluster({.num_datanodes = 2,
                            .conf = fastConf(),
                            .use_file_store = true,
                            .store_root = root});
    auto client = cluster.client();
    client.writeFile("/persist", randomPayload(2000, 12));
    ASSERT_TRUE(cluster.waitHealthy());
    cluster.stopDataNode("node01");
    cluster.restartDataNode("node01");
    ASSERT_TRUE(cluster.waitHealthy(15'000));
    EXPECT_EQ(cluster.client().readFile("/persist").size(), 2000u);
  }
  std::filesystem::remove_all(root);
}

}  // namespace
}  // namespace mh::hdfs
