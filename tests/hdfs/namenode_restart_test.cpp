#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "mh/common/rng.h"
#include "mh/common/stopwatch.h"
#include "mh/hdfs/edit_log.h"
#include "mh/hdfs/mini_cluster.h"
#include "testutil/aggressive_timers.h"

/// \file namenode_restart_test.cpp
/// NameNode durability end-to-end: with `dfs.namenode.name.dir` set, the
/// mini-cluster's NameNode journals every mutation, checkpoints, survives
/// kill -9 + restart with every acked mutation intact, and formats a
/// missing directory cleanly. Includes the (sanitizer-scaled) namespace
/// stress test behind the 1M-file benchmark: journaling, checkpoint,
/// replay, and image round-trip all through the real RPC path.

namespace mh::hdfs {
namespace {

namespace fs = std::filesystem;

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

class NameNodeRestartTest : public ::testing::Test {
 protected:
  NameNodeRestartTest() {
    root_ = fs::temp_directory_path() /
            ("mh_nn_restart_" + std::to_string(::getpid()));
    name_dir_ =
        root_ /
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(name_dir_);
  }
  ~NameNodeRestartTest() override { fs::remove_all(root_); }

  Config journalingConf() {
    Config conf = testutil::aggressiveTimers();
    conf.setInt("dfs.replication", 2);
    conf.setInt("dfs.blocksize", 2048);
    conf.set("dfs.namenode.name.dir", name_dir_.string());
    return conf;
  }

  fs::path root_;
  fs::path name_dir_;
};

TEST_F(NameNodeRestartTest, MissingNameDirIsFormattedFresh) {
  // The directory (and its parents) do not exist: the NameNode must
  // format, not fail — the very first start of a new cluster.
  name_dir_ /= "never/created";
  ASSERT_FALSE(fs::exists(name_dir_));
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = journalingConf()});
  EXPECT_TRUE(cluster.nameNode().journaling());
  EXPECT_FALSE(cluster.nameNode().inSafeMode());
  EXPECT_TRUE(EditLog::hasState(name_dir_));

  auto client = cluster.client();
  client.writeFile("/hello", "fresh format");
  EXPECT_EQ(client.readFile("/hello"), "fresh format");
}

TEST_F(NameNodeRestartTest, EmptyNameDirIsFormattedFresh) {
  fs::create_directories(name_dir_);  // exists but holds nothing
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = journalingConf()});
  EXPECT_TRUE(cluster.nameNode().journaling());
  EXPECT_FALSE(cluster.nameNode().inSafeMode());
  cluster.client().writeFile("/hello", "empty dir");
  EXPECT_EQ(cluster.client().readFile("/hello"), "empty dir");
}

TEST_F(NameNodeRestartTest, CleanRestartRecoversFromDiskAlone) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = journalingConf()});
  auto client = cluster.client();
  client.writeFile("/data/a", Bytes(5000, 'a'));  // multi-block
  client.writeFile("/data/b", "b");
  client.mkdirs("/empty/dir");
  client.rename("/data/b", "/data/b2");

  cluster.restartNameNode();  // journaling path: no saveImage() handoff
  ASSERT_TRUE(cluster.waitOutOfSafeMode(20'000));
  EXPECT_EQ(client.readFile("/data/a"), Bytes(5000, 'a'));
  EXPECT_EQ(client.readFile("/data/b2"), "b");
  EXPECT_FALSE(client.exists("/data/b"));
  EXPECT_TRUE(client.exists("/empty/dir"));
}

TEST_F(NameNodeRestartTest, CrashLosesNoAckedMutation) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = journalingConf()});
  auto client = cluster.client();
  client.writeFile("/keep/one", Bytes(3000, 'x'));
  client.writeFile("/keep/two", "tiny");
  client.writeFile("/doomed", "to be deleted");
  client.setReplication("/keep/two", 1);
  ASSERT_TRUE(client.remove("/doomed", false));
  client.rename("/keep/one", "/keep/moved");

  cluster.crashNameNode();  // kill -9: no saveImage, no clean stop
  ASSERT_FALSE(cluster.nameNodeRunning());
  EXPECT_THROW(client.exists("/keep/two"), NetworkError);

  cluster.restartNameNode();
  ASSERT_TRUE(cluster.waitOutOfSafeMode(20'000));
  EXPECT_EQ(client.readFile("/keep/moved"), Bytes(3000, 'x'));
  EXPECT_EQ(client.readFile("/keep/two"), "tiny");
  EXPECT_EQ(client.getFileStatus("/keep/two").replication, 1);
  EXPECT_FALSE(client.exists("/doomed"));
  EXPECT_FALSE(client.exists("/keep/one"));

  // Deleted blocks' ids were journaled: new allocations must not alias
  // them, and new writes must work immediately after recovery.
  client.writeFile("/after/crash", "new data");
  EXPECT_EQ(client.readFile("/after/crash"), "new data");
  ASSERT_TRUE(cluster.waitHealthy(20'000));
}

TEST_F(NameNodeRestartTest, SecondCrashRecoversCheckpointPlusNewerEdits) {
  Config conf = journalingConf();
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = conf});
  auto client = cluster.client();
  client.writeFile("/gen1", "one");
  // Checkpoint via the dfsadmin RPC, then mutate past it.
  const uint64_t ckpt = client.namenode().saveNamespace();
  EXPECT_GT(ckpt, 0u);
  client.writeFile("/gen2", "two");

  cluster.crashNameNode();
  cluster.restartNameNode();
  ASSERT_TRUE(cluster.waitOutOfSafeMode(20'000));
  EXPECT_EQ(client.readFile("/gen1"), "one");
  EXPECT_EQ(client.readFile("/gen2"), "two");

  // Crash AGAIN without any new checkpoint: recovery of the recovered
  // state (image + replayed edits + edits journaled after restart).
  client.writeFile("/gen3", "three");
  cluster.crashNameNode();
  cluster.restartNameNode();
  ASSERT_TRUE(cluster.waitOutOfSafeMode(20'000));
  const std::pair<const char*, const char*> survivors[] = {
      {"/gen1", "one"}, {"/gen2", "two"}, {"/gen3", "three"}};
  for (const auto& [path, body] : survivors) {
    EXPECT_EQ(client.readFile(path), body) << path;
  }
}

TEST_F(NameNodeRestartTest, MonitorCheckpointsByTxnCountAndRetiresSegments) {
  Config conf = journalingConf();
  conf.setInt("dfs.namenode.checkpoint.txns", 25);
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = conf});
  auto client = cluster.client();
  for (int i = 0; i < 30; ++i) {
    client.writeFile("/ckpt/f" + std::to_string(i), "x");
  }
  // >= 90 txns journaled; the monitor must have checkpointed by now (poll:
  // the monitor runs every 20ms).
  bool checkpointed = false;
  for (int wait = 0; wait < 100 && !checkpointed; ++wait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    checkpointed = !EditLog::load(name_dir_).image.empty();
  }
  ASSERT_TRUE(checkpointed);
  // Retirement bounds replay: far fewer live edits than total journaled.
  EXPECT_LT(EditLog::load(name_dir_).edits.size(), 50u);

  cluster.crashNameNode();
  cluster.restartNameNode();
  ASSERT_TRUE(cluster.waitOutOfSafeMode(20'000));
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client.readFile("/ckpt/f" + std::to_string(i)), "x") << i;
  }
}

TEST_F(NameNodeRestartTest, PeriodicCheckpointFiresOnTime) {
  Config conf = journalingConf();
  conf.setInt("dfs.namenode.checkpoint.txns", 1'000'000'000);
  conf.setInt("dfs.namenode.checkpoint.period.ms", 100);
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = conf});
  cluster.client().writeFile("/periodic", "tick");
  bool checkpointed = false;
  for (int wait = 0; wait < 100 && !checkpointed; ++wait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    checkpointed = !EditLog::load(name_dir_).image.empty();
  }
  EXPECT_TRUE(checkpointed);
}

TEST_F(NameNodeRestartTest, AdminRpcsRequireJournaling) {
  Config conf = testutil::aggressiveTimers();
  conf.setInt("dfs.replication", 1);
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = conf});
  EXPECT_FALSE(cluster.nameNode().journaling());
  EXPECT_THROW(cluster.nameNode().saveNamespace(), IllegalStateError);
  EXPECT_THROW(cluster.nameNode().rollEdits(), IllegalStateError);
}

TEST_F(NameNodeRestartTest, RollEditsStartsANewSegment) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = journalingConf()});
  auto client = cluster.client();
  client.writeFile("/roll/a", "a");
  const uint64_t first = client.namenode().rollEdits();
  client.writeFile("/roll/b", "b");
  const uint64_t second = client.namenode().rollEdits();
  EXPECT_GT(second, first);
  // Both segments stay readable until a checkpoint retires them.
  const LoadedStorage loaded = EditLog::load(name_dir_);
  EXPECT_GE(loaded.last_txn, second - 1);
  EXPECT_FALSE(loaded.edits.empty());
}

// ---------------------------------------------------------------------------
// Namespace scale: the stress version of the 1M-file benchmark, through
// the real RPC path (create / addBlock / complete per file). Sanitizer
// builds run a reduced count; the full 1M lives in
// bench/bench_namenode_restart.cpp with CI-gated rates.
TEST_F(NameNodeRestartTest, StressManyFilesJournalCheckpointReplayRoundTrip) {
  const int kFiles = kSanitized ? 2'000 : 20'000;
  constexpr int kPerDir = 500;

  Config conf = journalingConf();
  conf.setInt("dfs.replication", 1);
  // Keep checkpoint timing in the test's hands.
  conf.setInt("dfs.namenode.checkpoint.txns", 1'000'000'000);
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = conf});
  auto client = cluster.client();
  NameNodeRpc& nn = client.namenode();

  // Journal through RPC: ~3 txns per file, metadata only (no block data is
  // written — this is a NameNode test).
  Stopwatch journal_watch;
  for (int i = 0; i < kFiles; ++i) {
    const std::string path = "/stress/d" + std::to_string(i / kPerDir) +
                             "/f" + std::to_string(i);
    nn.create(path, 1, 65536);
    nn.addBlock(path);
    nn.completeFile(path);
  }
  const int64_t journal_ms = journal_watch.elapsedMillis();
  EXPECT_EQ(cluster.nameNode().totalBlocks(), static_cast<uint64_t>(kFiles));

  // O(1)-ish path resolution: random stats must stay cheap at scale (a
  // generous wall bound — interned-map lookups do this in microseconds).
  Rng rng(7);
  Stopwatch stat_watch;
  for (int i = 0; i < 2'000; ++i) {
    const int f = static_cast<int>(rng.uniform(kFiles));
    const std::string path = "/stress/d" + std::to_string(f / kPerDir) +
                             "/f" + std::to_string(f);
    ASSERT_EQ(nn.getFileStatus(path).length, 0u);
  }
  EXPECT_LT(stat_watch.elapsedMillis(), 5'000) << "lookups degraded at scale";

  // Checkpoint at scale, then image round-trip equality.
  Stopwatch ckpt_watch;
  const uint64_t ckpt_txn = nn.saveNamespace();
  const int64_t ckpt_ms = ckpt_watch.elapsedMillis();
  EXPECT_GE(ckpt_txn, static_cast<uint64_t>(3 * kFiles));
  const LoadedStorage loaded = EditLog::load(name_dir_);
  ASSERT_FALSE(loaded.image.empty());
  Stopwatch replay_watch;
  Namespace replayed = Namespace::loadImage(loaded.image);
  replayEdits(replayed, loaded.edits, loaded.image_txn);
  const int64_t replay_ms = replay_watch.elapsedMillis();
  EXPECT_EQ(replayed.fileCount(), static_cast<uint64_t>(kFiles));
  EXPECT_EQ(replayed.listFilesRecursive("/").size(),
            static_cast<size_t>(kFiles));

  // Bounded work, generously: each phase must land in seconds, not
  // minutes, even on a loaded sanitized CI worker (the tight rate gates
  // live in the benchmark).
  EXPECT_LT(journal_ms, 60'000);
  EXPECT_LT(ckpt_ms, 30'000);
  EXPECT_LT(replay_ms, 30'000);

  // Full restart at scale. Blocks were never written to DataNodes, so
  // safe mode cannot clear by block reports — lift it by hand; the
  // namespace itself must be complete.
  cluster.crashNameNode();
  cluster.restartNameNode();
  cluster.nameNode().setSafeMode(false);
  EXPECT_EQ(cluster.nameNode().listFilesRecursive("/stress").size(),
            static_cast<size_t>(kFiles));
  const int probe = kFiles - 1;
  EXPECT_EQ(nn.getFileStatus("/stress/d" + std::to_string(probe / kPerDir) +
                             "/f" + std::to_string(probe))
                .replication,
            1);
}

}  // namespace
}  // namespace mh::hdfs
