#include "mh/hdfs/namenode.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"

namespace mh::hdfs {
namespace {

// Drives the NameNode through its public API, playing the DataNode protocol
// by hand for deterministic control (no daemon threads: start() is not
// called, runMonitorOnce() stands in for the monitor).
class NameNodeTest : public ::testing::Test {
 protected:
  NameNodeTest()
      : network_(std::make_shared<net::Network>()),
        nn_(makeConf(), network_) {}

  static Config makeConf() {
    Config conf;
    conf.setInt("dfs.replication", 2);
    conf.setInt("dfs.blocksize", 1024);
    conf.setInt("dfs.namenode.heartbeat.expiry.ms", 100);
    return conf;
  }

  void registerNodes(int n) {
    for (int i = 1; i <= n; ++i) {
      nn_.registerDataNode("n" + std::to_string(i), 1 << 20);
    }
  }

  /// Simulates the write path for one block: every pipeline host reports
  /// blockReceived.
  LocatedBlock writeBlock(const std::string& path, uint64_t size) {
    const LocatedBlock located = nn_.addBlock(path, "client");
    for (const auto& host : located.hosts) {
      nn_.blockReceived(host, {located.block.id, size});
    }
    return located;
  }

  std::shared_ptr<net::Network> network_;
  NameNode nn_;
};

TEST_F(NameNodeTest, FreshNameNodeIsNotInSafeMode) {
  EXPECT_FALSE(nn_.inSafeMode());
}

TEST_F(NameNodeTest, NamespaceOpsWork) {
  nn_.mkdirs("/user/alice");
  EXPECT_TRUE(nn_.exists("/user/alice"));
  nn_.create("/user/alice/f");
  EXPECT_EQ(nn_.getFileStatus("/user/alice/f").replication, 2u);
  EXPECT_EQ(nn_.getFileStatus("/user/alice/f").block_size, 1024u);
  nn_.rename("/user/alice/f", "/user/alice/g");
  EXPECT_FALSE(nn_.exists("/user/alice/f"));
  EXPECT_TRUE(nn_.remove("/user/alice/g", false));
  EXPECT_FALSE(nn_.remove("/user/alice/g", false));
}

TEST_F(NameNodeTest, AddBlockNeedsLiveDataNodes) {
  nn_.create("/f");
  EXPECT_THROW(nn_.addBlock("/f", "client"), IoError);
}

TEST_F(NameNodeTest, AddBlockPlacesOnWriterWhenItIsADataNode) {
  registerNodes(3);
  nn_.create("/f");
  const LocatedBlock located = nn_.addBlock("/f", "n2");
  ASSERT_EQ(located.hosts.size(), 2u);
  EXPECT_EQ(located.hosts[0], "n2");
}

TEST_F(NameNodeTest, CompleteRecordsSizes) {
  registerNodes(2);
  nn_.create("/f");
  writeBlock("/f", 1024);
  writeBlock("/f", 500);
  nn_.completeFile("/f");
  EXPECT_EQ(nn_.getFileStatus("/f").length, 1524u);
  const auto located = nn_.getBlockLocations("/f");
  ASSERT_EQ(located.size(), 2u);
  EXPECT_EQ(located[0].offset, 0u);
  EXPECT_EQ(located[1].offset, 1024u);
  EXPECT_EQ(located[1].block.size, 500u);
  EXPECT_EQ(located[0].hosts.size(), 2u);
}

TEST_F(NameNodeTest, HeartbeatFromUnknownHostRequestsReregistration) {
  const HeartbeatReply reply = nn_.heartbeat("stranger", 1, 0, 0);
  EXPECT_TRUE(reply.reregister);
}

TEST_F(NameNodeTest, FirstHeartbeatRequestsBlockReport) {
  nn_.registerDataNode("n1", 100);
  HeartbeatReply reply = nn_.heartbeat("n1", 100, 0, 0);
  EXPECT_TRUE(reply.request_block_report);
  nn_.blockReport("n1", {});
  reply = nn_.heartbeat("n1", 100, 0, 0);
  EXPECT_FALSE(reply.request_block_report);
}

TEST_F(NameNodeTest, BlockReportInvalidatesUnknownBlocks) {
  nn_.registerDataNode("n1", 100);
  const auto invalid = nn_.blockReport("n1", {{777, 10}});
  EXPECT_EQ(invalid, std::vector<BlockId>{777});
}

TEST_F(NameNodeTest, HeartbeatExpiryMarksDeadAndReschedulesReplicas) {
  registerNodes(3);
  nn_.create("/f");
  const auto located = writeBlock("/f", 100);
  nn_.completeFile("/f");
  ASSERT_EQ(located.hosts.size(), 2u);

  // Only two of three nodes keep heartbeating; the replica holder that goes
  // silent must be declared dead.
  const std::string victim = located.hosts[0];
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  for (int i = 1; i <= 3; ++i) {
    const std::string host = "n" + std::to_string(i);
    if (host != victim) nn_.heartbeat(host, 1 << 20, 0, 0);
  }
  nn_.runMonitorOnce();

  const auto after = nn_.getBlockLocations("/f")[0].hosts;
  EXPECT_EQ(after.size(), 1u);
  EXPECT_NE(after[0], victim);

  // The monitor should have queued a replicate command on the survivor.
  const HeartbeatReply reply = nn_.heartbeat(after[0], 1 << 20, 0, 0);
  ASSERT_EQ(reply.commands.size(), 1u);
  EXPECT_EQ(reply.commands[0].kind, DataNodeCommand::Kind::kReplicate);
  EXPECT_EQ(reply.commands[0].block, located.block.id);
  ASSERT_EQ(reply.commands[0].targets.size(), 1u);
  EXPECT_NE(reply.commands[0].targets[0], victim);
  EXPECT_NE(reply.commands[0].targets[0], after[0]);
}

TEST_F(NameNodeTest, OverReplicationSchedulesDelete) {
  registerNodes(3);
  nn_.create("/f");
  const auto located = writeBlock("/f", 100);
  // A third, excess replica appears.
  std::string extra;
  for (int i = 1; i <= 3; ++i) {
    const std::string host = "n" + std::to_string(i);
    if (std::find(located.hosts.begin(), located.hosts.end(), host) ==
        located.hosts.end()) {
      extra = host;
    }
  }
  nn_.blockReceived(extra, {located.block.id, 100});
  EXPECT_EQ(nn_.getBlockLocations("/f")[0].hosts.size(), 3u);

  nn_.runMonitorOnce();
  EXPECT_EQ(nn_.getBlockLocations("/f")[0].hosts.size(), 2u);
}

TEST_F(NameNodeTest, BadBlockReportTriggersRepairThenInvalidate) {
  registerNodes(3);
  nn_.create("/f");
  const auto located = writeBlock("/f", 100);
  nn_.completeFile("/f");
  const std::string bad_host = located.hosts[0];
  nn_.reportBadBlock(located.block.id, bad_host);

  // The corrupt replica is no longer served to readers.
  auto hosts = nn_.getBlockLocations("/f")[0].hosts;
  EXPECT_EQ(hosts.size(), 1u);

  // Monitor schedules re-replication from the good copy.
  nn_.runMonitorOnce();
  const std::string good_host = hosts[0];
  const HeartbeatReply reply = nn_.heartbeat(good_host, 1 << 20, 0, 0);
  ASSERT_EQ(reply.commands.size(), 1u);
  EXPECT_EQ(reply.commands[0].kind, DataNodeCommand::Kind::kReplicate);
  // Target must not be the corrupt holder.
  EXPECT_NE(reply.commands[0].targets.at(0), bad_host);

  // Replica lands; now the corrupt copy is invalidated.
  nn_.blockReceived(reply.commands[0].targets[0], {located.block.id, 100});
  nn_.runMonitorOnce();
  const HeartbeatReply bad_reply = nn_.heartbeat(bad_host, 1 << 20, 0, 0);
  ASSERT_EQ(bad_reply.commands.size(), 1u);
  EXPECT_EQ(bad_reply.commands[0].kind, DataNodeCommand::Kind::kDelete);
  EXPECT_EQ(bad_reply.commands[0].block, located.block.id);
}

TEST_F(NameNodeTest, DeleteQueuesInvalidationOnReplicaHolders) {
  registerNodes(2);
  nn_.create("/f");
  const auto located = writeBlock("/f", 64);
  nn_.completeFile("/f");
  nn_.remove("/f", false);
  int delete_commands = 0;
  for (const auto& host : located.hosts) {
    for (const auto& cmd : nn_.heartbeat(host, 1 << 20, 0, 0).commands) {
      if (cmd.kind == DataNodeCommand::Kind::kDelete &&
          cmd.block == located.block.id) {
        ++delete_commands;
      }
    }
  }
  EXPECT_EQ(delete_commands, 2);
  EXPECT_EQ(nn_.totalBlocks(), 0u);
}

TEST_F(NameNodeTest, FsckClassifiesBlocks) {
  registerNodes(2);
  nn_.create("/healthy");
  writeBlock("/healthy", 100);
  nn_.completeFile("/healthy");

  nn_.create("/under");
  const auto under = nn_.addBlock("/under", "client");
  nn_.blockReceived(under.hosts[0], {under.block.id, 50});
  nn_.completeFile("/under");

  nn_.create("/missing");
  nn_.addBlock("/missing", "client");  // nobody reports it

  const FsckReport report = nn_.fsck();
  EXPECT_EQ(report.total_files, 3u);
  EXPECT_EQ(report.total_blocks, 3u);
  EXPECT_EQ(report.min_replication_blocks, 1u);
  EXPECT_EQ(report.under_replicated, 1u);
  EXPECT_EQ(report.missing_blocks, 1u);
  EXPECT_FALSE(report.healthy);
  EXPECT_NE(report.render().find("CORRUPT"), std::string::npos);
}

TEST_F(NameNodeTest, SafeModeBlocksMutationsAllowsReads) {
  registerNodes(1);
  nn_.create("/f");
  nn_.setSafeMode(true);
  EXPECT_THROW(nn_.create("/g"), IllegalStateError);
  EXPECT_THROW(nn_.mkdirs("/d"), IllegalStateError);
  EXPECT_THROW(nn_.remove("/f", false), IllegalStateError);
  EXPECT_THROW(nn_.addBlock("/f", "client"), IllegalStateError);
  EXPECT_TRUE(nn_.exists("/f"));  // reads fine
  nn_.setSafeMode(false);
  nn_.create("/g");
}

TEST_F(NameNodeTest, RestartEntersSafeModeUntilBlocksReported) {
  registerNodes(2);
  nn_.create("/f");
  const auto located = writeBlock("/f", 100);
  nn_.completeFile("/f");

  NameNode restarted(makeConf(), network_, "namenode2", nn_.saveImage());
  EXPECT_TRUE(restarted.inSafeMode());
  EXPECT_EQ(restarted.totalBlocks(), 1u);
  // Namespace survived; replica locations did not.
  EXPECT_TRUE(restarted.exists("/f"));
  EXPECT_TRUE(restarted.getBlockLocations("/f")[0].hosts.empty());

  // DataNodes re-register and report; safe mode lifts.
  restarted.registerDataNode(located.hosts[0], 1 << 20);
  restarted.blockReport(located.hosts[0], {{located.block.id, 100}});
  EXPECT_FALSE(restarted.inSafeMode());
  EXPECT_EQ(restarted.getBlockLocations("/f")[0].hosts.size(), 1u);
}

TEST_F(NameNodeTest, BlockReportDoesNotLaunderCorruptReplica) {
  registerNodes(2);
  nn_.create("/f");
  const auto located = writeBlock("/f", 100);
  nn_.completeFile("/f");
  const std::string bad_host = located.hosts[0];
  nn_.reportBadBlock(located.block.id, bad_host);
  // The corrupt holder re-reports the same replica: it must stay corrupt.
  nn_.blockReport(bad_host, {{located.block.id, 100}});
  const auto hosts = nn_.getBlockLocations("/f")[0].hosts;
  EXPECT_EQ(std::count(hosts.begin(), hosts.end(), bad_host), 0);
}

TEST_F(NameNodeTest, DataNodeReportShowsLiveness) {
  registerNodes(2);
  const auto report = nn_.datanodeReport();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_TRUE(report[0].alive);
  EXPECT_EQ(nn_.liveDataNodes(), 2u);
}

}  // namespace
}  // namespace mh::hdfs
