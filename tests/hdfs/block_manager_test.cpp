#include "mh/hdfs/block_manager.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "mh/common/error.h"

namespace mh::hdfs {
namespace {

TEST(BlockManagerTest, AllocateAssignsUniqueIds) {
  BlockManager bm;
  const Block a = bm.allocateBlock(3);
  const Block b = bm.allocateBlock(3);
  EXPECT_NE(a.id, b.id);
  EXPECT_TRUE(bm.contains(a.id));
  EXPECT_EQ(bm.blockCount(), 2u);
  EXPECT_EQ(bm.expectedReplication(a.id), 3u);
}

TEST(BlockManagerTest, CommitSetsSize) {
  BlockManager bm;
  const Block a = bm.allocateBlock(1);
  bm.commitBlock(a.id, 4096);
  EXPECT_EQ(bm.blockSize(a.id), 4096u);
  EXPECT_THROW(bm.commitBlock(999, 1), NotFoundError);
}

TEST(BlockManagerTest, ReplicaLifecycle) {
  BlockManager bm;
  const Block a = bm.allocateBlock(2);
  bm.addReplica(a.id, "n1");
  bm.addReplica(a.id, "n2");
  bm.addReplica(a.id, "n1");  // duplicate is fine
  EXPECT_EQ(bm.liveReplicas(a.id).size(), 2u);
  bm.removeReplica(a.id, "n1");
  EXPECT_EQ(bm.liveReplicas(a.id), std::vector<std::string>{"n2"});
}

TEST(BlockManagerTest, StaleReplicaForUnknownBlockIgnored) {
  BlockManager bm;
  bm.addReplica(42, "n1");  // block never allocated
  EXPECT_TRUE(bm.liveReplicas(42).empty());
}

TEST(BlockManagerTest, UnderOverMissingClassification) {
  BlockManager bm;
  const Block under = bm.allocateBlock(3);
  const Block full = bm.allocateBlock(2);
  const Block over = bm.allocateBlock(1);
  const Block missing = bm.allocateBlock(2);

  bm.addReplica(under.id, "n1");
  bm.addReplica(full.id, "n1");
  bm.addReplica(full.id, "n2");
  bm.addReplica(over.id, "n1");
  bm.addReplica(over.id, "n2");

  EXPECT_EQ(bm.underReplicated(), std::vector<BlockId>{under.id});
  EXPECT_EQ(bm.overReplicated(), std::vector<BlockId>{over.id});
  EXPECT_EQ(bm.missing(), std::vector<BlockId>{missing.id});
  EXPECT_EQ(bm.reportedBlocks(), 3u);
}

TEST(BlockManagerTest, DataNodeDeathDropsItsReplicas) {
  BlockManager bm;
  const Block a = bm.allocateBlock(2);
  const Block b = bm.allocateBlock(2);
  bm.addReplica(a.id, "dead");
  bm.addReplica(a.id, "n2");
  bm.addReplica(b.id, "n2");

  const auto affected = bm.removeAllReplicasOn("dead");
  EXPECT_EQ(affected, std::vector<BlockId>{a.id});
  EXPECT_EQ(bm.liveReplicas(a.id), std::vector<std::string>{"n2"});
}

TEST(BlockManagerTest, CorruptReplicaIsNotLive) {
  BlockManager bm;
  const Block a = bm.allocateBlock(2);
  bm.addReplica(a.id, "n1");
  bm.addReplica(a.id, "n2");
  bm.markCorrupt(a.id, "n1");
  EXPECT_TRUE(bm.isCorrupt(a.id, "n1"));
  EXPECT_EQ(bm.liveReplicas(a.id), std::vector<std::string>{"n2"});
  EXPECT_EQ(bm.corruptReplicas(a.id), std::vector<std::string>{"n1"});
  EXPECT_EQ(bm.withCorruptReplicas(), std::vector<BlockId>{a.id});
  // Corrupt replica makes the block under-replicated (1 live < 2 expected).
  EXPECT_EQ(bm.underReplicated(), std::vector<BlockId>{a.id});
}

TEST(BlockManagerTest, FreshReplicaClearsCorruption) {
  BlockManager bm;
  const Block a = bm.allocateBlock(1);
  bm.markCorrupt(a.id, "n1");
  bm.addReplica(a.id, "n1");  // re-replicated / rewritten
  EXPECT_FALSE(bm.isCorrupt(a.id, "n1"));
  EXPECT_EQ(bm.liveReplicas(a.id).size(), 1u);
}

TEST(BlockManagerTest, RemoveBlockForgetsEverything) {
  BlockManager bm;
  const Block a = bm.allocateBlock(1);
  bm.addReplica(a.id, "n1");
  bm.removeBlock(a.id);
  EXPECT_FALSE(bm.contains(a.id));
  EXPECT_TRUE(bm.liveReplicas(a.id).empty());
  EXPECT_THROW(bm.expectedReplication(a.id), NotFoundError);
}

TEST(BlockManagerTest, RegisterBlockFromImageBumpsNextId) {
  BlockManager bm;
  bm.registerBlock({100, 512}, 3);
  const Block fresh = bm.allocateBlock(1);
  EXPECT_GT(fresh.id, 100u);
  EXPECT_EQ(bm.blockSize(100), 512u);
}

// ---------------------------------------------------------------- placement

TEST(PlacementTest, PrefersWriterHost) {
  Rng rng(1);
  const std::vector<PlacementCandidate> candidates{
      {"n1", 100}, {"n2", 100}, {"n3", 100}};
  for (int i = 0; i < 20; ++i) {
    const auto targets = choosePlacement(candidates, 2, "n2", {}, rng);
    ASSERT_GE(targets.size(), 1u);
    EXPECT_EQ(targets[0], "n2");
  }
}

TEST(PlacementTest, WriterNotADataNodeIsIgnored) {
  Rng rng(2);
  const std::vector<PlacementCandidate> candidates{{"n1", 10}, {"n2", 10}};
  const auto targets = choosePlacement(candidates, 2, "client", {}, rng);
  EXPECT_EQ(targets.size(), 2u);
  EXPECT_NE(targets[0], "client");
}

TEST(PlacementTest, TargetsAreDistinct) {
  Rng rng(3);
  const std::vector<PlacementCandidate> candidates{
      {"n1", 5}, {"n2", 5}, {"n3", 5}, {"n4", 5}};
  for (int i = 0; i < 50; ++i) {
    auto targets = choosePlacement(candidates, 3, "n1", {}, rng);
    std::sort(targets.begin(), targets.end());
    EXPECT_EQ(std::unique(targets.begin(), targets.end()), targets.end());
  }
}

TEST(PlacementTest, ExcludedHostsNeverChosen) {
  Rng rng(4);
  const std::vector<PlacementCandidate> candidates{
      {"n1", 5}, {"n2", 5}, {"n3", 5}};
  for (int i = 0; i < 50; ++i) {
    const auto targets = choosePlacement(candidates, 3, "n1", {"n2"}, rng);
    for (const auto& t : targets) EXPECT_NE(t, "n2");
  }
}

TEST(PlacementTest, SmallClusterYieldsFewerTargets) {
  Rng rng(5);
  const std::vector<PlacementCandidate> candidates{{"n1", 5}};
  const auto targets = choosePlacement(candidates, 3, "", {}, rng);
  EXPECT_EQ(targets.size(), 1u);
}

TEST(PlacementTest, SecondReplicaGoesOffRack) {
  Rng rng(7);
  const std::vector<PlacementCandidate> candidates{
      {"a1", 10, "/rackA"}, {"a2", 10, "/rackA"},
      {"b1", 10, "/rackB"}, {"b2", 10, "/rackB"}};
  for (int i = 0; i < 50; ++i) {
    const auto targets = choosePlacement(candidates, 2, "a1", {}, rng);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_EQ(targets[0], "a1");
    EXPECT_TRUE(targets[1] == "b1" || targets[1] == "b2") << targets[1];
  }
}

TEST(PlacementTest, ThirdReplicaSharesTheSecondRack) {
  Rng rng(8);
  const std::vector<PlacementCandidate> candidates{
      {"a1", 10, "/rackA"}, {"a2", 10, "/rackA"},
      {"b1", 10, "/rackB"}, {"b2", 10, "/rackB"},
      {"c1", 10, "/rackC"}, {"c2", 10, "/rackC"}};
  for (int i = 0; i < 50; ++i) {
    const auto targets = choosePlacement(candidates, 3, "a1", {}, rng);
    ASSERT_EQ(targets.size(), 3u);
    // targets[1] is off /rackA; targets[2] shares targets[1]'s rack.
    EXPECT_NE(targets[1][0], 'a');
    EXPECT_EQ(targets[1][0], targets[2][0]) << targets[1] << " " << targets[2];
    EXPECT_NE(targets[1], targets[2]);
  }
}

TEST(PlacementTest, SingleRackFallsBackGracefully) {
  Rng rng(9);
  const std::vector<PlacementCandidate> candidates{
      {"n1", 10, "/only"}, {"n2", 10, "/only"}, {"n3", 10, "/only"}};
  const auto targets = choosePlacement(candidates, 3, "n1", {}, rng);
  EXPECT_EQ(targets.size(), 3u);  // no off-rack candidates, but still 3
}

TEST(PlacementTest, FreeSpaceBiasesSelection) {
  Rng rng(6);
  const std::vector<PlacementCandidate> candidates{{"big", 1'000'000},
                                                   {"tiny", 1}};
  int big_first = 0;
  for (int i = 0; i < 200; ++i) {
    const auto targets = choosePlacement(candidates, 1, "", {}, rng);
    if (targets.at(0) == "big") ++big_first;
  }
  EXPECT_GT(big_first, 180);  // overwhelmingly the roomy node
}

}  // namespace
}  // namespace mh::hdfs
