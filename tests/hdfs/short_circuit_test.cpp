#include "mh/hdfs/short_circuit.h"

#include <gtest/gtest.h>

#include "mh/common/error.h"
#include "mh/common/rng.h"
#include "mh/hdfs/mini_cluster.h"
#include "testutil/aggressive_timers.h"

namespace mh::hdfs {
namespace {

Config scConf() {
  Config conf = testutil::aggressiveTimers();
  conf.setInt("dfs.replication", 3);
  conf.setInt("dfs.blocksize", 1024);
  return conf;
}

Bytes randomPayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>('a' + rng.uniform(26)));
  }
  return out;
}

/// A client on `host` with dfs.client.read.shortcircuit enabled.
DfsClient scClient(MiniDfsCluster& cluster, const std::string& host) {
  Config conf = cluster.conf();
  conf.setBool("dfs.client.read.shortcircuit", true);
  return DfsClient(conf, cluster.network(), host, "namenode");
}

int64_t scReads(MiniDfsCluster& cluster) {
  return cluster.metrics().child("dfsclient").counterValue(
      "short.circuit.reads");
}

TEST(ShortCircuitTest, NodeLocalReadBypassesEveryReadRpc) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = scConf()});
  const Bytes payload = randomPayload(5'000, 1);  // 5 blocks, replication 3
  cluster.client().writeFile("/sc/data.txt", payload);

  auto client = scClient(cluster, "node01");
  const auto before = cluster.network()->messages("read");
  EXPECT_EQ(client.readFile("/sc/data.txt"), payload);
  // Every block had a replica on node01: zero readBlock RPCs, one
  // short-circuit read per block.
  EXPECT_EQ(cluster.network()->messages("read"), before);
  EXPECT_EQ(scReads(cluster), 5);
}

TEST(ShortCircuitTest, DisabledByDefault) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = scConf()});
  const Bytes payload = randomPayload(2'000, 2);
  cluster.client().writeFile("/sc/off.txt", payload);

  auto client = cluster.client("node01");  // cluster conf: no short-circuit
  const auto before = cluster.network()->messages("read");
  EXPECT_EQ(client.readFile("/sc/off.txt"), payload);
  EXPECT_GT(cluster.network()->messages("read"), before);
  EXPECT_EQ(scReads(cluster), 0);
}

TEST(ShortCircuitTest, OffClusterClientTakesRpcPath) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = scConf()});
  const Bytes payload = randomPayload(2'000, 3);
  cluster.client().writeFile("/sc/remote.txt", payload);

  auto client = scClient(cluster, "client");  // no co-located replicas
  const auto before = cluster.network()->messages("read");
  EXPECT_EQ(client.readFile("/sc/remote.txt"), payload);
  EXPECT_GT(cluster.network()->messages("read"), before);
  EXPECT_EQ(scReads(cluster), 0);
}

TEST(ShortCircuitTest, CorruptLocalReplicaFallsBackToRpcAndReportsIt) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = scConf()});
  const Bytes payload = randomPayload(1'000, 4);  // one block
  cluster.client().writeFile("/sc/corrupt.txt", payload);

  auto client = scClient(cluster, "node01");
  const auto located = client.getBlockLocations("/sc/corrupt.txt");
  ASSERT_EQ(located.size(), 1u);
  const auto store =
      ShortCircuitRegistry::instance().lookup(cluster.network().get(),
                                              "node01");
  ASSERT_NE(store, nullptr);
  store->corruptBlock(located[0].block.id, 17);

  // The short-circuit attempt hits the checksum failure, reports the bad
  // replica, and the sweep reads a healthy copy over RPC — same fallover
  // shape as a corrupt replica on the RPC path.
  const auto before = cluster.network()->messages("read");
  EXPECT_EQ(client.readFile("/sc/corrupt.txt"), payload);
  EXPECT_GT(cluster.network()->messages("read"), before);
  EXPECT_EQ(scReads(cluster), 0);
  EXPECT_GE(cluster.nameNode().fsck().corrupt_blocks, 1u);
}

TEST(ShortCircuitTest, StoppedAndCrashedDataNodesWithdraw) {
  MiniDfsCluster cluster({.num_datanodes = 2, .conf = scConf()});
  auto* network = cluster.network().get();
  EXPECT_NE(ShortCircuitRegistry::instance().lookup(network, "node01"),
            nullptr);

  cluster.stopDataNode("node01");
  EXPECT_EQ(ShortCircuitRegistry::instance().lookup(network, "node01"),
            nullptr);
  cluster.restartDataNode("node01");
  EXPECT_NE(ShortCircuitRegistry::instance().lookup(network, "node01"),
            nullptr);

  cluster.killDataNode("node02");
  EXPECT_EQ(ShortCircuitRegistry::instance().lookup(network, "node02"),
            nullptr);
}

TEST(ShortCircuitTest, FencedHostFallsBackToRemoteReplicas) {
  MiniDfsCluster cluster({.num_datanodes = 3, .conf = scConf()});
  const Bytes payload = randomPayload(2'000, 5);
  cluster.client().writeFile("/sc/fenced.txt", payload);

  // Fence node01 into its own partition: its loopback traffic is severed,
  // so the short-circuit path must refuse too (the local "DataNode" is
  // unreachable) and the sweep reads the remote replicas.
  auto plan = std::make_shared<net::FaultPlan>(1);
  plan->partition({"node01"}, {"node01", "node02", "node03"});
  cluster.network()->setFaultPlan(plan);

  auto client = scClient(cluster, "node01");
  EXPECT_THROW(client.readFile("/sc/fenced.txt"), IoError);
  EXPECT_EQ(scReads(cluster), 0);

  cluster.network()->setFaultPlan(nullptr);
  EXPECT_EQ(client.readFile("/sc/fenced.txt"), payload);
  EXPECT_EQ(scReads(cluster), 2);
}

TEST(ShortCircuitTest, TraceInstantRecordsLocalReads) {
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = scConf()});
  const Bytes payload = randomPayload(1'000, 6);
  cluster.client().writeFile("/sc/traced.txt", payload);

  cluster.tracer().setEnabled(true);
  auto client = scClient(cluster, "node01");
  EXPECT_EQ(client.readFile("/sc/traced.txt"), payload);
  bool saw_instant = false;
  for (const auto& event : cluster.tracer().snapshot()) {
    if (event.component == "dfsclient.node01" &&
        event.name.starts_with("SHORT_CIRCUIT_READ")) {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_instant);
}

TEST(ShortCircuitTest, ReadsAreViewsOfTheResidentReplica) {
  MiniDfsCluster cluster({.num_datanodes = 1, .conf = scConf()});
  const Bytes payload = randomPayload(1'000, 7);  // one block
  cluster.client().writeFile("/sc/alias.txt", payload);

  auto client = scClient(cluster, "node01");
  const auto located = client.getBlockLocations("/sc/alias.txt");
  ASSERT_EQ(located.size(), 1u);
  const BufferView view = client.readBlockRange(located[0], 0, 1'000);
  const auto store = ShortCircuitRegistry::instance().lookup(
      cluster.network().get(), "node01");
  ASSERT_NE(store, nullptr);
  // Byte-identical AND pointer-identical: the client reads the store's own
  // resident buffer, no payload copy anywhere on the path.
  EXPECT_EQ(view, payload);
  EXPECT_EQ(view.view().data(),
            store->readBlock(located[0].block.id).view().data());
}

}  // namespace
}  // namespace mh::hdfs
